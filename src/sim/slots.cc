#include "sim/slots.h"

#include <algorithm>
#include <limits>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace tsf {
namespace {

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  enum class Kind { kJobArrival, kTaskFinish } kind = Kind::kJobArrival;
  std::size_t job = 0;
  MachineId machine = 0;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

}  // namespace

SlotSimResult SimulateSlotScheduler(const Workload& workload,
                                    const SlotSchedulerConfig& config) {
  const Cluster& cluster = workload.cluster;
  TSF_CHECK_GT(cluster.num_machines(), 0u);
  TSF_CHECK_EQ(config.slot_size.dimension(), cluster.num_resources());
  TSF_CHECK(!config.slot_size.IsZero());

  SlotSimResult result;
  result.sim.policy = "Slots";

  // Slots per machine: how many whole slot bundles fit.
  std::vector<long> capacity_slots(cluster.num_machines());
  for (MachineId m = 0; m < cluster.num_machines(); ++m) {
    capacity_slots[m] =
        cluster.machine(m).capacity.IntegralTaskCount(config.slot_size);
    result.total_slots += static_cast<double>(capacity_slots[m]);
  }
  TSF_CHECK_GT(result.total_slots, 0.0) << "slot size larger than every machine";
  std::vector<long> free_slots = capacity_slots;

  // Per-job state.
  struct JobState {
    long slots_per_task = 0;
    double used_fraction = 0;  // genuinely-used share of held slot resources
    DynamicBitset eligible;
    long pending = 0;
    long running_slots = 0;
    long next_task = 0;
    long finished = 0;
    bool arrived = false;
  };
  std::vector<JobState> state(workload.jobs.size());
  result.sim.jobs.resize(workload.jobs.size());
  std::size_t total_tasks = 0;

  for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
    const SimJob& job = workload.jobs[j];
    JobState& js = state[j];
    // Slots a task occupies: enough of the bundle in every dimension.
    long needed = 1;
    double used = 0;
    for (std::size_t r = 0; r < cluster.num_resources(); ++r) {
      if (config.slot_size[r] > 0.0)
        needed = std::max(
            needed, static_cast<long>(std::ceil(job.spec.demand[r] /
                                                config.slot_size[r] - 1e-9)));
    }
    // Fraction of the held bundle the task's true demand uses (averaged
    // over resources with a defined slot amount).
    std::size_t counted = 0;
    for (std::size_t r = 0; r < cluster.num_resources(); ++r) {
      if (config.slot_size[r] <= 0.0) continue;
      used += job.spec.demand[r] /
              (static_cast<double>(needed) * config.slot_size[r]);
      ++counted;
    }
    js.slots_per_task = needed;
    js.used_fraction = counted > 0 ? used / static_cast<double>(counted) : 1.0;
    js.eligible = cluster.Eligibility(job.spec.constraint);
    TSF_CHECK(js.eligible.Any());
    bool fits = false;
    js.eligible.ForEachSet(
        [&](std::size_t m) { fits = fits || capacity_slots[m] >= needed; });
    result.sim.jobs[j].arrival = job.spec.arrival_time;
    if (!fits) {
      // Coarse slots make this job unschedulable anywhere it is allowed to
      // run; record the drop instead of deadlocking the simulation.
      result.dropped_jobs.push_back(j);
      result.sim.jobs[j].first_schedule = job.spec.arrival_time;
      result.sim.jobs[j].completion = job.spec.arrival_time;
      result.sim.jobs[j].num_tasks = 0;
      js.pending = 0;
      continue;
    }
    js.pending = job.spec.num_tasks;
    result.sim.jobs[j].num_tasks = job.spec.num_tasks;
    total_tasks += job.task_runtimes.size();
  }
  result.sim.tasks.reserve(total_tasks);

  // Choosy-style CMMF over slot counts: serve ascending weighted slots.
  auto key = [&](std::size_t j) {
    return static_cast<double>(state[j].running_slots) /
           workload.jobs[j].spec.weight;
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    events.push(Event{workload.jobs[j].spec.arrival_time, seq++,
                      Event::Kind::kJobArrival, j, 0});

  // Utilization accounting: integrate held slots and used fraction over
  // time between events.
  double busy_slot_time = 0, used_slot_time = 0, last_time = 0;
  long busy_slots = 0;
  double used_weighted = 0;
  auto advance_clock = [&](double now) {
    const double dt = now - last_time;
    if (dt > 0) {
      busy_slot_time += static_cast<double>(busy_slots) * dt;
      used_slot_time += used_weighted * dt;
      last_time = now;
    }
  };

  auto place_task = [&](std::size_t j, MachineId m, double now) {
    JobState& js = state[j];
    free_slots[m] -= js.slots_per_task;
    TSF_DCHECK(free_slots[m] >= 0);
    --js.pending;
    js.running_slots += js.slots_per_task;
    busy_slots += js.slots_per_task;
    used_weighted += static_cast<double>(js.slots_per_task) * js.used_fraction;

    const SimJob& job = workload.jobs[j];
    const long index = js.next_task++;
    TaskRecord task;
    task.job = j;
    task.index = index;
    task.submit = job.spec.arrival_time;
    task.schedule = now;
    task.finish = now + job.task_runtimes[static_cast<std::size_t>(index)];
    result.sim.tasks.push_back(task);
    result.sim.jobs[j].first_schedule =
        std::min(result.sim.jobs[j].first_schedule, now);
    events.push(Event{task.finish, seq++, Event::Kind::kTaskFinish, j, m});
  };

  // Serves machine m in ascending slot-share order.
  auto serve_machine = [&](MachineId m, double now) {
    for (;;) {
      std::size_t best = workload.jobs.size();
      double best_key = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
        const JobState& js = state[j];
        if (!js.arrived || js.pending <= 0) continue;
        if (!js.eligible.Test(m) || free_slots[m] < js.slots_per_task) continue;
        const double k = key(j);
        if (k < best_key) {
          best_key = k;
          best = j;
        }
      }
      if (best == workload.jobs.size()) return;
      place_task(best, m, now);
    }
  };

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    advance_clock(event.time);
    if (event.kind == Event::Kind::kJobArrival) {
      JobState& js = state[event.job];
      js.arrived = true;
      js.eligible.ForEachSet([&](std::size_t m) {
        while (js.pending > 0 && free_slots[m] >= js.slots_per_task)
          place_task(event.job, m, event.time);
      });
      continue;
    }
    JobState& js = state[event.job];
    free_slots[event.machine] += js.slots_per_task;
    js.running_slots -= js.slots_per_task;
    busy_slots -= js.slots_per_task;
    used_weighted -=
        static_cast<double>(js.slots_per_task) * js.used_fraction;
    ++js.finished;
    result.sim.makespan = std::max(result.sim.makespan, event.time);
    if (js.finished == workload.jobs[event.job].spec.num_tasks)
      result.sim.jobs[event.job].completion = event.time;
    serve_machine(event.machine, event.time);
  }

  TSF_CHECK_EQ(result.sim.tasks.size(), total_tasks);
  std::sort(result.sim.tasks.begin(), result.sim.tasks.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              return a.job != b.job ? a.job < b.job : a.index < b.index;
            });
  if (result.sim.makespan > 0) {
    result.mean_busy_slots = busy_slot_time / result.sim.makespan;
    result.mean_used_fraction =
        busy_slot_time > 0 ? used_slot_time / busy_slot_time : 1.0;
  }
  return result;
}

}  // namespace tsf
