#include "sim/des.h"

#include <algorithm>
#include <queue>

#include "core/online/scheduler.h"
#include "util/check.h"

namespace tsf {

std::vector<double> SimResult::JobQueueingDelays() const {
  std::vector<double> delays;
  delays.reserve(jobs.size());
  for (const JobRecord& job : jobs) delays.push_back(job.QueueingDelay());
  return delays;
}

std::vector<double> SimResult::JobCompletionTimes() const {
  std::vector<double> times;
  times.reserve(jobs.size());
  for (const JobRecord& job : jobs) times.push_back(job.CompletionTime());
  return times;
}

std::vector<double> SimResult::TaskQueueingDelays() const {
  std::vector<double> delays;
  delays.reserve(tasks.size());
  for (const TaskRecord& task : tasks) delays.push_back(task.QueueingDelay());
  return delays;
}

namespace {

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // FIFO tie-break for simultaneous events
  enum class Kind { kJobArrival, kTaskFinish } kind = Kind::kJobArrival;
  std::size_t job = 0;
  MachineId machine = 0;
  std::size_t task_slot = 0;  // index into result.tasks, for kTaskFinish

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

}  // namespace

SimResult Simulate(const Workload& workload, const OnlinePolicy& policy) {
  const Cluster& cluster = workload.cluster;
  TSF_CHECK_GT(cluster.num_machines(), 0u);
  for (std::size_t j = 1; j < workload.jobs.size(); ++j)
    TSF_CHECK_LE(workload.jobs[j - 1].spec.arrival_time,
                 workload.jobs[j].spec.arrival_time)
        << "jobs must be sorted by arrival";

  SimResult result;
  result.policy = policy.name;
  result.jobs.resize(workload.jobs.size());
  std::size_t total_tasks = 0;
  for (const SimJob& job : workload.jobs) {
    TSF_CHECK_EQ(static_cast<std::size_t>(job.spec.num_tasks),
                 job.task_runtimes.size());
    total_tasks += job.task_runtimes.size();
  }
  result.tasks.reserve(total_tasks);

  std::vector<ResourceVector> capacity;
  capacity.reserve(cluster.num_machines());
  for (MachineId m = 0; m < cluster.num_machines(); ++m)
    capacity.push_back(cluster.NormalizedCapacity(m));
  OnlineScheduler scheduler(std::move(capacity), policy);

  // Per-job simulation state.
  struct JobState {
    UserId user = 0;          // scheduler id, assigned at arrival
    long next_task = 0;       // next runtime index to schedule
    long finished = 0;
    bool arrived = false;
  };
  std::vector<JobState> state(workload.jobs.size());

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
    events.push(Event{workload.jobs[j].spec.arrival_time, seq++,
                      Event::Kind::kJobArrival, j, 0, 0});
    result.jobs[j].arrival = workload.jobs[j].spec.arrival_time;
    result.jobs[j].num_tasks = workload.jobs[j].spec.num_tasks;
  }

  // Places one task of job j on machine m at `now`: records metrics and
  // enqueues its completion. The scheduler has already debited resources.
  auto record_placement = [&](std::size_t j, MachineId m, double now) {
    JobState& js = state[j];
    const SimJob& job = workload.jobs[j];
    TSF_CHECK_LT(static_cast<std::size_t>(js.next_task),
                 job.task_runtimes.size());
    const long index = js.next_task++;
    TaskRecord task;
    task.job = j;
    task.index = index;
    task.submit = job.spec.arrival_time;
    task.schedule = now;
    task.finish = now + job.task_runtimes[static_cast<std::size_t>(index)];
    const std::size_t slot = result.tasks.size();
    result.tasks.push_back(task);
    result.jobs[j].first_schedule = std::min(result.jobs[j].first_schedule, now);
    events.push(
        Event{task.finish, seq++, Event::Kind::kTaskFinish, j, m, slot});
  };

  // Scheduler user id → job index (users are added in arrival order).
  std::vector<std::size_t> user_to_job;
  user_to_job.reserve(workload.jobs.size());

  // Events sharing a timestamp are applied as a batch before any
  // scheduling: otherwise jobs submitted "at the same time" would be
  // allocated one after another and the first would monopolize the idle
  // cluster for a whole (non-preemptible) task wave.
  std::vector<MachineId> freed_machines;
  std::vector<UserId> arrived_users;
  while (!events.empty()) {
    const double now = events.top().time;
    freed_machines.clear();
    arrived_users.clear();

    while (!events.empty() && events.top().time == now) {
      const Event event = events.top();
      events.pop();

      if (event.kind == Event::Kind::kJobArrival) {
        const SimJob& job = workload.jobs[event.job];
        OnlineUserSpec spec;
        spec.demand = cluster.NormalizedDemand(job.spec.demand);
        spec.eligible = cluster.Eligibility(job.spec.constraint);
        TSF_CHECK(spec.eligible.Any())
            << "job " << job.spec.name << " has no eligible machine";
        spec.weight = job.spec.weight;
        bool fits_somewhere = false;
        spec.eligible.ForEachSet([&](std::size_t m) {
          fits_somewhere = fits_somewhere ||
                           cluster.machine(m).capacity.Fits(job.spec.demand);
        });
        TSF_CHECK(fits_somewhere)
            << "job " << job.spec.name
            << ": no eligible machine can hold one task — it would never finish";
        spec.h = 0.0;
        spec.g = 0.0;
        for (MachineId m = 0; m < cluster.num_machines(); ++m) {
          const double tasks =
              cluster.NormalizedCapacity(m).DivisibleTaskCount(spec.demand);
          spec.h += tasks;
          if (spec.eligible.Test(m)) spec.g += tasks;
        }
        spec.pending = job.spec.num_tasks;
        JobState& js = state[event.job];
        js.user = scheduler.AddUser(std::move(spec));
        js.arrived = true;
        user_to_job.push_back(event.job);
        TSF_CHECK_EQ(user_to_job.size(), js.user + 1);
        arrived_users.push_back(js.user);
        continue;
      }

      // Task completion: free resources now, schedule after the batch.
      const std::size_t j = event.job;
      JobState& js = state[j];
      scheduler.OnTaskFinish(js.user, event.machine);
      ++js.finished;
      result.makespan = std::max(result.makespan, now);
      if (js.finished == workload.jobs[j].spec.num_tasks) {
        result.jobs[j].completion = now;
        scheduler.Retire(js.user);
      }
      freed_machines.push_back(event.machine);
    }

    // Scheduling phase. Freed machines are re-offered to everyone eligible
    // (arrivals included — they are registered by now); remaining idle
    // capacity is then handed to the arrival batch in key order. Other
    // pending users need no consideration: they could not place before
    // this instant and no other machine gained capacity.
    std::sort(freed_machines.begin(), freed_machines.end());
    freed_machines.erase(
        std::unique(freed_machines.begin(), freed_machines.end()),
        freed_machines.end());
    for (const MachineId m : freed_machines)
      scheduler.ServeMachine(m, [&](UserId user, MachineId machine) {
        record_placement(user_to_job[user], machine, now);
      });
    if (!arrived_users.empty())
      scheduler.PlaceUsersInterleaved(
          arrived_users, [&](UserId user, MachineId machine) {
            record_placement(user_to_job[user], machine, now);
          });
  }

  TSF_CHECK_EQ(result.tasks.size(), total_tasks);
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    TSF_CHECK_EQ(state[j].finished, workload.jobs[j].spec.num_tasks)
        << "job " << j << " did not finish";
  // Keep tasks ordered by (job, index) so identical workloads align across
  // policies.
  std::sort(result.tasks.begin(), result.tasks.end(),
            [](const TaskRecord& a, const TaskRecord& b) {
              return a.job != b.job ? a.job < b.job : a.index < b.index;
            });
  return result;
}

}  // namespace tsf
