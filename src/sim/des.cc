#include "sim/des.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <optional>
#include <type_traits>

#include "core/eligibility.h"
#include "core/online/reference_scheduler.h"
#include "core/online/scheduler.h"
#include "telemetry/telemetry.h"
#include "util/check.h"

namespace tsf {

std::vector<double> SimResult::JobQueueingDelays() const {
  std::vector<double> delays;
  delays.reserve(jobs.size());
  for (const JobRecord& job : jobs) delays.push_back(job.QueueingDelay());
  return delays;
}

std::vector<double> SimResult::JobCompletionTimes() const {
  std::vector<double> times;
  times.reserve(jobs.size());
  for (const JobRecord& job : jobs) times.push_back(job.CompletionTime());
  return times;
}

std::vector<double> SimResult::TaskQueueingDelays() const {
  std::vector<double> delays;
  delays.reserve(tasks.size());
  for (const TaskRecord& task : tasks) delays.push_back(task.QueueingDelay());
  return delays;
}

namespace {

// Task-finish event, 32 bytes. Arrivals never enter the queue (the job
// list is already sorted by arrival time and is merged in as a second
// stream, as are injected faults), and finishes sharing a timestamp are
// applied as one batch whose internal order is immaterial — capacity frees
// commute and the freed machine set is sorted before serving — so no
// sequence tie-break or event kind is needed. The narrow fields bound the
// workload at 2^32 jobs/machines/tasks, checked at simulation entry.
// `attempt` is the task slot's placement generation: a crash or failure
// bumps the slot's generation, voiding the queued finish event (lazy
// cancellation — the event pops and is skipped).
struct Event {
  double time = 0.0;
  std::uint32_t job = 0;
  std::uint32_t machine = 0;
  std::uint32_t task_slot = 0;  // index into result.tasks
  std::uint32_t attempt = 0;
};

// 4-ary min-heap on time. Heap churn dominates the event loop (one push
// and one pop per task), and against std::priority_queue's binary heap
// this halves the sift depth while keeping all four children of a node in
// one cache line; sifting moves a hole instead of swapping.
class EventQueue {
 public:
  void Reserve(std::size_t n) { events_.reserve(n); }
  bool Empty() const { return events_.empty(); }
  std::size_t Size() const { return events_.size(); }
  const Event& Top() const { return events_.front(); }

  void Push(const Event& e) {
    std::size_t i = events_.size();
    events_.push_back(e);
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (e.time >= events_[parent].time) break;
      events_[i] = events_[parent];
      i = parent;
    }
    events_[i] = e;
  }

  void Pop() {
    const Event moved = events_.back();
    events_.pop_back();
    const std::size_t n = events_.size();
    if (n == 0) return;
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (events_[c].time < events_[best].time) best = c;
      if (events_[best].time >= moved.time) break;
      events_[i] = events_[best];
      i = best;
    }
    events_[i] = moved;
  }

 private:
  std::vector<Event> events_;
};

// Structural equality; Constraint deliberately has no operator== of its own.
bool SameConstraint(const Constraint& a, const Constraint& b) {
  return a.kind() == b.kind() &&
         a.required_attributes().ids() == b.required_attributes().ids() &&
         a.machine_list() == b.machine_list();
}

// Machines grouped by identical normalized capacity vector. The Google
// config mix has only a handful of distinct shapes, so the per-arrival
// monopoly-count sweep (h_i over all machines, g_i over the eligible set)
// collapses from O(machines) DivisibleTaskCount calls to O(distinct
// configs) calls plus one AND-popcount per config.
struct CapacityGroup {
  ResourceVector capacity;  // normalized, shared by all members
  DynamicBitset members;    // over the cluster's machines
  double count = 0.0;       // members.Count(), as the multiplier
};

std::vector<CapacityGroup> GroupByCapacity(
    const std::vector<ResourceVector>& capacity) {
  std::vector<CapacityGroup> groups;
  for (std::size_t m = 0; m < capacity.size(); ++m) {
    CapacityGroup* group = nullptr;
    for (CapacityGroup& g : groups)
      if (g.capacity == capacity[m]) {
        group = &g;
        break;
      }
    if (group == nullptr) {
      groups.push_back(CapacityGroup{capacity[m],
                                     DynamicBitset(capacity.size()), 0.0});
      group = &groups.back();
    }
    group->members.Set(m);
    group->count += 1.0;
  }
  return groups;
}

template <class Scheduler>
SimResult SimulateWith(const Workload& workload, const OnlinePolicy& policy,
                       const SimOptions& options) {
  TSF_TRACE_SCOPE("sim", "Simulate");
  const Cluster& cluster = workload.cluster;
  TSF_CHECK_GT(cluster.num_machines(), 0u);
  for (std::size_t j = 1; j < workload.jobs.size(); ++j)
    TSF_CHECK_LE(workload.jobs[j - 1].spec.arrival_time,
                 workload.jobs[j].spec.arrival_time)
        << "jobs must be sorted by arrival";

  SimResult result;
  result.policy = policy.name;
  result.jobs.resize(workload.jobs.size());
  // Tasks are written straight into their (job, index) slot as they are
  // scheduled, so the result needs no final sort to align across policies.
  std::size_t total_tasks = 0;
  std::vector<std::size_t> job_task_offset(workload.jobs.size(), 0);
  for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
    const SimJob& job = workload.jobs[j];
    TSF_CHECK_EQ(static_cast<std::size_t>(job.spec.num_tasks),
                 job.task_runtimes.size());
    job_task_offset[j] = total_tasks;
    total_tasks += job.task_runtimes.size();
  }
  result.tasks.resize(total_tasks);

  // Chaos hooks: faults merge into the batch loop as a third time-sorted
  // stream; the optional stream recorder sees every state transition.
  const std::vector<SimFault>& faults = options.faults;
  for (std::size_t f = 1; f < faults.size(); ++f)
    TSF_CHECK_LE(faults[f - 1].time, faults[f].time)
        << "faults must be sorted by time";
  const bool chaos = !faults.empty();
  // Fault bookkeeping, sized only when faults are present: which machines
  // are up, which task slots run on each machine (so a crash can kill
  // them), the per-slot attempt generation (lazy finish-event
  // cancellation), and per-job requeued slots awaiting re-placement (so a
  // retried task keeps its identity and its pre-sampled runtime).
  std::vector<bool> machine_up(cluster.num_machines(), true);
  std::vector<std::vector<std::uint32_t>> running_on(
      chaos ? cluster.num_machines() : 0);
  std::vector<std::uint32_t> attempt(chaos ? total_tasks : 0, 0);
  std::vector<std::vector<std::uint32_t>> requeued(
      chaos ? workload.jobs.size() : 0);
  auto emit = [&](SimStreamEvent::Kind kind, double time, std::size_t job,
                  std::size_t task, std::size_t machine,
                  std::uint32_t generation) {
    if (options.stream == nullptr) return;
    options.stream->push_back(
        SimStreamEvent{time, kind, static_cast<std::uint32_t>(job),
                       static_cast<std::uint32_t>(task),
                       static_cast<std::uint32_t>(machine), generation});
  };

  // Class-collapse decision: only the incremental core has a collapsed
  // engine; the reference core is the flat executable spec. kAuto counts
  // classes with the cheap hash-only pass (no member bitsets) so degenerate
  // clusters — every machine distinct — skip index construction entirely.
  bool collapsed = false;
  if constexpr (std::is_same_v<Scheduler, OnlineScheduler>) {
    switch (options.cluster_mode) {
      case ClusterMode::kFlat:
        break;
      case ClusterMode::kCollapsed:
        collapsed = true;
        break;
      case ClusterMode::kAuto:
        collapsed =
            2 * MachineClassIndex::CountClasses(cluster) <= cluster.num_machines();
        break;
    }
  }
  std::optional<MachineClassIndex> class_index;
  std::optional<EligibilityPool> elig_pool;
  // Classes of each capacity group, for the collapsed monopoly sweep.
  std::vector<std::vector<std::uint32_t>> group_classes;
  if (collapsed) {
    class_index.emplace(cluster);
    elig_pool.emplace(cluster, *class_index);
    group_classes.resize(class_index->num_capacity_groups());
    for (std::size_t c = 0; c < class_index->num_classes(); ++c)
      group_classes[class_index->group_of_class(c)].push_back(
          static_cast<std::uint32_t>(c));
    TSF_COUNTER_ADD("des.collapsed_runs", 1);
  }

  std::vector<ResourceVector> capacity;
  capacity.reserve(cluster.num_machines());
  for (MachineId m = 0; m < cluster.num_machines(); ++m)
    capacity.push_back(cluster.NormalizedCapacity(m));
  // Flat-mode monopoly sweep inputs; the collapsed sweep reads the class
  // index's identical (order and all) capacity groups instead.
  const std::vector<CapacityGroup> config_groups =
      collapsed ? std::vector<CapacityGroup>{} : GroupByCapacity(capacity);
  Scheduler scheduler = [&] {
    if constexpr (std::is_same_v<Scheduler, OnlineScheduler>) {
      return Scheduler(std::move(capacity), policy,
                       collapsed ? &*class_index : nullptr);
    } else {
      return Scheduler(std::move(capacity), policy);
    }
  }();

  // Workloads draw constraints from a small pool (a handful of attribute
  // combos in the Google mix), so compile each distinct constraint once and
  // reuse the bitset instead of probing every machine per arrival. The
  // collapsed path interns through the EligibilityPool instead (hash-consed
  // and shared with the scheduler's users — no per-job bitset copies).
  std::vector<std::pair<const Constraint*, DynamicBitset>> eligibility_memo;
  auto eligibility_for = [&](const Constraint& constraint) {
    for (const auto& [cached, bits] : eligibility_memo)
      if (SameConstraint(*cached, constraint)) {
        TSF_COUNTER_ADD("des.eligibility_memo.hits", 1);
        return bits;
      }
    TSF_COUNTER_ADD("des.eligibility_memo.misses", 1);
    eligibility_memo.emplace_back(&constraint,
                                  cluster.Eligibility(constraint));
    return eligibility_memo.back().second;
  };

  // Per-job simulation state.
  struct JobState {
    UserId user = 0;          // scheduler id, assigned at arrival
    long next_task = 0;       // next runtime index to schedule
    long finished = 0;
    bool arrived = false;
    // Fairness-sampler inputs, fixed at arrival.
    double dominant_demand = 0.0;  // max normalized demand component
    double inv_hw = 0.0;           // 1 / (h_i * w_i)
  };
  std::vector<JobState> state(workload.jobs.size());

  // One finish event per task is ever queued; arrivals stream from the
  // (sorted) job list instead of transiting the heap.
  TSF_CHECK_LT(workload.jobs.size() + total_tasks, std::size_t{UINT32_MAX});
  EventQueue events;
  events.Reserve(total_tasks);
  for (std::size_t j = 0; j < workload.jobs.size(); ++j) {
    result.jobs[j].arrival = workload.jobs[j].spec.arrival_time;
    result.jobs[j].num_tasks = workload.jobs[j].spec.num_tasks;
  }

  // The batch clock; declared ahead of the callbacks below so they can
  // capture it by reference and be constructed once instead of per event.
  double now = 0.0;
  std::size_t tasks_placed = 0;

#if defined(TSF_TELEMETRY)
  // Live time-to-placement instrumentation (virtual seconds between a slot
  // becoming pending and its placement, recorded in ms — the log buckets
  // start at 1, so sub-second waits need the scale-up). The offline load
  // driver (load/driver.h) derives the same quantity from the event stream;
  // this is the in-process view. The per-slot state is only materialized
  // when telemetry is enabled, so the disabled path pays one empty() check.
  std::vector<double> ttp_pending_since;
  telemetry::Histogram* ttp_policy_hist = nullptr;
  if (telemetry::Enabled()) {
    ttp_pending_since.resize(total_tasks);
    for (std::size_t j = 0; j < workload.jobs.size(); ++j)
      for (std::size_t s = 0; s < workload.jobs[j].task_runtimes.size(); ++s)
        ttp_pending_since[job_task_offset[j] + s] =
            workload.jobs[j].spec.arrival_time;
    ttp_policy_hist = &telemetry::Registry::Get().GetHistogram(
        "des.time_to_placement_ms." + policy.name);
  }
#endif

  // Places one task of job j on machine m at `now`: records metrics and
  // enqueues its completion. The scheduler has already debited resources.
  auto record_placement = [&](std::size_t j, MachineId m) {
    JobState& js = state[j];
    const SimJob& job = workload.jobs[j];
    // Requeued slots (crash/failure retries) are re-placed before fresh
    // ones so a retried task keeps its identity and pre-sampled runtime.
    std::size_t slot;
    if (chaos && !requeued[j].empty()) {
      slot = requeued[j].back();
      requeued[j].pop_back();
    } else {
      TSF_CHECK_LT(static_cast<std::size_t>(js.next_task),
                   job.task_runtimes.size());
      slot = job_task_offset[j] + static_cast<std::size_t>(js.next_task++);
    }
    const long index = static_cast<long>(slot - job_task_offset[j]);
    TaskRecord& task = result.tasks[slot];
    task.job = j;
    task.index = index;
    task.submit = job.spec.arrival_time;
    task.schedule = now;
    task.finish = now + job.task_runtimes[static_cast<std::size_t>(index)];
    task.machine = m;
    ++task.attempts;
    ++tasks_placed;
    result.jobs[j].first_schedule = std::min(result.jobs[j].first_schedule, now);
    const std::uint32_t generation = chaos ? attempt[slot] : 0;
    if (chaos) running_on[m].push_back(static_cast<std::uint32_t>(slot));
#if defined(TSF_TELEMETRY)
    if (!ttp_pending_since.empty()) {
      const double ttp_ms = (now - ttp_pending_since[slot]) * 1000.0;
      TSF_HISTOGRAM_RECORD("des.time_to_placement_ms", ttp_ms);
      ttp_policy_hist->Record(ttp_ms);
    }
#endif
    emit(SimStreamEvent::Kind::kPlace, now, j, slot, m, generation);
    events.Push(Event{task.finish, static_cast<std::uint32_t>(j),
                      static_cast<std::uint32_t>(m),
                      static_cast<std::uint32_t>(slot), generation});
  };

  // Scheduler user id → job index (users are added in arrival order).
  std::vector<std::size_t> user_to_job;
  user_to_job.reserve(workload.jobs.size());

  // Constructed once; `now` is captured by reference (see above).
  const std::function<void(UserId, MachineId)> on_place =
      [&](UserId user, MachineId machine) {
        record_placement(user_to_job[user], machine);
      };

  // Events sharing a timestamp are applied as a batch before any
  // scheduling: otherwise jobs submitted "at the same time" would be
  // allocated one after another and the first would monopolize the idle
  // cluster for a whole (non-preemptible) task wave. Arrivals merge in
  // from the sorted job list; batch-mates register (in arrival order)
  // before any finish is applied, matching the former single-queue order.
  // Fairness timeline sampler (see SimOptions): walks every sample instant
  // in (previous now, now] before the batch at `now` applies, so each sample
  // reflects the cluster state that held over that interval.
  const double sample_interval = options.fairness_sample_interval;
  double next_sample = 0.0;
  auto take_sample = [&](double t) {
    for (const std::size_t j : user_to_job) {
      const JobState& js = state[j];
      const long running = js.next_task - js.finished;
      const long queued =
          workload.jobs[j].spec.num_tasks - js.next_task;
      if (running <= 0 && queued <= 0) continue;  // job already done
      telemetry::FairnessSample sample;
      sample.time = t;
      sample.user = static_cast<std::uint32_t>(js.user);
      sample.running = static_cast<std::uint32_t>(running);
      sample.pending = static_cast<std::uint32_t>(queued);
      sample.dominant_share = static_cast<double>(running) * js.dominant_demand;
      sample.task_share = static_cast<double>(running) * js.inv_hw;
      result.fairness_timeline.push_back(sample);
    }
  };

  std::vector<MachineId> freed_machines;
  std::vector<UserId> arrived_users;
  std::size_t next_arrival = 0;
  std::size_t next_fault = 0;
  while (next_arrival < workload.jobs.size() || !events.Empty() ||
         next_fault < faults.size()) {
    now = std::numeric_limits<double>::infinity();
    if (next_arrival < workload.jobs.size())
      now = workload.jobs[next_arrival].spec.arrival_time;
    if (!events.Empty()) now = std::min(now, events.Top().time);
    if (next_fault < faults.size())
      now = std::min(now, faults[next_fault].time);
    if (sample_interval > 0.0)
      while (next_sample <= now) {
        take_sample(next_sample);
        next_sample += sample_interval;
      }
    TSF_COUNTER_ADD("des.batches", 1);
    TSF_HISTOGRAM_RECORD("des.event_heap_depth", events.Size());
    TSF_TRACE_COUNTER("des", "event_heap_depth", events.Size());
    freed_machines.clear();
    arrived_users.clear();

    while (next_arrival < workload.jobs.size() &&
           workload.jobs[next_arrival].spec.arrival_time == now) {
      const std::size_t j = next_arrival++;
      const SimJob& job = workload.jobs[j];
      OnlineUserSpec spec;
      spec.demand = cluster.NormalizedDemand(job.spec.demand);
      spec.weight = job.spec.weight;
      spec.h = 0.0;
      spec.g = 0.0;
      if (collapsed) {
        spec.eligible_set = elig_pool->Intern(job.spec.constraint);
        const EligibilitySet& elig = *spec.eligible_set;
        TSF_CHECK(elig.machines.Any())
            << "job " << job.spec.name << " has no eligible machine";
        // Capacity is class-uniform: probing one representative per eligible
        // class decides the same predicate as the flat per-machine scan.
        const bool fits_somewhere =
            elig.classes.ForEachSetUntil([&](std::size_t c) {
              return cluster.machine(class_index->representative(c))
                  .capacity.Fits(job.spec.demand);
            });
        TSF_CHECK(fits_somewhere)
            << "job " << job.spec.name
            << ": no eligible machine can hold one task — it would never finish";
        // Identical group partition, order, and arithmetic as the flat
        // sweep below: per-group eligible counts are exact integer sums of
        // the per-class counts, so h and g come out bitwise equal.
        for (std::size_t g = 0; g < group_classes.size(); ++g) {
          const double tasks =
              class_index->group_capacity(g).DivisibleTaskCount(spec.demand);
          spec.h += class_index->group_machine_count(g) * tasks;
          std::uint64_t eligible_members = 0;
          for (const std::uint32_t c : group_classes[g])
            eligible_members += elig.class_count[c];
          if (eligible_members > 0)
            spec.g += static_cast<double>(eligible_members) * tasks;
        }
      } else {
        spec.eligible = eligibility_for(job.spec.constraint);
        TSF_CHECK(spec.eligible.Any())
            << "job " << job.spec.name << " has no eligible machine";
        const bool fits_somewhere =
            spec.eligible.ForEachSetUntil([&](std::size_t m) {
              return cluster.machine(m).capacity.Fits(job.spec.demand);
            });
        TSF_CHECK(fits_somewhere)
            << "job " << job.spec.name
            << ": no eligible machine can hold one task — it would never finish";
        for (const CapacityGroup& group : config_groups) {
          const double tasks = group.capacity.DivisibleTaskCount(spec.demand);
          spec.h += group.count * tasks;
          const auto eligible_members =
              static_cast<double>(spec.eligible.CountAnd(group.members));
          if (eligible_members > 0.0) spec.g += eligible_members * tasks;
        }
      }
      spec.pending = job.spec.num_tasks;
      JobState& js = state[j];
      js.dominant_demand = spec.demand.MaxComponent();
      js.inv_hw = 1.0 / (spec.h * job.spec.weight);
      js.user = scheduler.AddUser(std::move(spec));
      js.arrived = true;
      user_to_job.push_back(j);
      TSF_CHECK_EQ(user_to_job.size(), js.user + 1);
      arrived_users.push_back(js.user);
      emit(SimStreamEvent::Kind::kArrive, now, j, 0, 0, 0);
      TSF_COUNTER_ADD("des.arrivals", 1);
    }

    while (!events.Empty() && events.Top().time == now) {
      // Task completion: free resources now, schedule after the batch.
      const Event event = events.Top();
      events.Pop();
      // Lazy cancellation: a crash or failure bumped the slot's generation,
      // so this finish belongs to a placement that no longer exists.
      if (chaos && event.attempt != attempt[event.task_slot]) {
        TSF_COUNTER_ADD("chaos.des.stale_finish_events", 1);
        continue;
      }
      const std::size_t j = event.job;
      JobState& js = state[j];
      scheduler.OnTaskFinish(js.user, event.machine);
      ++js.finished;
      result.makespan = std::max(result.makespan, now);
      if (chaos) {
        std::vector<std::uint32_t>& on = running_on[event.machine];
        const auto it = std::find(on.begin(), on.end(), event.task_slot);
        TSF_CHECK(it != on.end());
        *it = on.back();
        on.pop_back();
      }
      emit(SimStreamEvent::Kind::kFinish, now, j, event.task_slot,
           event.machine, event.attempt);
      if (js.finished == workload.jobs[j].spec.num_tasks) {
        result.jobs[j].completion = now;
        scheduler.Retire(js.user);
      }
      freed_machines.push_back(event.machine);
      TSF_COUNTER_ADD("des.task_finishes", 1);
    }

    // Fault batch: applied after finishes (a task completing at the crash
    // instant counts as finished, matching "crash strikes the open
    // interval") and before any scheduling at this instant.
    bool requeued_any = false;
    while (next_fault < faults.size() && faults[next_fault].time == now) {
      const SimFault& fault = faults[next_fault++];
      const MachineId m = fault.machine;
      TSF_CHECK_LT(m, cluster.num_machines());
      // Kills the slot's current placement and returns it to the pending
      // pool; the finish event already queued for it dies by generation.
      auto requeue_task = [&](std::uint32_t slot) {
        ++attempt[slot];
#if defined(TSF_TELEMETRY)
        if (!ttp_pending_since.empty()) ttp_pending_since[slot] = now;
#endif
        const std::size_t j = result.tasks[slot].job;
        scheduler.OnTaskFinish(state[j].user, m);
        scheduler.AddPending(state[j].user, 1);
        requeued[j].push_back(slot);
        requeued_any = true;
      };
      switch (fault.kind) {
        case SimFault::Kind::kMachineCrash: {
          TSF_CHECK(machine_up[m]) << "crash of already-down machine " << m;
          // Kill order is immaterial for state (frees commute) but the
          // stream records most-recent-first for determinism.
          std::vector<std::uint32_t>& on = running_on[m];
          for (std::size_t r = on.size(); r-- > 0;) {
            emit(SimStreamEvent::Kind::kKill, now, result.tasks[on[r]].job,
                 on[r], m, attempt[on[r]]);
            requeue_task(on[r]);
          }
          on.clear();
          scheduler.CrashMachine(m);
          machine_up[m] = false;
          emit(SimStreamEvent::Kind::kCrash, now, 0, 0, m, 0);
          TSF_COUNTER_ADD("chaos.des.machine_crashes", 1);
          break;
        }
        case SimFault::Kind::kMachineRestart: {
          TSF_CHECK(!machine_up[m]) << "restart of up machine " << m;
          scheduler.RestoreMachine(m);
          machine_up[m] = true;
          emit(SimStreamEvent::Kind::kRestart, now, 0, 0, m, 0);
          freed_machines.push_back(m);
          TSF_COUNTER_ADD("chaos.des.machine_restarts", 1);
          break;
        }
        case SimFault::Kind::kTaskFailure: {
          // Fails the most recently placed task on the machine; a no-op on
          // a down or idle machine (the plan generator does not coordinate
          // failure targets with the schedule).
          if (!machine_up[m] || running_on[m].empty()) {
            TSF_COUNTER_ADD("chaos.des.task_failures_skipped", 1);
            break;
          }
          const std::uint32_t slot = running_on[m].back();
          running_on[m].pop_back();
          emit(SimStreamEvent::Kind::kFail, now, result.tasks[slot].job, slot,
               m, attempt[slot]);
          requeue_task(slot);
          freed_machines.push_back(m);
          TSF_COUNTER_ADD("chaos.des.task_failures", 1);
          break;
        }
      }
    }

    // Scheduling phase. Freed machines are re-offered to everyone eligible
    // (arrivals included — they are registered by now); remaining idle
    // capacity is then handed to the arrival batch in key order. Other
    // pending users need no consideration: they could not place before
    // this instant and no other machine gained capacity — unless a fault
    // requeued tasks, which breaks that work-conservation argument (the
    // requeued user may fit on machines that were idle all along), so a
    // requeue re-offers every up machine in index order.
#if defined(TSF_TELEMETRY)
    // Per-round serve latency (host wall time of one scheduling phase).
    // Informational only — wall time is machine-dependent, so nothing
    // deterministic is derived from it. The clock reads are skipped
    // entirely unless telemetry is enabled.
    const bool tm_round =
        telemetry::Enabled() &&
        (scheduler.HasPendingUsers() || !arrived_users.empty());
    const auto tm_round_start = tm_round
                                    ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
#endif
    if (scheduler.HasPendingUsers()) {
      if (requeued_any) {
        for (MachineId m = 0; m < cluster.num_machines(); ++m)
          if (machine_up[m]) scheduler.ServeMachine(m, on_place);
      } else {
        std::sort(freed_machines.begin(), freed_machines.end());
        freed_machines.erase(
            std::unique(freed_machines.begin(), freed_machines.end()),
            freed_machines.end());
        for (const MachineId m : freed_machines)
          if (machine_up[m]) scheduler.ServeMachine(m, on_place);
      }
    }
    if (!arrived_users.empty())
      scheduler.PlaceUsersInterleaved(arrived_users, on_place);
#if defined(TSF_TELEMETRY)
    if (tm_round) {
      const std::chrono::duration<double, std::micro> tm_round_us =
          std::chrono::steady_clock::now() - tm_round_start;
      TSF_HISTOGRAM_RECORD("des.serve_round_us", tm_round_us.count());
    }
#endif
  }

  // Retries make placements exceed the task count; the per-job finished
  // check below still guarantees completion either way.
  if (!chaos) TSF_CHECK_EQ(tasks_placed, total_tasks);
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    TSF_CHECK_EQ(state[j].finished, workload.jobs[j].spec.num_tasks)
        << "job " << j << " did not finish";
  return result;
}

}  // namespace

SimResult Simulate(const Workload& workload, const OnlinePolicy& policy,
                   SimCore core, const SimOptions& options) {
  return core == SimCore::kReference
             ? SimulateWith<ReferenceScheduler>(workload, policy, options)
             : SimulateWith<OnlineScheduler>(workload, policy, options);
}

}  // namespace tsf
