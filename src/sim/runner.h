// Multi-seed experiment runner.
//
// The paper averages every macro-benchmark over 50 simulations; this runner
// fans the full seed × policy grid out over a thread pool — each cell is an
// independent task, so one slow policy does not serialize a seed's batch —
// runs every policy on the *same* workload instance per seed (required for
// per-task/per-job speedup comparisons), and hands each seed's batch of
// results to a reducer once its last cell completes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/des.h"
#include "util/thread_pool.h"

namespace tsf {

using WorkloadFactory = std::function<Workload(std::uint64_t seed)>;

// Reducer invoked once per seed with the results of every policy, in the
// order of `policies`. Invocations are serialized (no locking needed inside)
// but may arrive in any seed order.
using SeedReducer =
    std::function<void(std::uint64_t seed, const std::vector<SimResult>&)>;

// Runs `factory(seed)` for seed in [first_seed, first_seed + num_seeds),
// simulates every policy on it, and reduces. Workloads and results are
// discarded after reduction to bound memory. `sim_options` applies to every
// cell (e.g. fairness timeline sampling; the samples ride home inside each
// SimResult).
void RunSeeds(const WorkloadFactory& factory,
              const std::vector<OnlinePolicy>& policies,
              std::uint64_t first_seed, std::size_t num_seeds,
              ThreadPool& pool, const SeedReducer& reduce,
              const SimOptions& sim_options = {});

}  // namespace tsf
