#include "sim/runner.h"

#include <mutex>

#include "util/check.h"

namespace tsf {

void RunSeeds(const WorkloadFactory& factory,
              const std::vector<OnlinePolicy>& policies,
              std::uint64_t first_seed, std::size_t num_seeds,
              ThreadPool& pool, const SeedReducer& reduce) {
  TSF_CHECK(!policies.empty());
  TSF_CHECK_GT(num_seeds, 0u);
  std::mutex reduce_mutex;

  pool.ParallelFor(num_seeds, [&](std::size_t k) {
    const std::uint64_t seed = first_seed + k;
    const Workload workload = factory(seed);
    std::vector<SimResult> results;
    results.reserve(policies.size());
    for (const OnlinePolicy& policy : policies)
      results.push_back(Simulate(workload, policy));
    const std::lock_guard lock(reduce_mutex);
    reduce(seed, results);
  });
}

}  // namespace tsf
