#include "sim/runner.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>  // std::call_once
#include <optional>

#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/mutex.h"

namespace tsf {

void RunSeeds(const WorkloadFactory& factory,
              const std::vector<OnlinePolicy>& policies,
              std::uint64_t first_seed, std::size_t num_seeds,
              ThreadPool& pool, const SeedReducer& reduce,
              const SimOptions& sim_options) {
  TSF_CHECK(!policies.empty());
  TSF_CHECK_GT(num_seeds, 0u);
  const std::size_t num_policies = policies.size();
  Mutex reduce_mutex;

  // One slot per seed; every (seed, policy) cell is an independent pool
  // task, so a slow policy on one seed no longer serializes the others.
  // The first cell to touch a seed synthesizes its workload (call_once);
  // the last cell to finish reduces and frees the slot.
  struct SeedSlot {
    std::once_flag once;
    std::optional<Workload> workload;
    std::vector<SimResult> results;
    std::atomic<std::size_t> remaining{0};
  };
  std::vector<SeedSlot> slots(num_seeds);
  for (SeedSlot& slot : slots)
    slot.remaining.store(num_policies, std::memory_order_relaxed);

#if defined(TSF_TELEMETRY)
  // One interned span name and one duration histogram per policy; the cell
  // loop below reuses them so per-cell cost stays a clock read.
  std::vector<const char*> span_names(num_policies, nullptr);
  std::vector<telemetry::Histogram*> cell_ms(num_policies, nullptr);
  if (telemetry::Enabled() || telemetry::TraceActive()) {
    for (std::size_t p = 0; p < num_policies; ++p) {
      span_names[p] =
          telemetry::Tracer::Get().Intern("cell/" + policies[p].name);
      cell_ms[p] = &telemetry::Registry::Get().GetHistogram(
          "runner.cell_ms." + policies[p].name);
    }
  }
#endif

  pool.ParallelFor(num_seeds * num_policies, [&](std::size_t cell) {
    const std::size_t k = cell / num_policies;
    const std::size_t p = cell % num_policies;
    SeedSlot& slot = slots[k];
    const std::uint64_t seed = first_seed + k;
    std::call_once(slot.once, [&] {
      TSF_TRACE_SCOPE("runner", "synthesize_workload");
      slot.workload.emplace(factory(seed));
      slot.results.resize(num_policies);
    });
#if defined(TSF_TELEMETRY)
    if (span_names[p] != nullptr) {
      const auto start = std::chrono::steady_clock::now();
      const std::uint64_t span_start = telemetry::Tracer::Get().NowNs();
      slot.results[p] = Simulate(*slot.workload, policies[p],
                                 SimCore::kIncremental, sim_options);
      if (telemetry::TraceActive())
        telemetry::Tracer::Get().RecordComplete("runner", span_names[p],
                                                span_start);
      if (telemetry::Enabled())
        cell_ms[p]->Record(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count());
    } else {
      slot.results[p] = Simulate(*slot.workload, policies[p],
                                 SimCore::kIncremental, sim_options);
    }
#else
    slot.results[p] = Simulate(*slot.workload, policies[p],
                               SimCore::kIncremental, sim_options);
#endif
    if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        const MutexLock lock(reduce_mutex);
        reduce(seed, slot.results);
      }
      // Discard the seed's workload and results to bound memory.
      slot.workload.reset();
      slot.results.clear();
      slot.results.shrink_to_fit();
    }
  });
}

}  // namespace tsf
