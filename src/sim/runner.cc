#include "sim/runner.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>

#include "util/check.h"

namespace tsf {

void RunSeeds(const WorkloadFactory& factory,
              const std::vector<OnlinePolicy>& policies,
              std::uint64_t first_seed, std::size_t num_seeds,
              ThreadPool& pool, const SeedReducer& reduce) {
  TSF_CHECK(!policies.empty());
  TSF_CHECK_GT(num_seeds, 0u);
  const std::size_t num_policies = policies.size();
  std::mutex reduce_mutex;

  // One slot per seed; every (seed, policy) cell is an independent pool
  // task, so a slow policy on one seed no longer serializes the others.
  // The first cell to touch a seed synthesizes its workload (call_once);
  // the last cell to finish reduces and frees the slot.
  struct SeedSlot {
    std::once_flag once;
    std::optional<Workload> workload;
    std::vector<SimResult> results;
    std::atomic<std::size_t> remaining{0};
  };
  std::vector<SeedSlot> slots(num_seeds);
  for (SeedSlot& slot : slots)
    slot.remaining.store(num_policies, std::memory_order_relaxed);

  pool.ParallelFor(num_seeds * num_policies, [&](std::size_t cell) {
    const std::size_t k = cell / num_policies;
    const std::size_t p = cell % num_policies;
    SeedSlot& slot = slots[k];
    const std::uint64_t seed = first_seed + k;
    std::call_once(slot.once, [&] {
      slot.workload.emplace(factory(seed));
      slot.results.resize(num_policies);
    });
    slot.results[p] = Simulate(*slot.workload, policies[p]);
    if (slot.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      {
        const std::lock_guard lock(reduce_mutex);
        reduce(seed, slot.results);
      }
      // Discard the seed's workload and results to bound memory.
      slot.workload.reset();
      slot.results.clear();
      slot.results.shrink_to_fit();
    }
  });
}

}  // namespace tsf
