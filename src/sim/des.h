// Trace-driven discrete-event cluster simulator (the macro-benchmark
// substrate of Sec. VI-B).
//
// Two event kinds drive the run — job arrival and task completion — with the
// online scheduler invoked after each, exactly as Sec. V-D prescribes:
// arrivals greedily take whatever idle resources fit; every completion
// re-offers the freed machine to eligible users in ascending share order.
// Tasks are never preempted.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "sim/workload.h"
#include "telemetry/timeline.h"

namespace tsf {

struct JobRecord {
  double arrival = 0.0;
  double first_schedule = std::numeric_limits<double>::infinity();
  double completion = 0.0;
  long num_tasks = 0;

  // Job queueing delay: arrival to first task scheduled (Fig. 9a).
  double QueueingDelay() const { return first_schedule - arrival; }
  // Job completion time: arrival to last task finished (Fig. 9b).
  double CompletionTime() const { return completion - arrival; }
};

struct TaskRecord {
  std::size_t job = 0;
  long index = 0;        // task index within the job
  double submit = 0.0;   // == job arrival (all tasks submitted with the job)
  double schedule = 0.0;
  double finish = 0.0;
  std::size_t machine = 0;  // machine of the (last) placement
  long attempts = 0;        // placements incl. fault-driven retries (>=1)

  // Task queueing delay: submission to scheduling (Fig. 11a).
  double QueueingDelay() const { return schedule - submit; }
};

struct SimResult {
  std::string policy;
  std::vector<JobRecord> jobs;
  std::vector<TaskRecord> tasks;  // ordered by (job, task index)
  double makespan = 0.0;
  // Filled when SimOptions::fairness_sample_interval > 0: every live user's
  // shares at each sample instant, ordered by (time, user).
  std::vector<telemetry::FairnessSample> fairness_timeline;

  std::vector<double> JobQueueingDelays() const;
  std::vector<double> JobCompletionTimes() const;
  std::vector<double> TaskQueueingDelays() const;
};

// --- chaos hooks (src/chaos fault injection) --------------------------------

// One fault, applied at a virtual-clock instant. Faults are the DES subset of
// the chaos subsystem's FaultPlan (src/chaos/fault_plan.h compiles plans down
// to this form); offer- and framework-level faults exist only in the Mesos
// substrate (mesos/mesos.h).
struct SimFault {
  enum class Kind {
    kMachineCrash,    // machine goes down; its running tasks are killed and
                      // re-enter the pending pool (same task identity/runtime)
    kMachineRestart,  // machine comes back, empty
    kTaskFailure,     // most recently placed task on the machine fails and
                      // re-enters the pending pool (no-op if none running)
  };
  double time = 0.0;
  Kind kind = Kind::kMachineCrash;
  MachineId machine = 0;
};

// One record per simulator state transition, emitted in order when
// SimOptions::stream is set. `task` is the global task slot (dense over
// (job, index)); `attempt` counts placements of that slot (0-based).
struct SimStreamEvent {
  enum class Kind {
    kArrive,   // job registered (task/machine/attempt zero)
    kPlace,    // task placed on machine
    kFinish,   // task completed on machine
    kKill,     // task killed by a machine crash, requeued
    kFail,     // task failed (machine stays up), requeued
    kCrash,    // machine went down
    kRestart,  // machine came back
  };
  double time = 0.0;
  Kind kind = Kind::kArrive;
  std::uint32_t job = 0;
  std::uint32_t task = 0;  // global task slot
  std::uint32_t machine = 0;
  std::uint32_t attempt = 0;
};

// How the simulator models the machine set. kAuto collapses identical
// machines into equivalence classes (core/cluster.h MachineClassIndex) when
// that pays off — 2 * classes <= machines — and stays flat otherwise;
// kFlat forces the legacy per-machine structures (the A/B baseline behind
// bench_scale's --flat_cluster); kCollapsed forces the class-level engine.
// The emitted placement stream is bit-identical across all three — only
// the work spent per scheduling decision changes. The reference core
// (SimCore::kReference) is always flat: it is the executable spec.
enum class ClusterMode { kAuto, kFlat, kCollapsed };

// Optional observability knobs; the default runs exactly as before.
struct SimOptions {
  // Virtual-time period of the fairness timeline sampler (seconds); 0
  // disables sampling. Samples are taken at t = 0, interval, 2*interval, ...
  // up to the makespan, each reflecting the state just before the events at
  // that instant apply.
  double fairness_sample_interval = 0.0;

  // Fault events to inject, sorted by time (checked). Plans must be
  // well-formed — crash/restart strictly alternating per machine with every
  // crash eventually restarted (chaos::ValidateFaultPlan enforces this) —
  // otherwise the run can end with unfinished jobs, which is fatal.
  std::vector<SimFault> faults;

  // When set, every state transition is appended here (the placement stream
  // of the golden-determinism tests and the chaos invariant checkers).
  std::vector<SimStreamEvent>* stream = nullptr;

  // Machine-set representation (see ClusterMode above).
  ClusterMode cluster_mode = ClusterMode::kAuto;
};

// Which scheduling core drives the simulation. kIncremental is the
// heap-based production core; kReference is the retained linear-scan
// implementation (core/online/reference_scheduler.h) used by the
// differential tests — both must emit identical placement streams.
enum class SimCore { kIncremental, kReference };

// Runs `workload` to completion under `policy`. Jobs must be sorted by
// arrival time. The result's tasks vector is indexed consistently across
// policies (same workload → same task identity), enabling per-task speedup
// comparisons.
SimResult Simulate(const Workload& workload, const OnlinePolicy& policy,
                   SimCore core = SimCore::kIncremental,
                   const SimOptions& options = {});

}  // namespace tsf
