// Trace-driven discrete-event cluster simulator (the macro-benchmark
// substrate of Sec. VI-B).
//
// Two event kinds drive the run — job arrival and task completion — with the
// online scheduler invoked after each, exactly as Sec. V-D prescribes:
// arrivals greedily take whatever idle resources fit; every completion
// re-offers the freed machine to eligible users in ascending share order.
// Tasks are never preempted.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "sim/workload.h"
#include "telemetry/timeline.h"

namespace tsf {

struct JobRecord {
  double arrival = 0.0;
  double first_schedule = std::numeric_limits<double>::infinity();
  double completion = 0.0;
  long num_tasks = 0;

  // Job queueing delay: arrival to first task scheduled (Fig. 9a).
  double QueueingDelay() const { return first_schedule - arrival; }
  // Job completion time: arrival to last task finished (Fig. 9b).
  double CompletionTime() const { return completion - arrival; }
};

struct TaskRecord {
  std::size_t job = 0;
  long index = 0;        // task index within the job
  double submit = 0.0;   // == job arrival (all tasks submitted with the job)
  double schedule = 0.0;
  double finish = 0.0;

  // Task queueing delay: submission to scheduling (Fig. 11a).
  double QueueingDelay() const { return schedule - submit; }
};

struct SimResult {
  std::string policy;
  std::vector<JobRecord> jobs;
  std::vector<TaskRecord> tasks;  // ordered by (job, task index)
  double makespan = 0.0;
  // Filled when SimOptions::fairness_sample_interval > 0: every live user's
  // shares at each sample instant, ordered by (time, user).
  std::vector<telemetry::FairnessSample> fairness_timeline;

  std::vector<double> JobQueueingDelays() const;
  std::vector<double> JobCompletionTimes() const;
  std::vector<double> TaskQueueingDelays() const;
};

// Optional observability knobs; the default runs exactly as before.
struct SimOptions {
  // Virtual-time period of the fairness timeline sampler (seconds); 0
  // disables sampling. Samples are taken at t = 0, interval, 2*interval, ...
  // up to the makespan, each reflecting the state just before the events at
  // that instant apply.
  double fairness_sample_interval = 0.0;
};

// Which scheduling core drives the simulation. kIncremental is the
// heap-based production core; kReference is the retained linear-scan
// implementation (core/online/reference_scheduler.h) used by the
// differential tests — both must emit identical placement streams.
enum class SimCore { kIncremental, kReference };

// Runs `workload` to completion under `policy`. Jobs must be sorted by
// arrival time. The result's tasks vector is indexed consistently across
// policies (same workload → same task identity), enabling per-task speedup
// comparisons.
SimResult Simulate(const Workload& workload, const OnlinePolicy& policy,
                   SimCore core = SimCore::kIncremental,
                   const SimOptions& options = {});

}  // namespace tsf
