#include "sim/workload.h"

#include "util/check.h"
#include "util/rng.h"

namespace tsf {

SimJob MakeUniformJob(JobSpec spec, double task_runtime) {
  TSF_CHECK_GT(spec.num_tasks, 0);
  TSF_CHECK_GT(task_runtime, 0.0);
  SimJob job;
  job.task_runtimes.assign(static_cast<std::size_t>(spec.num_tasks),
                           task_runtime);
  spec.mean_task_runtime = task_runtime;
  job.spec = std::move(spec);
  return job;
}

SimJob MakeJitteredJob(JobSpec spec, double mean_runtime, double jitter,
                       std::uint64_t seed) {
  TSF_CHECK_GT(spec.num_tasks, 0);
  TSF_CHECK_GT(mean_runtime, 0.0);
  TSF_CHECK(jitter >= 0.0 && jitter < 1.0);
  Rng rng(seed);
  SimJob job;
  job.task_runtimes.reserve(static_cast<std::size_t>(spec.num_tasks));
  for (long t = 0; t < spec.num_tasks; ++t)
    job.task_runtimes.push_back(mean_runtime *
                                rng.Uniform(1.0 - jitter, 1.0 + jitter));
  spec.mean_task_runtime = mean_runtime;
  job.spec = std::move(spec);
  return job;
}

}  // namespace tsf
