// Slot-based scheduling (the paper's motivating contrast, Sec. I / VII).
//
// Pre-DRF cluster schedulers — the Hadoop Fair Scheduler, the Capacity
// Scheduler, and Choosy on top of them — allocate *slots*: fixed resource
// bundles carved out of each machine. A task occupies whole slots, so
//
//   * fragmentation: a task smaller than its slots strands the difference
//     ("resources in these allocated slots, even when idle, are not
//     available to the other tasks");
//   * coarse counting: a task bigger than one slot must hold several.
//
// SimulateSlotScheduler runs the same trace-driven workload as Simulate()
// under such a scheduler: machine m holds floor(min_r C_mr / slot_r) slots,
// a task of job i needs max_r ceil(d_ir / slot_r) of them, and fairness is
// constrained max-min over slot counts (Choosy's CMMF). Comparing its
// utilization and delays against the multi-resource policies regenerates
// the fragmentation argument that motivates DRF-family scheduling.
#pragma once

#include "sim/des.h"

namespace tsf {

struct SlotSchedulerConfig {
  // Resource bundle that defines one slot (raw units, e.g. <1 core, 2 GB>).
  ResourceVector slot_size;
};

struct SlotSimResult {
  SimResult sim;

  // Accounting of the fragmentation the slot abstraction causes.
  double total_slots = 0;           // cluster-wide slot count
  double mean_busy_slots = 0;       // time-averaged slots held
  double mean_used_fraction = 0;    // time-averaged genuinely-used share of
                                    // held slot resources (1 = no waste)

  // Jobs that could not run at all: no eligible machine holds enough whole
  // slots for one task (a further failure mode of coarse slotting — such
  // jobs ran fine under the multi-resource scheduler). Their JobRecords are
  // left at zero duration and they contribute no tasks.
  std::vector<std::size_t> dropped_jobs;
};

SlotSimResult SimulateSlotScheduler(const Workload& workload,
                                    const SlotSchedulerConfig& config);

}  // namespace tsf
