// Simulation workloads: a cluster plus a stream of jobs with per-task
// runtimes.
//
// Runtimes are pre-sampled per task (not drawn at schedule time) so that the
// *same* task has the same duration under every policy — the paper's
// per-task and per-job speedup metrics (Figs. 10, 11) compare one workload
// across schedulers and are meaningless otherwise.
#pragma once

#include <vector>

#include "core/cluster.h"

namespace tsf {

struct SimJob {
  JobSpec spec;                       // demand, weight, constraint, arrival
  std::vector<double> task_runtimes;  // spec.num_tasks entries, seconds
};

struct Workload {
  Cluster cluster;
  std::vector<SimJob> jobs;  // sorted by spec.arrival_time

  std::size_t TotalTasks() const {
    std::size_t total = 0;
    for (const SimJob& job : jobs) total += job.task_runtimes.size();
    return total;
  }
};

// Convenience for tests and micro-benchmarks: constant runtime per task.
SimJob MakeUniformJob(JobSpec spec, double task_runtime);

// Jittered runtimes: mean * Uniform(1 - jitter, 1 + jitter), the paper's
// "+/- 20% around the mean" model (Sec. VI-A1). Deterministic in `seed`.
SimJob MakeJitteredJob(JobSpec spec, double mean_runtime, double jitter,
                       std::uint64_t seed);

}  // namespace tsf
