// Standard-form program with immutable shape and sparse column storage.
//
// The dense solver in simplex.h rebuilds its tableau from scratch on every
// call, which is wasteful for progressive filling: within a round, the round
// LP and every per-user FREEZE probe share one constraint matrix and differ
// only in a handful of right-hand sides, one relation flip per frozen user,
// and the share column's coefficients. StandardForm captures exactly that
// structure:
//
//   * the *shape* — which rows exist and which (row, variable) slots are
//     nonzero — is fixed at Finalize() time and never changes;
//   * the *values* — rhs, an equality row's relation (one-way relaxation to
//     >=), and the coefficient stored in an existing slot — may be mutated
//     afterwards in O(changed slots).
//
// Shape immutability is what makes warm re-solving sound: a basis of the old
// program names columns that still exist, with the same sparsity, in the new
// one (see revised.h). Columns are stored sparse (one entry list per
// structural variable) because progressive-filling matrices have ~3 nonzeros
// per column regardless of instance size.
//
// Row i's dedicated logical slack column (index num_variables() + i) is
// implied, not stored: +1 for kLessEqual rows, -1 (surplus) for
// kGreaterEqual rows, and -1-but-banned for kEqual rows, so relaxing an
// equality to >= only lifts a ban and never alters the matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "lp/simplex.h"

namespace tsf::lp {

class StandardForm {
 public:
  struct Entry {
    std::uint32_t row;
    double value;
  };

  explicit StandardForm(std::size_t num_variables);

  // --- Shape construction (before Finalize) ---

  // Adds `terms · x  relation  rhs` and returns the row index. Duplicate
  // variables within `terms` accumulate.
  std::size_t AddRow(const std::vector<std::pair<std::size_t, double>>& terms,
                     Relation relation, double rhs);

  void SetObjectiveCoefficient(std::size_t variable, double coefficient);

  // Freezes the shape and compiles column-major storage. Must be called
  // exactly once, before any solve or value mutation.
  void Finalize();

  // --- Shape-preserving value mutations (after Finalize) ---

  void SetRhs(std::size_t row, double rhs);

  // kEqual -> kGreaterEqual with a new rhs (unbans the row's surplus). The
  // reverse direction would require driving a basic surplus out of every
  // dependent basis and is deliberately unsupported.
  void RelaxEquality(std::size_t row, double rhs);

  // Overwrites the coefficient held in an existing (row, variable) slot and
  // returns the previous value. The slot must have been created by AddRow —
  // writing a brand-new nonzero would change the shape.
  double SetCoefficient(std::size_t row, std::size_t variable, double value);

  // --- Accessors ---

  bool finalized() const { return finalized_; }
  std::size_t num_variables() const { return num_variables_; }
  std::size_t num_rows() const { return relation_.size(); }
  Relation relation(std::size_t row) const { return relation_[row]; }
  double rhs(std::size_t row) const { return rhs_[row]; }
  const std::vector<double>& rhs() const { return rhs_; }
  const std::vector<double>& objective() const { return objective_; }
  const std::vector<Entry>& column(std::size_t variable) const {
    return columns_[variable];
  }

  // Rebuilds an equivalent dense Problem — the executable-spec solver used
  // for differential testing and as the warm path's last-resort fallback.
  Problem ToDenseProblem() const;

 private:
  std::size_t num_variables_;
  bool finalized_ = false;
  std::vector<double> objective_;
  std::vector<double> rhs_;
  std::vector<Relation> relation_;

  // Build-time row-major staging; cleared by Finalize.
  std::vector<std::vector<std::pair<std::size_t, double>>> build_rows_;

  // Compiled column-major storage, one entry list per structural variable,
  // row-sorted within each column.
  std::vector<std::vector<Entry>> columns_;
};

}  // namespace tsf::lp
