// Revised simplex with explicit basis state and warm-start re-solve.
//
// SimplexState pairs a StandardForm with the factorized state of its last
// solve: the basis (which column is basic in each row), a dense inverse of
// the basis matrix, and the basic variable values. Re-solving after a
// shape-preserving mutation is then incremental:
//
//   * rhs change / equality relaxation — the basis matrix is untouched; the
//     basic values are refreshed with one B^-1 b product (O(m^2));
//   * coefficient change in a nonbasic column — free: B^-1 is unaffected;
//   * coefficient change in a basic column — a rank-one Sherman-Morrison
//     update of B^-1 (O(m^2) per changed column).
//
// If the refreshed basic values are still feasible, phase 1 is skipped
// entirely and phase 2 re-optimizes from the previous optimum — the common
// case for progressive filling, where a FREEZE probe only *relaxes* the
// round LP it is derived from. Anything the warm path cannot certify (a
// near-singular rank-one update, an infeasible warm basis, a banned column
// stuck basic at a nonzero level, iteration blowup) falls back: first to a
// from-scratch two-phase revised solve, and as a last resort to the dense
// tableau solver in simplex.h, which doubles as the executable spec in the
// differential tests.
//
// Telemetry (all macro-gated, see telemetry/telemetry.h): `lp.iterations`,
// `lp.warm_hits`, `lp.phase1_skipped`, `lp.cold_solves`,
// `lp.warm_fallbacks`, `lp.dense_fallbacks`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "lp/standard_form.h"

namespace tsf::lp {

// Counters for one SimplexState (process-wide totals go to telemetry).
struct ResolveStats {
  std::uint64_t solves = 0;
  std::uint64_t warm_solves = 0;   // phase 1 skipped, prior basis reused
  std::uint64_t cold_solves = 0;   // full two-phase revised solve
  std::uint64_t dense_fallbacks = 0;
  std::uint64_t iterations = 0;    // simplex pivots across all solves
};

class SimplexState {
 public:
  // Takes ownership of a finalized form. Copyable: cloning a solved state
  // is how FREEZE probes branch off a round LP without re-solving it.
  explicit SimplexState(StandardForm form);

  const StandardForm& form() const { return form_; }

  // Shape-preserving mutations, forwarded to the form with the bookkeeping
  // the warm path needs. Cheap; the actual re-solve happens in Solve().
  void SetRhs(std::size_t row, double rhs);
  void RelaxEquality(std::size_t row, double rhs);
  void SetCoefficient(std::size_t row, std::size_t variable, double value);

  // Solves (or incrementally re-solves) the current program. The returned
  // reference stays valid until the next mutation or Solve call.
  const Solution& Solve();

  const ResolveStats& stats() const { return stats_; }

 private:
  enum class IterateResult { kOptimal, kUnbounded, kStalled };

  // Column id space: [0, n) structural, [n, n+m) logical slack/surplus,
  // [n+m, n+2m) artificial (implicit +/- e_row columns, phase 1 only).
  std::size_t SlackCol(std::size_t row) const;
  std::size_t ArtificialCol(std::size_t row) const;
  bool IsArtificial(std::size_t col) const;
  bool ColumnAllowed(std::size_t col, bool phase1) const;
  bool IsBannedBasic(std::size_t col) const;
  double ColumnCost(std::size_t col, bool phase1) const;

  // d := B^-1 * (column `col` of the full matrix).
  void Ftran(std::size_t col, std::vector<double>& d) const;
  void Pivot(std::size_t leaving_row, std::size_t entering,
             const std::vector<double>& d);
  IterateResult Iterate(bool phase1);

  void ComputeBasicValues();        // xb_ = binv_ * rhs
  bool BasicValuesFeasible() const; // xb_ within tolerance, no banned basics up
  bool Refactor();                  // rebuild binv_ from basis_; false if singular
  bool ApplyPendingColumnUpdates(); // Sherman-Morrison; false if refactor failed
  bool WarmSolve();                 // false => caller must cold-solve
  void ColdSolve();
  void DenseFallback();
  void ExtractSolution();

  StandardForm form_;
  Solution solution_;
  bool solution_valid_ = false;
  bool dirty_ = true;       // form mutated since last Solve
  bool state_valid_ = false;

  std::vector<std::size_t> basis_;  // column id basic in each row
  std::vector<double> binv_;        // m*m, row-major
  std::vector<double> xb_;          // basic variable values, B^-1 b
  std::vector<int> art_sign_;       // artificial column signs (+/- e_row)
  std::vector<bool> is_basic_;      // by column id, structural + slack only

  // Structural columns touched since the last solve, with the value each
  // touched slot held at solve time (to form Sherman-Morrison deltas).
  struct PendingColumn {
    std::size_t variable;
    std::vector<std::pair<std::size_t, double>> old_values;  // (row, value)
  };
  std::vector<PendingColumn> pending_;

  ResolveStats stats_;
};

}  // namespace tsf::lp
