#include "lp/standard_form.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tsf::lp {

StandardForm::StandardForm(std::size_t num_variables)
    : num_variables_(num_variables), objective_(num_variables, 0.0) {
  TSF_CHECK_GT(num_variables, 0u);
}

std::size_t StandardForm::AddRow(
    const std::vector<std::pair<std::size_t, double>>& terms, Relation relation,
    double rhs) {
  TSF_CHECK(!finalized_) << "AddRow after Finalize would change the shape";
  TSF_CHECK(std::isfinite(rhs));
  for (const auto& [variable, coefficient] : terms) {
    TSF_CHECK_LT(variable, num_variables_);
    TSF_CHECK(std::isfinite(coefficient));
  }
  const std::size_t row = relation_.size();
  build_rows_.push_back(terms);
  relation_.push_back(relation);
  rhs_.push_back(rhs);
  return row;
}

void StandardForm::SetObjectiveCoefficient(std::size_t variable,
                                           double coefficient) {
  TSF_CHECK_LT(variable, num_variables_);
  objective_[variable] = coefficient;
}

void StandardForm::Finalize() {
  TSF_CHECK(!finalized_);
  TSF_CHECK_GT(num_rows(), 0u) << "a standard form needs at least one row";
  finalized_ = true;
  columns_.assign(num_variables_, {});
  for (std::size_t row = 0; row < build_rows_.size(); ++row) {
    // Accumulate duplicates within a row before scattering to columns.
    std::vector<std::pair<std::size_t, double>>& terms = build_rows_[row];
    std::sort(terms.begin(), terms.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (std::size_t k = 0; k < terms.size();) {
      double value = terms[k].second;
      std::size_t next = k + 1;
      while (next < terms.size() && terms[next].first == terms[k].first)
        value += terms[next++].second;
      columns_[terms[k].first].push_back(
          Entry{static_cast<std::uint32_t>(row), value});
      k = next;
    }
  }
  build_rows_.clear();
  build_rows_.shrink_to_fit();
}

void StandardForm::SetRhs(std::size_t row, double rhs) {
  TSF_CHECK(finalized_);
  TSF_CHECK_LT(row, num_rows());
  TSF_CHECK(std::isfinite(rhs));
  rhs_[row] = rhs;
}

void StandardForm::RelaxEquality(std::size_t row, double rhs) {
  TSF_CHECK(finalized_);
  TSF_CHECK_LT(row, num_rows());
  TSF_CHECK(relation_[row] == Relation::kEqual)
      << "RelaxEquality on a non-equality row";
  TSF_CHECK(std::isfinite(rhs));
  relation_[row] = Relation::kGreaterEqual;
  rhs_[row] = rhs;
}

double StandardForm::SetCoefficient(std::size_t row, std::size_t variable,
                                    double value) {
  TSF_CHECK(finalized_);
  TSF_CHECK_LT(row, num_rows());
  TSF_CHECK_LT(variable, num_variables_);
  TSF_CHECK(std::isfinite(value));
  for (Entry& entry : columns_[variable]) {
    if (entry.row == row) {
      const double previous = entry.value;
      entry.value = value;
      return previous;
    }
  }
  TSF_CHECK(false) << "SetCoefficient: no slot for row " << row
                   << ", variable " << variable
                   << " — creating one would change the shape";
}

Problem StandardForm::ToDenseProblem() const {
  TSF_CHECK(finalized_);
  Problem problem(num_variables_);
  std::vector<double> objective = objective_;
  problem.SetObjective(std::move(objective));
  std::vector<std::vector<double>> rows(num_rows(),
                                        std::vector<double>(num_variables_, 0.0));
  for (std::size_t variable = 0; variable < num_variables_; ++variable)
    for (const Entry& entry : columns_[variable])
      rows[entry.row][variable] = entry.value;
  for (std::size_t row = 0; row < num_rows(); ++row)
    problem.AddConstraint(std::move(rows[row]), relation_[row], rhs_[row]);
  return problem;
}

}  // namespace tsf::lp
