// Dense two-phase primal simplex.
//
// This is the substrate behind the paper's offline progressive-filling
// algorithm (Algorithm 1): every round solves a small linear program
//
//   maximize    c · x
//   subject to  A x {<=, =, >=} b,   x >= 0.
//
// The solver converts to standard form (slack / surplus / artificial
// columns), runs phase 1 to drive artificials out of the basis, then phase 2
// on the real objective. Pivoting uses Dantzig's rule with a Bland's-rule
// fallback after an iteration threshold, which guarantees termination on the
// degenerate programs progressive filling produces (many users pinned at
// identical shares).
//
// Problems in this codebase are small (tens to a few thousand variables), so
// a dense tableau is the right trade-off: no factorization machinery, exact
// and easily testable behaviour.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tsf::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded };

std::string ToString(SolveStatus status);

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;      // valid iff status == kOptimal
  std::vector<double> x;       // primal values, one per variable

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

class Problem {
 public:
  // All variables are implicitly bounded below by zero.
  explicit Problem(std::size_t num_variables);

  std::size_t num_variables() const { return num_variables_; }
  std::size_t num_constraints() const { return rows_.size(); }

  // Objective coefficients for `maximize c·x`; must match num_variables().
  void SetObjective(std::vector<double> coefficients);

  // Convenience for sparse objectives.
  void SetObjectiveCoefficient(std::size_t variable, double coefficient);

  // Adds `coeffs · x  rel  rhs`. Dense form; must match num_variables().
  void AddConstraint(std::vector<double> coefficients, Relation relation,
                     double rhs);

  // Sparse form: list of (variable, coefficient) pairs.
  void AddConstraintSparse(
      const std::vector<std::pair<std::size_t, double>>& terms,
      Relation relation, double rhs);

  Solution Solve() const;

 private:
  struct Row {
    std::vector<double> coefficients;
    Relation relation;
    double rhs;
  };

  std::size_t num_variables_;
  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace tsf::lp
