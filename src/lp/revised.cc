#include "lp/revised.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace tsf::lp {
namespace {

// Pivot / reduced-cost tolerance (matches the dense solver).
constexpr double kEps = 1e-9;

// Feasibility tolerance for warm-start certification and for the phase-1
// artificial residual (matches the dense solver's infeasibility cut-off).
constexpr double kFeasEps = 1e-7;

// A Sherman-Morrison denominator below this means the rank-one update would
// make the basis (numerically) singular; refactor instead.
constexpr double kSingularEps = 1e-9;

// Minimum pivot magnitude for the banned-basic drive-out preference. The
// drive-out pivot skips the ratio test, so the entering variable lands at
// xb/d; requiring |xb| <= kEps and |d| > kDriveOutEps bounds that step by
// kEps / kDriveOutEps — (near-)degenerate, never a feasibility jump.
constexpr double kDriveOutEps = 1e-6;

constexpr std::size_t kNoRow = std::numeric_limits<std::size_t>::max();

}  // namespace

SimplexState::SimplexState(StandardForm form) : form_(std::move(form)) {
  TSF_CHECK(form_.finalized()) << "SimplexState needs a finalized form";
}

void SimplexState::SetRhs(std::size_t row, double rhs) {
  form_.SetRhs(row, rhs);
  dirty_ = true;
  solution_valid_ = false;
}

void SimplexState::RelaxEquality(std::size_t row, double rhs) {
  form_.RelaxEquality(row, rhs);
  dirty_ = true;
  solution_valid_ = false;
}

void SimplexState::SetCoefficient(std::size_t row, std::size_t variable,
                                  double value) {
  const double previous = form_.SetCoefficient(row, variable, value);
  if (previous == value) return;
  if (state_valid_) {
    PendingColumn* pending = nullptr;
    for (PendingColumn& p : pending_)
      if (p.variable == variable) pending = &p;
    if (pending == nullptr) {
      pending_.push_back(PendingColumn{variable, {}});
      pending = &pending_.back();
    }
    bool recorded = false;
    for (const auto& [r, unused] : pending->old_values)
      if (r == row) recorded = true;
    if (!recorded) pending->old_values.emplace_back(row, previous);
  }
  dirty_ = true;
  solution_valid_ = false;
}

std::size_t SimplexState::SlackCol(std::size_t row) const {
  return form_.num_variables() + row;
}

std::size_t SimplexState::ArtificialCol(std::size_t row) const {
  return form_.num_variables() + form_.num_rows() + row;
}

bool SimplexState::IsArtificial(std::size_t col) const {
  return col >= form_.num_variables() + form_.num_rows();
}

bool SimplexState::ColumnAllowed(std::size_t col, bool /*phase1*/) const {
  const std::size_t n = form_.num_variables();
  if (col < n) return true;
  if (IsArtificial(col)) return false;  // artificials only ever leave
  return form_.relation(col - n) != Relation::kEqual;
}

bool SimplexState::IsBannedBasic(std::size_t col) const {
  const std::size_t n = form_.num_variables();
  if (col < n) return false;
  if (IsArtificial(col)) return true;
  return form_.relation(col - n) == Relation::kEqual;
}

double SimplexState::ColumnCost(std::size_t col, bool phase1) const {
  if (phase1) return IsArtificial(col) ? -1.0 : 0.0;
  return col < form_.num_variables() ? form_.objective()[col] : 0.0;
}

void SimplexState::Ftran(std::size_t col, std::vector<double>& d) const {
  const std::size_t m = form_.num_rows();
  const std::size_t n = form_.num_variables();
  d.assign(m, 0.0);
  if (col < n) {
    for (const StandardForm::Entry& entry : form_.column(col)) {
      const double v = entry.value;
      if (v == 0.0) continue;
      const std::size_t k = entry.row;
      for (std::size_t r = 0; r < m; ++r) d[r] += binv_[r * m + k] * v;
    }
  } else {
    const std::size_t row = IsArtificial(col) ? col - n - m : col - n;
    const double sign = IsArtificial(col)
                            ? static_cast<double>(art_sign_[row])
                            : (form_.relation(row) == Relation::kLessEqual ? 1.0
                                                                          : -1.0);
    for (std::size_t r = 0; r < m; ++r) d[r] = sign * binv_[r * m + row];
  }
}

void SimplexState::Pivot(std::size_t leaving_row, std::size_t entering,
                         const std::vector<double>& d) {
  const std::size_t m = form_.num_rows();
  double* rowp = &binv_[leaving_row * m];
  const double inv = 1.0 / d[leaving_row];
  for (std::size_t k = 0; k < m; ++k) rowp[k] *= inv;
  xb_[leaving_row] *= inv;
  for (std::size_t r = 0; r < m; ++r) {
    if (r == leaving_row) continue;
    const double factor = d[r];
    if (factor == 0.0) continue;
    double* row = &binv_[r * m];
    for (std::size_t k = 0; k < m; ++k) row[k] -= factor * rowp[k];
    xb_[r] -= factor * xb_[leaving_row];
  }
  const std::size_t leaving_col = basis_[leaving_row];
  if (leaving_col < is_basic_.size()) is_basic_[leaving_col] = false;
  if (entering < is_basic_.size()) is_basic_[entering] = true;
  basis_[leaving_row] = entering;
}

SimplexState::IterateResult SimplexState::Iterate(bool phase1) {
  const std::size_t m = form_.num_rows();
  const std::size_t n = form_.num_variables();
  const std::size_t width = n + m;  // structural + slack column ids
  // Same anti-cycling scheme as the dense solver: Dantzig until the
  // threshold, then Bland's rule, plus a generous hard cap that routes
  // pathological numerics to the dense fallback instead of spinning.
  const std::size_t bland_threshold = 50 * (m + width);
  const std::size_t max_iterations = 200 * (m + width) + 1000;

  std::vector<double> y(m);
  std::vector<double> d(m);
  for (std::size_t iterations = 0;; ++iterations) {
    if (iterations > max_iterations) return IterateResult::kStalled;
    const bool use_bland = iterations > bland_threshold;

    // y = c_B^T B^-1 (only rows with a costed basic column contribute).
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      const double cost = ColumnCost(basis_[r], phase1);
      if (cost == 0.0) continue;
      const double* row = &binv_[r * m];
      for (std::size_t k = 0; k < m; ++k) y[k] += cost * row[k];
    }

    // Entering column: best positive reduced cost (first eligible under
    // Bland). Basic columns price to zero; skip them outright.
    std::size_t entering = width;
    double best = kEps;
    for (std::size_t col = 0; col < width; ++col) {
      if (is_basic_[col] || !ColumnAllowed(col, phase1)) continue;
      double dot = 0.0;
      if (col < n) {
        for (const StandardForm::Entry& entry : form_.column(col))
          dot += y[entry.row] * entry.value;
      } else {
        const std::size_t row = col - n;
        dot = (form_.relation(row) == Relation::kLessEqual ? 1.0 : -1.0) *
              y[row];
      }
      const double reduced = ColumnCost(col, phase1) - dot;
      if (reduced > best) {
        entering = col;
        if (use_bland) break;
        best = reduced;
      }
    }
    if (entering == width) return IterateResult::kOptimal;

    Ftran(entering, d);

    // Leaving row. A banned basic column (artificial, or the surplus of an
    // equality row) sitting at (essentially) level zero leaves first when the
    // entering direction gives it a well-scaled pivot: the step is bounded
    // degenerate (see kDriveOutEps) and stops later pivots from drifting the
    // banned column positive. A tiny |d[r]| must not qualify — the entering
    // value xb/d could then be a real feasibility violation.
    std::size_t leaving = m;
    for (std::size_t r = 0; r < m; ++r) {
      if (IsBannedBasic(basis_[r]) && std::abs(d[r]) > kDriveOutEps &&
          std::abs(xb_[r]) <= kEps) {
        leaving = r;
        break;
      }
    }
    if (leaving == m) {
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        const double coeff = d[r];
        if (coeff <= kEps) continue;
        const double ratio = std::max(xb_[r], 0.0) / coeff;
        if (leaving == m || ratio < best_ratio - kEps) {
          best_ratio = ratio;
          leaving = r;
        } else if (ratio < best_ratio + kEps) {
          // Near-tie: best_ratio tracks the true minimum (no upward drift),
          // and under Bland the smallest basis index among tied rows leaves.
          best_ratio = std::min(best_ratio, ratio);
          if (use_bland && basis_[r] < basis_[leaving]) leaving = r;
        }
      }
    }
    if (leaving == m) return IterateResult::kUnbounded;

    Pivot(leaving, entering, d);
    ++stats_.iterations;
    TSF_COUNTER_ADD("lp.iterations", 1);
  }
}

void SimplexState::ComputeBasicValues() {
  const std::size_t m = form_.num_rows();
  const std::vector<double>& b = form_.rhs();
  xb_.assign(m, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const double* row = &binv_[r * m];
    double value = 0.0;
    for (std::size_t k = 0; k < m; ++k) value += row[k] * b[k];
    xb_[r] = value;
  }
}

bool SimplexState::Refactor() {
  const std::size_t m = form_.num_rows();
  const std::size_t n = form_.num_variables();
  // Assemble B column-by-column from the basis, then Gauss-Jordan invert
  // with partial pivoting.
  std::vector<double> work(m * m, 0.0);
  for (std::size_t c = 0; c < m; ++c) {
    const std::size_t col = basis_[c];
    if (col < n) {
      for (const StandardForm::Entry& entry : form_.column(col))
        work[entry.row * m + c] = entry.value;
    } else if (IsArtificial(col)) {
      const std::size_t row = col - n - m;
      work[row * m + c] = static_cast<double>(art_sign_[row]);
    } else {
      const std::size_t row = col - n;
      work[row * m + c] =
          form_.relation(row) == Relation::kLessEqual ? 1.0 : -1.0;
    }
  }
  binv_.assign(m * m, 0.0);
  for (std::size_t r = 0; r < m; ++r) binv_[r * m + r] = 1.0;
  for (std::size_t j = 0; j < m; ++j) {
    std::size_t pivot = j;
    for (std::size_t r = j + 1; r < m; ++r)
      if (std::abs(work[r * m + j]) > std::abs(work[pivot * m + j])) pivot = r;
    if (std::abs(work[pivot * m + j]) < 1e-11) return false;
    if (pivot != j) {
      // Only the elimination rows swap: Gauss-Jordan on [B | I] absorbs row
      // swaps into the product and yields B^-1 in the ORIGINAL basis-position
      // order, so basis_ (keyed by basis position) and art_sign_ (keyed by
      // constraint row) must not be permuted here.
      for (std::size_t k = 0; k < m; ++k) {
        std::swap(work[pivot * m + k], work[j * m + k]);
        std::swap(binv_[pivot * m + k], binv_[j * m + k]);
      }
    }
    const double inv = 1.0 / work[j * m + j];
    for (std::size_t k = 0; k < m; ++k) {
      work[j * m + k] *= inv;
      binv_[j * m + k] *= inv;
    }
    for (std::size_t r = 0; r < m; ++r) {
      if (r == j) continue;
      const double factor = work[r * m + j];
      if (factor == 0.0) continue;
      for (std::size_t k = 0; k < m; ++k) {
        work[r * m + k] -= factor * work[j * m + k];
        binv_[r * m + k] -= factor * binv_[j * m + k];
      }
    }
  }
  return true;
}

bool SimplexState::ApplyPendingColumnUpdates() {
  if (pending_.empty()) return true;
  const std::size_t m = form_.num_rows();
  // Basis position of each structural variable (kNoRow when nonbasic).
  std::vector<std::size_t> position(form_.num_variables(), kNoRow);
  for (std::size_t r = 0; r < m; ++r)
    if (basis_[r] < form_.num_variables()) position[basis_[r]] = r;

  std::vector<double> u(m);
  std::vector<double> rowp(m);
  bool need_refactor = false;
  for (const PendingColumn& pending : pending_) {
    const std::size_t pos = position[pending.variable];
    if (pos == kNoRow) continue;  // nonbasic: B is untouched
    // u = B^-1 * (new column - old column), sparse over the touched rows.
    std::fill(u.begin(), u.end(), 0.0);
    bool any = false;
    for (const auto& [row, old_value] : pending.old_values) {
      double current = 0.0;
      for (const StandardForm::Entry& entry : form_.column(pending.variable))
        if (entry.row == row) current = entry.value;
      const double delta = current - old_value;
      if (delta == 0.0) continue;
      any = true;
      for (std::size_t r = 0; r < m; ++r) u[r] += binv_[r * m + row] * delta;
    }
    if (!any) continue;
    const double beta = 1.0 + u[pos];
    if (std::abs(beta) < kSingularEps) {
      need_refactor = true;
      break;
    }
    // Sherman-Morrison: (B + delta e_pos^T)^-1 = B^-1 - (u rowp) / beta.
    std::copy(binv_.begin() + static_cast<std::ptrdiff_t>(pos * m),
              binv_.begin() + static_cast<std::ptrdiff_t>((pos + 1) * m),
              rowp.begin());
    for (std::size_t r = 0; r < m; ++r) {
      const double factor = u[r] / beta;
      if (factor == 0.0) continue;
      double* row = &binv_[r * m];
      for (std::size_t k = 0; k < m; ++k) row[k] -= factor * rowp[k];
    }
  }
  pending_.clear();
  if (need_refactor) return Refactor();
  return true;
}

bool SimplexState::BasicValuesFeasible() const {
  for (std::size_t r = 0; r < form_.num_rows(); ++r) {
    if (xb_[r] < -kFeasEps) return false;
    // A banned column basic at a real level means the equality (or
    // artificial) it stands for is violated.
    if (IsBannedBasic(basis_[r]) && xb_[r] > kFeasEps) return false;
  }
  return true;
}

bool SimplexState::WarmSolve() {
  if (!ApplyPendingColumnUpdates()) return false;
  ComputeBasicValues();
  // An infeasible warm basis would need phase 1; a banned column stuck basic
  // at a real level needs a cold solve to fix the basis structure.
  if (!BasicValuesFeasible()) return false;
  ++stats_.warm_solves;
  TSF_COUNTER_ADD("lp.warm_hits", 1);
  TSF_COUNTER_ADD("lp.phase1_skipped", 1);
  const IterateResult result = Iterate(/*phase1=*/false);
  if (result == IterateResult::kStalled) {
    DenseFallback();
    return true;
  }
  if (result == IterateResult::kUnbounded) {
    solution_ = Solution{SolveStatus::kUnbounded, 0.0, {}};
    state_valid_ = false;
    return true;
  }
  // Iterate's ratio test tolerates kEps-scale drift; certify the optimum
  // before reporting it, and let the cold path handle anything that drifted.
  if (!BasicValuesFeasible()) return false;
  ExtractSolution();
  return true;
}

void SimplexState::ColdSolve() {
  ++stats_.cold_solves;
  TSF_COUNTER_ADD("lp.cold_solves", 1);
  const std::size_t m = form_.num_rows();
  const std::size_t n = form_.num_variables();
  basis_.assign(m, 0);
  binv_.assign(m * m, 0.0);
  xb_.assign(m, 0.0);
  art_sign_.assign(m, 1);
  is_basic_.assign(n + m, false);

  // Starting basis: a row's own slack / surplus when it can sit at a
  // nonnegative level, an artificial (+/- e_row) otherwise.
  bool need_phase1 = false;
  for (std::size_t r = 0; r < m; ++r) {
    const double b = form_.rhs(r);
    const Relation relation = form_.relation(r);
    if (relation == Relation::kLessEqual && b >= 0.0) {
      basis_[r] = SlackCol(r);
      is_basic_[basis_[r]] = true;
      binv_[r * m + r] = 1.0;
      xb_[r] = b;
    } else if (relation == Relation::kGreaterEqual && b <= 0.0) {
      basis_[r] = SlackCol(r);
      is_basic_[basis_[r]] = true;
      binv_[r * m + r] = -1.0;
      xb_[r] = -b;
    } else {
      basis_[r] = ArtificialCol(r);
      art_sign_[r] = b < 0.0 ? -1 : 1;
      binv_[r * m + r] = static_cast<double>(art_sign_[r]);
      xb_[r] = std::abs(b);
      need_phase1 = true;
    }
  }

  if (need_phase1) {
    const IterateResult phase1 = Iterate(/*phase1=*/true);
    TSF_CHECK(phase1 != IterateResult::kUnbounded)
        << "phase 1 cannot be unbounded";
    if (phase1 == IterateResult::kStalled) {
      DenseFallback();
      return;
    }
    double residual = 0.0;
    for (std::size_t r = 0; r < m; ++r)
      if (IsArtificial(basis_[r])) residual += std::max(xb_[r], 0.0);
    if (residual > kFeasEps) {
      solution_ = Solution{SolveStatus::kInfeasible, 0.0, {}};
      state_valid_ = false;
      return;
    }
    // Drive degenerate basic artificials out so phase 2 (and any warm
    // re-solve) starts from a clean basis; a row whose B^-1-row annihilates
    // every real column is redundant and keeps its zero-level artificial.
    std::vector<double> d(m);
    for (std::size_t r = 0; r < m; ++r) {
      if (!IsArtificial(basis_[r])) continue;
      for (std::size_t col = 0; col < n + m; ++col) {
        if (is_basic_[col] || !ColumnAllowed(col, /*phase1=*/false)) continue;
        double alpha = 0.0;
        if (col < n) {
          for (const StandardForm::Entry& entry : form_.column(col))
            alpha += binv_[r * m + entry.row] * entry.value;
        } else {
          const std::size_t row = col - n;
          alpha = (form_.relation(row) == Relation::kLessEqual ? 1.0 : -1.0) *
                  binv_[r * m + row];
        }
        if (std::abs(alpha) > kFeasEps) {
          Ftran(col, d);
          Pivot(r, col, d);
          break;
        }
      }
    }
  }

  const IterateResult phase2 = Iterate(/*phase1=*/false);
  if (phase2 == IterateResult::kStalled) {
    DenseFallback();
    return;
  }
  if (phase2 == IterateResult::kUnbounded) {
    solution_ = Solution{SolveStatus::kUnbounded, 0.0, {}};
    state_valid_ = false;
    return;
  }
  if (!BasicValuesFeasible()) {
    // Degenerate pivoting drifted a basic value out of tolerance: rebuild
    // with the dense executable spec rather than report an uncertified
    // optimum.
    DenseFallback();
    return;
  }
  ExtractSolution();
  state_valid_ = true;
}

void SimplexState::DenseFallback() {
  ++stats_.dense_fallbacks;
  TSF_COUNTER_ADD("lp.dense_fallbacks", 1);
  solution_ = form_.ToDenseProblem().Solve();
  state_valid_ = false;
}

void SimplexState::ExtractSolution() {
  const std::size_t n = form_.num_variables();
  solution_.status = SolveStatus::kOptimal;
  solution_.x.assign(n, 0.0);
  for (std::size_t r = 0; r < form_.num_rows(); ++r) {
    if (basis_[r] >= n) continue;
    TSF_DCHECK_GE(xb_[r], -kFeasEps)
        << "basic variable " << basis_[r] << " below the clamp tolerance";
    solution_.x[basis_[r]] = std::max(0.0, xb_[r]);
  }
  double objective = 0.0;
  const std::vector<double>& c = form_.objective();
  for (std::size_t r = 0; r < form_.num_rows(); ++r)
    if (basis_[r] < n) objective += c[basis_[r]] * solution_.x[basis_[r]];
  solution_.objective = objective;
}

const Solution& SimplexState::Solve() {
  if (solution_valid_ && !dirty_) return solution_;
  TSF_TRACE_SCOPE("lp", "Solve");
  ++stats_.solves;
  bool done = false;
  if (state_valid_) {
    done = WarmSolve();
    if (!done) TSF_COUNTER_ADD("lp.warm_fallbacks", 1);
  }
  if (!done) {
    pending_.clear();
    ColdSolve();
  }
  dirty_ = false;
  solution_valid_ = true;
  return solution_;
}

}  // namespace tsf::lp
