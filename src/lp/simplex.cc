#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace tsf::lp {
namespace {

// Feasibility / pivot tolerance. Progressive filling's coefficients are
// ratios of task counts and capacities, all O(1) after normalization, so a
// fixed absolute tolerance is appropriate.
constexpr double kEps = 1e-9;

// Dense simplex tableau over the standard-form program.
//
// Layout: `a` has one row per constraint over `width` structural+slack+
// artificial columns, with the rhs held separately in `b`. `basis[r]` names
// the column currently basic in row r.
struct Tableau {
  std::size_t rows = 0;
  std::size_t width = 0;
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  std::vector<std::size_t> basis;

  void Pivot(std::size_t pivot_row, std::size_t pivot_col) {
    std::vector<double>& prow = a[pivot_row];
    const double inv = 1.0 / prow[pivot_col];
    for (double& v : prow) v *= inv;
    b[pivot_row] *= inv;
    prow[pivot_col] = 1.0;  // kill round-off on the pivot element itself

    for (std::size_t r = 0; r < rows; ++r) {
      if (r == pivot_row) continue;
      const double factor = a[r][pivot_col];
      if (factor == 0.0) continue;
      std::vector<double>& row = a[r];
      for (std::size_t c = 0; c < width; ++c) row[c] -= factor * prow[c];
      row[pivot_col] = 0.0;
      b[r] -= factor * b[pivot_row];
    }
    basis[pivot_row] = pivot_col;
  }
};

// Runs simplex iterations on `t` for `minimize cost·x` expressed as reduced
// costs recomputed from the basis each iteration... — instead we carry the
// objective row explicitly: `z[c]` are current reduced costs (for a
// maximization, entering column needs z[c] > eps) and `z_value` the current
// objective. Returns false if unbounded.
struct ObjectiveRow {
  std::vector<double> z;
  double value = 0.0;
};

enum class IterateResult { kOptimal, kUnbounded };

IterateResult Iterate(Tableau& t, ObjectiveRow& obj,
                      const std::vector<bool>& allowed_column) {
  // After this many pivots switch from Dantzig to Bland's rule, which cannot
  // cycle. The bound is generous: non-degenerate programs of our sizes
  // finish in far fewer.
  const std::size_t bland_threshold = 50 * (t.rows + t.width);
  std::size_t iterations = 0;

  for (;;) {
    const bool use_bland = iterations++ > bland_threshold;

    // Choose entering column: any column with positive reduced cost.
    std::size_t entering = t.width;
    double best = kEps;
    for (std::size_t c = 0; c < t.width; ++c) {
      if (!allowed_column[c]) continue;
      if (obj.z[c] > best) {
        entering = c;
        if (use_bland) break;  // first eligible index
        best = obj.z[c];
      }
    }
    if (entering == t.width) return IterateResult::kOptimal;

    // Ratio test for the leaving row.
    std::size_t leaving = t.rows;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < t.rows; ++r) {
      const double coeff = t.a[r][entering];
      if (coeff <= kEps) continue;
      const double ratio = t.b[r] / coeff;
      if (ratio < best_ratio - kEps ||
          (use_bland && ratio < best_ratio + kEps && leaving < t.rows &&
           t.basis[r] < t.basis[leaving])) {
        best_ratio = ratio;
        leaving = r;
      }
    }
    if (leaving == t.rows) return IterateResult::kUnbounded;

    // Update objective row, then pivot the tableau.
    const double factor = obj.z[entering];
    t.Pivot(leaving, entering);
    const std::vector<double>& prow = t.a[leaving];
    for (std::size_t c = 0; c < t.width; ++c) obj.z[c] -= factor * prow[c];
    obj.z[entering] = 0.0;
    obj.value += factor * t.b[leaving];
  }
}

}  // namespace

std::string ToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
  }
  return "?";
}

Problem::Problem(std::size_t num_variables)
    : num_variables_(num_variables), objective_(num_variables, 0.0) {
  TSF_CHECK_GT(num_variables, 0u);
}

void Problem::SetObjective(std::vector<double> coefficients) {
  TSF_CHECK_EQ(coefficients.size(), num_variables_);
  objective_ = std::move(coefficients);
}

void Problem::SetObjectiveCoefficient(std::size_t variable, double coefficient) {
  TSF_CHECK_LT(variable, num_variables_);
  objective_[variable] = coefficient;
}

void Problem::AddConstraint(std::vector<double> coefficients, Relation relation,
                            double rhs) {
  TSF_CHECK_EQ(coefficients.size(), num_variables_);
  TSF_CHECK(std::isfinite(rhs));
  rows_.push_back(Row{std::move(coefficients), relation, rhs});
}

void Problem::AddConstraintSparse(
    const std::vector<std::pair<std::size_t, double>>& terms, Relation relation,
    double rhs) {
  std::vector<double> coefficients(num_variables_, 0.0);
  for (const auto& [variable, coefficient] : terms) {
    TSF_CHECK_LT(variable, num_variables_);
    coefficients[variable] += coefficient;
  }
  AddConstraint(std::move(coefficients), relation, rhs);
}

Solution Problem::Solve() const {
  const std::size_t n = num_variables_;
  const std::size_t m = rows_.size();

  // --- Build the standard-form tableau. ---
  // Column layout: [structural 0..n) | slack/surplus | artificial].
  std::size_t num_slack = 0;
  for (const Row& row : rows_)
    if (row.relation != Relation::kEqual) ++num_slack;

  Tableau t;
  t.rows = m;
  t.width = n + num_slack;  // artificials appended below as needed
  t.a.assign(m, {});
  t.b.assign(m, 0.0);
  t.basis.assign(m, 0);

  // First pass: structural + slack columns; flip rows so rhs >= 0.
  std::vector<int> sign(m, 1);           // row multiplier applied
  std::vector<Relation> relation(m);     // relation after the flip
  {
    std::size_t slack_index = n;
    for (std::size_t r = 0; r < m; ++r) {
      const Row& row = rows_[r];
      relation[r] = row.relation;
      sign[r] = row.rhs < 0.0 ? -1 : 1;
      if (sign[r] < 0) {
        if (row.relation == Relation::kLessEqual)
          relation[r] = Relation::kGreaterEqual;
        else if (row.relation == Relation::kGreaterEqual)
          relation[r] = Relation::kLessEqual;
      }
      t.a[r].assign(t.width, 0.0);
      for (std::size_t c = 0; c < n; ++c)
        t.a[r][c] = sign[r] * row.coefficients[c];
      t.b[r] = sign[r] * row.rhs;
      if (relation[r] == Relation::kLessEqual) {
        t.a[r][slack_index] = 1.0;
        t.basis[r] = slack_index;  // slack starts basic
        ++slack_index;
      } else if (relation[r] == Relation::kGreaterEqual) {
        t.a[r][slack_index] = -1.0;  // surplus
        t.basis[r] = t.width;        // placeholder: needs an artificial
        ++slack_index;
      } else {
        t.basis[r] = t.width;  // placeholder: needs an artificial
      }
    }
  }

  // Second pass: append artificial columns where no slack could start basic.
  std::vector<std::size_t> artificial_rows;
  for (std::size_t r = 0; r < m; ++r)
    if (t.basis[r] == t.width) artificial_rows.push_back(r);

  const std::size_t num_artificial = artificial_rows.size();
  const std::size_t total_width = t.width + num_artificial;
  for (std::size_t r = 0; r < m; ++r) t.a[r].resize(total_width, 0.0);
  for (std::size_t k = 0; k < num_artificial; ++k) {
    const std::size_t r = artificial_rows[k];
    const std::size_t col = t.width + k;
    t.a[r][col] = 1.0;
    t.basis[r] = col;
  }
  const std::size_t artificial_begin = t.width;
  t.width = total_width;

  std::vector<bool> allow_all(t.width, true);

  // --- Phase 1: minimize the sum of artificials (maximize its negation). ---
  if (num_artificial > 0) {
    ObjectiveRow phase1;
    phase1.z.assign(t.width, 0.0);
    // Objective: maximize -(sum of artificials). Reduced costs must reflect
    // the starting basis (artificials basic), so add each artificial row
    // into the objective row.
    for (std::size_t c = artificial_begin; c < t.width; ++c) phase1.z[c] = -1.0;
    for (const std::size_t r : artificial_rows) {
      for (std::size_t c = 0; c < t.width; ++c) phase1.z[c] += t.a[r][c];
      phase1.value += t.b[r];
    }
    // Note: phase1.value now tracks -(sum of artificials) shifted by a
    // constant; only its change matters, we test feasibility via basis/rhs.
    const IterateResult result = Iterate(t, phase1, allow_all);
    TSF_CHECK(result == IterateResult::kOptimal)
        << "phase 1 cannot be unbounded";

    // Infeasible if any artificial remains basic at positive level.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= artificial_begin && t.b[r] > 1e-7)
        return Solution{SolveStatus::kInfeasible, 0.0, {}};
    }
    // Drive any degenerate basic artificials out of the basis so phase 2
    // never re-enters them.
    for (std::size_t r = 0; r < m; ++r) {
      if (t.basis[r] < artificial_begin) continue;
      std::size_t replacement = t.width;
      for (std::size_t c = 0; c < artificial_begin; ++c) {
        if (std::abs(t.a[r][c]) > kEps) {
          replacement = c;
          break;
        }
      }
      if (replacement < t.width) {
        t.Pivot(r, replacement);
      }
      // If the whole row is zero the constraint was redundant; the basic
      // artificial stays at level zero and is simply banned below.
    }
  }

  // --- Phase 2: the real objective over non-artificial columns. ---
  std::vector<bool> allowed(t.width, true);
  for (std::size_t c = artificial_begin; c < t.width; ++c) allowed[c] = false;

  ObjectiveRow phase2;
  phase2.z.assign(t.width, 0.0);
  for (std::size_t c = 0; c < n; ++c) phase2.z[c] = objective_[c];
  // Express reduced costs relative to the current basis.
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t bc = t.basis[r];
    const double cost = bc < n ? objective_[bc] : 0.0;
    if (cost == 0.0) continue;
    for (std::size_t c = 0; c < t.width; ++c) phase2.z[c] -= cost * t.a[r][c];
    phase2.value += cost * t.b[r];
  }
  // Basic columns must have zero reduced cost exactly.
  for (std::size_t r = 0; r < m; ++r) phase2.z[t.basis[r]] = 0.0;

  if (Iterate(t, phase2, allowed) == IterateResult::kUnbounded)
    return Solution{SolveStatus::kUnbounded, 0.0, {}};

  Solution solution;
  solution.status = SolveStatus::kOptimal;
  solution.objective = phase2.value;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) {
      // Roundoff may leave a basic variable a hair below zero; clamp here,
      // solver-side, so callers can rely on x >= 0 exactly. Anything beyond
      // roundoff magnitude is a solver bug.
      TSF_DCHECK_GE(t.b[r], -1e-7)
          << " basic variable " << t.basis[r] << " below clamp tolerance";
      solution.x[t.basis[r]] = std::max(0.0, t.b[r]);
    }
  }
  return solution;
}

}  // namespace tsf::lp
