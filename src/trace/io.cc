#include "trace/io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace tsf::trace {
namespace {

std::string JoinIds(const std::vector<std::uint32_t>& ids) {
  if (ids.empty()) return "-";
  std::string out;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(ids[k]);
  }
  return out;
}

std::string JoinMachines(const std::vector<MachineId>& ids) {
  std::string out;
  for (std::size_t k = 0; k < ids.size(); ++k) {
    if (k > 0) out += ",";
    out += std::to_string(ids[k]);
  }
  return out;
}

bool SplitIds(const std::string& text, std::vector<std::uint64_t>* ids,
              std::string* error) {
  ids->clear();
  if (text == "-") return true;
  std::stringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    try {
      ids->push_back(std::stoull(token));
    } catch (...) {
      *error = "bad id list element: '" + token + "'";
      return false;
    }
  }
  return true;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

}  // namespace

std::string WorkloadToText(const Workload& workload) {
  std::string out = "# tsf-workload v1\n";
  const Cluster& cluster = workload.cluster;
  out += "resources " + std::to_string(cluster.num_resources()) + "\n";

  for (const Machine& machine : cluster.machines()) {
    out += "machine";
    for (std::size_t r = 0; r < machine.capacity.dimension(); ++r)
      out += " " + FormatDouble(machine.capacity[r]);
    out += " attrs " + JoinIds(machine.attributes.ids()) + "\n";
  }

  for (const SimJob& job : workload.jobs) {
    out += "job " + (job.spec.name.empty() ? "job" : job.spec.name);
    out += " arrival " + FormatDouble(job.spec.arrival_time);
    out += " weight " + FormatDouble(job.spec.weight);
    out += " demand";
    for (std::size_t r = 0; r < job.spec.demand.dimension(); ++r)
      out += " " + FormatDouble(job.spec.demand[r]);
    out += " constraint ";
    switch (job.spec.constraint.kind()) {
      case Constraint::Kind::kNone:
        out += "none";
        break;
      case Constraint::Kind::kRequireAttributes:
        out += "attrs " + JoinIds(job.spec.constraint.required_attributes().ids());
        break;
      case Constraint::Kind::kWhitelist:
        out += "whitelist " + JoinMachines(job.spec.constraint.machine_list());
        break;
      case Constraint::Kind::kBlacklist:
        out += "blacklist " + JoinMachines(job.spec.constraint.machine_list());
        break;
    }
    out += "\nruntimes";
    for (const double r : job.task_runtimes) out += " " + FormatDouble(r);
    out += "\n";
  }
  return out;
}

bool WorkloadFromText(const std::string& text, Workload* workload,
                      std::string* error) {
  TSF_CHECK(workload != nullptr && error != nullptr);
  *workload = Workload{};
  error->clear();

  std::stringstream stream(text);
  std::string line;
  std::size_t line_number = 0;
  std::size_t resources = 0;
  bool have_resources = false;
  bool expecting_runtimes = false;

  auto fail = [&](const std::string& message) {
    *error = "line " + std::to_string(line_number) + ": " + message;
    return false;
  };

  while (std::getline(stream, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream tokens(line);
    std::string keyword;
    tokens >> keyword;

    if (keyword == "runtimes") {
      if (!expecting_runtimes) return fail("runtimes without preceding job");
      SimJob& job = workload->jobs.back();
      double value = 0;
      while (tokens >> value) {
        if (value <= 0.0) return fail("non-positive task runtime");
        job.task_runtimes.push_back(value);
      }
      if (job.task_runtimes.empty()) return fail("job has no tasks");
      job.spec.num_tasks = static_cast<long>(job.task_runtimes.size());
      expecting_runtimes = false;
      continue;
    }
    if (expecting_runtimes) return fail("expected a runtimes line");

    if (keyword == "resources") {
      if (have_resources) return fail("duplicate resources line");
      if (!(tokens >> resources) || resources == 0)
        return fail("bad resource count");
      have_resources = true;
      continue;
    }

    if (keyword == "machine") {
      if (!have_resources) return fail("machine before resources line");
      std::vector<double> capacity(resources);
      for (double& c : capacity)
        if (!(tokens >> c) || c < 0) return fail("bad machine capacity");
      std::string marker, ids_text;
      if (!(tokens >> marker >> ids_text) || marker != "attrs")
        return fail("expected 'attrs <ids|->'");
      std::vector<std::uint64_t> ids;
      if (!SplitIds(ids_text, &ids, error)) return false;
      AttributeSet attributes;
      for (const auto id : ids)
        attributes.Add(static_cast<AttributeId>(id));
      workload->cluster.AddMachine(ResourceVector(std::move(capacity)),
                                   std::move(attributes));
      continue;
    }

    if (keyword == "job") {
      if (!have_resources) return fail("job before resources line");
      SimJob job;
      job.spec.id = workload->jobs.size();
      std::string field;
      if (!(tokens >> job.spec.name)) return fail("missing job name");
      // arrival <t> weight <w> demand <d...> constraint <...>
      if (!(tokens >> field) || field != "arrival") return fail("expected 'arrival'");
      if (!(tokens >> job.spec.arrival_time) || job.spec.arrival_time < 0)
        return fail("bad arrival time");
      if (!(tokens >> field) || field != "weight") return fail("expected 'weight'");
      if (!(tokens >> job.spec.weight) || job.spec.weight <= 0)
        return fail("bad weight");
      if (!(tokens >> field) || field != "demand") return fail("expected 'demand'");
      std::vector<double> demand(resources);
      for (double& d : demand)
        if (!(tokens >> d) || d < 0) return fail("bad demand");
      job.spec.demand = ResourceVector(std::move(demand));
      if (!(tokens >> field) || field != "constraint")
        return fail("expected 'constraint'");
      std::string kind;
      if (!(tokens >> kind)) return fail("missing constraint kind");
      if (kind == "none") {
        job.spec.constraint = Constraint::None();
      } else {
        std::string ids_text;
        if (!(tokens >> ids_text)) return fail("missing constraint ids");
        std::vector<std::uint64_t> ids;
        if (!SplitIds(ids_text, &ids, error)) return false;
        if (kind == "attrs") {
          AttributeSet required;
          for (const auto id : ids) required.Add(static_cast<AttributeId>(id));
          job.spec.constraint = Constraint::RequireAttributes(std::move(required));
        } else if (kind == "whitelist" || kind == "blacklist") {
          std::vector<MachineId> machines(ids.begin(), ids.end());
          job.spec.constraint = kind == "whitelist"
                                    ? Constraint::Whitelist(std::move(machines))
                                    : Constraint::Blacklist(std::move(machines));
        } else {
          return fail("unknown constraint kind '" + kind + "'");
        }
      }
      workload->jobs.push_back(std::move(job));
      expecting_runtimes = true;
      continue;
    }

    return fail("unknown keyword '" + keyword + "'");
  }

  if (expecting_runtimes) return fail("file ends before runtimes line");
  if (!have_resources) {
    *error = "missing resources line";
    return false;
  }
  if (workload->cluster.num_machines() == 0) {
    *error = "no machines";
    return false;
  }
  // Jobs must arrive in order for the simulator.
  std::sort(workload->jobs.begin(), workload->jobs.end(),
            [](const SimJob& a, const SimJob& b) {
              return a.spec.arrival_time < b.spec.arrival_time;
            });
  for (std::size_t j = 0; j < workload->jobs.size(); ++j)
    workload->jobs[j].spec.id = j;
  return true;
}

bool SaveWorkload(const Workload& workload, const std::string& path,
                  std::string* error) {
  TSF_CHECK(error != nullptr);
  std::ofstream file(path);
  if (!file) {
    *error = "cannot open " + path + " for writing";
    return false;
  }
  file << WorkloadToText(workload);
  file.flush();
  if (!file) {
    *error = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool LoadWorkload(const std::string& path, Workload* workload,
                  std::string* error) {
  TSF_CHECK(error != nullptr);
  std::ifstream file(path);
  if (!file) {
    *error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  return WorkloadFromText(buffer.str(), workload, error);
}

}  // namespace tsf::trace
