// Synthetic Google-trace-like workload generator (Sec. VI-B1 substitute).
//
// The paper feeds its simulator a 1-hour task sample from the public Google
// cluster traces [20], with placement constraints synthesized following
// Sharma et al. [22] (4 machine classes, 21 attributes) and machine configs
// sampled from the trace's 12k machines. The raw trace is not available
// here, but the evaluation only depends on the aggregate distributions the
// paper itself publishes in Fig. 8:
//
//   Fig. 8a — fraction of machines a job can run on: <20 % of jobs can run
//             on all 1000 machines; ~50 % on <= 200.
//   Fig. 8b — job sizes: mice-dominated (>60 % single-task, 86 % <= 10
//             tasks), heavy tail up to ~20k tasks, ~180k tasks across
//             ~4.5k jobs.
//
// This module synthesizes workloads calibrated to exactly those aggregates:
//
//   * machines: platform mix from the Google trace analysis [20] — a few
//     capacity shapes with skewed popularity (CPU-rich, balanced, RAM-poor);
//   * attributes: 21 attributes with incidence probabilities spanning
//     common (kernel version ~60 %) to rare (special hardware ~2 %),
//     plus 4 machine classes partitioning the fleet;
//   * constraints: each job requests its machine class and/or a few
//     attributes with probabilities tuned to reproduce Fig. 8a;
//   * job sizes: mixture calibrated to Fig. 8b;
//   * demands: CPU-intensive mix (the paper notes the Google workload is
//     CPU-bound, which is why CMMF-CPU tracks DRF closely in Fig. 11);
//   * runtimes: per-job lognormal mean (Facebook MapReduce-like [31]) with
//     the +/- 20 % per-task jitter of Sec. VI-A1;
//   * arrivals: uniform over a 1-hour window.
//
// Everything is deterministic in `seed`.
#pragma once

#include <cstdint>

#include "sim/workload.h"

namespace tsf::trace {

struct GoogleTraceConfig {
  std::size_t num_machines = 1000;
  std::size_t num_jobs = 4500;
  double arrival_window_seconds = 3600.0;

  // Scales the probability that a job requests each class/attribute; 0
  // disables constraints entirely, 1 reproduces Fig. 8a, >1 tightens
  // (used by the constraint-tightness ablation).
  double constraint_tightness = 1.0;

  // Scales every job's task count (coarse load knob for small-machine runs;
  // 1.0 reproduces the ~180k-task load of the paper).
  double job_size_scale = 1.0;

  // Scales every task's runtime (fine-grained load knob; 1.0 is calibrated
  // so the cluster is heavily loaded — large task backlogs, ~40 % of jobs
  // with salient queueing delay — without collapsing into a pure-backlog
  // regime where policies cannot differ).
  double runtime_scale = 1.0;

  // Trace-scale fleets: when > 0, machines draw their whole attribute set
  // from a menu of this many pre-sampled profiles (each sampled from the
  // same incidence model) instead of 21 i.i.d. per-machine coin flips. The
  // i.i.d. draws make nearly every machine unique, which is fine at 1000
  // machines but defeats equivalence-class collapse at 10k-100k; a profile
  // menu caps the fleet at ~(10 platforms x profiles) classes while keeping
  // the marginal attribute statistics. 0 (the default) is the legacy
  // behavior, bit-identical to previous releases.
  std::size_t num_attribute_profiles = 0;

  std::uint64_t seed = 1;
};

// Number of distinct machine attributes (Sharma et al. measure 21).
inline constexpr std::size_t kNumAttributes = 21;
// Machine classes (attribute ids kNumAttributes..kNumAttributes+3).
inline constexpr std::size_t kNumMachineClasses = 4;

// Builds the cluster only (machine shapes + attributes). See
// GoogleTraceConfig::num_attribute_profiles for the last parameter; 0
// reproduces the historical per-machine i.i.d. attribute draws.
Cluster SampleGoogleCluster(std::size_t num_machines, std::uint64_t seed,
                            std::size_t num_attribute_profiles = 0);

// Builds the full workload: cluster + jobs sorted by arrival.
Workload SynthesizeGoogleWorkload(const GoogleTraceConfig& config);

}  // namespace tsf::trace
