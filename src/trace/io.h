// Workload (de)serialization.
//
// The simulator is trace-driven; this module defines a simple line-oriented
// text format so workloads can be saved, inspected, hand-edited, or built
// from real traces by external tooling, instead of always being
// synthesized in-process.
//
//   # tsf-workload v1
//   resources 2
//   machine <cpu> <ram> attrs <a,b,...|->
//   ...
//   job <name> arrival <t> weight <w> demand <d1> <d2> ...
//     constraint <none | attrs a,b | whitelist m,m | blacklist m,m>
//   runtimes <r1> <r2> ... (one line per job, num_tasks entries)
//
// Lines starting with '#' and blank lines are ignored. Machines and jobs
// are numbered by order of appearance; each `job` line must be followed by
// its `runtimes` line.
#pragma once

#include <string>

#include "sim/workload.h"

namespace tsf::trace {

// Renders a workload in the format above.
std::string WorkloadToText(const Workload& workload);

// Parses the format; returns false and fills *error on malformed input.
bool WorkloadFromText(const std::string& text, Workload* workload,
                      std::string* error);

// File convenience wrappers (false + *error on I/O or parse failure).
bool SaveWorkload(const Workload& workload, const std::string& path,
                  std::string* error);
bool LoadWorkload(const std::string& path, Workload* workload,
                  std::string* error);

}  // namespace tsf::trace
