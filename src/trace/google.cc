#include "trace/google.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/check.h"
#include "util/rng.h"

namespace tsf::trace {
namespace {

// ----------------------------------------------------------- machines ----
// Platform mix approximating the Google trace analysis [20]: normalized
// (CPU, RAM) shapes with skewed popularity, scaled to a 16-core / 32 GB
// top-end machine.
struct Platform {
  double cores;
  double ram_gb;
  double popularity;
};
// The trace spans 3-5 hardware generations with 10-40 configurations and
// widely varying CPU:RAM ratios; heterogeneity is load-bearing for the
// evaluation (it is what separates TSF's per-machine packing denominator
// h_i from DRF's pooled dominant share).
constexpr Platform kPlatforms[] = {
    {8.0, 16.0, 0.30},   // the workhorse: balanced half-size (1:2)
    {8.0, 8.0, 0.18},    // RAM-poor half-size (1:1)
    {16.0, 16.0, 0.12},  // CPU-rich full (1:1)
    {8.0, 32.0, 0.10},   // RAM-rich half (1:4)
    {16.0, 32.0, 0.09},  // full-size (1:2)
    {4.0, 16.0, 0.08},   // old RAM-heavy nodes (1:4)
    {16.0, 64.0, 0.05},  // big-memory nodes (1:4)
    {32.0, 32.0, 0.04},  // compute nodes (1:1)
    {4.0, 4.0, 0.03},    // small legacy nodes (1:1)
    {2.0, 8.0, 0.01},    // tiny utility nodes (1:4)
};

// Machine classes (Sharma et al. [22] observe 4), partitioning the fleet.
constexpr double kClassPopularity[kNumMachineClasses] = {0.54, 0.31, 0.08,
                                                         0.07};

// Incidence probability of each of the 21 attributes on a machine: a few
// common (kernel versions, CPU architectures), a middle band, and a rare
// tail (GPUs, public IPs, special disks).
constexpr double kAttributeIncidence[kNumAttributes] = {
    0.60, 0.50, 0.45, 0.40,              // common platform-software attrs
    0.30, 0.30, 0.25, 0.25, 0.20, 0.20,  // middle band
    0.15, 0.15, 0.10, 0.10, 0.10,        // uncommon
    0.08, 0.05, 0.05, 0.04, 0.03, 0.02,  // rare hardware
};

// ---------------------------------------------------------- job knobs ----
// Probability a job is constrained at all (Fig. 8a: <20 % can run on every
// machine; a little headroom is left for constrained jobs whose
// requirements happen to be satisfied everywhere — there are none in this
// model, so this is the "runs everywhere" fraction directly).
constexpr double kConstrainedFraction = 0.84;
// Among constrained jobs: probability the machine class is pinned.
constexpr double kClassRequestProbability = 0.60;
// Among constrained jobs: distribution of the number of requested
// attributes (0..3); jobs with neither class nor attributes re-draw.
constexpr double kAttrCountProbability[4] = {0.22, 0.38, 0.28, 0.12};

// Job-size mixture calibrated to Fig. 8b: >60 % single-task, 86 % <= 10,
// heavy tail to 20k, ~40 tasks per job on average.
constexpr double kSizeBinProbability[5] = {0.62, 0.24, 0.092, 0.028, 0.006};
constexpr long kMaxJobSize = 20000;

// Per-task demand menus; CPU-heavy on purpose (the Google workload is
// CPU-bound [20], which Fig. 11's CPU≈DRF result depends on).
constexpr double kCoreMenu[] = {0.25, 0.5, 1.0, 2.0, 4.0};
constexpr double kCoreWeight[] = {0.12, 0.33, 0.35, 0.15, 0.05};
constexpr double kRamMenu[] = {0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
constexpr double kRamWeight[] = {0.20, 0.32, 0.27, 0.12, 0.06, 0.03};

// Facebook-like task runtime model [31]: per-job lognormal mean with a
// heavy tail, clamped to [10 s, 1 h]; +/- 20 % jitter across a job's tasks.
constexpr double kRuntimeLogMean = 5.0106;  // ln(150)
constexpr double kRuntimeLogSigma = 1.0;
constexpr double kRuntimeMin = 10.0;
constexpr double kRuntimeMax = 3600.0;
constexpr double kRuntimeJitter = 0.2;

// Log-uniform integer in [lo, hi].
long LogUniformInt(Rng& rng, long lo, long hi) {
  const double x = std::exp(rng.Uniform(std::log(static_cast<double>(lo)),
                                        std::log(static_cast<double>(hi) + 1)));
  return std::clamp(static_cast<long>(x), lo, hi);
}

long SampleJobSize(Rng& rng) {
  const std::size_t bin = rng.WeightedIndex(std::vector<double>(
      std::begin(kSizeBinProbability), std::end(kSizeBinProbability)));
  switch (bin) {
    case 0:
      return 1;
    case 1:
      return rng.Int(2, 10);
    case 2:
      return LogUniformInt(rng, 11, 100);
    case 3:
      return LogUniformInt(rng, 101, 500);
    default:
      return LogUniformInt(rng, 501, kMaxJobSize);
  }
}

}  // namespace

Cluster SampleGoogleCluster(std::size_t num_machines, std::uint64_t seed,
                            std::size_t num_attribute_profiles) {
  TSF_CHECK_GT(num_machines, 0u);
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<double> platform_weights;
  for (const Platform& platform : kPlatforms)
    platform_weights.push_back(platform.popularity);
  const std::vector<double> class_weights(std::begin(kClassPopularity),
                                          std::end(kClassPopularity));

  // One attribute draw from the shared incidence model: the machine's class
  // (modeled as an attribute beyond the plain 21) plus the 21 coin flips.
  auto sample_attributes = [&]() {
    AttributeSet attributes;
    const auto machine_class = rng.WeightedIndex(class_weights);
    attributes.Add(static_cast<AttributeId>(kNumAttributes + machine_class));
    for (std::size_t a = 0; a < kNumAttributes; ++a)
      if (rng.Chance(kAttributeIncidence[a]))
        attributes.Add(static_cast<AttributeId>(a));
    return attributes;
  };

  // Trace-scale mode: pre-sample a profile menu, then hand each machine a
  // whole profile (see GoogleTraceConfig::num_attribute_profiles).
  std::vector<AttributeSet> profiles;
  profiles.reserve(num_attribute_profiles);
  for (std::size_t p = 0; p < num_attribute_profiles; ++p)
    profiles.push_back(sample_attributes());

  Cluster cluster;
  for (std::size_t m = 0; m < num_machines; ++m) {
    const Platform& platform = kPlatforms[rng.WeightedIndex(platform_weights)];
    AttributeSet attributes =
        profiles.empty()
            ? sample_attributes()
            : profiles[static_cast<std::size_t>(
                  rng.Int(0, static_cast<std::int64_t>(profiles.size()) - 1))];
    cluster.AddMachine(ResourceVector{platform.cores, platform.ram_gb},
                       std::move(attributes));
  }
  return cluster;
}

Workload SynthesizeGoogleWorkload(const GoogleTraceConfig& config) {
  TSF_CHECK_GT(config.num_jobs, 0u);
  TSF_CHECK_GE(config.constraint_tightness, 0.0);
  TSF_CHECK_GT(config.job_size_scale, 0.0);
  TSF_CHECK_GT(config.runtime_scale, 0.0);

  Workload workload;
  workload.cluster = SampleGoogleCluster(config.num_machines, config.seed,
                                         config.num_attribute_profiles);
  const Cluster& cluster = workload.cluster;

  // Schedulability probes (the constraint-relaxation loop below) are
  // O(machines) each; on a class-collapsed fleet one representative per
  // class answers the same predicate — capacity and attributes are
  // class-uniform — turning the loop O(classes). The verdicts are exactly
  // equal, so generated workloads do not depend on which path ran.
  std::optional<MachineClassIndex> class_index;
  if (2 * MachineClassIndex::CountClasses(cluster) <= cluster.num_machines())
    class_index.emplace(cluster);
  auto schedulable_on = [&](const Constraint& candidate,
                            const ResourceVector& demand) {
    if (class_index.has_value()) {
      for (std::size_t c = 0; c < class_index->num_classes(); ++c) {
        const Machine& probe = cluster.machine(class_index->representative(c));
        if (candidate.Allows(probe.id, probe.attributes) &&
            probe.capacity.Fits(demand))
          return true;
      }
      return false;
    }
    bool fits = false;
    cluster.Eligibility(candidate).ForEachSet([&](std::size_t m) {
      fits = fits || cluster.machine(m).capacity.Fits(demand);
    });
    return fits;
  };

  Rng rng(config.seed);
  const std::vector<double> class_weights(std::begin(kClassPopularity),
                                          std::end(kClassPopularity));
  // Attribute request popularity tracks incidence (Sharma et al.: popular
  // attributes are also the frequently requested ones).
  const std::vector<double> attr_request_weights(std::begin(kAttributeIncidence),
                                                 std::end(kAttributeIncidence));

  workload.jobs.reserve(config.num_jobs);
  for (std::size_t j = 0; j < config.num_jobs; ++j) {
    JobSpec spec;
    spec.id = j;
    spec.name = "job" + std::to_string(j);
    spec.weight = 1.0;
    spec.arrival_time = rng.Uniform(0.0, config.arrival_window_seconds);

    const double cores = kCoreMenu[rng.WeightedIndex(std::vector<double>(
        std::begin(kCoreWeight), std::end(kCoreWeight)))];
    const double ram = kRamMenu[rng.WeightedIndex(std::vector<double>(
        std::begin(kRamWeight), std::end(kRamWeight)))];
    spec.demand = ResourceVector{cores, ram};

    long size = SampleJobSize(rng);
    if (config.job_size_scale != 1.0)
      size = std::max<long>(
          1, static_cast<long>(std::llround(static_cast<double>(size) *
                                            config.job_size_scale)));
    spec.num_tasks = size;

    // ---- constraints ----
    // Larger (production-like) jobs carry constraints more often than mice
    // (Sharma et al. observe constraints concentrate in production
    // workloads). The boost barely moves the job-population CDF of Fig. 8a
    // (mice dominate the population) but shifts the *task-weighted* mix.
    const double size_boost = spec.num_tasks > 10 ? 1.12 : 1.0;
    const double constrained_probability = std::min(
        1.0, kConstrainedFraction * size_boost * config.constraint_tightness);
    if (config.constraint_tightness > 0.0 && rng.Chance(constrained_probability)) {
      AttributeSet required;
      // Re-draw until the job actually requires something.
      while (required.empty()) {
        if (rng.Chance(kClassRequestProbability)) {
          const auto machine_class = rng.WeightedIndex(class_weights);
          required.Add(static_cast<AttributeId>(kNumAttributes + machine_class));
        }
        std::size_t attrs = rng.WeightedIndex(std::vector<double>(
            std::begin(kAttrCountProbability), std::end(kAttrCountProbability)));
        if (config.constraint_tightness > 1.0 &&
            rng.Chance(std::min(1.0, config.constraint_tightness - 1.0)))
          ++attrs;
        // Production-scale jobs request more attributes (footnote to the
        // size_boost above): their task mass concentrates on small
        // eligible sets, which is precisely where the policies diverge.
        if (spec.num_tasks > 100 && rng.Chance(0.5)) ++attrs;
        for (std::size_t k = 0; k < attrs; ++k)
          required.Add(static_cast<AttributeId>(
              rng.WeightedIndex(attr_request_weights)));
      }
      Constraint constraint = Constraint::RequireAttributes(required);
      // Guarantee schedulability on this concrete fleet: at least one
      // qualifying machine must also be large enough to hold one task
      // (fractional monopoly counts are not enough — the simulator places
      // whole tasks). Drop the rarest requirement until that holds (mirrors
      // a user relaxing an impossible request; rare at these incidences).
      while (!schedulable_on(constraint, spec.demand)) {
        std::vector<AttributeId> ids = constraint.required_attributes().ids();
        if (ids.size() <= 1) {  // nothing left to relax: run anywhere
          constraint = Constraint::None();
          break;
        }
        // Rarest = highest id among the plain attributes (incidence is
        // monotone decreasing in id), else drop the class pin.
        std::sort(ids.begin(), ids.end());
        ids.pop_back();
        constraint = Constraint::RequireAttributes(AttributeSet(ids));
      }
      spec.constraint = std::move(constraint);
    }

    // ---- runtimes ----
    const double mean_runtime =
        config.runtime_scale *
        std::clamp(rng.LogNormal(kRuntimeLogMean, kRuntimeLogSigma),
                   kRuntimeMin, kRuntimeMax);
    SimJob job = MakeJitteredJob(std::move(spec), mean_runtime, kRuntimeJitter,
                                 rng());
    workload.jobs.push_back(std::move(job));
  }

  std::sort(workload.jobs.begin(), workload.jobs.end(),
            [](const SimJob& a, const SimJob& b) {
              return a.spec.arrival_time < b.spec.arrival_time;
            });
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    workload.jobs[j].spec.id = j;
  return workload;
}

}  // namespace tsf::trace
