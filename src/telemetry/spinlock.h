// RAII guard for the telemetry layer's std::atomic_flag spinlocks.
//
// The hot-path locks in metrics.cc (per-shard Welford moments) and trace.cc
// (per-thread ring buffers) are designed to be uncontended — a spin is the
// rare case — so a test_and_set/clear pair is the whole protocol. This guard
// keeps the pair exception-safe and impossible to mismatch: acquire in the
// constructor (acquire ordering, so guarded reads see the previous holder's
// writes), release in the destructor (release ordering, publishing ours).
//
// telemetry has no repo dependencies (util links it PUBLIC), so this lives
// here rather than in src/util.
#pragma once

#include <atomic>

namespace tsf::telemetry {

class [[nodiscard]] SpinGuard {
 public:
  explicit SpinGuard(std::atomic_flag& flag) : flag_(flag) {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  ~SpinGuard() { flag_.clear(std::memory_order_release); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  std::atomic_flag& flag_;
};

}  // namespace tsf::telemetry
