// Annotated spinlock for the telemetry layer's hot paths.
//
// The locks in metrics.cc (per-shard Welford moments) and trace.cc
// (per-thread ring buffers) are designed to be uncontended — a spin is the
// rare case — so a test_and_set/clear pair is the whole protocol. SpinLock
// declares that atomic_flag as a thread-safety capability
// (util/thread_annotations.h) so fields marked TSF_GUARDED_BY(lock) are
// compile-time checked under the `analysis` preset, and SpinGuard keeps the
// acquire/release pair exception-safe and impossible to mismatch: acquire in
// the constructor (acquire ordering, so guarded reads see the previous
// holder's writes), release in the destructor (release ordering, publishing
// ours).
//
// telemetry has no repo *link* dependencies (util links it PUBLIC);
// util/thread_annotations.h is a dependency-free macro header, which is why
// including it here does not invert the layering.
#pragma once

#include <atomic>

#include "util/thread_annotations.h"

namespace tsf::telemetry {

class TSF_CAPABILITY("spinlock") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void Acquire() TSF_ACQUIRE() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
    }
  }
  void Release() TSF_RELEASE() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class [[nodiscard]] TSF_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) TSF_ACQUIRE(lock) : lock_(lock) {
    lock_.Acquire();
  }
  ~SpinGuard() TSF_RELEASE() { lock_.Release(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace tsf::telemetry
