// Metrics registry: lock-free per-thread counters, gauges, and log-bucketed
// histograms, snapshotted to JSONL at run end.
//
// Hot-path writes never take a lock: each Counter/Histogram owns a fixed
// array of cache-line-padded shards and a thread writes only the shard its
// stable thread index hashes to (threads beyond kShards share shards via
// relaxed atomics, which stays correct — just contended). Welford mean/M2
// state inside a histogram shard is the one exception: it is guarded by a
// per-shard spinlock that is uncontended unless two threads collide on one
// shard. Snapshots merge shards with the Chan/Welford parallel-combine
// formula, so mean and variance are exact regardless of sharding.
//
// Registration (Registry::GetCounter & co.) takes a mutex but happens once
// per instrumentation site: the TSF_COUNTER_ADD macros cache the returned
// reference in a function-local static.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/spinlock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tsf::telemetry {

namespace internal {

extern std::atomic<bool> g_metrics_enabled;

// Stable per-thread shard index in [0, kShards); assigned round-robin on
// first use so concurrent threads spread over distinct shards.
std::size_t ThisThreadShard();

inline constexpr std::size_t kShards = 16;

}  // namespace internal

// Global runtime switch read by the TSF_* metric macros. Off by default so
// unexercised instrumentation costs one relaxed load + branch per site.
//
// memory_order_relaxed is sound here because the flag publishes no data:
// every structure reachable after the branch is independently synchronized
// (registry lookups under a mutex, counter cells and histogram buckets are
// atomics, histogram moments sit behind a per-shard spinlock). A thread
// observing a stale flag value merely records or skips a few extra samples
// around the toggle, which SetEnabled's callers (run setup/teardown) accept.
inline bool Enabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void SetEnabled(bool enabled);

// Monotonic counter; Add is a relaxed fetch_add on the caller's shard.
class Counter {
 public:
  void Add(std::int64_t delta) {
    cells_[internal::ThisThreadShard()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::int64_t Total() const {
    std::int64_t total = 0;
    for (const Cell& cell : cells_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> value{0};
  };
  std::array<Cell, internal::kShards> cells_;
};

// Last-writer-wins instantaneous value (e.g. a queue depth).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Merged histogram state: log-bucketed counts plus exact Welford moments.
struct HistogramSnapshot {
  static constexpr std::size_t kBuckets = 64;

  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations from the mean
  double min = 0.0;
  double max = 0.0;
  std::array<std::uint64_t, kBuckets> buckets{};  // bucket b: see BucketLowerBound

  double Variance() const { return count > 1 ? m2 / static_cast<double>(count) : 0.0; }

  // Chan/Welford parallel combine: merging per-thread shards (or snapshots
  // from different runs) yields the exact moments of the concatenated
  // stream.
  void Merge(const HistogramSnapshot& other);

  // Single-threaded accumulation for offline analysis (e.g. metrics derived
  // from a recorded event stream): updates the moments and log-bucketed
  // counts exactly as Histogram::Record does, minus the sharded machinery.
  // Like FairnessSample, this is always-compiled data API, not
  // instrumentation — it needs no TSF_TELEMETRY guard.
  void Record(double value);

  // Estimated q-quantile (q in [0, 1]) from the log-bucketed counts: finds
  // the bucket holding rank q*count, linearly interpolates across that
  // bucket's [lower, upper) span, and clamps into the observed [min, max].
  //
  // Error bound: a sample v >= 1 lands in bucket [2^(b-1), 2^b), so the
  // estimate and the true quantile always share a bucket — the absolute
  // error is less than the bucket width and the relative error is < 2x.
  // The estimate is exact when every sample in the target bucket has the
  // same value (the [min, max] clamp collapses the interpolation), which
  // covers single-sample histograms and power-of-two boundary values.
  // Bucket counts add exactly under Merge, so merge-then-quantile equals
  // quantile-of-the-merged-stream. Returns 0 for an empty histogram.
  double Quantile(double q) const;
};

// Log-bucketed histogram. Bucket 0 holds values < 1 (including negatives);
// bucket b >= 1 holds [2^(b-1), 2^b). Values are recorded into the caller's
// shard; Snapshot() merges all shards.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = HistogramSnapshot::kBuckets;

  // Lower bound of bucket b (0 for bucket 0).
  static double BucketLowerBound(std::size_t bucket);
  static std::size_t BucketIndex(double value);

  void Record(double value);
  HistogramSnapshot Snapshot() const;

 private:
  struct alignas(64) Shard {
    mutable SpinLock lock;  // guards the Welford moments below
    std::uint64_t count TSF_GUARDED_BY(lock) = 0;
    double mean TSF_GUARDED_BY(lock) = 0.0;
    double m2 TSF_GUARDED_BY(lock) = 0.0;
    double min TSF_GUARDED_BY(lock) = 0.0;
    double max TSF_GUARDED_BY(lock) = 0.0;
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};  // lock-free
  };
  std::array<Shard, internal::kShards> shards_;
};

// Flat snapshot of the whole registry, for writers and tools.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// Process-wide named-metric registry. Lookup is mutex-guarded (once per
// site thanks to the macro-side static caching); the returned references
// stay valid for the process lifetime.
class Registry {
 public:
  static Registry& Get();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  // Writes one JSON object per line:
  //   {"type":"counter","name":...,"value":...}
  //   {"type":"gauge","name":...,"value":...}
  //   {"type":"histogram","name":...,"count":...,"mean":...,"variance":...,
  //    "min":...,"max":...,"buckets":[{"ge":...,"count":...},...]}
  // Returns false if the file cannot be written.
  bool WriteJsonlSnapshot(const std::string& path) const;

  // Drops every registered metric. Only safe when no cached macro reference
  // can still be used (tests only).
  void ResetForTest();

 private:
  Registry() = default;

  mutable Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      TSF_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      TSF_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      TSF_GUARDED_BY(mutex_);
};

// Appends a JSON-escaped copy of `text` (quotes excluded) to `out`.
void AppendJsonEscaped(std::string& out, std::string_view text);

}  // namespace tsf::telemetry
