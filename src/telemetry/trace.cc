#include "telemetry/trace.h"

#include "telemetry/metrics.h"  // AppendJsonEscaped
#include "telemetry/spinlock.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tsf::telemetry {

namespace internal {
std::atomic<bool> g_trace_active{false};
}  // namespace internal

namespace {

std::int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// Ring buffer owned by the tracer, written by exactly one thread (plus the
// occasional cross-thread drain/clear, hence the spinlock).
struct Tracer::ThreadBuffer {
  SpinLock lock;
  std::vector<TraceRecord> ring TSF_GUARDED_BY(lock);
  std::size_t next TSF_GUARDED_BY(lock) = 0;   // write cursor
  std::size_t count TSF_GUARDED_BY(lock) = 0;  // live records (<= ring size)
  std::uint64_t dropped TSF_GUARDED_BY(lock) = 0;  // overwritten records
  std::uint32_t tid = 0;  // const after registration in LocalBuffer
};

namespace {

struct TracerState {
  Mutex mutex;  // guards buffers/interned registration only
  std::vector<std::unique_ptr<Tracer::ThreadBuffer>> buffers
      TSF_GUARDED_BY(mutex);
  std::map<std::string, std::unique_ptr<std::string>, std::less<>> interned
      TSF_GUARDED_BY(mutex);
};

TracerState& State() {
  static TracerState* state = new TracerState;  // outlives thread exit
  return *state;
}

}  // namespace

Tracer& Tracer::Get() {
  static Tracer* tracer = new Tracer;
  return *tracer;
}

Tracer::ThreadBuffer& Tracer::LocalBuffer() {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    TracerState& state = State();
    const MutexLock lock(state.mutex);
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = static_cast<std::uint32_t>(state.buffers.size() + 1);
    {
      // Not shared yet, but the ring is TSF_GUARDED_BY(lock): acquire the
      // (uncontended) spinlock so the analysis sees a disciplined write.
      const SpinGuard guard(owned->lock);
      owned->ring.resize(capacity_);
    }
    buffer = owned.get();
    state.buffers.push_back(std::move(owned));
  }
  return *buffer;
}

void Tracer::Start(std::size_t events_per_thread) {
  TracerState& state = State();
  const MutexLock lock(state.mutex);
  capacity_ = events_per_thread == 0 ? 1 : events_per_thread;
  for (auto& buffer : state.buffers) {
    const SpinGuard guard(buffer->lock);
    buffer->ring.assign(capacity_, TraceRecord{});
    buffer->next = 0;
    buffer->count = 0;
    buffer->dropped = 0;
  }
  origin_ns_.store(SteadyNowNs(), std::memory_order_relaxed);
  // Release pairs with the acquire load in TraceActive(): a thread that
  // observes the session as active also observes the cleared buffers and the
  // stamped origin above, so it cannot compute a timestamp against a stale
  // origin or append into a ring the clear loop is still resetting.
  internal::g_trace_active.store(true, std::memory_order_release);
}

void Tracer::Stop() {
  // Relaxed is enough to stop: late appends from threads that still see the
  // session as active land under the per-buffer spinlocks WriteChromeTrace
  // also takes, so a straggling record is benign, never a race.
  internal::g_trace_active.store(false, std::memory_order_relaxed);
}

std::uint64_t Tracer::NowNs() const {
  const std::int64_t elapsed =
      SteadyNowNs() - origin_ns_.load(std::memory_order_relaxed);
  return elapsed > 0 ? static_cast<std::uint64_t>(elapsed) : 0;
}

void Tracer::Append(const TraceRecord& record) {
  ThreadBuffer& buffer = LocalBuffer();
  const SpinGuard guard(buffer.lock);
  if (buffer.ring.empty()) return;
  buffer.ring[buffer.next] = record;
  buffer.next = (buffer.next + 1) % buffer.ring.size();
  if (buffer.count < buffer.ring.size())
    ++buffer.count;
  else
    ++buffer.dropped;
}

void Tracer::RecordComplete(const char* category, const char* name,
                            std::uint64_t start_ns) {
  TraceRecord record;
  record.ts_ns = start_ns;
  const std::uint64_t now = NowNs();
  record.dur_ns = now > start_ns ? now - start_ns : 0;
  record.name = name;
  record.category = category;
  record.phase = 'X';
  Append(record);
}

void Tracer::RecordInstant(const char* category, const char* name) {
  TraceRecord record;
  record.ts_ns = NowNs();
  record.name = name;
  record.category = category;
  record.phase = 'i';
  Append(record);
}

void Tracer::RecordCounter(const char* category, const char* name,
                           double value) {
  TraceRecord record;
  record.ts_ns = NowNs();
  record.name = name;
  record.category = category;
  record.value = value;
  record.phase = 'C';
  Append(record);
}

const char* Tracer::Intern(std::string_view name) {
  TracerState& state = State();
  const MutexLock lock(state.mutex);
  auto it = state.interned.find(name);
  if (it == state.interned.end())
    it = state.interned
             .emplace(std::string(name), std::make_unique<std::string>(name))
             .first;
  return it->second->c_str();
}

std::size_t Tracer::BufferedRecords() const {
  TracerState& state = State();
  const MutexLock lock(state.mutex);
  std::size_t total = 0;
  for (const auto& buffer : state.buffers) {
    const SpinGuard guard(buffer->lock);
    total += buffer->count;
  }
  return total;
}

std::uint64_t Tracer::DroppedRecords() const {
  TracerState& state = State();
  const MutexLock lock(state.mutex);
  std::uint64_t total = 0;
  for (const auto& buffer : state.buffers) {
    const SpinGuard guard(buffer->lock);
    total += buffer->dropped;
  }
  return total;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  struct Flat {
    TraceRecord record;
    std::uint32_t tid = 0;
  };
  std::vector<Flat> flat;
  std::uint64_t dropped = 0;
  {
    TracerState& state = State();
    const MutexLock lock(state.mutex);
    for (const auto& buffer : state.buffers) {
      const SpinGuard guard(buffer->lock);
      const std::size_t size = buffer->ring.size();
      // Oldest-first: the live window ends just before `next`.
      const std::size_t first =
          (buffer->next + size - buffer->count) % (size == 0 ? 1 : size);
      for (std::size_t k = 0; k < buffer->count; ++k)
        flat.push_back(Flat{buffer->ring[(first + k) % size], buffer->tid});
      dropped += buffer->dropped;
    }
  }
  std::sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    return a.record.ts_ns < b.record.ts_ns;
  });

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string out;
  out.reserve(flat.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":\"" +
         std::to_string(dropped) + "\"},\"traceEvents\":[\n";
  out +=
      "{\"pid\":1,\"tid\":0,\"ph\":\"M\",\"name\":\"process_name\","
      "\"args\":{\"name\":\"tsf\"}}";
  char buffer[160];
  for (const Flat& f : flat) {
    const TraceRecord& r = f.record;
    out += ",\n{\"pid\":1,\"tid\":" + std::to_string(f.tid);
    std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f",
                  static_cast<double>(r.ts_ns) / 1000.0);
    out += buffer;
    out += ",\"ph\":\"";
    out += r.phase;
    out += "\",\"cat\":\"";
    AppendJsonEscaped(out, r.category == nullptr ? "" : r.category);
    out += "\",\"name\":\"";
    AppendJsonEscaped(out, r.name == nullptr ? "" : r.name);
    out += '"';
    if (r.phase == 'X') {
      std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.3f",
                    static_cast<double>(r.dur_ns) / 1000.0);
      out += buffer;
    } else if (r.phase == 'i') {
      out += ",\"s\":\"t\"";
    } else if (r.phase == 'C') {
      std::snprintf(buffer, sizeof(buffer), ",\"args\":{\"value\":%.17g}",
                    r.value);
      out += buffer;
    }
    out += '}';
    if (out.size() >= (1u << 20)) {
      std::fwrite(out.data(), 1, out.size(), file);
      out.clear();
    }
  }
  out += "\n]}\n";
  std::fwrite(out.data(), 1, out.size(), file);
  return std::fclose(file) == 0;
}

}  // namespace tsf::telemetry
