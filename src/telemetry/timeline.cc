#include "telemetry/timeline.h"

#include <cstdio>

#include "telemetry/metrics.h"  // AppendJsonEscaped

namespace tsf::telemetry {

bool WriteFairnessCsv(const std::string& path,
                      const std::vector<FairnessSample>& samples) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::fputs("time,user,running,pending,dominant_share,task_share\n", file);
  for (const FairnessSample& s : samples)
    std::fprintf(file, "%.6f,%u,%u,%u,%.9g,%.9g\n", s.time, s.user, s.running,
                 s.pending, s.dominant_share, s.task_share);
  return std::fclose(file) == 0;
}

bool WriteFairnessJsonl(const std::string& path, std::string_view policy,
                        const std::vector<FairnessSample>& samples) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string escaped_policy;
  AppendJsonEscaped(escaped_policy, policy);
  for (const FairnessSample& s : samples)
    std::fprintf(file,
                 "{\"policy\":\"%s\",\"time\":%.6f,\"user\":%u,"
                 "\"running\":%u,\"pending\":%u,\"dominant_share\":%.9g,"
                 "\"task_share\":%.9g}\n",
                 escaped_policy.c_str(), s.time, s.user, s.running, s.pending,
                 s.dominant_share, s.task_share);
  return std::fclose(file) == 0;
}

}  // namespace tsf::telemetry
