#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "telemetry/spinlock.h"

namespace tsf::telemetry {

namespace internal {

std::atomic<bool> g_metrics_enabled{false};

std::size_t ThisThreadShard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

}  // namespace internal

void SetEnabled(bool enabled) {
  internal::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count);
  const auto nb = static_cast<double>(other.count);
  const double delta = other.mean - mean;
  mean += delta * nb / (na + nb);
  m2 += other.m2 + delta * delta * na * nb / (na + nb);
  count += other.count;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

void HistogramSnapshot::Record(double value) {
  ++buckets[Histogram::BucketIndex(value)];
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  const double delta = value - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (value - mean);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Continuous rank in (0, count); the loop finds the first bucket whose
  // cumulative count reaches it.
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const auto before = static_cast<double>(seen);
    seen += buckets[b];
    if (static_cast<double>(seen) < rank) continue;
    // Interpolate across the bucket span. Bucket 0 has no finite lower
    // bound of its own (it holds everything below 1, negatives included),
    // so it is anchored at the observed minimum; the top bucket's upper
    // bound is the observed maximum.
    double lo = b == 0 ? min : Histogram::BucketLowerBound(b);
    double hi =
        b + 1 < kBuckets ? Histogram::BucketLowerBound(b + 1) : max;
    if (hi < lo) hi = lo;  // top bucket with max below the lower bound edge
    const double frac = (rank - before) / static_cast<double>(buckets[b]);
    return std::clamp(lo + frac * (hi - lo), min, max);
  }
  return max;  // unreachable unless rank rounds past the last bucket
}

double Histogram::BucketLowerBound(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 1);  // 2^(bucket-1)
}

std::size_t Histogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN also land here
  // Values at or above 2^63 would overflow the uint64 cast; they belong in
  // the top bucket regardless.
  if (value >= std::ldexp(1.0, 63)) return kBuckets - 1;
  const auto truncated = static_cast<std::uint64_t>(value);
  // bit_width(t) = floor(log2 t) + 1, so [2^(b-1), 2^b) maps to bucket b.
  return std::min<std::size_t>(std::bit_width(truncated), kBuckets - 1);
}

void Histogram::Record(double value) {
  Shard& shard = shards_[internal::ThisThreadShard()];
  shard.buckets[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  const SpinGuard guard(shard.lock);
  if (shard.count == 0) {
    shard.min = value;
    shard.max = value;
  } else {
    shard.min = std::min(shard.min, value);
    shard.max = std::max(shard.max, value);
  }
  ++shard.count;
  const double delta = value - shard.mean;
  shard.mean += delta / static_cast<double>(shard.count);
  shard.m2 += delta * (value - shard.mean);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot merged;
  for (const Shard& shard : shards_) {
    HistogramSnapshot piece;
    {
      const SpinGuard guard(shard.lock);
      piece.count = shard.count;
      piece.mean = shard.mean;
      piece.m2 = shard.m2;
      piece.min = shard.min;
      piece.max = shard.max;
    }
    for (std::size_t b = 0; b < kBuckets; ++b)
      piece.buckets[b] = shard.buckets[b].load(std::memory_order_relaxed);
    merged.Merge(piece);
  }
  return merged;
}

Registry& Registry::Get() {
  static Registry* registry = new Registry;  // never destroyed: macro refs outlive main
  return *registry;
}

Counter& Registry::GetCounter(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& Registry::GetGauge(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& Registry::GetHistogram(std::string_view name) {
  const MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

MetricsSnapshot Registry::Snapshot() const {
  const MutexLock lock(mutex_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_)
    snapshot.counters.emplace_back(name, counter->Total());
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_)
    snapshot.gauges.emplace_back(name, gauge->Value());
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_)
    snapshot.histograms.emplace_back(name, histogram->Snapshot());
  return snapshot;
}

void AppendJsonEscaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

namespace {

void AppendDouble(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

}  // namespace

bool Registry::WriteJsonlSnapshot(const std::string& path) const {
  const MetricsSnapshot snapshot = Snapshot();
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  std::string line;
  auto flush_line = [&] {
    line += '\n';
    std::fwrite(line.data(), 1, line.size(), file);
    line.clear();
  };
  for (const auto& [name, value] : snapshot.counters) {
    line += "{\"type\":\"counter\",\"name\":\"";
    AppendJsonEscaped(line, name);
    line += "\",\"value\":" + std::to_string(value) + "}";
    flush_line();
  }
  for (const auto& [name, value] : snapshot.gauges) {
    line += "{\"type\":\"gauge\",\"name\":\"";
    AppendJsonEscaped(line, name);
    line += "\",\"value\":";
    AppendDouble(line, value);
    line += "}";
    flush_line();
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    line += "{\"type\":\"histogram\",\"name\":\"";
    AppendJsonEscaped(line, name);
    line += "\",\"count\":" + std::to_string(histogram.count);
    line += ",\"mean\":";
    AppendDouble(line, histogram.mean);
    line += ",\"variance\":";
    AppendDouble(line, histogram.Variance());
    line += ",\"min\":";
    AppendDouble(line, histogram.min);
    line += ",\"max\":";
    AppendDouble(line, histogram.max);
    line += ",\"buckets\":[";
    bool first = true;
    for (std::size_t b = 0; b < HistogramSnapshot::kBuckets; ++b) {
      if (histogram.buckets[b] == 0) continue;
      if (!first) line += ',';
      first = false;
      line += "{\"ge\":";
      AppendDouble(line, Histogram::BucketLowerBound(b));
      line += ",\"count\":" + std::to_string(histogram.buckets[b]) + "}";
    }
    line += "]}";
    flush_line();
  }
  const bool ok = std::fclose(file) == 0;
  return ok;
}

void Registry::ResetForTest() {
  const MutexLock lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tsf::telemetry
