// Zero-overhead telemetry gate and instrumentation macros.
//
// Three cost tiers, chosen at build and run time:
//
//   * Compiled out (-DTSF_TELEMETRY=OFF): every TSF_* macro below expands to
//     nothing — no branch, no load, no code. The library itself still builds
//     (tools and tests use the classes directly), only the instrumentation
//     sites vanish.
//   * Compiled in, disabled (the default): each macro costs one relaxed
//     atomic load and one predictable branch. tools/check_telemetry_overhead.sh
//     gates this mode at <= 2% on BM_TraceSimulation.
//   * Enabled (telemetry::SetEnabled(true) / Tracer::Get().Start()): metric
//     macros update lock-free per-thread counter cells; trace macros append
//     fixed-size records to per-thread ring buffers.
//
// Metric macros (gated on telemetry::Enabled()):
//   TSF_COUNTER_ADD("des.arrivals", 1);
//   TSF_GAUGE_SET("threadpool.queue_depth", depth);
//   TSF_HISTOGRAM_RECORD("des.event_heap_depth", events.Size());
//
// Trace macros (gated on telemetry::TraceActive(), i.e. an open session):
//   TSF_TRACE_SCOPE("scheduler", "ServeMachine");   // RAII span
//   TSF_TRACE_INSTANT("mesos", "register");
//   TSF_TRACE_COUNTER("des", "heap_depth", depth);
//
// The name arguments of the macros must be string literals (or otherwise
// outlive the process); dynamic names go through Tracer::Intern or the
// Registry's std::string lookups.
#pragma once

#include "telemetry/metrics.h"
#include "telemetry/trace.h"

#define TSF_TELEMETRY_CONCAT_INNER(a, b) a##b
#define TSF_TELEMETRY_CONCAT(a, b) TSF_TELEMETRY_CONCAT_INNER(a, b)

#if defined(TSF_TELEMETRY)

#define TSF_COUNTER_ADD(name, delta)                                        \
  do {                                                                      \
    if (::tsf::telemetry::Enabled()) {                                      \
      static ::tsf::telemetry::Counter& tsf_tm_counter =                    \
          ::tsf::telemetry::Registry::Get().GetCounter(name);               \
      tsf_tm_counter.Add(delta);                                            \
    }                                                                       \
  } while (0)

#define TSF_GAUGE_SET(name, value)                                          \
  do {                                                                      \
    if (::tsf::telemetry::Enabled()) {                                      \
      static ::tsf::telemetry::Gauge& tsf_tm_gauge =                        \
          ::tsf::telemetry::Registry::Get().GetGauge(name);                 \
      tsf_tm_gauge.Set(static_cast<double>(value));                         \
    }                                                                       \
  } while (0)

#define TSF_HISTOGRAM_RECORD(name, value)                                   \
  do {                                                                      \
    if (::tsf::telemetry::Enabled()) {                                      \
      static ::tsf::telemetry::Histogram& tsf_tm_hist =                     \
          ::tsf::telemetry::Registry::Get().GetHistogram(name);             \
      tsf_tm_hist.Record(static_cast<double>(value));                       \
    }                                                                       \
  } while (0)

#define TSF_TRACE_SCOPE(category, name)                                     \
  ::tsf::telemetry::ScopedSpan TSF_TELEMETRY_CONCAT(tsf_tm_span_,           \
                                                    __LINE__)(category, name)

#define TSF_TRACE_INSTANT(category, name)                                   \
  do {                                                                      \
    if (::tsf::telemetry::TraceActive())                                    \
      ::tsf::telemetry::Tracer::Get().RecordInstant(category, name);        \
  } while (0)

#define TSF_TRACE_COUNTER(category, name, value)                            \
  do {                                                                      \
    if (::tsf::telemetry::TraceActive())                                    \
      ::tsf::telemetry::Tracer::Get().RecordCounter(                        \
          category, name, static_cast<double>(value));                      \
  } while (0)

#else  // !defined(TSF_TELEMETRY)

#define TSF_COUNTER_ADD(name, delta) \
  do {                               \
  } while (0)
#define TSF_GAUGE_SET(name, value) \
  do {                             \
  } while (0)
#define TSF_HISTOGRAM_RECORD(name, value) \
  do {                                    \
  } while (0)
#define TSF_TRACE_SCOPE(category, name) \
  do {                                  \
  } while (0)
#define TSF_TRACE_INSTANT(category, name) \
  do {                                    \
  } while (0)
#define TSF_TRACE_COUNTER(category, name, value) \
  do {                                           \
  } while (0)

#endif  // TSF_TELEMETRY
