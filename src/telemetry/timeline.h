// Fairness timeline: per-user share samples taken at fixed virtual-time
// intervals by the DES (sim/des.cc) and exported per policy, so the paper's
// share-over-time figures (Figs. 5-7) and any new fairness plot come from
// one mechanism instead of per-experiment ad-hoc sampling.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsf::telemetry {

// One user's shares at one virtual instant. Only users with running or
// pending tasks are sampled (finished jobs would emit all-zero rows).
struct FairnessSample {
  double time = 0.0;          // virtual seconds
  std::uint32_t user = 0;     // scheduler user id (== arrival order)
  std::uint32_t running = 0;  // tasks currently placed
  std::uint32_t pending = 0;  // tasks still queued
  double dominant_share = 0.0;  // running x max normalized demand component
  double task_share = 0.0;      // running / (h_i * w_i), the TSF quantity
};

// CSV with a header row: time,user,running,pending,dominant_share,task_share.
bool WriteFairnessCsv(const std::string& path,
                      const std::vector<FairnessSample>& samples);

// One JSON object per line, tagged with the policy name.
bool WriteFairnessJsonl(const std::string& path, std::string_view policy,
                        const std::vector<FairnessSample>& samples);

}  // namespace tsf::telemetry
