// Event tracer emitting Chrome trace_event JSON (loadable in Perfetto or
// chrome://tracing).
//
// Records go into fixed-capacity per-thread ring buffers — a full buffer
// overwrites its oldest records, so a long run keeps its most recent window
// instead of growing without bound (the dropped count is reported in the
// trace metadata). Each record is a POD holding pointers to string-literal
// names; dynamic names must be pinned with Intern() first.
//
// Lifecycle: Start() stamps the session origin and flips the process-wide
// active flag the TSF_TRACE_* macros read; Stop() flips it back;
// WriteChromeTrace() drains every thread's buffer into one JSON file. The
// per-thread buffers are guarded by per-buffer spinlocks so a write racing a
// drain stays well-defined — the lock is uncontended on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tsf::telemetry {

namespace internal {
extern std::atomic<bool> g_trace_active;
}  // namespace internal

// True while a trace session is open; the macros' one-branch gate. The
// acquire pairs with Start()'s release store so an observer of `true` also
// sees the session origin and cleared buffers (free on x86, and the load
// still folds into the same one-load-one-branch disabled cost).
inline bool TraceActive() {
  return internal::g_trace_active.load(std::memory_order_acquire);
}

struct TraceRecord {
  std::uint64_t ts_ns = 0;   // since session start
  std::uint64_t dur_ns = 0;  // complete events only
  const char* name = nullptr;
  const char* category = nullptr;
  double value = 0.0;  // counter events only
  char phase = 'X';    // 'X' complete, 'i' instant, 'C' counter
};

class Tracer {
 public:
  static Tracer& Get();

  // Opens a session: clears all buffers, stamps the time origin, and
  // activates the trace macros. `events_per_thread` bounds each ring.
  void Start(std::size_t events_per_thread = 1 << 16);
  void Stop();

  // Nanoseconds since the session origin.
  std::uint64_t NowNs() const;

  void RecordComplete(const char* category, const char* name,
                      std::uint64_t start_ns);
  void RecordInstant(const char* category, const char* name);
  void RecordCounter(const char* category, const char* name, double value);

  // Pins a dynamic name for the process lifetime and returns a stable
  // pointer; repeated calls with the same text return the same pointer.
  const char* Intern(std::string_view name);

  // Number of records currently buffered / dropped across all threads.
  std::size_t BufferedRecords() const;
  std::uint64_t DroppedRecords() const;

  // Serializes the buffered records (sorted by timestamp) as a Chrome
  // trace_event JSON object. Callable after Stop(). Returns false on I/O
  // failure.
  bool WriteChromeTrace(const std::string& path) const;

  struct ThreadBuffer;  // defined in trace.cc; owned by the tracer state

 private:
  Tracer() = default;

  ThreadBuffer& LocalBuffer();
  void Append(const TraceRecord& record);

  std::atomic<std::int64_t> origin_ns_{0};  // steady_clock epoch offset
  std::size_t capacity_ = 1 << 16;
};

// RAII span: stamps the start on construction, appends one 'X' (complete)
// record on destruction. A span constructed while tracing is inactive is a
// no-op even if tracing activates before it closes.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name) {
    if (!TraceActive()) return;
    name_ = name;
    category_ = category;
    start_ns_ = Tracer::Get().NowNs();
  }
  ~ScopedSpan() {
    if (name_ != nullptr && TraceActive())
      Tracer::Get().RecordComplete(category_, name_, start_ns_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace tsf::telemetry
