// In-process Mesos-like cluster manager (the Sec. VI-A prototype
// substitute).
//
// Apache Mesos mediates sharing through *resource offers*: each node runs a
// slave that reports its free resources to the master; the master's
// allocator picks the framework (job) that is furthest below its fair share
// and offers it a node's free resources; the framework launches as many
// tasks as fit and implicitly declines the rest, which the master then
// offers to the next framework. The paper plugs TSF into this loop by
// sorting frameworks by task share and adds a whitelist/blacklist interface
// for placement constraints.
//
// This module reproduces that control flow against a virtual clock: slaves,
// frameworks, the offer cycle, the pluggable allocator order (TSF or DRF),
// node whitelists, and a share-timeline sampler — everything Figs. 5–7 and
// Table II measure. What it deliberately omits is the distributed-systems
// plumbing (RPC, failover, executors), which the paper's experiments do not
// exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/resource.h"

namespace tsf::mesos {

struct SlaveSpec {
  ResourceVector capacity;  // raw units, e.g. <1 core, 1024 MB>
  std::string name;
};

struct FrameworkSpec {
  std::string name;
  double start_time = 0.0;
  long num_tasks = 0;
  ResourceVector demand;       // per-task, raw units
  double mean_runtime = 10.0;  // seconds
  double runtime_jitter = 0.2; // +/- fraction around the mean (Sec. VI-A1)
  // Nodes this framework's tasks may run on (slave indices); empty = all.
  std::vector<std::size_t> whitelist;
  double weight = 1.0;
};

enum class AllocatorPolicy {
  kTsf,  // ascending task share n_i / (h_i w_i) — the paper's plugin
  kDrf,  // ascending global dominant share — stock Mesos allocator
};

struct ClusterConfig {
  std::vector<SlaveSpec> slaves;
  AllocatorPolicy policy = AllocatorPolicy::kTsf;
  std::uint64_t seed = 1;
  // Timeline sampling period for the share curves of Fig. 5 (seconds);
  // 0 disables sampling.
  double sample_interval = 1.0;
};

// One sample of every framework's resource/task shares (Fig. 5's y-axes).
struct SharePoint {
  double time = 0.0;
  std::vector<double> cpu_share;   // fraction of cluster CPU in use
  std::vector<double> mem_share;   // fraction of cluster memory in use
  std::vector<double> task_share;  // n_i(t) / (h_i w_i)
};

struct FrameworkStats {
  std::string name;
  double start_time = 0.0;
  double first_task_time = 0.0;
  double completion_time = 0.0;  // last task finished
  long tasks_run = 0;
  double h = 0.0;  // unconstrained monopoly task count (Table II's h_i)

  double CompletionDuration() const { return completion_time - start_time; }
};

struct SimOutcome {
  std::vector<SharePoint> timeline;
  std::vector<FrameworkStats> frameworks;
  double makespan = 0.0;
};

// Runs the offer-based cluster to completion. Frameworks register at their
// start times; the allocator re-runs after every registration and task
// completion.
SimOutcome RunCluster(const ClusterConfig& config,
                      const std::vector<FrameworkSpec>& frameworks);

// --- Table II helpers -----------------------------------------------------

// The paper's 50-node EC2 fleet: slaves 0-24 manage <1 CPU, 1 GB>, slaves
// 25-49 manage <2 CPUs, 1 GB>.
std::vector<SlaveSpec> PaperFleet();

// The four Table II jobs (start times, task counts, demands, runtimes,
// whitelists). Node numbering follows the paper (1-based in prose, 0-based
// here).
std::vector<FrameworkSpec> TableTwoJobs();

}  // namespace tsf::mesos
