// In-process Mesos-like cluster manager (the Sec. VI-A prototype
// substitute).
//
// Apache Mesos mediates sharing through *resource offers*: each node runs a
// slave that reports its free resources to the master; the master's
// allocator picks the framework (job) that is furthest below its fair share
// and offers it a node's free resources; the framework launches as many
// tasks as fit and implicitly declines the rest, which the master then
// offers to the next framework. The paper plugs TSF into this loop by
// sorting frameworks by task share and adds a whitelist/blacklist interface
// for placement constraints.
//
// This module reproduces that control flow against a virtual clock: slaves,
// frameworks, the offer cycle, the pluggable allocator order (TSF or DRF),
// node whitelists, and a share-timeline sampler — everything Figs. 5–7 and
// Table II measure. What it deliberately omits is the distributed-systems
// plumbing (RPC, failover, executors), which the paper's experiments do not
// exercise.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/resource.h"

namespace tsf::mesos {

struct SlaveSpec {
  ResourceVector capacity;  // raw units, e.g. <1 core, 1024 MB>
  std::string name;
};

struct FrameworkSpec {
  std::string name;
  double start_time = 0.0;
  long num_tasks = 0;
  ResourceVector demand;       // per-task, raw units
  double mean_runtime = 10.0;  // seconds
  double runtime_jitter = 0.2; // +/- fraction around the mean (Sec. VI-A1)
  // Nodes this framework's tasks may run on (slave indices); empty = all.
  std::vector<std::size_t> whitelist;
  double weight = 1.0;
};

enum class AllocatorPolicy {
  kTsf,  // ascending task share n_i / (h_i w_i) — the paper's plugin
  kDrf,  // ascending global dominant share — stock Mesos allocator
};

struct ClusterConfig {
  std::vector<SlaveSpec> slaves;
  AllocatorPolicy policy = AllocatorPolicy::kTsf;
  std::uint64_t seed = 1;
  // Timeline sampling period for the share curves of Fig. 5 (seconds);
  // 0 disables sampling.
  double sample_interval = 1.0;
};

// One sample of every framework's resource/task shares (Fig. 5's y-axes).
struct SharePoint {
  double time = 0.0;
  std::vector<double> cpu_share;   // fraction of cluster CPU in use
  std::vector<double> mem_share;   // fraction of cluster memory in use
  std::vector<double> task_share;  // n_i(t) / (h_i w_i)
};

struct FrameworkStats {
  std::string name;
  double start_time = 0.0;
  double first_task_time = 0.0;
  double completion_time = 0.0;  // last task finished
  long tasks_run = 0;
  double h = 0.0;  // unconstrained monopoly task count (Table II's h_i)

  double CompletionDuration() const { return completion_time - start_time; }
};

// Plain counters of the master's offer machinery, filled on every run (no
// telemetry build flag needed — regression tests assert on these).
struct AllocatorStats {
  long rounds = 0;            // allocation cycles run
  long probes = 0;            // slave fit probes across all cycles
  long zero_slave_skips = 0;  // probes short-circuited: free capacity is
                              // exactly zero (pre-fix these emitted empty
                              // offers the framework could only decline)
  long down_slave_skips = 0;  // probes short-circuited: slave is down
  long offers_accepted = 0;
  long offers_declined = 0;   // nothing the framework may use fits
  long offers_dropped = 0;    // master dropped the offer (injected fault)
  long offers_rescinded = 0;  // master rescinded the offer (injected fault)
  long blackout_declines = 0; // framework inside a decline-timeout window
};

struct SimOutcome {
  std::vector<SharePoint> timeline;
  std::vector<FrameworkStats> frameworks;
  double makespan = 0.0;
  AllocatorStats stats;
};

// --- chaos hooks (src/chaos fault injection) --------------------------------

// One fault, applied at a virtual-clock instant. The Mesos substrate adds
// offer- and framework-level faults on top of the machine faults shared
// with the DES (sim/des.h).
struct Fault {
  enum class Kind {
    kSlaveCrash,           // target = slave; running tasks are killed and
                           // re-enter the pending pool (relaunched elsewhere)
    kSlaveRestart,         // target = slave; comes back empty
    kTaskFailure,          // target = slave; most recently launched task on
                           // it fails and re-enters the pending pool (no-op
                           // on a down or idle slave)
    kOfferDrop,            // target = framework; master drops its next
                           // max(1, param) offers, one per allocation cycle
    kOfferRescind,         // target = framework; next offer is rescinded
    kDeclineTimeout,       // target = framework; declines everything until
                           // time + param (a stuck scheduler driver)
    kFrameworkDisconnect,  // target = framework; receives no offers, its
                           // running tasks keep running
    kFrameworkReregister,  // target = framework; offers resume
  };
  double time = 0.0;
  Kind kind = Kind::kSlaveCrash;
  std::size_t target = 0;  // slave or framework index, per kind
  double param = 0.0;      // kOfferDrop: offer count; kDeclineTimeout: window
};

// One record per master state transition, emitted in order when
// RunOptions::stream is set. `task` is a master-global launch id (unique per
// launch; a relaunched task gets a fresh id — the Mesos substrate does not
// preserve task identity across retries, unlike the DES).
struct MasterEvent {
  enum class Kind {
    kRegister,    // framework registered (task/slave zero)
    kDisconnect,  // framework disconnected (injected fault)
    kReregister,  // framework re-registered
    kLaunch,      // task launched on slave
    kFinish,      // task completed on slave
    kKill,        // task killed by a slave crash, requeued
    kFail,        // task failed (slave stays up), requeued
    kCrash,       // slave went down
    kRestart,     // slave came back
  };
  double time = 0.0;
  Kind kind = Kind::kRegister;
  std::uint32_t framework = 0;
  std::uint32_t task = 0;  // master-global launch id
  std::uint32_t slave = 0;
};

struct RunOptions {
  // Fault events to inject, sorted by time (checked). Plans must be
  // well-formed — crash/restart and disconnect/reregister strictly
  // alternating per target with every outage eventually lifted
  // (chaos::ValidateFaultPlan enforces this) — otherwise the run can end
  // with unfinished frameworks, which is fatal.
  std::vector<Fault> faults;
  // When set, every master state transition is appended here (input of the
  // chaos invariant checkers).
  std::vector<MasterEvent>* stream = nullptr;
};

// Deliberately injectable bugs, for testing that the chaos harness catches
// them (tools/fuzz_scenarios --inject_bug). Never set outside tests.
enum class InjectedBug {
  kNone = 0,
  kLeakTaskOnCrash,  // a slave crash "forgets" to kill its first running
                     // task: the leaked task later finishes on a down slave
};
void SetInjectedBugForTesting(InjectedBug bug);

// Runs the offer-based cluster to completion. Frameworks register at their
// start times; the allocator re-runs after every registration, task
// completion, and fault.
SimOutcome RunCluster(const ClusterConfig& config,
                      const std::vector<FrameworkSpec>& frameworks,
                      const RunOptions& options);
SimOutcome RunCluster(const ClusterConfig& config,
                      const std::vector<FrameworkSpec>& frameworks);

// --- Table II helpers -----------------------------------------------------

// The paper's 50-node EC2 fleet: slaves 0-24 manage <1 CPU, 1 GB>, slaves
// 25-49 manage <2 CPUs, 1 GB>.
std::vector<SlaveSpec> PaperFleet();

// The four Table II jobs (start times, task counts, demands, runtimes,
// whitelists). Node numbering follows the paper (1-based in prose, 0-based
// here).
std::vector<FrameworkSpec> TableTwoJobs();

}  // namespace tsf::mesos
