#include "mesos/mesos.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/online/ranker.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/rng.h"

namespace tsf::mesos {
namespace {

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  enum class Kind { kRegister, kTaskFinish, kSample } kind = Kind::kRegister;
  std::size_t framework = 0;
  std::size_t slave = 0;

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct FrameworkState {
  FrameworkSpec spec;
  bool registered = false;
  long launched = 0;   // tasks started so far
  long running = 0;
  long finished = 0;
  double h = 0.0;
  // Cached share-key state (core/online/ranker.h): key == running * coeff,
  // updated on every launch/finish instead of recomputed per comparison.
  double coeff = 0.0;
  double key = 0.0;
  std::vector<bool> allowed;  // per slave
  FrameworkStats stats;
#if defined(TSF_TELEMETRY)
  // Per-framework offer outcome counters (mesos.offers.<name>.accepted /
  // .declined); resolved once at registration, incremented when enabled.
  telemetry::Counter* accepted_counter = nullptr;
  telemetry::Counter* declined_counter = nullptr;
#endif

  bool Active() const {
    return registered && finished < spec.num_tasks;
  }
  bool HasPending() const { return launched < spec.num_tasks; }
  void UpdateKey() { key = static_cast<double>(running) * coeff; }
};

}  // namespace

std::vector<SlaveSpec> PaperFleet() {
  std::vector<SlaveSpec> slaves;
  slaves.reserve(50);
  for (int n = 0; n < 50; ++n) {
    SlaveSpec slave;
    slave.capacity =
        n < 25 ? ResourceVector{1.0, 1024.0} : ResourceVector{2.0, 1024.0};
    slave.name = "node" + std::to_string(n + 1);
    slaves.push_back(std::move(slave));
  }
  return slaves;
}

std::vector<FrameworkSpec> TableTwoJobs() {
  auto nodes = [](int lo, int hi) {  // paper's 1-based inclusive ranges
    std::vector<std::size_t> ids;
    for (int n = lo; n <= hi; ++n) ids.push_back(static_cast<std::size_t>(n - 1));
    return ids;
  };
  std::vector<FrameworkSpec> jobs(4);
  jobs[0] = {.name = "job1", .start_time = 0.0, .num_tasks = 1000,
             .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 23.2,
             .runtime_jitter = 0.2, .whitelist = {}, .weight = 1.0};
  jobs[1] = {.name = "job2", .start_time = 10.0, .num_tasks = 150,
             .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 18.3,
             .runtime_jitter = 0.2, .whitelist = nodes(1, 25), .weight = 1.0};
  jobs[2] = {.name = "job3", .start_time = 150.0, .num_tasks = 100,
             .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 21.3,
             .runtime_jitter = 0.2, .whitelist = nodes(1, 10), .weight = 1.0};
  jobs[3] = {.name = "job4", .start_time = 150.0, .num_tasks = 100,
             .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 55.6,
             .runtime_jitter = 0.2, .whitelist = nodes(1, 10), .weight = 1.0};
  // jobs 3 and 4 also whitelist nodes 26-35 (Table II).
  for (int n = 26; n <= 35; ++n) {
    jobs[2].whitelist.push_back(static_cast<std::size_t>(n - 1));
    jobs[3].whitelist.push_back(static_cast<std::size_t>(n - 1));
  }
  return jobs;
}

SimOutcome RunCluster(const ClusterConfig& config,
                      const std::vector<FrameworkSpec>& framework_specs) {
  TSF_CHECK(!config.slaves.empty());
  TSF_CHECK(!framework_specs.empty());
  const std::size_t num_slaves = config.slaves.size();
  const std::size_t num_frameworks = framework_specs.size();
  const std::size_t resources = config.slaves[0].capacity.dimension();

  ResourceVector total(resources);
  for (const SlaveSpec& slave : config.slaves) {
    TSF_CHECK_EQ(slave.capacity.dimension(), resources);
    total += slave.capacity;
  }

  std::vector<ResourceVector> free;
  free.reserve(num_slaves);
  for (const SlaveSpec& slave : config.slaves) free.push_back(slave.capacity);

  Rng rng(config.seed);
  std::vector<FrameworkState> frameworks(num_frameworks);
  for (std::size_t f = 0; f < num_frameworks; ++f) {
    FrameworkState& fw = frameworks[f];
    fw.spec = framework_specs[f];
    TSF_CHECK_GT(fw.spec.num_tasks, 0);
    TSF_CHECK_EQ(fw.spec.demand.dimension(), resources);
    fw.allowed.assign(num_slaves, fw.spec.whitelist.empty());
    for (const std::size_t s : fw.spec.whitelist) {
      TSF_CHECK_LT(s, num_slaves);
      fw.allowed[s] = true;
    }
    bool fits_somewhere = false;
    for (std::size_t s = 0; s < num_slaves; ++s) {
      fw.h += config.slaves[s].capacity.DivisibleTaskCount(fw.spec.demand);
      fits_somewhere |=
          fw.allowed[s] && config.slaves[s].capacity.Fits(fw.spec.demand);
    }
    TSF_CHECK(fits_somewhere) << fw.spec.name << ": no slave fits a task";
    fw.stats.name = fw.spec.name;
    fw.stats.start_time = fw.spec.start_time;
    fw.stats.first_task_time = std::numeric_limits<double>::infinity();
    fw.stats.h = fw.h;
    // Cache the share-key coefficient once per framework, reusing the
    // online scheduler's ranker (kTsf → 1/(h·w); kDrf → dominant share of
    // the normalized demand / w).
    ResourceVector normalized_demand(resources);
    for (std::size_t r = 0; r < resources; ++r)
      if (total[r] > 0.0) normalized_demand[r] = fw.spec.demand[r] / total[r];
    const OnlinePolicy ranker_policy = config.policy == AllocatorPolicy::kTsf
                                           ? OnlinePolicy::Tsf()
                                           : OnlinePolicy::Drf();
    fw.coeff = ShareCoefficient(ranker_policy, normalized_demand,
                                fw.spec.weight, fw.h, fw.h);
    fw.UpdateKey();
#if defined(TSF_TELEMETRY)
    fw.accepted_counter = &telemetry::Registry::Get().GetCounter(
        "mesos.offers." + fw.spec.name + ".accepted");
    fw.declined_counter = &telemetry::Registry::Get().GetCounter(
        "mesos.offers." + fw.spec.name + ".declined");
#endif
  }

  // How many frameworks may ever use each slave. The allocator steers a
  // framework toward its least-contended fitting slave, so flexible jobs
  // drain onto nodes nobody else can use before touching the nodes that
  // constrained jobs depend on (cf. Choosy's placement guidance). Without
  // this, index-order first-fit lets unconstrained jobs squat on scarce
  // whitelisted nodes and the tight packings behind Thm. 1 are missed.
  std::vector<std::size_t> contention(num_slaves, 0);
  for (const FrameworkState& fw : frameworks)
    for (std::size_t s = 0; s < num_slaves; ++s)
      if (fw.allowed[s]) ++contention[s];

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  for (std::size_t f = 0; f < num_frameworks; ++f)
    events.push(Event{frameworks[f].spec.start_time, seq++,
                      Event::Kind::kRegister, f, 0});

  SimOutcome outcome;
  outcome.frameworks.resize(num_frameworks);

  auto sample_timeline = [&](double now) {
    TSF_TRACE_SCOPE("mesos", "sample_timeline");
    SharePoint point;
    point.time = now;
    point.cpu_share.resize(num_frameworks);
    point.mem_share.resize(num_frameworks);
    point.task_share.resize(num_frameworks);
    for (std::size_t f = 0; f < num_frameworks; ++f) {
      const FrameworkState& fw = frameworks[f];
      const auto n = static_cast<double>(fw.running);
      point.cpu_share[f] = total[0] > 0 ? n * fw.spec.demand[0] / total[0] : 0;
      point.mem_share[f] =
          resources > 1 && total[1] > 0 ? n * fw.spec.demand[1] / total[1] : 0;
      point.task_share[f] = n / (fw.h * fw.spec.weight);
    }
    outcome.timeline.push_back(std::move(point));
  };

  // The master's allocation cycle, mirroring the mesos-master + paper's
  // online algorithm: repeatedly offer free resources to the framework with
  // the lowest share that can actually launch a task, launch *one* task,
  // and re-rank. Like Mesos's DRF sorter, the re-rank touches only the
  // launched framework: the others sit in a (key, id) min-heap, so each
  // launch costs O(log frameworks) selection plus the slave probe. Within
  // one cycle free capacity only shrinks, so a framework with no fitting
  // whitelisted slave is dropped from the heap for the rest of the cycle.
  RankHeap offer_heap;
  auto run_allocation = [&](double now) {
    TSF_TRACE_SCOPE("mesos", "offer_round");
    TSF_COUNTER_ADD("mesos.offer_rounds", 1);
    {
      TSF_TRACE_SCOPE("mesos", "allocator_sort");
      offer_heap.Clear();
      offer_heap.Reserve(num_frameworks);
      for (std::size_t f = 0; f < num_frameworks; ++f) {
        const FrameworkState& fw = frameworks[f];
        if (fw.Active() && fw.HasPending()) offer_heap.PushUnordered(fw.key, f);
      }
      offer_heap.Heapify();
    }

    while (!offer_heap.Empty()) {
      const RankEntry entry = offer_heap.PopMin();
      FrameworkState& fw = frameworks[entry.id];
      if (entry.key != fw.key) {  // stale entry: re-rank at the current key
        TSF_COUNTER_ADD("mesos.allocator.stale_entries", 1);
        offer_heap.Push(fw.key, entry.id);
        continue;
      }
      // Least-contended fitting slave for this framework (see `contention`).
      std::size_t slave = num_slaves;
      for (std::size_t s = 0; s < num_slaves; ++s) {
        if (!fw.allowed[s] || !free[s].Fits(fw.spec.demand)) continue;
        if (slave == num_slaves || contention[s] < contention[slave]) slave = s;
      }
      if (slave == num_slaves) {
        // The framework implicitly declines: nothing it may use fits.
        TSF_COUNTER_ADD("mesos.offers.declined", 1);
#if defined(TSF_TELEMETRY)
        if (telemetry::Enabled()) fw.declined_counter->Add(1);
#endif
        continue;  // out for the rest of this cycle
      }

      // Launch exactly one task, then re-rank — re-ranking after every
      // allocation is what keeps simultaneously-registered equal-share
      // frameworks interleaved instead of letting the first one absorb a
      // whole node.
      free[slave] -= fw.spec.demand;
      ++fw.launched;
      ++fw.running;
      fw.UpdateKey();
      TSF_COUNTER_ADD("mesos.offers.accepted", 1);
#if defined(TSF_TELEMETRY)
      if (telemetry::Enabled()) fw.accepted_counter->Add(1);
#endif
      fw.stats.first_task_time = std::min(fw.stats.first_task_time, now);
      const double runtime = fw.spec.mean_runtime *
                             rng.Uniform(1.0 - fw.spec.runtime_jitter,
                                         1.0 + fw.spec.runtime_jitter);
      events.push(Event{now + runtime, seq++, Event::Kind::kTaskFinish,
                        entry.id, slave});
      if (fw.HasPending()) offer_heap.Push(fw.key, entry.id);
    }
  };

  if (config.sample_interval > 0.0)
    events.push(Event{0.0, seq++, Event::Kind::kSample, 0, 0});

  // Events sharing a timestamp are applied as a batch before the allocator
  // runs, mirroring the mesos-master's batched allocation cycle. Without
  // this, four jobs submitted "at the same time" would be allocated one by
  // one, and the first registrant would monopolize the cluster for a whole
  // task wave (tasks are never preempted).
  while (!events.empty()) {
    const double now = events.top().time;
    bool state_changed = false;
    bool sampled = false;
    while (!events.empty() && events.top().time == now) {
      const Event event = events.top();
      events.pop();
      switch (event.kind) {
        case Event::Kind::kRegister:
          frameworks[event.framework].registered = true;
          state_changed = true;
          TSF_TRACE_INSTANT("mesos", "register");
          break;
        case Event::Kind::kTaskFinish: {
          FrameworkState& fw = frameworks[event.framework];
          free[event.slave] += fw.spec.demand;
          --fw.running;
          fw.UpdateKey();
          ++fw.finished;
          ++fw.stats.tasks_run;
          outcome.makespan = std::max(outcome.makespan, now);
          if (fw.finished == fw.spec.num_tasks) fw.stats.completion_time = now;
          state_changed = true;
          break;
        }
        case Event::Kind::kSample:
          sampled = true;
          break;
      }
    }
    if (state_changed) run_allocation(now);
    if (sampled) {
      sample_timeline(now);
      bool work_remaining = false;
      for (const FrameworkState& fw : frameworks)
        if (!fw.registered || fw.finished < fw.spec.num_tasks)
          work_remaining = true;
      if (work_remaining)
        events.push(Event{now + config.sample_interval, seq++,
                          Event::Kind::kSample, 0, 0});
    }
  }

  for (std::size_t f = 0; f < num_frameworks; ++f) {
    TSF_CHECK_EQ(frameworks[f].finished, frameworks[f].spec.num_tasks)
        << frameworks[f].spec.name << " did not finish";
    outcome.frameworks[f] = frameworks[f].stats;
  }
  return outcome;
}

}  // namespace tsf::mesos
