#include "mesos/mesos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <queue>

#include "core/online/ranker.h"
#include "telemetry/telemetry.h"
#include "util/check.h"
#include "util/rng.h"

namespace tsf::mesos {
namespace {

// Test-only bug switch (SetInjectedBugForTesting); relaxed is enough — tests
// set it before the run and reset it after, never concurrently with one.
std::atomic<InjectedBug> g_injected_bug{InjectedBug::kNone};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;
  enum class Kind {
    kRegister,
    kTaskFinish,
    kSample,
    kFault,  // framework field holds the index into RunOptions::faults
    kNudge,  // re-run allocation (decline-timeout expiry), no state change
  } kind = Kind::kRegister;
  std::size_t framework = 0;
  std::size_t slave = 0;
  std::uint64_t task = 0;  // kTaskFinish: master-global launch id

  bool operator>(const Event& other) const {
    if (time != other.time) return time > other.time;
    return seq > other.seq;
  }
};

struct FrameworkState {
  FrameworkSpec spec;
  bool registered = false;
  long launched = 0;   // tasks started so far
  long running = 0;
  long finished = 0;
  double h = 0.0;
  // Cached share-key state (core/online/ranker.h): key == running * coeff,
  // updated on every launch/finish instead of recomputed per comparison.
  double coeff = 0.0;
  double key = 0.0;
  std::vector<bool> allowed;  // per slave
  // Fault state: offers the master will drop/rescind (one per allocation
  // cycle), and the end of the current decline-everything window.
  long pending_drops = 0;
  long pending_rescinds = 0;
  double blackout_until = -std::numeric_limits<double>::infinity();
  FrameworkStats stats;
#if defined(TSF_TELEMETRY)
  // Per-framework offer outcome counters (mesos.offers.<name>.accepted /
  // .declined); resolved once at registration, incremented when enabled.
  telemetry::Counter* accepted_counter = nullptr;
  telemetry::Counter* declined_counter = nullptr;
  // Per-framework time-to-placement histogram (mesos.ttp_ms.<name>, in ms)
  // and the pending-since FIFO behind it: registration enqueues one entry
  // per task, a launch consumes the oldest, kills/failures re-enqueue.
  // Entries arrive in nondecreasing time order, so FIFO matching is exact
  // (the master does not preserve task identity across relaunches).
  // Maintained only while telemetry is enabled.
  telemetry::Histogram* ttp_hist = nullptr;
  std::deque<double> ttp_pending_since;
#endif

  bool Active() const {
    return registered && finished < spec.num_tasks;
  }
  bool HasPending() const { return launched < spec.num_tasks; }
  void UpdateKey() { key = static_cast<double>(running) * coeff; }
};

}  // namespace

void SetInjectedBugForTesting(InjectedBug bug) {
  g_injected_bug.store(bug, std::memory_order_relaxed);
}

std::vector<SlaveSpec> PaperFleet() {
  std::vector<SlaveSpec> slaves;
  slaves.reserve(50);
  for (int n = 0; n < 50; ++n) {
    SlaveSpec slave;
    slave.capacity =
        n < 25 ? ResourceVector{1.0, 1024.0} : ResourceVector{2.0, 1024.0};
    slave.name = "node" + std::to_string(n + 1);
    slaves.push_back(std::move(slave));
  }
  return slaves;
}

std::vector<FrameworkSpec> TableTwoJobs() {
  auto nodes = [](int lo, int hi) {  // paper's 1-based inclusive ranges
    std::vector<std::size_t> ids;
    for (int n = lo; n <= hi; ++n) ids.push_back(static_cast<std::size_t>(n - 1));
    return ids;
  };
  std::vector<FrameworkSpec> jobs(4);
  jobs[0] = {.name = "job1", .start_time = 0.0, .num_tasks = 1000,
             .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 23.2,
             .runtime_jitter = 0.2, .whitelist = {}, .weight = 1.0};
  jobs[1] = {.name = "job2", .start_time = 10.0, .num_tasks = 150,
             .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 18.3,
             .runtime_jitter = 0.2, .whitelist = nodes(1, 25), .weight = 1.0};
  jobs[2] = {.name = "job3", .start_time = 150.0, .num_tasks = 100,
             .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 21.3,
             .runtime_jitter = 0.2, .whitelist = nodes(1, 10), .weight = 1.0};
  jobs[3] = {.name = "job4", .start_time = 150.0, .num_tasks = 100,
             .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 55.6,
             .runtime_jitter = 0.2, .whitelist = nodes(1, 10), .weight = 1.0};
  // jobs 3 and 4 also whitelist nodes 26-35 (Table II).
  for (int n = 26; n <= 35; ++n) {
    jobs[2].whitelist.push_back(static_cast<std::size_t>(n - 1));
    jobs[3].whitelist.push_back(static_cast<std::size_t>(n - 1));
  }
  return jobs;
}

SimOutcome RunCluster(const ClusterConfig& config,
                      const std::vector<FrameworkSpec>& framework_specs) {
  return RunCluster(config, framework_specs, RunOptions{});
}

SimOutcome RunCluster(const ClusterConfig& config,
                      const std::vector<FrameworkSpec>& framework_specs,
                      const RunOptions& options) {
  TSF_CHECK(!config.slaves.empty());
  TSF_CHECK(!framework_specs.empty());
  const std::size_t num_slaves = config.slaves.size();
  const std::size_t num_frameworks = framework_specs.size();
  const std::size_t resources = config.slaves[0].capacity.dimension();

  ResourceVector total(resources);
  for (const SlaveSpec& slave : config.slaves) {
    TSF_CHECK_EQ(slave.capacity.dimension(), resources);
    total += slave.capacity;
  }

  std::vector<ResourceVector> free;
  free.reserve(num_slaves);
  for (const SlaveSpec& slave : config.slaves) free.push_back(slave.capacity);

  // Chaos hooks: faults enter the master's event queue like any other
  // event; the optional stream recorder sees every state transition.
  const std::vector<Fault>& faults = options.faults;
  for (std::size_t i = 1; i < faults.size(); ++i)
    TSF_CHECK_LE(faults[i - 1].time, faults[i].time)
        << "faults must be sorted by time";
  std::vector<bool> up(num_slaves, true);
  // Running tasks per slave as (launch id, framework), so a crash can kill
  // them; `cancelled` marks launch ids whose queued finish event must be
  // skipped when it pops (lazy cancellation).
  struct RunningTask {
    std::uint64_t task = 0;
    std::size_t framework = 0;
  };
  std::vector<std::vector<RunningTask>> on_slave(num_slaves);
  std::vector<char> cancelled;  // indexed by launch id
  std::uint64_t next_task_id = 0;
  const InjectedBug injected_bug =
      g_injected_bug.load(std::memory_order_relaxed);
  auto emit = [&](MasterEvent::Kind kind, double time, std::size_t framework,
                  std::uint64_t task, std::size_t slave) {
    if (options.stream == nullptr) return;
    options.stream->push_back(
        MasterEvent{time, kind, static_cast<std::uint32_t>(framework),
                    static_cast<std::uint32_t>(task),
                    static_cast<std::uint32_t>(slave)});
  };

  Rng rng(config.seed);
  std::vector<FrameworkState> frameworks(num_frameworks);
  for (std::size_t f = 0; f < num_frameworks; ++f) {
    FrameworkState& fw = frameworks[f];
    fw.spec = framework_specs[f];
    TSF_CHECK_GT(fw.spec.num_tasks, 0);
    TSF_CHECK_EQ(fw.spec.demand.dimension(), resources);
    // An all-zero demand would "fit" a slave whose free capacity is exactly
    // zero and launch tasks onto fully-packed (or crashed) nodes.
    TSF_CHECK_GT(fw.spec.demand.MaxComponent(), 0.0)
        << fw.spec.name << ": all-zero task demand";
    fw.allowed.assign(num_slaves, fw.spec.whitelist.empty());
    for (const std::size_t s : fw.spec.whitelist) {
      TSF_CHECK_LT(s, num_slaves);
      fw.allowed[s] = true;
    }
    bool fits_somewhere = false;
    for (std::size_t s = 0; s < num_slaves; ++s) {
      fw.h += config.slaves[s].capacity.DivisibleTaskCount(fw.spec.demand);
      fits_somewhere |=
          fw.allowed[s] && config.slaves[s].capacity.Fits(fw.spec.demand);
    }
    TSF_CHECK(fits_somewhere) << fw.spec.name << ": no slave fits a task";
    fw.stats.name = fw.spec.name;
    fw.stats.start_time = fw.spec.start_time;
    fw.stats.first_task_time = std::numeric_limits<double>::infinity();
    fw.stats.h = fw.h;
    // Cache the share-key coefficient once per framework, reusing the
    // online scheduler's ranker (kTsf → 1/(h·w); kDrf → dominant share of
    // the normalized demand / w).
    ResourceVector normalized_demand(resources);
    for (std::size_t r = 0; r < resources; ++r)
      if (total[r] > 0.0) normalized_demand[r] = fw.spec.demand[r] / total[r];
    const OnlinePolicy ranker_policy = config.policy == AllocatorPolicy::kTsf
                                           ? OnlinePolicy::Tsf()
                                           : OnlinePolicy::Drf();
    fw.coeff = ShareCoefficient(ranker_policy, normalized_demand,
                                fw.spec.weight, fw.h, fw.h);
    fw.UpdateKey();
#if defined(TSF_TELEMETRY)
    fw.accepted_counter = &telemetry::Registry::Get().GetCounter(
        "mesos.offers." + fw.spec.name + ".accepted");
    fw.declined_counter = &telemetry::Registry::Get().GetCounter(
        "mesos.offers." + fw.spec.name + ".declined");
    fw.ttp_hist = &telemetry::Registry::Get().GetHistogram(
        "mesos.ttp_ms." + fw.spec.name);
#endif
  }

  // How many frameworks may ever use each slave. The allocator steers a
  // framework toward its least-contended fitting slave, so flexible jobs
  // drain onto nodes nobody else can use before touching the nodes that
  // constrained jobs depend on (cf. Choosy's placement guidance). Without
  // this, index-order first-fit lets unconstrained jobs squat on scarce
  // whitelisted nodes and the tight packings behind Thm. 1 are missed.
  std::vector<std::size_t> contention(num_slaves, 0);
  for (const FrameworkState& fw : frameworks)
    for (std::size_t s = 0; s < num_slaves; ++s)
      if (fw.allowed[s]) ++contention[s];

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::uint64_t seq = 0;
  for (std::size_t f = 0; f < num_frameworks; ++f)
    events.push(Event{frameworks[f].spec.start_time, seq++,
                      Event::Kind::kRegister, f, 0});
  // Faults are pushed up front, so within a same-instant batch they apply
  // before that instant's task finishes (a finish racing a crash loses: the
  // task is killed and requeued, not completed).
  for (std::size_t i = 0; i < faults.size(); ++i)
    events.push(Event{faults[i].time, seq++, Event::Kind::kFault, i, 0});

  SimOutcome outcome;
  outcome.frameworks.resize(num_frameworks);
  AllocatorStats& stats = outcome.stats;

  auto sample_timeline = [&](double now) {
    TSF_TRACE_SCOPE("mesos", "sample_timeline");
    SharePoint point;
    point.time = now;
    point.cpu_share.resize(num_frameworks);
    point.mem_share.resize(num_frameworks);
    point.task_share.resize(num_frameworks);
    for (std::size_t f = 0; f < num_frameworks; ++f) {
      const FrameworkState& fw = frameworks[f];
      const auto n = static_cast<double>(fw.running);
      point.cpu_share[f] = total[0] > 0 ? n * fw.spec.demand[0] / total[0] : 0;
      point.mem_share[f] =
          resources > 1 && total[1] > 0 ? n * fw.spec.demand[1] / total[1] : 0;
      point.task_share[f] = n / (fw.h * fw.spec.weight);
    }
    outcome.timeline.push_back(std::move(point));
  };

  // The master's allocation cycle, mirroring the mesos-master + paper's
  // online algorithm: repeatedly offer free resources to the framework with
  // the lowest share that can actually launch a task, launch *one* task,
  // and re-rank. Like Mesos's DRF sorter, the re-rank touches only the
  // launched framework: the others sit in a (key, id) min-heap, so each
  // launch costs O(log frameworks) selection plus the slave probe. Within
  // one cycle free capacity only shrinks, so a framework with no fitting
  // whitelisted slave is dropped from the heap for the rest of the cycle.
  RankHeap offer_heap;
  auto run_allocation = [&](double now) {
    TSF_TRACE_SCOPE("mesos", "offer_round");
    TSF_COUNTER_ADD("mesos.offer_rounds", 1);
#if defined(TSF_TELEMETRY)
    // Per-round offer-cycle latency (host wall time). Informational only —
    // the clock reads are skipped entirely unless telemetry is enabled.
    const bool tm_round = telemetry::Enabled();
    const auto tm_round_start = tm_round
                                    ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
#endif
    ++stats.rounds;
    {
      TSF_TRACE_SCOPE("mesos", "allocator_sort");
      offer_heap.Clear();
      offer_heap.Reserve(num_frameworks);
      for (std::size_t f = 0; f < num_frameworks; ++f) {
        const FrameworkState& fw = frameworks[f];
        if (fw.Active() && fw.HasPending()) offer_heap.PushUnordered(fw.key, f);
      }
      offer_heap.Heapify();
    }

    while (!offer_heap.Empty()) {
      const RankEntry entry = offer_heap.PopMin();
      FrameworkState& fw = frameworks[entry.id];
      if (entry.key != fw.key) {  // stale entry: re-rank at the current key
        TSF_COUNTER_ADD("mesos.allocator.stale_entries", 1);
        offer_heap.Push(fw.key, entry.id);
        continue;
      }
      // Injected faults intercept the offer before the framework sees it
      // (drop/rescind) or make the framework sit the cycle out (a
      // decline-timeout window). One offer per cycle either way.
      if (fw.pending_rescinds > 0) {
        --fw.pending_rescinds;
        ++stats.offers_rescinded;
        TSF_COUNTER_ADD("chaos.mesos.offers_rescinded", 1);
        continue;  // out for the rest of this cycle
      }
      if (fw.pending_drops > 0) {
        --fw.pending_drops;
        ++stats.offers_dropped;
        TSF_COUNTER_ADD("chaos.mesos.offers_dropped", 1);
        continue;  // out for the rest of this cycle
      }
      if (now < fw.blackout_until) {
        ++stats.blackout_declines;
        TSF_COUNTER_ADD("chaos.mesos.blackout_declines", 1);
        continue;  // out for the rest of this cycle
      }
      // Least-contended fitting slave for this framework (see `contention`).
      // Down slaves are never offered, and neither are slaves whose free
      // capacity is exactly zero — an offer of nothing can only be declined
      // (and pre-dated the demand-positivity check, could even be accepted).
      std::size_t slave = num_slaves;
      for (std::size_t s = 0; s < num_slaves; ++s) {
        if (!fw.allowed[s]) continue;
        ++stats.probes;
        if (!up[s]) {
          ++stats.down_slave_skips;
          continue;
        }
        if (free[s].IsZero()) {
          ++stats.zero_slave_skips;
          continue;
        }
        if (!free[s].Fits(fw.spec.demand)) continue;
        if (slave == num_slaves || contention[s] < contention[slave]) slave = s;
      }
      if (slave == num_slaves) {
        // The framework implicitly declines: nothing it may use fits.
        ++stats.offers_declined;
        TSF_COUNTER_ADD("mesos.offers.declined", 1);
#if defined(TSF_TELEMETRY)
        if (telemetry::Enabled()) fw.declined_counter->Add(1);
#endif
        continue;  // out for the rest of this cycle
      }

      // Launch exactly one task, then re-rank — re-ranking after every
      // allocation is what keeps simultaneously-registered equal-share
      // frameworks interleaved instead of letting the first one absorb a
      // whole node.
      free[slave] -= fw.spec.demand;
      ++fw.launched;
      ++fw.running;
      fw.UpdateKey();
      ++stats.offers_accepted;
      TSF_COUNTER_ADD("mesos.offers.accepted", 1);
#if defined(TSF_TELEMETRY)
      if (telemetry::Enabled()) {
        fw.accepted_counter->Add(1);
        if (!fw.ttp_pending_since.empty()) {
          const double ttp_ms = (now - fw.ttp_pending_since.front()) * 1000.0;
          fw.ttp_pending_since.pop_front();
          TSF_HISTOGRAM_RECORD("mesos.time_to_placement_ms", ttp_ms);
          fw.ttp_hist->Record(ttp_ms);
        }
      }
#endif
      fw.stats.first_task_time = std::min(fw.stats.first_task_time, now);
      const double runtime = fw.spec.mean_runtime *
                             rng.Uniform(1.0 - fw.spec.runtime_jitter,
                                         1.0 + fw.spec.runtime_jitter);
      const std::uint64_t task_id = next_task_id++;
      cancelled.push_back(0);
      on_slave[slave].push_back(RunningTask{task_id, entry.id});
      emit(MasterEvent::Kind::kLaunch, now, entry.id, task_id, slave);
      events.push(Event{now + runtime, seq++, Event::Kind::kTaskFinish,
                        entry.id, slave, task_id});
      if (fw.HasPending()) offer_heap.Push(fw.key, entry.id);
    }
#if defined(TSF_TELEMETRY)
    if (tm_round) {
      const std::chrono::duration<double, std::micro> tm_round_us =
          std::chrono::steady_clock::now() - tm_round_start;
      TSF_HISTOGRAM_RECORD("mesos.offer_round_us", tm_round_us.count());
    }
#endif
  };

  if (config.sample_interval > 0.0)
    events.push(Event{0.0, seq++, Event::Kind::kSample, 0, 0});

  // Events sharing a timestamp are applied as a batch before the allocator
  // runs, mirroring the mesos-master's batched allocation cycle. Without
  // this, four jobs submitted "at the same time" would be allocated one by
  // one, and the first registrant would monopolize the cluster for a whole
  // task wave (tasks are never preempted).
  while (!events.empty()) {
    const double now = events.top().time;
    bool state_changed = false;
    bool sampled = false;
    while (!events.empty() && events.top().time == now) {
      const Event event = events.top();
      events.pop();
      switch (event.kind) {
        case Event::Kind::kRegister:
          frameworks[event.framework].registered = true;
#if defined(TSF_TELEMETRY)
          if (telemetry::Enabled()) {
            FrameworkState& rfw = frameworks[event.framework];
            for (long t = 0; t < rfw.spec.num_tasks; ++t)
              rfw.ttp_pending_since.push_back(now);
          }
#endif
          emit(MasterEvent::Kind::kRegister, now, event.framework, 0, 0);
          state_changed = true;
          TSF_TRACE_INSTANT("mesos", "register");
          break;
        case Event::Kind::kTaskFinish: {
          // Lazy cancellation: a crash or failure already killed this
          // launch; its finish event is void.
          if (cancelled[event.task]) {
            TSF_COUNTER_ADD("chaos.mesos.stale_finish_events", 1);
            break;
          }
          FrameworkState& fw = frameworks[event.framework];
          std::vector<RunningTask>& on = on_slave[event.slave];
          const auto it = std::find_if(
              on.begin(), on.end(),
              [&](const RunningTask& rt) { return rt.task == event.task; });
          if (it != on.end()) {  // absent only for an injected leaked task
            *it = on.back();
            on.pop_back();
          }
          free[event.slave] += fw.spec.demand;
          --fw.running;
          fw.UpdateKey();
          ++fw.finished;
          ++fw.stats.tasks_run;
          emit(MasterEvent::Kind::kFinish, now, event.framework, event.task,
               event.slave);
          outcome.makespan = std::max(outcome.makespan, now);
          if (fw.finished == fw.spec.num_tasks) fw.stats.completion_time = now;
          state_changed = true;
          break;
        }
        case Event::Kind::kFault: {
          const Fault& fault = faults[event.framework];
          switch (fault.kind) {
            case Fault::Kind::kSlaveCrash: {
              const std::size_t s = fault.target;
              TSF_CHECK_LT(s, num_slaves);
              TSF_CHECK(up[s]) << "crash of already-down slave " << s;
              std::vector<RunningTask>& on = on_slave[s];
              // The injected leak bug "forgets" the slave's first task: it
              // is neither killed nor requeued, so its finish later fires
              // on a slave the stream shows as down — the planted defect
              // the chaos invariants must catch.
              const std::size_t keep =
                  injected_bug == InjectedBug::kLeakTaskOnCrash && !on.empty()
                      ? 1
                      : 0;
              // Kill most-recent-first (matches the DES stream order).
              for (std::size_t r = on.size(); r-- > keep;) {
                const RunningTask rt = on[r];
                cancelled[rt.task] = 1;
                FrameworkState& vfw = frameworks[rt.framework];
                --vfw.running;
                --vfw.launched;  // re-enters the pending pool
                vfw.UpdateKey();
#if defined(TSF_TELEMETRY)
                if (telemetry::Enabled())
                  vfw.ttp_pending_since.push_back(now);
#endif
                emit(MasterEvent::Kind::kKill, now, rt.framework, rt.task, s);
              }
              on.clear();
              up[s] = false;
              free[s] = ResourceVector(resources);
              emit(MasterEvent::Kind::kCrash, now, 0, 0, s);
              TSF_COUNTER_ADD("chaos.mesos.slave_crashes", 1);
              state_changed = true;
              break;
            }
            case Fault::Kind::kSlaveRestart: {
              const std::size_t s = fault.target;
              TSF_CHECK_LT(s, num_slaves);
              TSF_CHECK(!up[s]) << "restart of up slave " << s;
              up[s] = true;
              free[s] = config.slaves[s].capacity;
              emit(MasterEvent::Kind::kRestart, now, 0, 0, s);
              TSF_COUNTER_ADD("chaos.mesos.slave_restarts", 1);
              state_changed = true;
              break;
            }
            case Fault::Kind::kTaskFailure: {
              // Fails the most recently launched task on the slave; a
              // no-op on a down or idle slave (the plan generator does not
              // coordinate failure targets with the schedule).
              const std::size_t s = fault.target;
              TSF_CHECK_LT(s, num_slaves);
              if (!up[s] || on_slave[s].empty()) {
                TSF_COUNTER_ADD("chaos.mesos.task_failures_skipped", 1);
                break;
              }
              const RunningTask rt = on_slave[s].back();
              on_slave[s].pop_back();
              cancelled[rt.task] = 1;
              FrameworkState& vfw = frameworks[rt.framework];
              --vfw.running;
              --vfw.launched;  // re-enters the pending pool
              vfw.UpdateKey();
#if defined(TSF_TELEMETRY)
              if (telemetry::Enabled())
                vfw.ttp_pending_since.push_back(now);
#endif
              free[s] += vfw.spec.demand;
              emit(MasterEvent::Kind::kFail, now, rt.framework, rt.task, s);
              TSF_COUNTER_ADD("chaos.mesos.task_failures", 1);
              state_changed = true;
              break;
            }
            case Fault::Kind::kOfferDrop: {
              TSF_CHECK_LT(fault.target, num_frameworks);
              frameworks[fault.target].pending_drops +=
                  std::max<long>(1, std::lround(fault.param));
              break;
            }
            case Fault::Kind::kOfferRescind: {
              TSF_CHECK_LT(fault.target, num_frameworks);
              ++frameworks[fault.target].pending_rescinds;
              break;
            }
            case Fault::Kind::kDeclineTimeout: {
              TSF_CHECK_LT(fault.target, num_frameworks);
              TSF_CHECK_GT(fault.param, 0.0);
              FrameworkState& fw = frameworks[fault.target];
              fw.blackout_until = std::max(fw.blackout_until, now + fault.param);
              // Without this the framework could starve on an idle
              // cluster: nothing else would ever re-run the allocator.
              events.push(Event{fw.blackout_until, seq++, Event::Kind::kNudge,
                                fault.target, 0});
              break;
            }
            case Fault::Kind::kFrameworkDisconnect: {
              TSF_CHECK_LT(fault.target, num_frameworks);
              FrameworkState& fw = frameworks[fault.target];
              TSF_CHECK(fw.registered)
                  << "disconnect of unregistered framework " << fault.target;
              fw.registered = false;  // no offers; running tasks continue
              emit(MasterEvent::Kind::kDisconnect, now, fault.target, 0, 0);
              TSF_COUNTER_ADD("chaos.mesos.disconnects", 1);
              break;
            }
            case Fault::Kind::kFrameworkReregister: {
              TSF_CHECK_LT(fault.target, num_frameworks);
              FrameworkState& fw = frameworks[fault.target];
              TSF_CHECK(!fw.registered)
                  << "re-register of registered framework " << fault.target;
              fw.registered = true;
              emit(MasterEvent::Kind::kReregister, now, fault.target, 0, 0);
              state_changed = true;
              break;
            }
          }
          break;
        }
        case Event::Kind::kNudge:
          state_changed = true;  // decline-timeout expired: re-offer
          break;
        case Event::Kind::kSample:
          sampled = true;
          break;
      }
    }
    if (state_changed) run_allocation(now);
    if (sampled) {
      sample_timeline(now);
      bool work_remaining = false;
      for (const FrameworkState& fw : frameworks)
        if (!fw.registered || fw.finished < fw.spec.num_tasks)
          work_remaining = true;
      if (work_remaining)
        events.push(Event{now + config.sample_interval, seq++,
                          Event::Kind::kSample, 0, 0});
    }
  }

  for (std::size_t f = 0; f < num_frameworks; ++f) {
    TSF_CHECK_EQ(frameworks[f].finished, frameworks[f].spec.num_tasks)
        << frameworks[f].spec.name << " did not finish";
    outcome.frameworks[f] = frameworks[f].stats;
  }
  return outcome;
}

}  // namespace tsf::mesos
