#include "stats/cdf.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace tsf {

void EmpiricalCdf::Add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::AddAll(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalCdf::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::Quantile(double q) const {
  TSF_CHECK(!samples_.empty());
  TSF_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  EnsureSorted();
  const auto n = samples_.size();
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(n - 1) + 0.5);
  return samples_[std::min(rank, n - 1)];
}

double EmpiricalCdf::FractionBelow(double x) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::Min() const {
  TSF_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double EmpiricalCdf::Max() const {
  TSF_CHECK(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double EmpiricalCdf::Mean() const {
  TSF_CHECK(!samples_.empty());
  double sum = 0;
  for (const double x : samples_) sum += x;
  return sum / static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> EmpiricalCdf::Series(
    std::size_t points) const {
  TSF_CHECK(points >= 2);
  std::vector<std::pair<double, double>> series;
  if (samples_.empty()) return series;
  series.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    series.emplace_back(Quantile(q), q);
  }
  return series;
}

std::string EmpiricalCdf::FormatSeries(std::size_t points,
                                       const std::string& x_label,
                                       const std::string& indent) const {
  std::string out = indent + x_label + "  cum.frac\n";
  for (const auto& [x, f] : Series(points)) {
    char line[96];
    std::snprintf(line, sizeof(line), "%s%12.4f  %8.3f\n", indent.c_str(), x, f);
    out += line;
  }
  return out;
}

const std::vector<double>& EmpiricalCdf::Sorted() const {
  EnsureSorted();
  return samples_;
}

}  // namespace tsf
