// Empirical CDFs for figure reproduction.
//
// The paper's evaluation figures (Figs. 8, 9, 11) are all CDFs. EmpiricalCdf
// collects samples, then answers quantile / fraction-below queries and emits
// a fixed-size series of (x, F(x)) points suitable for plotting or textual
// comparison against the paper's curves.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tsf {

class EmpiricalCdf {
 public:
  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // Value at quantile q in [0,1] (nearest-rank; q=0 min, q=1 max).
  double Quantile(double q) const;

  // Fraction of samples <= x.
  double FractionBelow(double x) const;

  double Min() const;
  double Max() const;
  double Mean() const;

  // `points` evenly spaced quantiles from 0 to 1 inclusive, as (value, cum
  // fraction) pairs — the series a figure plots.
  std::vector<std::pair<double, double>> Series(std::size_t points) const;

  // Renders Series() as aligned "  value  fraction" lines.
  std::string FormatSeries(std::size_t points, const std::string& x_label,
                           const std::string& indent = "  ") const;

  // Raw sorted samples (sorts lazily).
  const std::vector<double>& Sorted() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace tsf
