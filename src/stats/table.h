// Aligned plain-text table printer used by the bench harnesses to emit the
// paper's tables/figure series in a stable, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace tsf {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Each row must have exactly as many cells as the header.
  void AddRow(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);
  static std::string Percent(double fraction, int precision = 1);

  // Renders with column alignment and a rule under the header.
  std::string Format(const std::string& indent = "  ") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tsf
