#include "stats/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace tsf {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  TSF_CHECK(!header_.empty());
}

void TextTable::AddRow(std::vector<std::string> row) {
  TSF_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string TextTable::Percent(double fraction, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision, 100.0 * fraction);
  return buffer;
}

std::string TextTable::Format(const std::string& indent) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = indent;
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Left-align the first column (labels), right-align the rest (numbers).
      const auto pad = widths[c] - row[c].size();
      if (c == 0) {
        line += row[c] + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + row[c];
      }
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = emit_row(header_);
  std::size_t rule = indent.size();
  for (std::size_t c = 0; c < widths.size(); ++c) rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(indent.size(), ' ') +
         std::string(rule - indent.size(), '-') + '\n';
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

}  // namespace tsf
