// Streaming summary statistics (Welford) and simple aggregates.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace tsf {

// Accepts values one at a time; mean/variance use Welford's algorithm so the
// result is numerically stable even for long, large-magnitude streams.
class Summary {
 public:
  void Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  // Merges another summary (parallel reduction of per-thread partials).
  void Merge(const Summary& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::size_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Sample variance (n-1 denominator); 0 when fewer than two values.
  double variance() const {
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace tsf
