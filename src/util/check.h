// Runtime check macros.
//
// TSF_CHECK(cond) aborts with a diagnostic when `cond` is false, in every
// build type. TSF_DCHECK is compiled out in NDEBUG builds and is meant for
// hot paths. Both support streaming extra context:
//
//   TSF_CHECK(x >= 0) << "x went negative: " << x;
//
// The _EQ/_NE/_LT/_LE/_GT/_GE variants additionally stream both operands on
// failure; TSF_DCHECK_* are their compiled-out-in-NDEBUG twins, so hot paths
// get operand diagnostics in debug builds at zero release cost.
//
// Following the Core Guidelines (P.7: catch run-time errors early; I.6/I.8:
// state preconditions), library entry points validate their inputs with
// TSF_CHECK rather than silently producing garbage. tools/lint_repo.py
// enforces that rule mechanically for src/core and src/sim.
//
// Parse-safety: each macro expands to a single *expression* statement — a
// fully parenthesized-condition ternary whose false arm is voidified — never
// to an if/else fragment. An expression cannot capture a following `else`,
// so `if (x) TSF_CHECK(y) << "ctx"; else Handle();` binds the else to the
// user's if, exactly as written. (A statement-shaped expansion such as
// `if (cond) {} else builder` — even fenced behind `switch (0)` — trips
// gcc's -Wdangling-else at every `if (x) TSF_CHECK(y);` call site.) The
// top-level CMakeLists promotes -Wdangling-else to an error so a regression
// of this property cannot land silently; util_test has the parse cases.
#pragma once

#include <sstream>
#include <string>

namespace tsf {

// Aborts the process after printing `file:line: message`. Marked noreturn so
// control-flow analysis understands check failures terminate.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace detail {

// Collects streamed context for a failed check and fires in the destructor.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() noexcept(false) {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Adapts the streamed builder expression to `void` so both branches of the
// TSF_CHECK ternary have the same type. operator& binds looser than <<, so
// all streamed context lands in the builder first.
struct Voidifier {
  void operator&(const CheckMessageBuilder&) const {}
};

// Swallows the streamed operands of a disabled TSF_DCHECK at zero cost.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};
struct NullVoidifier {
  void operator&(const NullStream&) const {}
};

}  // namespace detail
}  // namespace tsf

#define TSF_CHECK(cond)       \
  ((cond)) ? (void)0          \
           : ::tsf::detail::Voidifier() & ::tsf::detail::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#define TSF_CHECK_OP(a, op, b) TSF_CHECK((a)op(b)) << " lhs=" << (a) << " rhs=" << (b)
#define TSF_CHECK_EQ(a, b) TSF_CHECK_OP(a, ==, b)
#define TSF_CHECK_NE(a, b) TSF_CHECK_OP(a, !=, b)
#define TSF_CHECK_LT(a, b) TSF_CHECK_OP(a, <, b)
#define TSF_CHECK_LE(a, b) TSF_CHECK_OP(a, <=, b)
#define TSF_CHECK_GT(a, b) TSF_CHECK_OP(a, >, b)
#define TSF_CHECK_GE(a, b) TSF_CHECK_OP(a, >=, b)

#ifdef NDEBUG
// `true || (cond)` never evaluates cond but keeps its operands odr-used, so
// variables referenced only from a TSF_DCHECK do not turn -Wunused in
// release builds; the short-circuit, dead arm, and NullStream all fold away.
#define TSF_DCHECK(cond)         \
  (true || (cond)) ? (void)0    \
                   : ::tsf::detail::NullVoidifier() & ::tsf::detail::NullStream()
#define TSF_DCHECK_OP(a, op, b) TSF_DCHECK((a)op(b)) << (a) << (b)
#else
#define TSF_DCHECK(cond) TSF_CHECK(cond)
#define TSF_DCHECK_OP(a, op, b) TSF_CHECK_OP(a, op, b)
#endif

#define TSF_DCHECK_EQ(a, b) TSF_DCHECK_OP(a, ==, b)
#define TSF_DCHECK_NE(a, b) TSF_DCHECK_OP(a, !=, b)
#define TSF_DCHECK_LT(a, b) TSF_DCHECK_OP(a, <, b)
#define TSF_DCHECK_LE(a, b) TSF_DCHECK_OP(a, <=, b)
#define TSF_DCHECK_GT(a, b) TSF_DCHECK_OP(a, >, b)
#define TSF_DCHECK_GE(a, b) TSF_DCHECK_OP(a, >=, b)
