// Fixed-size thread pool with a parallel-for helper.
//
// The evaluation section averages every simulation over many seeds; those
// replicas are embarrassingly parallel, so the experiment runner fans them
// out over ThreadPool::ParallelFor. All parallelism in this codebase is
// explicit (tasks submitted here) per the HPC guidance: no hidden global
// thread state, deterministic results regardless of worker count because
// each index owns its slot in the output vector.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace tsf {

class ThreadPool {
 public:
  // threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  // Enqueues a task; tasks may not throw (they run under noexcept workers).
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void Wait();

  // Runs fn(i) for i in [0, n), distributing indices over the pool and
  // blocking until all complete. fn must be safe to call concurrently for
  // distinct indices.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ TSF_GUARDED_BY(mutex_);
  CondVar work_available_;
  CondVar all_done_;
  std::size_t in_flight_ TSF_GUARDED_BY(mutex_) = 0;
  bool shutting_down_ TSF_GUARDED_BY(mutex_) = false;
};

}  // namespace tsf
