// Minimal leveled logger.
//
// Usage:
//   TSF_LOG(INFO) << "scheduled " << n << " tasks";
//
// The active level is read once from the TSF_LOG_LEVEL environment variable
// (TRACE, DEBUG, INFO, WARN, ERROR; default WARN so tests and benches stay
// quiet) and can be overridden programmatically with SetLogLevel. Output goes
// to stderr; each record carries a monotonic timestamp and the source
// location. Thread-safe: records are formatted into a local buffer and
// written with a single fwrite.
#pragma once

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string_view>

namespace tsf {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

// Returns the currently active log threshold.
LogLevel GetLogLevel();

// Overrides the threshold (e.g. from a --verbose flag).
void SetLogLevel(LogLevel level);

// Parses "trace|debug|info|warn|error" (case-insensitive). Unknown strings
// map to kWarn; pass `recognized` to distinguish a real "warn" from that
// fallback (the TSF_LOG_LEVEL env path warns once on unknown values).
LogLevel ParseLogLevel(std::string_view text);
LogLevel ParseLogLevel(std::string_view text, bool* recognized);

namespace detail {

// One log record; emits itself on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* file, int line);
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord();

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidifier {
  void operator&(const LogRecord&) const {}
};

}  // namespace detail
}  // namespace tsf

#define TSF_LOG_TRACE ::tsf::LogLevel::kTrace
#define TSF_LOG_DEBUG ::tsf::LogLevel::kDebug
#define TSF_LOG_INFO ::tsf::LogLevel::kInfo
#define TSF_LOG_WARN ::tsf::LogLevel::kWarn
#define TSF_LOG_ERROR ::tsf::LogLevel::kError

// Like TSF_CHECK (util/check.h), the macros expand to a single voidified
// ternary *expression*, never an if/else fragment — an expression cannot
// capture a following `else`, so `if (x) TSF_LOG(WARN) << ...; else ...`
// parses as written (and -Werror=dangling-else keeps it that way).
#define TSF_LOG(severity)                                          \
  (TSF_LOG_##severity < ::tsf::GetLogLevel())                      \
      ? (void)0                                                    \
      : ::tsf::detail::LogVoidifier() &                            \
            ::tsf::detail::LogRecord(TSF_LOG_##severity, __FILE__, __LINE__)

// Rate-limited variant for hot-path diagnostics: emits the 1st, (n+1)th,
// (2n+1)th, ... record that passes the level check at this call site, so a
// per-event warning cannot flood stderr at TRACE/DEBUG levels. Suppressed
// records are not counted — lowering the level later starts the cadence
// fresh. The per-site counter is shared across threads (relaxed increment).
#define TSF_LOG_EVERY_N(severity, n)                                        \
  (TSF_LOG_##severity < ::tsf::GetLogLevel() ||                             \
   ([]() -> ::std::atomic<::std::uint64_t>& {                               \
      static ::std::atomic<::std::uint64_t> tsf_log_site_count{0};          \
      return tsf_log_site_count;                                            \
    }()                                                                     \
        .fetch_add(1, ::std::memory_order_relaxed) %                        \
    static_cast<::std::uint64_t>(n)) != 0)                                  \
      ? (void)0                                                             \
      : ::tsf::detail::LogVoidifier() &                                     \
            ::tsf::detail::LogRecord(TSF_LOG_##severity, __FILE__, __LINE__)
