// Minimal leveled logger.
//
// Usage:
//   TSF_LOG(INFO) << "scheduled " << n << " tasks";
//
// The active level is read once from the TSF_LOG_LEVEL environment variable
// (TRACE, DEBUG, INFO, WARN, ERROR; default WARN so tests and benches stay
// quiet) and can be overridden programmatically with SetLogLevel. Output goes
// to stderr; each record carries a monotonic timestamp and the source
// location. Thread-safe: records are formatted into a local buffer and
// written with a single fwrite.
#pragma once

#include <sstream>
#include <string_view>

namespace tsf {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
};

// Returns the currently active log threshold.
LogLevel GetLogLevel();

// Overrides the threshold (e.g. from a --verbose flag).
void SetLogLevel(LogLevel level);

// Parses "trace|debug|info|warn|error" (case-insensitive). Unknown strings
// map to kWarn.
LogLevel ParseLogLevel(std::string_view text);

namespace detail {

// One log record; emits itself on destruction.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* file, int line);
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  ~LogRecord();

  template <typename T>
  LogRecord& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogVoidifier {
  void operator&(const LogRecord&) const {}
};

}  // namespace detail
}  // namespace tsf

#define TSF_LOG_TRACE ::tsf::LogLevel::kTrace
#define TSF_LOG_DEBUG ::tsf::LogLevel::kDebug
#define TSF_LOG_INFO ::tsf::LogLevel::kInfo
#define TSF_LOG_WARN ::tsf::LogLevel::kWarn
#define TSF_LOG_ERROR ::tsf::LogLevel::kError

#define TSF_LOG(severity)                                          \
  (TSF_LOG_##severity < ::tsf::GetLogLevel())                      \
      ? (void)0                                                    \
      : ::tsf::detail::LogVoidifier() &                            \
            ::tsf::detail::LogRecord(TSF_LOG_##severity, __FILE__, __LINE__)
