#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace tsf {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "FATAL %s:%d: check failed: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace tsf
