// Tiny command-line flag parser for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and bare `--name` for booleans.
// Every flag also reads a TSF_<NAME> environment variable as its default so
// the whole bench suite can be re-scaled without editing command lines
// (e.g. TSF_SEEDS=50 ./bench_fig9_job_perf).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace tsf {

class Flags {
 public:
  // Parses argv; unknown flags are an error (exit 2) so typos do not
  // silently run the default experiment. Positional arguments are kept in
  // positional(). `allowed` lists every legal flag name with a help string.
  Flags(int argc, char** argv,
        std::vector<std::pair<std::string, std::string>> allowed);

  // Typed accessors; `name` without leading dashes. Fall back order:
  // command line > TSF_<NAME> env var > fallback argument.
  std::string GetString(std::string_view name, std::string_view fallback) const;
  std::int64_t GetInt(std::string_view name, std::int64_t fallback) const;
  double GetDouble(std::string_view name, double fallback) const;
  bool GetBool(std::string_view name, bool fallback) const;

  bool Has(std::string_view name) const;
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  // Returns the raw value for a flag, or empty optional semantics via bool.
  bool Lookup(std::string_view name, std::string* out) const;

  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
};

}  // namespace tsf
