#include "util/flags.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <set>

namespace tsf {
namespace {

// Maps a flag name to its TSF_<NAME> environment variable.
std::string EnvName(std::string_view flag) {
  std::string env = "TSF_";
  for (const char c : flag)
    env += c == '-' ? '_' : static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return env;
}

[[noreturn]] void UsageError(const std::string& message,
                             const std::vector<std::pair<std::string, std::string>>& allowed) {
  std::fprintf(stderr, "error: %s\n\nflags:\n", message.c_str());
  for (const auto& [name, help] : allowed)
    std::fprintf(stderr, "  --%-18s %s\n", name.c_str(), help.c_str());
  std::exit(2);
}

}  // namespace

Flags::Flags(int argc, char** argv,
             std::vector<std::pair<std::string, std::string>> allowed) {
  std::set<std::string> names;
  for (const auto& [name, help] : allowed) names.insert(name);
  names.insert("help");

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    std::string name, value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = std::string(arg.substr(0, eq));
      value = std::string(arg.substr(eq + 1));
    } else {
      name = std::string(arg);
      // `--flag value` form, unless the next token is another flag.
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!names.contains(name)) UsageError("unknown flag --" + name, allowed);
    if (name == "help") UsageError("usage", allowed);
    values_[name] = value;
  }
}

bool Flags::Lookup(std::string_view name, std::string* out) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    *out = it->second;
    return true;
  }
  if (const char* env = std::getenv(EnvName(name).c_str()); env != nullptr) {
    *out = env;
    return true;
  }
  return false;
}

bool Flags::Has(std::string_view name) const {
  std::string ignored;
  return Lookup(name, &ignored);
}

std::string Flags::GetString(std::string_view name, std::string_view fallback) const {
  std::string value;
  return Lookup(name, &value) ? value : std::string(fallback);
}

std::int64_t Flags::GetInt(std::string_view name, std::int64_t fallback) const {
  std::string value;
  if (!Lookup(name, &value)) return fallback;
  return std::strtoll(value.c_str(), nullptr, 10);
}

double Flags::GetDouble(std::string_view name, double fallback) const {
  std::string value;
  if (!Lookup(name, &value)) return fallback;
  return std::strtod(value.c_str(), nullptr);
}

bool Flags::GetBool(std::string_view name, bool fallback) const {
  std::string value;
  if (!Lookup(name, &value)) return fallback;
  return value == "true" || value == "1" || value == "yes" || value.empty();
}

}  // namespace tsf
