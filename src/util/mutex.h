// Annotated mutex / condition-variable wrappers.
//
// Every sleeping lock in the repo is a tsf::Mutex held through a
// tsf::MutexLock — never a bare std::mutex — so clang's thread-safety
// analysis (util/thread_annotations.h, the `analysis` preset) can see every
// acquisition and check TSF_GUARDED_BY fields. The lock-discipline lint in
// tools/lint_repo.py rejects raw std::mutex/std::lock_guard/std::unique_lock
// outside this header, which keeps the discipline enforced even on hosts
// whose compiler ignores the annotations.
//
// CondVar waits are written as explicit predicate loops
// (`while (!pred) cv.Wait(lock);`) rather than the std::condition_variable
// predicate overload: the predicate then reads guarded fields inside the
// annotated caller, where the analysis can prove the lock is held.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace tsf {

class CondVar;

// A std::mutex declared as a thread-safety capability. Lock/Unlock exist for
// the analysis and for the rare manual protocol; prefer MutexLock.
class TSF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() TSF_ACQUIRE() { mu_.lock(); }
  void Unlock() TSF_RELEASE() { mu_.unlock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// RAII scoped acquisition of a Mutex. Holds a std::unique_lock underneath so
// CondVar::Wait can release/reacquire during a sleep.
class TSF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) TSF_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() TSF_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable bound to MutexLock. Wait atomically releases the lock
// while sleeping and reacquires it before returning, so from the caller's
// (and the analysis') point of view the capability is held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace tsf
