// Deterministic pseudo-random number generation.
//
// All stochastic components (workload synthesis, runtime jitter, simulation
// seeds) draw from tsf::Rng so experiments are reproducible bit-for-bit from
// a single seed. The engine is xoshiro256** seeded via splitmix64, which is
// fast, has a 2^256-1 period, and — unlike std::mt19937 seeded from a single
// int — gives well-decorrelated streams for consecutive seeds, which matters
// when fanning one experiment out over 50 seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace tsf {

// splitmix64: used for seed expansion. Public so tests can pin values.
constexpr std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  // Re-seeds the engine; consecutive seeds yield independent streams.
  void Seed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    TSF_DCHECK(lo <= hi);
    return lo + (hi - lo) * Uniform();
  }

  // Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection.
  std::uint64_t Below(std::uint64_t bound) {
    TSF_DCHECK(bound > 0);
    // Rejection-free fast path is fine here: bias is < 2^-64 * bound, far
    // below anything observable in our experiment sizes.
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * bound;
    return static_cast<std::uint64_t>(product >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t Int(std::int64_t lo, std::int64_t hi) {
    TSF_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Bernoulli trial.
  bool Chance(double p) { return Uniform() < p; }

  // Standard normal via Box–Muller (no cached spare; simplicity over speed).
  double Normal() {
    double u1 = Uniform();
    while (u1 <= 0.0) u1 = Uniform();
    const double u2 = Uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double Normal(double mean, double stddev) { return mean + stddev * Normal(); }

  // Log-normal with the given parameters of the underlying normal.
  double LogNormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  // Exponential with the given rate (events per unit time).
  double Exponential(double rate) {
    TSF_DCHECK(rate > 0);
    double u = Uniform();
    while (u <= 0.0) u = Uniform();
    return -std::log(u) / rate;
  }

  // Bounded Pareto on [lo, hi] with tail index alpha; used for heavy-tailed
  // job sizes.
  double BoundedPareto(double alpha, double lo, double hi) {
    TSF_DCHECK(alpha > 0);
    TSF_DCHECK(0 < lo && lo < hi);
    const double u = Uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  // Samples an index according to non-negative weights (linear scan; the
  // weight vectors in this codebase are tiny).
  std::size_t WeightedIndex(const std::vector<double>& weights) {
    TSF_DCHECK(!weights.empty());
    double total = 0;
    for (const double w : weights) {
      TSF_DCHECK(w >= 0);
      total += w;
    }
    TSF_DCHECK(total > 0);
    double target = Uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0) return i;
    }
    return weights.size() - 1;
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[Below(i)]);
    }
  }

 private:
  static constexpr std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace tsf
