// Clang thread-safety-analysis (annotalysis) macros.
//
// These wrap clang's capability attributes so lock discipline is checked at
// compile time under `-Wthread-safety` (the `analysis` CMake preset turns it
// on with -Werror); on every other compiler they expand to nothing. The
// vocabulary mirrors the C++ capability model:
//
//   TSF_CAPABILITY("mutex")   a type whose instances are lockable things
//   TSF_SCOPED_CAPABILITY     an RAII type that acquires in its constructor
//                             and releases in its destructor
//   TSF_GUARDED_BY(mu)        a field readable/writable only while mu is held
//   TSF_PT_GUARDED_BY(mu)     like GUARDED_BY, for the pointee of a pointer
//   TSF_REQUIRES(mu)          a function callable only while mu is held
//   TSF_ACQUIRE(mu)/TSF_RELEASE(mu)  a function that takes / drops mu
//   TSF_EXCLUDES(mu)          a function that must NOT be called holding mu
//
// Every mutex-shaped object in the repo goes through the annotated wrappers
// (util/mutex.h for sleeping locks, telemetry/spinlock.h for spinlocks); the
// lock-discipline lint in tools/lint_repo.py enforces that, so the analysis
// sees every acquisition even on gcc-only development hosts.
//
// This header is dependency-free on purpose: telemetry (which otherwise has
// no repo dependencies) includes it for the spinlock annotations.
#pragma once

#if defined(__clang__)
#define TSF_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define TSF_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off clang
#endif

#define TSF_CAPABILITY(x) TSF_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

#define TSF_SCOPED_CAPABILITY TSF_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

#define TSF_GUARDED_BY(x) TSF_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

#define TSF_PT_GUARDED_BY(x) TSF_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

#define TSF_ACQUIRED_BEFORE(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

#define TSF_ACQUIRED_AFTER(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

#define TSF_REQUIRES(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

#define TSF_ACQUIRE(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

#define TSF_RELEASE(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

#define TSF_TRY_ACQUIRE(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

#define TSF_EXCLUDES(...) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

#define TSF_ASSERT_CAPABILITY(x) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

#define TSF_RETURN_CAPABILITY(x) \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

#define TSF_NO_THREAD_SAFETY_ANALYSIS \
  TSF_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
