#include "util/thread_pool.h"

#include <atomic>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace tsf {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : hw;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  TSF_CHECK(task != nullptr);
  {
    const MutexLock lock(mutex_);
    TSF_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push_back(std::move(task));
    ++in_flight_;
    TSF_GAUGE_SET("threadpool.queue_depth", queue_.size());
    TSF_COUNTER_ADD("threadpool.tasks_submitted", 1);
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(mutex_);
  // Explicit predicate loop (not the cv predicate overload) so the guarded
  // read of in_flight_ happens here, where the analysis sees the lock held.
  while (in_flight_ != 0) all_done_.Wait(lock);
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Dynamic scheduling over a shared counter: replicas have very uneven
  // runtimes (different policies, different seeds), so static chunking would
  // leave workers idle.
  auto next = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t tasks = std::min(n, thread_count());
  for (std::size_t t = 0; t < tasks; ++t) {
    Submit([next, n, &fn] {
      for (std::size_t i = next->fetch_add(1); i < n; i = next->fetch_add(1))
        fn(i);
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop_front();
      TSF_GAUGE_SET("threadpool.queue_depth", queue_.size());
    }
    task();
    {
      const MutexLock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace tsf
