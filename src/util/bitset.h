// DynamicBitset: a fixed-size-at-construction bitset sized at run time.
//
// Used for job→machine eligibility masks (thousands of machines per job),
// where std::bitset's compile-time size does not fit and std::vector<bool>
// lacks word-level operations (count, intersects, iterate-set-bits).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace tsf {

class DynamicBitset {
 public:
  DynamicBitset() = default;

  // All bits start clear.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  bool Test(std::size_t i) const {
    TSF_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void Set(std::size_t i) {
    TSF_DCHECK(i < size_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  void Reset(std::size_t i) {
    TSF_DCHECK(i < size_);
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }

  void Assign(std::size_t i, bool value) { value ? Set(i) : Reset(i); }

  void SetAll() {
    for (auto& w : words_) w = ~std::uint64_t{0};
    ClearPadding();
  }

  void ResetAll() {
    for (auto& w : words_) w = 0;
  }

  // Number of set bits.
  std::size_t Count() const {
    std::size_t n = 0;
    for (const auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool Any() const {
    for (const auto w : words_)
      if (w != 0) return true;
    return false;
  }

  bool None() const { return !Any(); }
  bool All() const { return Count() == size_; }

  // True if this and other share at least one set bit.
  bool Intersects(const DynamicBitset& other) const {
    TSF_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  // Number of bits set in both this and other (popcount of the AND, without
  // materializing it).
  std::size_t CountAnd(const DynamicBitset& other) const {
    TSF_DCHECK(size_ == other.size_);
    std::size_t n = 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      n += static_cast<std::size_t>(std::popcount(words_[i] & other.words_[i]));
    return n;
  }

  DynamicBitset& operator&=(const DynamicBitset& other) {
    TSF_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }

  DynamicBitset& operator|=(const DynamicBitset& other) {
    TSF_DCHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  friend DynamicBitset operator&(DynamicBitset a, const DynamicBitset& b) {
    a &= b;
    return a;
  }
  friend DynamicBitset operator|(DynamicBitset a, const DynamicBitset& b) {
    a |= b;
    return a;
  }

  friend bool operator==(const DynamicBitset& a, const DynamicBitset& b) {
    return a.size_ == b.size_ && a.words_ == b.words_;
  }

  // Calls fn(index) for every set bit, in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  // Calls fn(index) for set bits in ascending order until fn returns true
  // (stop) or the bits run out. Returns true iff fn stopped the iteration.
  template <typename Fn>
  bool ForEachSetUntil(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = std::countr_zero(w);
        if (fn(wi * 64 + static_cast<std::size_t>(bit))) return true;
        w &= w - 1;
      }
    }
    return false;
  }

  // Index of the first set bit, or size() if none.
  std::size_t FindFirst() const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi)
      if (words_[wi] != 0)
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(words_[wi]));
    return size_;
  }

  // Index of the first set bit >= from, or size() if none. Lets callers keep
  // a resumable cursor over the set bits without materializing them.
  std::size_t FindNextSet(std::size_t from) const {
    if (from >= size_) return size_;
    std::size_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~std::uint64_t{0} << (from & 63));
    for (;;) {
      if (w != 0)
        return wi * 64 + static_cast<std::size_t>(std::countr_zero(w));
      if (++wi == words_.size()) return size_;
      w = words_[wi];
    }
  }

 private:
  // SetAll may set bits beyond size_ in the last word; clear them so Count
  // and comparisons stay exact.
  void ClearPadding() {
    const std::size_t tail = size_ & 63;
    if (tail != 0 && !words_.empty())
      words_.back() &= (std::uint64_t{1} << tail) - 1;
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tsf
