#include "util/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace tsf {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

LogLevel InitialLevel() {
  const char* env = std::getenv("TSF_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kWarn;
  bool recognized = false;
  const LogLevel level = ParseLogLevel(env, &recognized);
  // One-time (this runs once, under the LevelStore static init): a typo'd
  // TSF_LOG_LEVEL used to silently behave like WARN.
  if (!recognized)
    std::fprintf(stderr,
                 "[log] unknown TSF_LOG_LEVEL value \"%s\" "
                 "(expected trace|debug|info|warn|error); defaulting to WARN\n",
                 env);
  return level;
}

std::atomic<int>& LevelStore() {
  static std::atomic<int> level{static_cast<int>(InitialLevel())};
  return level;
}

// Seconds since the first log call; cheap and monotonic.
double ElapsedSeconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Trims a path down to its basename for compact records.
const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStore().load(std::memory_order_relaxed)); }

void SetLogLevel(LogLevel level) {
  LevelStore().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel ParseLogLevel(std::string_view text) {
  return ParseLogLevel(text, nullptr);
}

LogLevel ParseLogLevel(std::string_view text, bool* recognized) {
  std::string lower(text);
  for (char& c : lower) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (recognized != nullptr) *recognized = true;
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (recognized != nullptr) *recognized = false;
  return LogLevel::kWarn;
}

namespace detail {

LogRecord::LogRecord(LogLevel level, const char* file, int line) : level_(level) {
  char prefix[128];
  std::snprintf(prefix, sizeof(prefix), "[%9.3f %-5s %s:%d] ", ElapsedSeconds(),
                LevelName(level), Basename(file), line);
  stream_ << prefix;
}

LogRecord::~LogRecord() {
  stream_ << '\n';
  const std::string text = stream_.str();
  std::fwrite(text.data(), 1, text.size(), stderr);
  if (level_ >= LogLevel::kError) std::fflush(stderr);
}

}  // namespace detail
}  // namespace tsf
