#include "core/resource.h"

#include <cmath>
#include <cstdio>
#include <limits>

namespace tsf {

double ResourceVector::DivisibleTaskCount(const ResourceVector& demand) const {
  TSF_DCHECK(dimension() == demand.dimension());
  double count = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < values_.size(); ++r) {
    if (demand.values_[r] > 0.0)
      count = std::min(count, values_[r] / demand.values_[r]);
  }
  return count;
}

long ResourceVector::IntegralTaskCount(const ResourceVector& demand,
                                       double tolerance) const {
  const double divisible = DivisibleTaskCount(demand);
  if (std::isinf(divisible)) return std::numeric_limits<long>::max();
  // Nudge up so that e.g. 5.999999999 (an exact 6 polluted by round-off)
  // still counts as 6 tasks.
  return static_cast<long>(std::floor(divisible + tolerance));
}

std::string ResourceVector::ToString(int precision) const {
  std::string out = "<";
  for (std::size_t r = 0; r < values_.size(); ++r) {
    char buffer[48];
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, values_[r]);
    out += buffer;
    if (r + 1 < values_.size()) out += ", ";
  }
  out += ">";
  return out;
}

}  // namespace tsf
