// Machines, jobs, and the shared cluster (Sec. II-B).
//
// Cluster owns the machine list and the datacenter-wide totals used to
// normalize capacities and demands. SharingProblem bundles a cluster with a
// set of jobs; CompiledProblem is its allocator-ready form: normalized
// vectors, eligibility bitsets (the constraint graph), and the monopoly task
// counts h_i (unconstrained) and g_i (constrained) that the share
// definitions divide by.
#pragma once

#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/resource.h"
#include "util/bitset.h"

namespace tsf {

using UserId = std::size_t;

struct Machine {
  MachineId id = 0;
  std::string name;
  ResourceVector capacity;   // raw units, e.g. <2 cores, 1024 MB>
  AttributeSet attributes;
};

// A datacenter job == a user of the sharing policy (the paper uses the terms
// interchangeably). Fields beyond the allocator inputs (num_tasks, arrival,
// runtimes) are used by the simulator and the Mesos-like prototype.
struct JobSpec {
  UserId id = 0;
  std::string name;
  ResourceVector demand;     // per-task demand, raw units
  double weight = 1.0;
  Constraint constraint;

  // Workload attributes (ignored by the offline allocators).
  long num_tasks = 0;
  double arrival_time = 0.0;
  double mean_task_runtime = 0.0;
};

class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<Machine> machines);

  // Builder-style addition; returns the machine's id.
  MachineId AddMachine(ResourceVector capacity, AttributeSet attributes = {},
                       std::string name = {});

  std::size_t num_machines() const { return machines_.size(); }
  std::size_t num_resources() const { return total_.dimension(); }
  const Machine& machine(MachineId m) const { return machines_.at(m); }
  const std::vector<Machine>& machines() const { return machines_; }

  // Datacenter-wide totals (raw units).
  const ResourceVector& total() const { return total_; }

  // capacity of machine m divided component-wise by total() — the paper's
  // normalized configuration vector C_m.
  ResourceVector NormalizedCapacity(MachineId m) const;

  // demand divided component-wise by total() — the paper's normalized demand
  // vector d_i. Resources with zero datacenter total require zero demand.
  ResourceVector NormalizedDemand(const ResourceVector& demand) const;

  // Eligibility bitset of a constraint over this cluster's machines: bit m
  // is set iff the constraint allows machine m (one row of Fig. 1's graph).
  DynamicBitset Eligibility(const Constraint& constraint) const;

 private:
  void RecomputeTotal();

  std::vector<Machine> machines_;
  ResourceVector total_;
};

struct SharingProblem {
  Cluster cluster;
  std::vector<JobSpec> jobs;
};

// Allocator-ready compilation of a SharingProblem. All quantities normalized
// to datacenter totals; all checks performed up front so policy code can
// assume a well-formed instance.
struct CompiledProblem {
  std::size_t num_users = 0;
  std::size_t num_machines = 0;
  std::size_t num_resources = 0;

  std::vector<ResourceVector> machine_capacity;  // normalized C_m
  std::vector<ResourceVector> demand;            // normalized d_i
  std::vector<DynamicBitset> eligible;           // p_i as bitsets
  std::vector<double> weight;                    // w_i

  // Monopoly task counts under divisible tasks:
  //   h[i]: constraints removed, entire datacenter (TSF's denominator);
  //   g[i]: constraints kept, entire eligible set (CDRF's denominator).
  std::vector<double> h;
  std::vector<double> g;

  // Tasks of user i that fit on machine m when i monopolizes m (divisible).
  double MonopolyTasksOn(UserId i, MachineId m) const {
    return machine_capacity[m].DivisibleTaskCount(demand[i]);
  }
};

// Validates and compiles. Requirements checked: at least one machine and one
// job, consistent resource dimensions, strictly positive weights, every job
// demands a positive amount of at least one resource, and every job can run
// on at least one machine (a job with empty eligibility has no feasible
// allocation under hard constraints).
CompiledProblem Compile(const SharingProblem& problem);

// Connected components of the bipartite constraint graph (Sec. II-A states
// disconnected components can be shared independently). Returns a component
// index per machine and per user; users/machines in different components
// never interact under any policy.
struct ConstraintComponents {
  std::size_t count = 0;
  std::vector<std::size_t> machine_component;
  std::vector<std::size_t> user_component;
};
ConstraintComponents FindComponents(const CompiledProblem& problem);

}  // namespace tsf
