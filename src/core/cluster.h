// Machines, jobs, and the shared cluster (Sec. II-B).
//
// Cluster owns the machine list and the datacenter-wide totals used to
// normalize capacities and demands. SharingProblem bundles a cluster with a
// set of jobs; CompiledProblem is its allocator-ready form: normalized
// vectors, eligibility bitsets (the constraint graph), and the monopoly task
// counts h_i (unconstrained) and g_i (constrained) that the share
// definitions divide by.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/constraint.h"
#include "core/resource.h"
#include "util/bitset.h"

namespace tsf {

using UserId = std::size_t;

struct Machine {
  MachineId id = 0;
  std::string name;
  ResourceVector capacity;   // raw units, e.g. <2 cores, 1024 MB>
  AttributeSet attributes;
};

// A datacenter job == a user of the sharing policy (the paper uses the terms
// interchangeably). Fields beyond the allocator inputs (num_tasks, arrival,
// runtimes) are used by the simulator and the Mesos-like prototype.
struct JobSpec {
  UserId id = 0;
  std::string name;
  ResourceVector demand;     // per-task demand, raw units
  double weight = 1.0;
  Constraint constraint;

  // Workload attributes (ignored by the offline allocators).
  long num_tasks = 0;
  double arrival_time = 0.0;
  double mean_task_runtime = 0.0;
};

class Cluster {
 public:
  Cluster() = default;
  explicit Cluster(std::vector<Machine> machines);

  // Builder-style addition; returns the machine's id.
  MachineId AddMachine(ResourceVector capacity, AttributeSet attributes = {},
                       std::string name = {});

  std::size_t num_machines() const { return machines_.size(); }
  std::size_t num_resources() const { return total_.dimension(); }
  const Machine& machine(MachineId m) const { return machines_.at(m); }
  const std::vector<Machine>& machines() const { return machines_; }

  // Datacenter-wide totals (raw units).
  const ResourceVector& total() const { return total_; }

  // capacity of machine m divided component-wise by total() — the paper's
  // normalized configuration vector C_m.
  ResourceVector NormalizedCapacity(MachineId m) const;

  // demand divided component-wise by total() — the paper's normalized demand
  // vector d_i. Resources with zero datacenter total require zero demand.
  ResourceVector NormalizedDemand(const ResourceVector& demand) const;

  // Eligibility bitset of a constraint over this cluster's machines: bit m
  // is set iff the constraint allows machine m (one row of Fig. 1's graph).
  DynamicBitset Eligibility(const Constraint& constraint) const;

 private:
  void RecomputeTotal();

  std::vector<Machine> machines_;
  ResourceVector total_;
};

// Machine equivalence classes: machines with identical (capacity, attribute
// set) are interchangeable for every constraint and every fit test, so the
// trace-scale engines (online scheduler, DES, eligibility interning) operate
// per class and expand to concrete MachineIds only at placement-emission
// time. The Google trace has ~12k machines but only a handful of configs ×
// attribute profiles, so num_classes() << num_machines() at scale.
//
// Classes are numbered in first-seen machine-index order, so the index is a
// pure function of the machine list (deterministic across runs). The
// canonical representative of a class is its lowest-id member.
//
// Capacity groups are the coarser partition by identical *normalized*
// capacity alone (equal raw capacity implies equal normalized capacity, so
// every class lies in exactly one group). Their first-seen order and their
// per-group machine counts reproduce the flat monopoly-count sweep
// (h_i/g_i) term for term, which keeps the collapsed arithmetic bit-
// identical to the flat path.
class MachineClassIndex {
 public:
  // Builds the index for a cluster; O(machines) with hashed class lookup.
  explicit MachineClassIndex(const Cluster& cluster);

  // Number of classes the index would have, without materializing the
  // per-class member bitsets (those are O(classes * machines) bits — the
  // auto-collapse heuristic must not pay that on a degenerate cluster whose
  // machines are all distinct).
  static std::size_t CountClasses(const Cluster& cluster);

  std::size_t num_machines() const { return class_of_.size(); }
  std::size_t num_classes() const { return representative_.size(); }

  std::uint32_t class_of(MachineId m) const { return class_of_.at(m); }
  MachineId representative(std::size_t c) const {
    return representative_.at(c);
  }
  std::uint32_t class_size(std::size_t c) const { return class_size_.at(c); }
  // Members of class c as a bitset over machines.
  const DynamicBitset& members(std::size_t c) const { return members_.at(c); }

  // Capacity groups (normalized capacity, first-seen order).
  std::size_t num_capacity_groups() const { return group_capacity_.size(); }
  std::uint32_t group_of_class(std::size_t c) const {
    return group_of_class_.at(c);
  }
  const ResourceVector& group_capacity(std::size_t g) const {
    return group_capacity_.at(g);
  }
  // Total machines in group g, as the double multiplier the flat h_i sweep
  // uses (an exactly-represented small integer).
  double group_machine_count(std::size_t g) const { return group_count_.at(g); }

 private:
  std::vector<std::uint32_t> class_of_;        // per machine
  std::vector<MachineId> representative_;      // per class, lowest member id
  std::vector<std::uint32_t> class_size_;      // per class
  std::vector<DynamicBitset> members_;         // per class
  std::vector<std::uint32_t> group_of_class_;  // per class
  std::vector<ResourceVector> group_capacity_; // per group, normalized
  std::vector<double> group_count_;            // per group
};

struct SharingProblem {
  Cluster cluster;
  std::vector<JobSpec> jobs;
};

// Allocator-ready compilation of a SharingProblem. All quantities normalized
// to datacenter totals; all checks performed up front so policy code can
// assume a well-formed instance.
struct CompiledProblem {
  std::size_t num_users = 0;
  std::size_t num_machines = 0;
  std::size_t num_resources = 0;

  std::vector<ResourceVector> machine_capacity;  // normalized C_m
  std::vector<ResourceVector> demand;            // normalized d_i
  std::vector<DynamicBitset> eligible;           // p_i as bitsets
  std::vector<double> weight;                    // w_i

  // Monopoly task counts under divisible tasks:
  //   h[i]: constraints removed, entire datacenter (TSF's denominator);
  //   g[i]: constraints kept, entire eligible set (CDRF's denominator).
  std::vector<double> h;
  std::vector<double> g;

  // Tasks of user i that fit on machine m when i monopolizes m (divisible).
  double MonopolyTasksOn(UserId i, MachineId m) const {
    return machine_capacity[m].DivisibleTaskCount(demand[i]);
  }
};

// Validates and compiles. Requirements checked: at least one machine and one
// job, consistent resource dimensions, strictly positive weights, every job
// demands a positive amount of at least one resource, and every job can run
// on at least one machine (a job with empty eligibility has no feasible
// allocation under hard constraints).
CompiledProblem Compile(const SharingProblem& problem);

// Connected components of the bipartite constraint graph (Sec. II-A states
// disconnected components can be shared independently). Returns a component
// index per machine and per user; users/machines in different components
// never interact under any policy.
struct ConstraintComponents {
  std::size_t count = 0;
  std::vector<std::size_t> machine_component;
  std::vector<std::size_t> user_component;
};
ConstraintComponents FindComponents(const CompiledProblem& problem);

}  // namespace tsf
