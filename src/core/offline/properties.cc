#include "core/offline/properties.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace tsf {

double DemandExchangeRatio(const CompiledProblem& problem, UserId j, UserId i) {
  double ratio = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < problem.num_resources; ++r) {
    if (problem.demand[i][r] > 0.0)
      ratio = std::min(ratio, problem.demand[j][r] / problem.demand[i][r]);
  }
  TSF_CHECK(ratio != std::numeric_limits<double>::infinity());
  return ratio;
}

std::optional<EnvyViolation> FindEnvy(const CompiledProblem& problem,
                                      const Allocation& allocation,
                                      double tolerance) {
  std::optional<EnvyViolation> worst;
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double own = allocation.UserTasks(i);
    for (UserId j = 0; j < problem.num_users; ++j) {
      if (i == j) continue;
      // Tasks i can run from j's allocation: per machine m, the bundle
      // n_jm * d_j supports n_jm * rho_ji tasks of i — but only on machines
      // i is eligible for.
      const double rho = DemandExchangeRatio(problem, j, i);
      double exchanged = 0.0;
      for (MachineId m = 0; m < problem.num_machines; ++m) {
        if (!problem.eligible[i].Test(m)) continue;
        exchanged += allocation.tasks(j, m) * rho;
      }
      const double scaled =
          exchanged * problem.weight[i] / problem.weight[j];
      if (scaled > own + tolerance) {
        if (!worst || scaled - own > worst->exchanged_tasks - worst->own_tasks)
          worst = EnvyViolation{i, j, own, scaled};
      }
    }
  }
  return worst;
}

std::optional<ParetoViolation> FindParetoImprovement(
    const CompiledProblem& problem, const Allocation& allocation,
    double tolerance) {
  // Unit denominators turn MaxShareWithFloors into "max tasks for j".
  const std::vector<double> unit(problem.num_users, 1.0);
  std::vector<double> totals(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i)
    totals[i] = allocation.UserTasks(i);

  // One probe per user against the same problem: build the layout once.
  const EdgeLayout layout(problem);
  for (UserId j = 0; j < problem.num_users; ++j) {
    std::vector<double> floors = totals;
    floors[j] = 0.0;
    const double achievable =
        MaxShareWithFloors(problem, layout, unit, j, floors);
    // Relative tolerance: LP round-off scales with task counts.
    const double slack = tolerance * std::max(1.0, totals[j]);
    if (achievable > totals[j] + slack)
      return ParetoViolation{j, totals[j], achievable};
  }
  return std::nullopt;
}

DedicatedPools EqualPartition(std::size_t num_users, std::size_t num_machines) {
  DedicatedPools pools;
  pools.fraction.assign(num_users,
                        std::vector<double>(num_machines,
                                            1.0 / static_cast<double>(num_users)));
  return pools;
}

double DedicatedPoolTasks(const CompiledProblem& problem, UserId i,
                          const std::vector<double>& fraction) {
  TSF_CHECK_EQ(fraction.size(), problem.num_machines);
  double tasks = 0.0;
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    if (!problem.eligible[i].Test(m) || fraction[m] <= 0.0) continue;
    tasks += fraction[m] * problem.MonopolyTasksOn(i, m);
  }
  return tasks;
}

SharingIncentiveReport CheckSharingIncentive(const CompiledProblem& problem,
                                             const DedicatedPools& pools,
                                             const OfflineSolver& solver,
                                             bool theorem1_weights,
                                             double tolerance) {
  TSF_CHECK_EQ(pools.fraction.size(), problem.num_users);
  SharingIncentiveReport report;
  report.dedicated_tasks.resize(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i)
    report.dedicated_tasks[i] = DedicatedPoolTasks(problem, i, pools.fraction[i]);

  CompiledProblem shared = problem;
  if (theorem1_weights) {
    for (UserId i = 0; i < problem.num_users; ++i) {
      TSF_CHECK_GT(report.dedicated_tasks[i], 0.0)
          << "Thm. 1 weights need k_i > 0 (user " << i << ")";
      shared.weight[i] = report.dedicated_tasks[i] / problem.h[i];
    }
  }

  const FillingResult result = solver(shared);
  report.shared_tasks.resize(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    report.shared_tasks[i] = result.allocation.UserTasks(i);
    const double slack = tolerance * std::max(1.0, report.dedicated_tasks[i]);
    if (report.shared_tasks[i] + slack < report.dedicated_tasks[i] &&
        report.satisfied) {
      report.satisfied = false;
      report.violator = i;
    }
  }
  return report;
}

CompiledProblem ApplyLie(const CompiledProblem& problem, UserId liar,
                         const Lie& lie) {
  TSF_CHECK_LT(liar, problem.num_users);
  CompiledProblem lied = problem;
  if (lie.demand.has_value()) {
    TSF_CHECK_EQ(lie.demand->dimension(), problem.num_resources);
    TSF_CHECK(!lie.demand->IsZero());
    lied.demand[liar] = *lie.demand;
  }
  if (lie.eligible.has_value()) {
    TSF_CHECK_EQ(lie.eligible->size(), problem.num_machines);
    TSF_CHECK(lie.eligible->Any());
    lied.eligible[liar] = *lie.eligible;
  }
  // The scheduler derives monopoly counts from the *reported* demand and
  // constraints, so recompute them for the liar.
  lied.h[liar] = 0.0;
  lied.g[liar] = 0.0;
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    const double tasks = lied.MonopolyTasksOn(liar, m);
    lied.h[liar] += tasks;
    if (lied.eligible[liar].Test(m)) lied.g[liar] += tasks;
  }
  TSF_CHECK_GT(lied.g[liar], 0.0) << "lie leaves no usable machine";
  return lied;
}

ManipulationOutcome ProbeManipulation(const CompiledProblem& problem,
                                      UserId liar, const Lie& lie,
                                      const OfflineSolver& solver,
                                      bool theorem1_weights,
                                      const DedicatedPools* pools) {
  TSF_CHECK(!theorem1_weights || pools != nullptr)
      << "Thm. 3 probing needs the dedicated pools that define the weights";

  auto with_weights = [&](const CompiledProblem& instance) {
    CompiledProblem weighted = instance;
    if (theorem1_weights) {
      for (UserId i = 0; i < instance.num_users; ++i) {
        const double k = DedicatedPoolTasks(instance, i, pools->fraction[i]);
        TSF_CHECK_GT(k, 0.0);
        weighted.weight[i] = k / instance.h[i];
      }
    }
    return weighted;
  };

  ManipulationOutcome outcome;

  const FillingResult honest = solver(with_weights(problem));
  outcome.truthful_tasks = honest.allocation.UserTasks(liar);

  const CompiledProblem lied = ApplyLie(problem, liar, lie);
  const FillingResult lying = solver(with_weights(lied));

  // Convert the lying allocation into real completed tasks. The scheduler
  // granted bundles sized by the *claimed* demand on the *claimed* machines;
  // bundles on machines the liar truly cannot use are wasted, and each
  // usable bundle runs min_r(claimed_r / true_r) real tasks.
  double conversion = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < problem.num_resources; ++r) {
    if (problem.demand[liar][r] > 0.0)
      conversion = std::min(conversion,
                            lied.demand[liar][r] / problem.demand[liar][r]);
  }
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    if (!problem.eligible[liar].Test(m)) continue;  // truly unusable
    outcome.lying_tasks += lying.allocation.tasks(liar, m) * conversion;
  }
  return outcome;
}

bool MatchesSingleMachineDrf(const CompiledProblem& problem,
                             const FillingResult& result, double tolerance) {
  TSF_CHECK_EQ(problem.num_machines, 1u) << "reduction check needs one machine";
  // DRF on one machine == progressive filling over dominant shares relative
  // to that machine's capacity.
  std::vector<double> denominator(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    double dominant = 0.0;
    for (std::size_t r = 0; r < problem.num_resources; ++r) {
      const double capacity = problem.machine_capacity[0][r];
      if (problem.demand[i][r] > 0.0 && capacity > 0.0)
        dominant = std::max(dominant, problem.demand[i][r] / capacity);
    }
    TSF_CHECK_GT(dominant, 0.0);
    denominator[i] = problem.weight[i] / dominant;
  }
  const FillingResult drf = ProgressiveFilling(problem, denominator);
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double a = result.allocation.UserTasks(i);
    const double b = drf.allocation.UserTasks(i);
    if (std::abs(a - b) > tolerance * std::max(1.0, std::max(a, b))) return false;
  }
  return true;
}

bool MatchesSingleResourceCmmf(const CompiledProblem& problem,
                               const FillingResult& result, double tolerance) {
  TSF_CHECK_EQ(problem.num_resources, 1u) << "reduction check needs one resource";
  std::vector<double> denominator(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    TSF_CHECK_GT(problem.demand[i][0], 0.0);
    denominator[i] = problem.weight[i] / problem.demand[i][0];
  }
  const FillingResult cmmf = ProgressiveFilling(problem, denominator);
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double a = result.allocation.UserTasks(i);
    const double b = cmmf.allocation.UserTasks(i);
    if (std::abs(a - b) > tolerance * std::max(1.0, std::max(a, b))) return false;
  }
  return true;
}

}  // namespace tsf
