// Multi-class TSF (the extension the paper points to in Sec. VII).
//
// Tan et al. [23] generalize DRF to users whose workload mixes task
// *classes* with different demand vectors (e.g. a MapReduce job running
// map and reduce tasks in a 3:1 ratio); the paper notes "the same
// technique can also be applied to TSF". This module does exactly that:
//
//   * each user declares K classes, a demand vector per class, and a mix
//     (the fraction of its tasks belonging to each class);
//   * the user's progress is its total task count n_i with the mix
//     enforced (n_ic = mix_ic * n_i for every class c);
//   * its multi-class monopoly count H_i is the largest total it could run
//     monopolizing the whole datacenter, constraints removed, mix
//     enforced — itself a small LP, degenerating to the familiar
//     h_i = sum_m min_r C_mr / d_ir for a single class;
//   * multi-class TSF is max-min fairness over s_i = n_i / (H_i w_i),
//     computed by the same progressive-filling scheme as Algorithm 1 with
//     per-(user, class, machine) variables.
//
// With one class per user this reduces exactly to SolveTsf (tested).
#pragma once

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/offline/progressive_filling.h"

namespace tsf {

struct MultiClassJobSpec {
  std::string name;
  double weight = 1.0;
  Constraint constraint;  // applies to every class of this user

  // One entry per class; demands in raw units, mix strictly positive and
  // summing to 1 (validated by CompileMultiClass).
  std::vector<ResourceVector> class_demand;
  std::vector<double> class_mix;
};

struct MultiClassProblem {
  Cluster cluster;
  std::vector<MultiClassJobSpec> users;
};

// Allocator-ready form (normalized demands, eligibility, monopoly counts).
struct CompiledMultiClass {
  std::size_t num_users = 0;
  std::size_t num_machines = 0;
  std::size_t num_resources = 0;
  std::vector<ResourceVector> machine_capacity;         // normalized
  std::vector<std::vector<ResourceVector>> demand;      // [user][class]
  std::vector<std::vector<double>> mix;                 // [user][class]
  std::vector<DynamicBitset> eligible;
  std::vector<double> weight;
  std::vector<double> H;  // mix-enforced unconstrained monopoly totals
};

CompiledMultiClass CompileMultiClass(const MultiClassProblem& problem);

// Per-class allocation: tasks of user i's class c on machine m.
struct MultiClassAllocation {
  std::size_t num_users = 0;
  std::vector<std::vector<std::vector<double>>> tasks;  // [user][class][machine]

  double UserTasks(UserId i) const;
  double ClassTasks(UserId i, std::size_t c) const;
};

struct MultiClassResult {
  MultiClassAllocation allocation;
  std::vector<double> shares;  // n_i / (H_i w_i)
};

// Max-min fairness over multi-class task shares (progressive filling).
// `options` tunes the LP engine (probe parallelism, dense executable-spec
// mode); the result is identical for every setting.
MultiClassResult SolveMultiClassTsf(const CompiledMultiClass& problem,
                                    const FillingOptions& options = {});

// The mix-enforced monopoly total for one user (exposed for tests).
double MultiClassMonopolyTasks(const CompiledMultiClass& problem, UserId i);

}  // namespace tsf
