// Offline progressive filling (Algorithm 1 of the paper).
//
// The engine is generic over the *share denominator*: a policy defines the
// share of user i as  s_i = n_i / denominator_i  (n_i = total tasks), and
// progressive filling computes the max-min-fair allocation with respect to
// those shares under divisible tasks, machine capacities, and placement
// constraints. Instantiations:
//
//   TSF   : denominator_i = h_i * w_i   (unconstrained monopoly tasks)
//   CDRF  : denominator_i = g_i * w_i   (constrained monopoly tasks)
//   DRFH  : denominator_i = w_i / max_r d_ir          (dominant share)
//   CMMF_r: denominator_i = w_i / d_ir                (single resource r)
//
// Each round solves one LP to raise every active user's share equally to its
// maximum, then one LP per active user to decide who has saturated (the
// FREEZE step); saturated users' task totals are protected by >= constraints
// in later rounds. This mirrors Algorithm 1 exactly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocation.h"
#include "core/cluster.h"

namespace tsf {

struct FillingResult {
  Allocation allocation;

  // s_i under the policy's own share definition, at termination.
  std::vector<double> shares;

  // Round (1-based) in which each user became inactive.
  std::vector<std::size_t> freeze_round;

  // Share level reached by each round, in order (the water-filling levels).
  std::vector<double> round_levels;
};

// Runs Algorithm 1. `denominator[i]` must be strictly positive. The returned
// allocation is feasible (capacity + eligibility) and max-min fair w.r.t.
// n_i / denominator_i.
FillingResult ProgressiveFilling(const CompiledProblem& problem,
                                 const std::vector<double>& denominator);

// Maximizes user j's share n_j / denominator_j while every other user i is
// guaranteed at least `floor_tasks[i]` tasks (placements may reshuffle).
// Exposed for property checkers (Pareto-optimality and envy probes).
double MaxShareWithFloors(const CompiledProblem& problem,
                          const std::vector<double>& denominator, UserId j,
                          const std::vector<double>& floor_tasks);

}  // namespace tsf
