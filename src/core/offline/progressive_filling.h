// Offline progressive filling (Algorithm 1 of the paper).
//
// The engine is generic over the *share denominator*: a policy defines the
// share of user i as  s_i = n_i / denominator_i  (n_i = total tasks), and
// progressive filling computes the max-min-fair allocation with respect to
// those shares under divisible tasks, machine capacities, and placement
// constraints. Instantiations:
//
//   TSF   : denominator_i = h_i * w_i   (unconstrained monopoly tasks)
//   CDRF  : denominator_i = g_i * w_i   (constrained monopoly tasks)
//   DRFH  : denominator_i = w_i / max_r d_ir          (dominant share)
//   CMMF_r: denominator_i = w_i / d_ir                (single resource r)
//
// Each round solves one LP to raise every active user's share equally to its
// maximum, then one LP per active user to decide who has saturated (the
// FREEZE step); saturated users' task totals are protected by >= constraints
// in later rounds. This mirrors Algorithm 1 exactly.
//
// All round and probe LPs of one run share a single warm-started revised
// simplex state (see core/offline/filling_engine.h): the constraint matrix
// is built once, freezes are in-place row rewrites, and every FREEZE probe
// branches off the solved round LP — independent probes can fan out over a
// thread pool with freeze decisions bit-identical to the serial loop.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/allocation.h"
#include "core/cluster.h"
#include "core/offline/filling_engine.h"

namespace tsf {

struct FillingResult {
  Allocation allocation;

  // s_i under the policy's own share definition, at termination.
  std::vector<double> shares;

  // Round (1-based) in which each user became inactive.
  std::vector<std::size_t> freeze_round;

  // Share level reached by each round, in order (the water-filling levels).
  std::vector<double> round_levels;
};

// Variable layout shared by every LP of a filling run: one variable per
// constraint-graph edge (user, eligible machine), plus the share level s as
// the last variable. Built once per problem; reusable across filling runs
// and property probes over the same CompiledProblem.
struct EdgeLayout {
  std::vector<std::pair<UserId, MachineId>> edges;
  std::vector<std::vector<std::size_t>> user_edges;     // per user
  std::vector<std::vector<std::size_t>> machine_edges;  // per machine
  std::size_t share_var = 0;                            // index of s

  explicit EdgeLayout(const CompiledProblem& problem);

  std::size_t num_variables() const { return edges.size() + 1; }
};

// Compiles the round-LP structure for a problem/denominator pair into the
// engine's policy-agnostic form: one coupling row per user (total tasks =
// denominator_i * s) plus the per-(machine, resource) capacity rows.
// Exposed for benchmarks and tests that drive FillingEngine directly.
FillingSpec MakeFillingSpec(const CompiledProblem& problem,
                            const EdgeLayout& layout,
                            const std::vector<double>& denominator);

// Runs Algorithm 1. `denominator[i]` must be strictly positive. The returned
// allocation is feasible (capacity + eligibility) and max-min fair w.r.t.
// n_i / denominator_i. `options` tunes the LP engine (probe parallelism,
// dense executable-spec mode); the result is identical for every setting.
FillingResult ProgressiveFilling(const CompiledProblem& problem,
                                 const std::vector<double>& denominator,
                                 const FillingOptions& options = {});

// Maximizes user j's share n_j / denominator_j while every other user i is
// guaranteed at least `floor_tasks[i]` tasks (placements may reshuffle).
// Exposed for property checkers (Pareto-optimality and envy probes).
double MaxShareWithFloors(const CompiledProblem& problem,
                          const std::vector<double>& denominator, UserId j,
                          const std::vector<double>& floor_tasks);

// Layout-reusing overload: callers probing many users against the same
// problem build the EdgeLayout once instead of per call.
double MaxShareWithFloors(const CompiledProblem& problem,
                          const EdgeLayout& layout,
                          const std::vector<double>& denominator, UserId j,
                          const std::vector<double>& floor_tasks);

}  // namespace tsf
