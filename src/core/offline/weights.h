// Theorem-1 weight derivation and component-wise solving.
//
// Theorem 1 turns dedicated resource pools into TSF weights: give user i
// weight w_i = k_i / h_i, where k_i is the number of tasks its pool
// supports, and TSF guarantees it at least k_i tasks in the shared cluster.
// These helpers compute those weights and apply them.
//
// Sec. II-A also notes that a disconnected constraint graph can be shared
// per connected component. SolvePerComponent exploits that: it splits a
// problem along FindComponents, solves each piece independently (much
// smaller LPs), and stitches the allocations back together. For TSF/CDRF
// the result is identical to solving whole — users in different components
// never compete — which doubles as a strong cross-check in tests.
#pragma once

#include "core/offline/policies.h"
#include "core/offline/properties.h"

namespace tsf {

// w_i = k_i / h_i from explicit dedicated pools (Thm. 1). Every pool must
// support at least a fraction of a task (k_i > 0).
std::vector<double> Theorem1Weights(const CompiledProblem& problem,
                                    const DedicatedPools& pools);

// Returns a copy of `problem` with the given weights installed.
CompiledProblem WithWeights(const CompiledProblem& problem,
                            std::vector<double> weights);

// Splits along constraint-graph components, runs `solver` per component
// with each user's ORIGINAL whole-cluster denominator inputs preserved
// (h_i and g_i are global quantities — a user's task share is defined
// against the entire datacenter even when its component is smaller), and
// stitches the result.
FillingResult SolvePerComponent(const CompiledProblem& problem,
                                OfflinePolicy policy,
                                const FillingOptions& options = {});

}  // namespace tsf
