#include "core/offline/policies.h"

#include "util/check.h"

namespace tsf {

std::string ToString(OfflinePolicy policy) {
  switch (policy) {
    case OfflinePolicy::kTsf:
      return "TSF";
    case OfflinePolicy::kCdrf:
      return "CDRF";
    case OfflinePolicy::kDrfh:
      return "DRFH";
    case OfflinePolicy::kPerMachineDrf:
      return "PerMachineDRF";
    case OfflinePolicy::kCmmf:
      return "CMMF";
  }
  return "?";
}

std::vector<double> TsfDenominator(const CompiledProblem& problem) {
  std::vector<double> denominator(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i)
    denominator[i] = problem.h[i] * problem.weight[i];
  return denominator;
}

std::vector<double> CdrfDenominator(const CompiledProblem& problem) {
  std::vector<double> denominator(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i)
    denominator[i] = problem.g[i] * problem.weight[i];
  return denominator;
}

std::vector<double> DrfhDenominator(const CompiledProblem& problem) {
  std::vector<double> denominator(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double dominant = problem.demand[i].MaxComponent();
    TSF_CHECK_GT(dominant, 0.0);
    // dominant share = n_i * dominant / w_i, so s_i = n_i / (w_i / dominant).
    denominator[i] = problem.weight[i] / dominant;
  }
  return denominator;
}

std::vector<double> CmmfDenominator(const CompiledProblem& problem,
                                    std::size_t resource) {
  TSF_CHECK_LT(resource, problem.num_resources);
  std::vector<double> denominator(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double d = problem.demand[i][resource];
    TSF_CHECK_GT(d, 0.0) << "CMMF over resource " << resource
                         << " requires every user to demand it (user " << i << ")";
    denominator[i] = problem.weight[i] / d;
  }
  return denominator;
}

FillingResult SolveTsf(const CompiledProblem& problem,
                       const FillingOptions& options) {
  return ProgressiveFilling(problem, TsfDenominator(problem), options);
}

FillingResult SolveCdrf(const CompiledProblem& problem,
                        const FillingOptions& options) {
  return ProgressiveFilling(problem, CdrfDenominator(problem), options);
}

FillingResult SolveDrfh(const CompiledProblem& problem,
                        const FillingOptions& options) {
  return ProgressiveFilling(problem, DrfhDenominator(problem), options);
}

FillingResult SolveCmmf(const CompiledProblem& problem, std::size_t resource,
                        const FillingOptions& options) {
  return ProgressiveFilling(problem, CmmfDenominator(problem, resource), options);
}

FillingResult SolvePerMachineDrf(const CompiledProblem& problem,
                                 const FillingOptions& options) {
  FillingResult result;
  result.allocation = Allocation(problem.num_users, problem.num_machines);
  result.freeze_round.assign(problem.num_users, 1);

  for (MachineId m = 0; m < problem.num_machines; ++m) {
    // Users eligible on m.
    std::vector<UserId> users;
    for (UserId i = 0; i < problem.num_users; ++i)
      if (problem.eligible[i].Test(m)) users.push_back(i);
    if (users.empty()) continue;

    // Single-machine sub-problem; capacities/demands stay in datacenter-
    // normalized units (only ratios within the sub-problem matter).
    CompiledProblem sub;
    sub.num_users = users.size();
    sub.num_machines = 1;
    sub.num_resources = problem.num_resources;
    sub.machine_capacity = {problem.machine_capacity[m]};
    for (const UserId i : users) {
      sub.demand.push_back(problem.demand[i]);
      sub.weight.push_back(problem.weight[i]);
      DynamicBitset bits(1);
      bits.Set(0);
      sub.eligible.push_back(bits);
      const double tasks = problem.MonopolyTasksOn(i, m);
      sub.h.push_back(tasks);
      sub.g.push_back(tasks);
    }

    // DRF on machine m: dominant share relative to m's capacity, i.e.
    // s_i = n_im * max_r (d_ir / C_mr) / w_i.
    std::vector<double> denominator(users.size());
    for (std::size_t k = 0; k < users.size(); ++k) {
      double dominant = 0.0;
      for (std::size_t r = 0; r < problem.num_resources; ++r) {
        const double capacity = problem.machine_capacity[m][r];
        const double d = sub.demand[k][r];
        if (d > 0.0) {
          TSF_CHECK_GT(capacity, 0.0)
              << "user demands a resource machine " << m << " lacks";
          dominant = std::max(dominant, d / capacity);
        }
      }
      TSF_CHECK_GT(dominant, 0.0);
      denominator[k] = sub.weight[k] / dominant;
    }

    const FillingResult sub_result = ProgressiveFilling(sub, denominator, options);
    for (std::size_t k = 0; k < users.size(); ++k)
      result.allocation.add_tasks(users[k], m, sub_result.allocation.tasks(k, 0));
  }

  // No single share metric defines per-machine DRF globally; report the
  // global dominant share for comparability with DRFH.
  const std::vector<double> denominator = DrfhDenominator(problem);
  result.shares.assign(problem.num_users, 0.0);
  for (UserId i = 0; i < problem.num_users; ++i)
    result.shares[i] = result.allocation.UserTasks(i) / denominator[i];
  return result;
}

FillingResult SolveOffline(OfflinePolicy policy, const CompiledProblem& problem,
                           std::size_t resource, const FillingOptions& options) {
  switch (policy) {
    case OfflinePolicy::kTsf:
      return SolveTsf(problem, options);
    case OfflinePolicy::kCdrf:
      return SolveCdrf(problem, options);
    case OfflinePolicy::kDrfh:
      return SolveDrfh(problem, options);
    case OfflinePolicy::kPerMachineDrf:
      return SolvePerMachineDrf(problem, options);
    case OfflinePolicy::kCmmf:
      return SolveCmmf(problem, resource, options);
  }
  TSF_CHECK(false) << "unreachable";
}

}  // namespace tsf
