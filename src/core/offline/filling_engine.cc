#include "core/offline/filling_engine.h"

#include <thread>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace tsf {

ThreadPool* SharedFillingPool() {
  // Created on first use and intentionally never destroyed: worker threads
  // must outlive every caller, and teardown order at exit is unknowable.
  static ThreadPool* pool = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw <= 1) return static_cast<ThreadPool*>(nullptr);
    return new ThreadPool(hw);
  }();
  return pool;
}

FillingEngine::FillingEngine(FillingSpec spec, const FillingOptions& options)
    : spec_(std::move(spec)),
      frozen_(spec_.user_rows.size(), false),
      options_(options),
      state_(BuildState(spec_)) {}

lp::SimplexState FillingEngine::BuildState(const FillingSpec& spec) {
  TSF_CHECK_GT(spec.num_structural, 0u);
  TSF_CHECK(!spec.user_rows.empty());
  share_var_ = spec.num_structural;

  lp::StandardForm form(spec.num_structural + 1);
  form.SetObjectiveCoefficient(share_var_, 1.0);
  user_row_ids_.resize(spec.user_rows.size());
  for (std::size_t i = 0; i < spec.user_rows.size(); ++i) {
    TSF_CHECK(!spec.user_rows[i].empty()) << "user " << i << " has no rows";
    for (const FillingCouplingRow& row : spec.user_rows[i]) {
      TSF_CHECK_GT(row.share_coeff, 0.0);
      std::vector<std::pair<std::size_t, double>> terms = row.terms;
      terms.emplace_back(share_var_, -row.share_coeff);
      user_row_ids_[i].push_back(
          form.AddRow(terms, lp::Relation::kEqual, 0.0));
    }
  }
  for (const FillingCapacityRow& row : spec.capacity) {
    if (row.terms.empty()) continue;  // no eligible user consumes this slot
    form.AddRow(row.terms, lp::Relation::kLessEqual, row.capacity);
  }
  form.Finalize();
  return lp::SimplexState(std::move(form));
}

void FillingEngine::FreezeInState(lp::SimplexState& state, std::size_t user,
                                  double floor) const {
  for (std::size_t k = 0; k < user_row_ids_[user].size(); ++k) {
    const std::size_t row = user_row_ids_[user][k];
    state.SetCoefficient(row, share_var_, 0.0);
    state.RelaxEquality(row, spec_.user_rows[user][k].floor_fraction * floor);
  }
}

bool FillingEngine::SolveState(lp::SimplexState& state, double* share,
                               std::vector<double>* x) const {
  const auto extract = [&](const lp::Solution& solution) {
    if (!solution.optimal()) return false;
    *share = solution.objective;
    if (x != nullptr)
      x->assign(solution.x.begin(),
                solution.x.begin() +
                    static_cast<std::ptrdiff_t>(spec_.num_structural));
    return true;
  };
  if (options_.use_dense_engine) {
    // Executable-spec mode: the exact same mutated program, solved by the
    // dense tableau path every time.
    return extract(state.form().ToDenseProblem().Solve());
  }
  return extract(state.Solve());
}

bool FillingEngine::SolveRound(double* share, std::vector<double>* x) {
  TSF_CHECK(share != nullptr);
  TSF_TRACE_SCOPE("filling", "SolveRound");
  return SolveState(state_, share, x);
}

void FillingEngine::FreezeUser(std::size_t j, double floor) {
  TSF_CHECK_LT(j, num_users());
  TSF_CHECK(!frozen_[j]) << "user " << j << " frozen twice";
  frozen_[j] = true;
  FreezeInState(state_, j, floor);
}

void FillingEngine::ProbeMaxShares(const std::vector<bool>& probe,
                                   const std::vector<double>& current_totals,
                                   std::vector<double>* max_share) {
  const std::size_t n = num_users();
  TSF_CHECK_EQ(probe.size(), n);
  TSF_CHECK_EQ(current_totals.size(), n);
  TSF_CHECK(max_share != nullptr);
  TSF_TRACE_SCOPE("filling", "ProbeMaxShares");
  max_share->assign(n, 0.0);

  std::vector<std::size_t> targets;
  for (std::size_t j = 0; j < n; ++j)
    if (probe[j]) targets.push_back(j);

  // Each probe is a pure function of the solved round state and its own
  // user, writing only its own slot: parallel execution is bit-identical to
  // the serial loop by construction.
  const auto run_probe = [&](std::size_t index) {
    const std::size_t j = targets[index];
    TSF_TRACE_SCOPE("filling", "FreezeProbe");
    TSF_COUNTER_ADD("filling.probes", 1);
    lp::SimplexState probe_state = state_;
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j || frozen_[i]) continue;
      FreezeInState(probe_state, i, current_totals[i]);
    }
    double share = 0.0;
    TSF_CHECK(SolveState(probe_state, &share, nullptr))
        << "freeze-probe LP infeasible — floors exceed capacity?";
    (*max_share)[j] = share;
  };

  ThreadPool* pool = options_.serial_probes ? nullptr : options_.pool;
  if (pool != nullptr && pool->thread_count() > 1 && targets.size() > 1) {
    pool->ParallelFor(targets.size(), run_probe);
  } else {
    for (std::size_t index = 0; index < targets.size(); ++index)
      run_probe(index);
  }
}

}  // namespace tsf
