// Checkers for the seven sharing properties of Sec. III.
//
// These operate on concrete (problem, allocation) pairs and therefore serve
// three audiences: unit tests (pin the paper's worked counterexamples),
// property-based tests (randomized instances must pass for TSF), and the
// Table I bench harness (demonstrate each ✓/✗ cell).
//
// All checks use the divisible-task model the offline analysis assumes.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/offline/progressive_filling.h"

namespace tsf {

// A policy under test: maps a compiled problem to an allocation.
using OfflineSolver = std::function<FillingResult(const CompiledProblem&)>;

// ---------------------------------------------------------------- envy ----

struct EnvyViolation {
  UserId envious = 0;  // user i
  UserId envied = 0;   // user j
  double own_tasks = 0.0;
  double exchanged_tasks = 0.0;  // (w_i/w_j) * n_{i<->j}
};

// Def. 3: user i envies j if taking j's allocation (scaled by w_i/w_j) lets
// i run more tasks than its own allocation does. Returns the worst
// violation, or nullopt if envy-free.
std::optional<EnvyViolation> FindEnvy(const CompiledProblem& problem,
                                      const Allocation& allocation,
                                      double tolerance = 1e-6);

// -------------------------------------------------------------- Pareto ----

struct ParetoViolation {
  UserId user = 0;
  double current_tasks = 0.0;
  double achievable_tasks = 0.0;  // holding every other user's total
};

// Def. 4: the allocation is Pareto optimal iff no user's task total can be
// raised while every other user keeps at least its current total
// (placements may reshuffle — tasks are divisible). LP-based exact test.
std::optional<ParetoViolation> FindParetoImprovement(
    const CompiledProblem& problem, const Allocation& allocation,
    double tolerance = 1e-6);

// ---------------------------------------------------- sharing incentive ----

// A dedicated resource pool: fraction[i][m] of machine m reserved for user
// i; column sums must not exceed 1. Users only benefit from machines they
// are eligible on (hard constraints apply inside the pool too).
struct DedicatedPools {
  std::vector<std::vector<double>> fraction;  // [user][machine]
};

// Equal partitioning: every user gets 1/N of every machine.
DedicatedPools EqualPartition(std::size_t num_users, std::size_t num_machines);

// k_i: tasks user i runs inside its dedicated pool (divisible).
double DedicatedPoolTasks(const CompiledProblem& problem, UserId i,
                          const std::vector<double>& fraction);

struct SharingIncentiveReport {
  bool satisfied = true;
  std::vector<double> dedicated_tasks;  // k_i
  std::vector<double> shared_tasks;     // n_i under the policy
  UserId violator = 0;                  // valid iff !satisfied
};

// Def. 1 with arbitrary pools. `theorem1_weights` — the paper's Thm. 1 rule
// w_i = k_i / h_i — replaces the problem's weights before solving when true
// (TSF's guarantee is stated under that rule); with false the problem's own
// weights are kept (the equal-weight, equal-partition convention used by
// the CDRF/DRFH literature).
SharingIncentiveReport CheckSharingIncentive(const CompiledProblem& problem,
                                             const DedicatedPools& pools,
                                             const OfflineSolver& solver,
                                             bool theorem1_weights,
                                             double tolerance = 1e-6);

// ---------------------------------------------------- strategy-proofness ----

// A lie: the demand vector and/or constraint eligibility a user reports.
struct Lie {
  std::optional<ResourceVector> demand;     // claimed normalized demand
  std::optional<DynamicBitset> eligible;    // claimed eligibility
};

struct ManipulationOutcome {
  double truthful_tasks = 0.0;  // real tasks when reporting honestly
  double lying_tasks = 0.0;     // real tasks completed under the lie
  bool profitable() const { return lying_tasks > truthful_tasks + 1e-6; }
};

// Runs the solver twice — honest problem vs. problem with user `liar`'s
// report replaced by `lie` — and converts the lying allocation back into
// *real* tasks: resources granted on machines the user truly cannot use are
// wasted; on usable machines the granted bundle n'_im * d'_i runs
// n'_im * min_{r:d_ir>0}(d'_ir / d_ir) real tasks.
//
// `theorem1_weights`: recompute w_i = k_i/h_i from `pools` for both runs
// (Thm. 3 setting, where lying also games the weight); otherwise weights
// are taken from the problem as-is (Thm. 2 setting).
ManipulationOutcome ProbeManipulation(const CompiledProblem& problem,
                                      UserId liar, const Lie& lie,
                                      const OfflineSolver& solver,
                                      bool theorem1_weights = false,
                                      const DedicatedPools* pools = nullptr);

// -------------------------------------------------- reduction properties ----

// Def. 5: on a single-machine problem the policy must match DRF (dominant
// shares equalized). Returns true when per-user task totals agree.
bool MatchesSingleMachineDrf(const CompiledProblem& problem,
                             const FillingResult& result,
                             double tolerance = 1e-5);

// Def. 6: on a single-resource problem the policy must match CMMF.
bool MatchesSingleResourceCmmf(const CompiledProblem& problem,
                               const FillingResult& result,
                               double tolerance = 1e-5);

// --------------------------------------------------------------- helpers ----

// ρ_ji = min_{r : d_ir > 0} d_jr / d_ir (Lemma 1): tasks of i runnable per
// task-bundle of j.
double DemandExchangeRatio(const CompiledProblem& problem, UserId j, UserId i);

// Replaces user `liar`'s reported demand/eligibility and recompiles the
// derived quantities (h, g). Exposed for tests.
CompiledProblem ApplyLie(const CompiledProblem& problem, UserId liar,
                         const Lie& lie);

}  // namespace tsf
