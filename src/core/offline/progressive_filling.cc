#include "core/offline/progressive_filling.h"

#include <algorithm>
#include <limits>

#include "lp/simplex.h"
#include "util/check.h"
#include "util/log.h"

namespace tsf {
namespace {

// Two shares within this distance are "equal" for saturation decisions.
constexpr double kShareEps = 1e-7;

// Variable layout for the round LP: one variable per constraint-graph edge
// (user, eligible machine), plus the share level s as the last variable.
struct EdgeLayout {
  std::vector<std::pair<UserId, MachineId>> edges;
  std::vector<std::vector<std::size_t>> user_edges;    // per user
  std::vector<std::vector<std::size_t>> machine_edges; // per machine
  std::size_t share_var = 0;                           // index of s

  explicit EdgeLayout(const CompiledProblem& problem)
      : user_edges(problem.num_users), machine_edges(problem.num_machines) {
    for (UserId i = 0; i < problem.num_users; ++i) {
      problem.eligible[i].ForEachSet([&](std::size_t m) {
        const std::size_t e = edges.size();
        edges.emplace_back(i, m);
        user_edges[i].push_back(e);
        machine_edges[m].push_back(e);
      });
    }
    share_var = edges.size();
  }

  std::size_t num_variables() const { return edges.size() + 1; }
};

struct RoundSolution {
  bool feasible = false;
  double share = 0.0;
  Allocation allocation;
};

// Solves: maximize s subject to
//   (2) sum_m n_im = denominator_i * s          for i with active[i]
//   (3) sum_m n_im >= floor_tasks[i]            for i without active[i]
//   (4) per-machine capacity.
RoundSolution SolveRound(const CompiledProblem& problem, const EdgeLayout& layout,
                         const std::vector<double>& denominator,
                         const std::vector<bool>& active,
                         const std::vector<double>& floor_tasks) {
  lp::Problem lp(layout.num_variables());
  lp.SetObjectiveCoefficient(layout.share_var, 1.0);

  for (UserId i = 0; i < problem.num_users; ++i) {
    std::vector<std::pair<std::size_t, double>> terms;
    terms.reserve(layout.user_edges[i].size() + 1);
    for (const std::size_t e : layout.user_edges[i]) terms.emplace_back(e, 1.0);
    if (active[i]) {
      terms.emplace_back(layout.share_var, -denominator[i]);
      lp.AddConstraintSparse(terms, lp::Relation::kEqual, 0.0);
    } else if (floor_tasks[i] > 0.0) {
      lp.AddConstraintSparse(terms, lp::Relation::kGreaterEqual, floor_tasks[i]);
    }
  }

  for (MachineId m = 0; m < problem.num_machines; ++m) {
    for (std::size_t r = 0; r < problem.num_resources; ++r) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (const std::size_t e : layout.machine_edges[m]) {
        const UserId i = layout.edges[e].first;
        const double d = problem.demand[i][r];
        if (d > 0.0) terms.emplace_back(e, d);
      }
      if (!terms.empty())
        lp.AddConstraintSparse(terms, lp::Relation::kLessEqual,
                               problem.machine_capacity[m][r]);
    }
  }

  const lp::Solution solution = lp.Solve();
  RoundSolution round;
  if (!solution.optimal()) return round;

  round.feasible = true;
  round.share = solution.objective;
  round.allocation = Allocation(problem.num_users, problem.num_machines);
  for (std::size_t e = 0; e < layout.edges.size(); ++e) {
    const auto [i, m] = layout.edges[e];
    round.allocation.set_tasks(i, m, std::max(0.0, solution.x[e]));
  }
  return round;
}

}  // namespace

double MaxShareWithFloors(const CompiledProblem& problem,
                          const std::vector<double>& denominator, UserId j,
                          const std::vector<double>& floor_tasks) {
  TSF_CHECK_LT(j, problem.num_users);
  TSF_CHECK_EQ(denominator.size(), problem.num_users);
  TSF_CHECK_EQ(floor_tasks.size(), problem.num_users);

  const EdgeLayout layout(problem);
  std::vector<bool> active(problem.num_users, false);
  active[j] = true;
  const RoundSolution round =
      SolveRound(problem, layout, denominator, active, floor_tasks);
  TSF_CHECK(round.feasible)
      << "freeze-probe LP infeasible — floors exceed capacity?";
  return round.share;
}

FillingResult ProgressiveFilling(const CompiledProblem& problem,
                                 const std::vector<double>& denominator) {
  TSF_CHECK_EQ(denominator.size(), problem.num_users);
  for (const double d : denominator) TSF_CHECK_GT(d, 0.0);

  const EdgeLayout layout(problem);
  const std::size_t n = problem.num_users;

  std::vector<bool> active(n, true);
  std::vector<double> frozen_tasks(n, 0.0);  // valid where !active
  FillingResult result;
  result.freeze_round.assign(n, 0);
  result.shares.assign(n, 0.0);

  std::size_t num_active = n;
  std::size_t round_number = 0;
  while (num_active > 0) {
    ++round_number;
    TSF_CHECK_LE(round_number, n + 1) << "progressive filling failed to converge";

    // LP step: raise all active users' shares equally to the maximum.
    const RoundSolution round =
        SolveRound(problem, layout, denominator, active, frozen_tasks);
    TSF_CHECK(round.feasible) << "round LP infeasible";
    result.round_levels.push_back(round.share);
    result.allocation = round.allocation;

    // FREEZE step: an active user j saturates if, holding everyone else's
    // current totals as floors, j's share cannot rise above the round level.
    std::vector<double> current_tasks(n);
    for (UserId i = 0; i < n; ++i)
      current_tasks[i] = active[i] ? round.allocation.UserTasks(i) : frozen_tasks[i];

    std::vector<UserId> newly_inactive;
    double closest_gap = std::numeric_limits<double>::infinity();
    UserId closest_user = n;
    for (UserId j = 0; j < n; ++j) {
      if (!active[j]) continue;
      std::vector<double> floors = current_tasks;
      floors[j] = 0.0;  // j is the probed user, not a floor
      const double max_share = MaxShareWithFloors(problem, denominator, j, floors);
      const double gap = max_share - round.share;
      if (gap <= kShareEps * std::max(1.0, round.share)) {
        newly_inactive.push_back(j);
      } else if (gap < closest_gap) {
        closest_gap = gap;
        closest_user = j;
      }
    }

    // Exact arithmetic guarantees at least one saturated user per round; if
    // round-off hid it, freeze the numerically closest user so the loop
    // always progresses.
    if (newly_inactive.empty()) {
      TSF_CHECK_LT(closest_user, n);
      TSF_LOG(DEBUG) << "freeze fallback: user " << closest_user << " gap "
                     << closest_gap;
      newly_inactive.push_back(closest_user);
    }

    for (const UserId j : newly_inactive) {
      active[j] = false;
      frozen_tasks[j] = round.allocation.UserTasks(j);
      result.freeze_round[j] = round_number;
      result.shares[j] = frozen_tasks[j] / denominator[j];
      --num_active;
    }
  }

  // The final round's LP may have topped inactive users up beyond their
  // frozen floors; report the shares the returned allocation actually gives.
  for (UserId i = 0; i < n; ++i)
    result.shares[i] = result.allocation.UserTasks(i) / denominator[i];

  return result;
}

}  // namespace tsf
