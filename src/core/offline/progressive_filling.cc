#include "core/offline/progressive_filling.h"

#include <algorithm>
#include <limits>

#include "util/check.h"
#include "util/log.h"

namespace tsf {
namespace {

// Two shares within this distance are "equal" for saturation decisions.
constexpr double kShareEps = 1e-7;

}  // namespace

FillingSpec MakeFillingSpec(const CompiledProblem& problem,
                            const EdgeLayout& layout,
                            const std::vector<double>& denominator) {
  FillingSpec spec;
  spec.num_structural = layout.edges.size();
  spec.user_rows.resize(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    FillingCouplingRow row;
    row.terms.reserve(layout.user_edges[i].size());
    for (const std::size_t e : layout.user_edges[i]) row.terms.emplace_back(e, 1.0);
    row.share_coeff = denominator[i];
    row.floor_fraction = 1.0;
    spec.user_rows[i].push_back(std::move(row));
  }
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    for (std::size_t r = 0; r < problem.num_resources; ++r) {
      FillingCapacityRow row;
      for (const std::size_t e : layout.machine_edges[m]) {
        const UserId i = layout.edges[e].first;
        const double d = problem.demand[i][r];
        if (d > 0.0) row.terms.emplace_back(e, d);
      }
      if (row.terms.empty()) continue;
      row.capacity = problem.machine_capacity[m][r];
      spec.capacity.push_back(std::move(row));
    }
  }
  return spec;
}

namespace {

Allocation AllocationFromPrimal(const CompiledProblem& problem,
                                const EdgeLayout& layout,
                                const std::vector<double>& x) {
  Allocation allocation(problem.num_users, problem.num_machines);
  // The solver guarantees x >= 0 (clamped against roundoff solver-side).
  for (std::size_t e = 0; e < layout.edges.size(); ++e) {
    const auto [i, m] = layout.edges[e];
    allocation.set_tasks(i, m, x[e]);
  }
  return allocation;
}

}  // namespace

EdgeLayout::EdgeLayout(const CompiledProblem& problem)
    : user_edges(problem.num_users), machine_edges(problem.num_machines) {
  for (UserId i = 0; i < problem.num_users; ++i) {
    problem.eligible[i].ForEachSet([&](std::size_t m) {
      const std::size_t e = edges.size();
      edges.emplace_back(i, m);
      user_edges[i].push_back(e);
      machine_edges[m].push_back(e);
    });
  }
  share_var = edges.size();
}

double MaxShareWithFloors(const CompiledProblem& problem,
                          const std::vector<double>& denominator, UserId j,
                          const std::vector<double>& floor_tasks) {
  const EdgeLayout layout(problem);
  return MaxShareWithFloors(problem, layout, denominator, j, floor_tasks);
}

double MaxShareWithFloors(const CompiledProblem& problem,
                          const EdgeLayout& layout,
                          const std::vector<double>& denominator, UserId j,
                          const std::vector<double>& floor_tasks) {
  TSF_CHECK_LT(j, problem.num_users);
  TSF_CHECK_EQ(denominator.size(), problem.num_users);
  TSF_CHECK_EQ(floor_tasks.size(), problem.num_users);

  FillingEngine engine(MakeFillingSpec(problem, layout, denominator), {});
  for (UserId i = 0; i < problem.num_users; ++i)
    if (i != j) engine.FreezeUser(i, floor_tasks[i]);
  double share = 0.0;
  TSF_CHECK(engine.SolveRound(&share, nullptr))
      << "freeze-probe LP infeasible — floors exceed capacity?";
  return share;
}

FillingResult ProgressiveFilling(const CompiledProblem& problem,
                                 const std::vector<double>& denominator,
                                 const FillingOptions& options) {
  TSF_CHECK_EQ(denominator.size(), problem.num_users);
  for (const double d : denominator) TSF_CHECK_GT(d, 0.0);

  const EdgeLayout layout(problem);
  FillingEngine engine(MakeFillingSpec(problem, layout, denominator), options);
  const std::size_t n = problem.num_users;

  std::vector<bool> active(n, true);
  std::vector<double> frozen_tasks(n, 0.0);  // valid where !active
  FillingResult result;
  result.freeze_round.assign(n, 0);
  result.shares.assign(n, 0.0);

  std::size_t num_active = n;
  std::size_t round_number = 0;
  std::vector<double> x;
  std::vector<double> max_share;
  while (num_active > 0) {
    ++round_number;
    TSF_CHECK_LE(round_number, n + 1) << "progressive filling failed to converge";

    // LP step: raise all active users' shares equally to the maximum. Warm
    // from the previous round — freezes only rewrote the frozen users' rows.
    double round_share = 0.0;
    TSF_CHECK(engine.SolveRound(&round_share, &x)) << "round LP infeasible";
    result.round_levels.push_back(round_share);
    result.allocation = AllocationFromPrimal(problem, layout, x);

    // FREEZE step: an active user j saturates if, holding everyone else's
    // current totals as floors, j's share cannot rise above the round level.
    // Probes branch off the solved round LP and may run in parallel; the
    // reduction below walks users in index order, so decisions match the
    // serial reference bit for bit.
    std::vector<double> current_tasks(n);
    for (UserId i = 0; i < n; ++i)
      current_tasks[i] = active[i] ? result.allocation.UserTasks(i) : frozen_tasks[i];
    engine.ProbeMaxShares(active, current_tasks, &max_share);

    std::vector<UserId> newly_inactive;
    double closest_gap = std::numeric_limits<double>::infinity();
    UserId closest_user = n;
    for (UserId j = 0; j < n; ++j) {
      if (!active[j]) continue;
      const double gap = max_share[j] - round_share;
      if (gap <= kShareEps * std::max(1.0, round_share)) {
        newly_inactive.push_back(j);
      } else if (gap < closest_gap) {
        closest_gap = gap;
        closest_user = j;
      }
    }

    // Exact arithmetic guarantees at least one saturated user per round; if
    // round-off hid it, freeze the numerically closest user so the loop
    // always progresses.
    if (newly_inactive.empty()) {
      TSF_CHECK_LT(closest_user, n);
      TSF_LOG(DEBUG) << "freeze fallback: user " << closest_user << " gap "
                     << closest_gap;
      newly_inactive.push_back(closest_user);
    }

    for (const UserId j : newly_inactive) {
      active[j] = false;
      frozen_tasks[j] = result.allocation.UserTasks(j);
      engine.FreezeUser(j, frozen_tasks[j]);
      result.freeze_round[j] = round_number;
      result.shares[j] = frozen_tasks[j] / denominator[j];
      --num_active;
    }
  }

  // The final round's LP may have topped inactive users up beyond their
  // frozen floors; report the shares the returned allocation actually gives.
  for (UserId i = 0; i < n; ++i)
    result.shares[i] = result.allocation.UserTasks(i) / denominator[i];

  return result;
}

}  // namespace tsf
