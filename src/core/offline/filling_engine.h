// Shared warm-started LP engine for progressive filling (Algorithm 1).
//
// Both the single-class engine (progressive_filling.cc) and multi-class TSF
// (multiclass.cc) run the same loop: one round LP that raises every active
// user's share s equally, then one FREEZE probe LP per active user. All of
// those programs share one constraint matrix and differ only in which users
// are coupled to s and in the floor right-hand sides — exactly the
// shape-preserving mutations lp::SimplexState re-solves warm (see
// lp/revised.h). FillingEngine owns that mapping:
//
//   * the StandardForm is built ONCE per filling run: for every user a block
//     of equality "coupling rows" (task totals = share_coeff * s), plus the
//     capacity rows;
//   * freezing user j rewrites its rows in place — the s coefficient drops
//     to zero and the equality relaxes to >= floor — so the next round LP
//     re-solves warm from the previous round's optimum;
//   * a FREEZE probe for user j clones the solved round state and applies
//     the same rewrite to every *other* active user at its current total,
//     leaving j as the only user coupled to s. The previous round optimum
//     stays primal feasible, so the probe skips phase 1 entirely.
//
// Probes are pure functions of (solved round state, probed user, totals):
// each runs on its own clone and writes its own output slot, so fanning them
// out over ThreadPool::ParallelFor and reducing in user order yields freeze
// decisions bit-identical to the serial loop.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "lp/revised.h"
#include "util/thread_pool.h"

namespace tsf {

// Tuning knobs threaded from the public solver entry points down to the
// engine. The defaults reproduce the serial reference behavior.
struct FillingOptions {
  // Pool for fanning FREEZE probes out. nullptr means serial probes. Do NOT
  // pass a pool whose workers may themselves be running the caller:
  // ParallelFor waits on the pool and would deadlock (see thread_pool.h);
  // top-level callers can use SharedFillingPool().
  ThreadPool* pool = nullptr;

  // Force serial probes even when `pool` is set (used by the determinism
  // tests to produce the reference ordering).
  bool serial_probes = false;

  // Solve every LP with the dense tableau solver instead of the warm
  // revised path — the executable-spec mode differential tests diff against.
  bool use_dense_engine = false;
};

// Lazily-created process-wide pool for probe fan-out; nullptr on single-core
// hosts where a pool would only add synchronization overhead. Only safe from
// threads that are not themselves SharedFillingPool() workers.
ThreadPool* SharedFillingPool();

// One coupling row of a user: while the user is active the row reads
// `terms · x = share_coeff * s`; once frozen at total floor F it becomes
// `terms · x >= floor_fraction * F`. Single-class users have one row with
// floor_fraction 1; a multi-class user has one row per class with
// floor_fraction mix_ic (the class's slice of the total).
struct FillingCouplingRow {
  std::vector<std::pair<std::size_t, double>> terms;
  double share_coeff = 1.0;
  double floor_fraction = 1.0;
};

struct FillingCapacityRow {
  std::vector<std::pair<std::size_t, double>> terms;
  double capacity = 0.0;
};

struct FillingSpec {
  std::size_t num_structural = 0;                        // variables besides s
  std::vector<std::vector<FillingCouplingRow>> user_rows; // per user
  std::vector<FillingCapacityRow> capacity;
};

class FillingEngine {
 public:
  // share_coeff must be strictly positive for every coupling row.
  FillingEngine(FillingSpec spec, const FillingOptions& options);

  std::size_t num_users() const { return user_row_ids_.size(); }

  // Maximizes s under the current active/frozen pattern. Returns false when
  // the program is infeasible; otherwise stores the share level and, if x is
  // non-null, the structural primal values (x[v] for v < num_structural).
  bool SolveRound(double* share, std::vector<double>* x);

  // Permanently freezes user j at total `floor`. Affects every later
  // SolveRound and ProbeMaxShares call.
  void FreezeUser(std::size_t j, double floor);

  // For every user j with probe[j] set, computes the max share j alone can
  // reach while every other active user is floored at current_totals[i]
  // (frozen users keep their existing floors). Call only after a successful
  // SolveRound so probes branch off the solved round state. Results land in
  // (*max_share)[j]; non-probed slots are 0. Deterministic: parallel and
  // serial execution produce bit-identical values.
  void ProbeMaxShares(const std::vector<bool>& probe,
                      const std::vector<double>& current_totals,
                      std::vector<double>* max_share);

  // LP re-solve counters of the persistent round state (probe clones
  // accumulate their own and are discarded).
  const lp::ResolveStats& stats() const { return state_.stats(); }

 private:
  lp::SimplexState BuildState(const FillingSpec& spec);
  void FreezeInState(lp::SimplexState& state, std::size_t user,
                     double floor) const;
  bool SolveState(lp::SimplexState& state, double* share,
                  std::vector<double>* x) const;

  FillingSpec spec_;
  std::vector<std::vector<std::size_t>> user_row_ids_;  // form rows per user
  std::size_t share_var_ = 0;
  std::vector<bool> frozen_;
  FillingOptions options_;
  lp::SimplexState state_;
};

}  // namespace tsf
