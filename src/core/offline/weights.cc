#include "core/offline/weights.h"

#include "util/check.h"

namespace tsf {

std::vector<double> Theorem1Weights(const CompiledProblem& problem,
                                    const DedicatedPools& pools) {
  TSF_CHECK_EQ(pools.fraction.size(), problem.num_users);
  std::vector<double> weights(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double k = DedicatedPoolTasks(problem, i, pools.fraction[i]);
    TSF_CHECK_GT(k, 0.0) << "Thm. 1 weights require a non-empty pool (user "
                         << i << ")";
    weights[i] = k / problem.h[i];
  }
  return weights;
}

CompiledProblem WithWeights(const CompiledProblem& problem,
                            std::vector<double> weights) {
  TSF_CHECK_EQ(weights.size(), problem.num_users);
  for (const double w : weights) TSF_CHECK_GT(w, 0.0);
  CompiledProblem weighted = problem;
  weighted.weight = std::move(weights);
  return weighted;
}

FillingResult SolvePerComponent(const CompiledProblem& problem,
                                OfflinePolicy policy,
                                const FillingOptions& options) {
  const ConstraintComponents components = FindComponents(problem);

  FillingResult result;
  result.allocation = Allocation(problem.num_users, problem.num_machines);
  result.shares.assign(problem.num_users, 0.0);
  result.freeze_round.assign(problem.num_users, 0);

  for (std::size_t c = 0; c < components.count; ++c) {
    // Machines and users of this component, with index remapping.
    std::vector<MachineId> machines;
    std::vector<std::size_t> machine_index(problem.num_machines, SIZE_MAX);
    for (MachineId m = 0; m < problem.num_machines; ++m) {
      if (components.machine_component[m] != c) continue;
      machine_index[m] = machines.size();
      machines.push_back(m);
    }
    std::vector<UserId> users;
    for (UserId i = 0; i < problem.num_users; ++i)
      if (components.user_component[i] == c) users.push_back(i);
    if (users.empty()) continue;  // machines no job can use stay idle

    CompiledProblem sub;
    sub.num_users = users.size();
    sub.num_machines = machines.size();
    sub.num_resources = problem.num_resources;
    for (const MachineId m : machines)
      sub.machine_capacity.push_back(problem.machine_capacity[m]);
    for (const UserId i : users) {
      sub.demand.push_back(problem.demand[i]);
      sub.weight.push_back(problem.weight[i]);
      DynamicBitset eligible(machines.size());
      problem.eligible[i].ForEachSet([&](std::size_t m) {
        TSF_DCHECK(machine_index[m] != SIZE_MAX)
            << "eligibility crosses component boundary";
        eligible.Set(machine_index[m]);
      });
      sub.eligible.push_back(std::move(eligible));
      // h and g are defined against the WHOLE datacenter; copy the global
      // values so shares keep their paper meaning inside the component.
      sub.h.push_back(problem.h[i]);
      sub.g.push_back(problem.g[i]);
    }

    const FillingResult sub_result = SolveOffline(policy, sub, 0, options);
    for (std::size_t iu = 0; iu < users.size(); ++iu) {
      for (std::size_t im = 0; im < machines.size(); ++im)
        result.allocation.set_tasks(users[iu], machines[im],
                                    sub_result.allocation.tasks(iu, im));
      result.shares[users[iu]] = sub_result.shares[iu];
      result.freeze_round[users[iu]] = sub_result.freeze_round[iu];
    }
  }
  return result;
}

}  // namespace tsf
