#include "core/offline/multiclass.h"

#include <cmath>
#include <limits>
#include <utility>

#include "core/offline/filling_engine.h"
#include "lp/simplex.h"
#include "util/check.h"

namespace tsf {
namespace {

constexpr double kShareEps = 1e-7;

// Variable layout: one variable per (user, class, eligible machine) triple
// plus the share level s.
struct TripleLayout {
  struct Triple {
    UserId user;
    std::size_t cls;
    MachineId machine;
  };
  std::vector<Triple> triples;
  std::vector<std::vector<std::vector<std::size_t>>> by_user_class;  // ids
  std::vector<std::vector<std::size_t>> by_machine;

  explicit TripleLayout(const CompiledMultiClass& problem)
      : by_user_class(problem.num_users),
        by_machine(problem.num_machines) {
    for (UserId i = 0; i < problem.num_users; ++i) {
      by_user_class[i].resize(problem.mix[i].size());
      for (std::size_t c = 0; c < problem.mix[i].size(); ++c) {
        problem.eligible[i].ForEachSet([&](std::size_t m) {
          const std::size_t id = triples.size();
          triples.push_back({i, c, m});
          by_user_class[i][c].push_back(id);
          by_machine[m].push_back(id);
        });
      }
    }
  }
};

MultiClassAllocation EmptyAllocation(const CompiledMultiClass& problem) {
  MultiClassAllocation allocation;
  allocation.num_users = problem.num_users;
  allocation.tasks.resize(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i)
    allocation.tasks[i].assign(problem.mix[i].size(),
                               std::vector<double>(problem.num_machines, 0.0));
  return allocation;
}

// Engine form of the multi-class round LP: per active user i and class c a
// coupling row  sum_m n_icm = mix_ic * H_i w_i * s ; once i freezes at total
// floor F, each class row relaxes to >= mix_ic * F (the mix is kept), plus
// the machine capacity rows.
FillingSpec MakeSpec(const CompiledMultiClass& problem,
                     const TripleLayout& layout) {
  FillingSpec spec;
  spec.num_structural = layout.triples.size();
  spec.user_rows.resize(problem.num_users);
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double scale = problem.H[i] * problem.weight[i];
    for (std::size_t c = 0; c < problem.mix[i].size(); ++c) {
      FillingCouplingRow row;
      row.terms.reserve(layout.by_user_class[i][c].size());
      for (const std::size_t id : layout.by_user_class[i][c])
        row.terms.emplace_back(id, 1.0);
      row.share_coeff = problem.mix[i][c] * scale;
      row.floor_fraction = problem.mix[i][c];
      spec.user_rows[i].push_back(std::move(row));
    }
  }
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    for (std::size_t r = 0; r < problem.num_resources; ++r) {
      FillingCapacityRow row;
      for (const std::size_t id : layout.by_machine[m]) {
        const auto& triple = layout.triples[id];
        const double d = problem.demand[triple.user][triple.cls][r];
        if (d > 0.0) row.terms.emplace_back(id, d);
      }
      if (row.terms.empty()) continue;
      row.capacity = problem.machine_capacity[m][r];
      spec.capacity.push_back(std::move(row));
    }
  }
  return spec;
}

MultiClassAllocation AllocationFromPrimal(const CompiledMultiClass& problem,
                                          const TripleLayout& layout,
                                          const std::vector<double>& x) {
  MultiClassAllocation allocation = EmptyAllocation(problem);
  // The solver guarantees x >= 0 (clamped against roundoff solver-side).
  for (std::size_t id = 0; id < layout.triples.size(); ++id) {
    const auto& triple = layout.triples[id];
    allocation.tasks[triple.user][triple.cls][triple.machine] = x[id];
  }
  return allocation;
}

}  // namespace

double MultiClassAllocation::UserTasks(UserId i) const {
  double total = 0;
  for (const auto& machines : tasks[i])
    for (const double n : machines) total += n;
  return total;
}

double MultiClassAllocation::ClassTasks(UserId i, std::size_t c) const {
  double total = 0;
  for (const double n : tasks[i][c]) total += n;
  return total;
}

double MultiClassMonopolyTasks(const CompiledMultiClass& problem, UserId i) {
  // Monopoly: constraints removed (every machine usable), mix enforced.
  // Variables: n_cm for this user's classes over all machines, plus n.
  const std::size_t classes = problem.mix[i].size();
  const std::size_t machines = problem.num_machines;
  lp::Problem lp(classes * machines + 1);
  const std::size_t total_var = classes * machines;
  lp.SetObjectiveCoefficient(total_var, 1.0);
  auto var = [machines](std::size_t c, MachineId m) { return c * machines + m; };

  for (std::size_t c = 0; c < classes; ++c) {
    std::vector<std::pair<std::size_t, double>> terms;
    for (MachineId m = 0; m < machines; ++m) terms.emplace_back(var(c, m), 1.0);
    terms.emplace_back(total_var, -problem.mix[i][c]);
    lp.AddConstraintSparse(terms, lp::Relation::kEqual, 0.0);
  }
  for (MachineId m = 0; m < machines; ++m) {
    for (std::size_t r = 0; r < problem.num_resources; ++r) {
      std::vector<std::pair<std::size_t, double>> terms;
      for (std::size_t c = 0; c < classes; ++c) {
        const double d = problem.demand[i][c][r];
        if (d > 0.0) terms.emplace_back(var(c, m), d);
      }
      if (!terms.empty())
        lp.AddConstraintSparse(terms, lp::Relation::kLessEqual,
                               problem.machine_capacity[m][r]);
    }
  }
  const lp::Solution solution = lp.Solve();
  TSF_CHECK(solution.optimal()) << "monopoly LP failed";
  return solution.objective;
}

CompiledMultiClass CompileMultiClass(const MultiClassProblem& problem) {
  const Cluster& cluster = problem.cluster;
  TSF_CHECK_GT(cluster.num_machines(), 0u);
  TSF_CHECK(!problem.users.empty());

  CompiledMultiClass compiled;
  compiled.num_users = problem.users.size();
  compiled.num_machines = cluster.num_machines();
  compiled.num_resources = cluster.num_resources();
  for (MachineId m = 0; m < compiled.num_machines; ++m)
    compiled.machine_capacity.push_back(cluster.NormalizedCapacity(m));

  for (const MultiClassJobSpec& user : problem.users) {
    TSF_CHECK_GT(user.weight, 0.0);
    TSF_CHECK(!user.class_demand.empty()) << user.name << ": no classes";
    TSF_CHECK_EQ(user.class_demand.size(), user.class_mix.size());
    double mix_sum = 0;
    std::vector<ResourceVector> demands;
    for (std::size_t c = 0; c < user.class_demand.size(); ++c) {
      TSF_CHECK_GT(user.class_mix[c], 0.0)
          << user.name << ": class mix must be strictly positive";
      mix_sum += user.class_mix[c];
      ResourceVector d = cluster.NormalizedDemand(user.class_demand[c]);
      TSF_CHECK(!d.IsZero()) << user.name << ": zero-demand class";
      demands.push_back(std::move(d));
    }
    TSF_CHECK(std::abs(mix_sum - 1.0) < 1e-9)
        << user.name << ": class mix must sum to 1 (got " << mix_sum << ")";
    DynamicBitset eligible = cluster.Eligibility(user.constraint);
    TSF_CHECK(eligible.Any()) << user.name << ": no eligible machine";
    compiled.demand.push_back(std::move(demands));
    compiled.mix.push_back(user.class_mix);
    compiled.eligible.push_back(std::move(eligible));
    compiled.weight.push_back(user.weight);
  }

  compiled.H.resize(compiled.num_users);
  for (UserId i = 0; i < compiled.num_users; ++i) {
    compiled.H[i] = MultiClassMonopolyTasks(compiled, i);
    TSF_CHECK_GT(compiled.H[i], 0.0);
  }
  return compiled;
}

MultiClassResult SolveMultiClassTsf(const CompiledMultiClass& problem,
                                    const FillingOptions& options) {
  const TripleLayout layout(problem);
  FillingEngine engine(MakeSpec(problem, layout), options);
  const std::size_t n = problem.num_users;

  std::vector<bool> active(n, true);
  std::vector<double> frozen_tasks(n, 0.0);
  MultiClassResult result;
  result.allocation = EmptyAllocation(problem);
  result.shares.assign(n, 0.0);

  std::size_t num_active = n;
  std::size_t rounds = 0;
  std::vector<double> x;
  std::vector<double> max_share;
  while (num_active > 0) {
    TSF_CHECK_LE(++rounds, n + 1) << "multi-class filling did not converge";
    double round_share = 0.0;
    TSF_CHECK(engine.SolveRound(&round_share, &x)) << "round LP infeasible";
    result.allocation = AllocationFromPrimal(problem, layout, x);

    std::vector<double> current(n);
    for (UserId i = 0; i < n; ++i)
      current[i] = active[i] ? result.allocation.UserTasks(i) : frozen_tasks[i];
    engine.ProbeMaxShares(active, current, &max_share);

    std::vector<UserId> newly_inactive;
    double closest_gap = std::numeric_limits<double>::infinity();
    UserId closest = n;
    for (UserId j = 0; j < n; ++j) {
      if (!active[j]) continue;
      const double gap = max_share[j] - round_share;
      if (gap <= kShareEps * std::max(1.0, round_share)) {
        newly_inactive.push_back(j);
      } else if (gap < closest_gap) {
        closest_gap = gap;
        closest = j;
      }
    }
    if (newly_inactive.empty()) {
      TSF_CHECK_LT(closest, n);
      newly_inactive.push_back(closest);
    }
    for (const UserId j : newly_inactive) {
      active[j] = false;
      frozen_tasks[j] = result.allocation.UserTasks(j);
      engine.FreezeUser(j, frozen_tasks[j]);
      --num_active;
    }
  }

  for (UserId i = 0; i < n; ++i)
    result.shares[i] = result.allocation.UserTasks(i) /
                       (problem.H[i] * problem.weight[i]);
  return result;
}

}  // namespace tsf
