// Offline sharing policies (the paper's contribution and every baseline it
// analyzes in Secs. IV–V), all under divisible tasks.
//
// Except for per-machine DRF — which by definition runs DRF on each machine
// in isolation — every policy is an instantiation of progressive filling
// with a policy-specific share denominator; see progressive_filling.h.
#pragma once

#include <string>
#include <vector>

#include "core/offline/progressive_filling.h"

namespace tsf {

enum class OfflinePolicy {
  kTsf,            // Task Share Fairness (this paper)
  kCdrf,           // constrained Containerized DRF [8]
  kDrfh,           // DRF in heterogeneous systems [30]
  kPerMachineDrf,  // DRF applied to each machine separately
  kCmmf,           // Constrained Max-Min Fairness / Choosy [11], one resource
};

std::string ToString(OfflinePolicy policy);

// Task Share Fairness: max-min over s_i = n_i / (h_i w_i), h_i the number of
// tasks user i could run monopolizing the datacenter with constraints
// removed (Sec. V-A).
FillingResult SolveTsf(const CompiledProblem& problem,
                       const FillingOptions& options = {});

// Constrained CDRF: max-min over the "work slowdown" n_i / (g_i w_i), g_i
// the constrained monopoly task count (Sec. IV-B3).
FillingResult SolveCdrf(const CompiledProblem& problem,
                        const FillingOptions& options = {});

// DRFH: max-min over the global dominant share, n_i * max_r d_ir / w_i
// (Sec. IV-B2).
FillingResult SolveDrfh(const CompiledProblem& problem,
                        const FillingOptions& options = {});

// CMMF w.r.t. one resource: max-min over n_i * d_ir / w_i among users that
// demand resource r (Sec. IV-A; Choosy). Requires d_ir > 0 for every user.
FillingResult SolveCmmf(const CompiledProblem& problem, std::size_t resource,
                        const FillingOptions& options = {});

// Per-machine DRF: DRF run independently on every machine over the users
// eligible there; a user's tasks are the sum of its per-machine wins
// (Sec. IV-B1). Dominant share on machine m is relative to m's capacity.
FillingResult SolvePerMachineDrf(const CompiledProblem& problem,
                                 const FillingOptions& options = {});

// Dispatch by enum (CMMF uses `resource`).
FillingResult SolveOffline(OfflinePolicy policy, const CompiledProblem& problem,
                           std::size_t resource = 0,
                           const FillingOptions& options = {});

// The per-policy share denominators, exposed for property checkers that
// re-run filling with manipulated inputs.
std::vector<double> TsfDenominator(const CompiledProblem& problem);
std::vector<double> CdrfDenominator(const CompiledProblem& problem);
std::vector<double> DrfhDenominator(const CompiledProblem& problem);
std::vector<double> CmmfDenominator(const CompiledProblem& problem,
                                    std::size_t resource);

}  // namespace tsf
