#include "core/allocation.h"

#include <cstdio>

namespace tsf {

double Allocation::UserTasks(UserId i) const {
  double total = 0;
  for (MachineId m = 0; m < num_machines_; ++m) total += tasks(i, m);
  return total;
}

ResourceVector Allocation::MachineUsage(MachineId m,
                                        const CompiledProblem& problem) const {
  ResourceVector usage(problem.num_resources);
  for (UserId i = 0; i < num_users_; ++i) {
    const double n = tasks(i, m);
    if (n > 0.0) usage += n * problem.demand[i];
  }
  return usage;
}

ResourceVector Allocation::MachineSlack(MachineId m,
                                        const CompiledProblem& problem) const {
  ResourceVector slack = problem.machine_capacity[m];
  slack -= MachineUsage(m, problem);
  return slack;
}

std::vector<double> Allocation::TaskShares(const CompiledProblem& problem) const {
  std::vector<double> shares(num_users_);
  for (UserId i = 0; i < num_users_; ++i)
    shares[i] = UserTasks(i) / (problem.h[i] * problem.weight[i]);
  return shares;
}

bool Allocation::IsFeasible(const CompiledProblem& problem, std::string* error,
                            double tolerance) const {
  auto fail = [error](std::string message) {
    if (error != nullptr) *error = std::move(message);
    return false;
  };
  if (num_users_ != problem.num_users || num_machines_ != problem.num_machines)
    return fail("allocation shape does not match problem");

  for (UserId i = 0; i < num_users_; ++i) {
    for (MachineId m = 0; m < num_machines_; ++m) {
      const double n = tasks(i, m);
      if (n < -tolerance)
        return fail("negative task count for user " + std::to_string(i));
      if (n > tolerance && !problem.eligible[i].Test(m))
        return fail("user " + std::to_string(i) + " placed on ineligible machine " +
                    std::to_string(m));
    }
  }
  for (MachineId m = 0; m < num_machines_; ++m) {
    const ResourceVector usage = MachineUsage(m, problem);
    for (std::size_t r = 0; r < problem.num_resources; ++r) {
      if (usage[r] > problem.machine_capacity[m][r] + tolerance)
        return fail("machine " + std::to_string(m) + " over capacity in resource " +
                    std::to_string(r));
    }
  }
  return true;
}

double Allocation::Utilization(const CompiledProblem& problem,
                               std::size_t r) const {
  // machine_capacity is normalized, so summing usage across machines yields
  // the datacenter-wide fraction directly.
  ResourceVector used(problem.num_resources);
  for (MachineId m = 0; m < num_machines_; ++m) used += MachineUsage(m, problem);
  if (r != SIZE_MAX) {
    TSF_CHECK_LT(r, problem.num_resources);
    return used[r];
  }
  return used.Sum() / static_cast<double>(problem.num_resources);
}

std::string Allocation::ToString(const CompiledProblem& problem) const {
  std::string out;
  const std::vector<double> shares = TaskShares(problem);
  for (UserId i = 0; i < num_users_; ++i) {
    char line[160];
    std::snprintf(line, sizeof(line), "u%zu: tasks=%.3f share=%.4f  [", i,
                  UserTasks(i), shares[i]);
    out += line;
    bool first = true;
    for (MachineId m = 0; m < num_machines_; ++m) {
      if (tasks(i, m) <= 1e-9) continue;
      char cell[64];
      std::snprintf(cell, sizeof(cell), "%sm%zu:%.3f", first ? "" : ", ", m,
                    tasks(i, m));
      out += cell;
      first = false;
    }
    out += "]\n";
  }
  return out;
}

}  // namespace tsf
