#include "core/eligibility.h"

#include <utility>

#include "util/check.h"

namespace tsf {

namespace {

// Canonical constraint signature: kind byte + sorted attribute ids + sorted
// machine list. Structural equality of constraints is equality of
// signatures (both id lists are kept sorted and unique by their owners).
std::string ConstraintKey(const Constraint& constraint) {
  std::string key(1, static_cast<char>(constraint.kind()));
  for (const AttributeId id : constraint.required_attributes().ids())
    key.append(reinterpret_cast<const char*>(&id), sizeof(id));
  for (const MachineId m : constraint.machine_list())
    key.append(reinterpret_cast<const char*>(&m), sizeof(m));
  return key;
}

}  // namespace

EligibilityPool::EligibilityPool(const Cluster& cluster,
                                 const MachineClassIndex& classes)
    : cluster_(&cluster), classes_(&classes) {
  TSF_CHECK_EQ(cluster.num_machines(), classes.num_machines())
      << "class index built for a different cluster";
}

EligibilityHandle EligibilityPool::Intern(const Constraint& constraint) {
  const auto [it, inserted] =
      pool_.emplace(ConstraintKey(constraint), EligibilityHandle{});
  if (!inserted) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  it->second = Compile(constraint);
  return it->second;
}

EligibilityHandle EligibilityPool::Wrap(DynamicBitset machines) const {
  return WrapEligibility(std::move(machines), *classes_);
}

EligibilityHandle WrapEligibility(DynamicBitset machines,
                                  const MachineClassIndex& classes) {
  TSF_CHECK_EQ(machines.size(), classes.num_machines());
  auto set = std::make_shared<EligibilitySet>();
  set->machines = std::move(machines);
  set->classes = DynamicBitset(classes.num_classes());
  set->class_count.assign(classes.num_classes(), 0);
  set->machines.ForEachSet([&](std::size_t m) {
    ++set->class_count[classes.class_of(m)];
    ++set->num_eligible;
  });
  for (std::size_t c = 0; c < classes.num_classes(); ++c)
    if (set->class_count[c] > 0) set->classes.Set(c);
  return set;
}

EligibilityHandle WrapFlatEligibility(DynamicBitset machines) {
  auto set = std::make_shared<EligibilitySet>();
  set->num_eligible = machines.Count();
  set->machines = std::move(machines);
  return set;
}

EligibilityHandle EligibilityPool::Compile(const Constraint& constraint) const {
  const std::size_t num_machines = classes_->num_machines();
  const std::size_t num_classes = classes_->num_classes();
  auto set = std::make_shared<EligibilitySet>();
  set->machines = DynamicBitset(num_machines);
  set->classes = DynamicBitset(num_classes);
  set->class_count.assign(num_classes, 0);

  switch (constraint.kind()) {
    case Constraint::Kind::kNone:
    case Constraint::Kind::kRequireAttributes:
      // Uniform within a class: probe one representative, admit all members.
      for (std::size_t c = 0; c < num_classes; ++c) {
        const Machine& probe = cluster_->machine(classes_->representative(c));
        if (!constraint.Allows(probe.id, probe.attributes)) continue;
        set->machines |= classes_->members(c);
        set->classes.Set(c);
        set->class_count[c] = classes_->class_size(c);
        set->num_eligible += classes_->class_size(c);
      }
      break;
    case Constraint::Kind::kWhitelist:
    case Constraint::Kind::kBlacklist: {
      // Machine-id based; may split a class. Build the exact bits from the
      // list, then derive the class summaries.
      if (constraint.kind() == Constraint::Kind::kBlacklist) {
        set->machines.SetAll();
        for (std::size_t c = 0; c < num_classes; ++c)
          set->class_count[c] = classes_->class_size(c);
        set->num_eligible = num_machines;
      }
      for (const MachineId m : constraint.machine_list()) {
        TSF_CHECK_LT(m, num_machines);
        const std::uint32_t c = classes_->class_of(m);
        if (constraint.kind() == Constraint::Kind::kWhitelist) {
          set->machines.Set(m);
          ++set->class_count[c];
          ++set->num_eligible;
        } else {
          set->machines.Reset(m);
          --set->class_count[c];
          --set->num_eligible;
        }
      }
      for (std::size_t c = 0; c < num_classes; ++c)
        if (set->class_count[c] > 0) set->classes.Set(c);
      break;
    }
  }
  return set;
}

std::size_t EligibilityPool::EvictUnused() {
  std::size_t evicted = 0;
  // The eviction predicate is per-entry and side-effect-free: the surviving
  // pool contents and the evicted count are identical for any iteration
  // order, and nothing placement-visible observes the order.
  // NOLINT-determinism(order-independent eviction sweep)
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->second.use_count() == 1) {
      it = pool_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace tsf
