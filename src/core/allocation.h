// Allocations: how many (divisible) tasks each user runs on each machine.
//
// Offline policies produce an Allocation; property checkers and tests
// interrogate it (feasibility, per-user totals, shares, utilization).
#pragma once

#include <string>
#include <vector>

#include "core/cluster.h"

namespace tsf {

class Allocation {
 public:
  Allocation() = default;
  Allocation(std::size_t num_users, std::size_t num_machines)
      : num_users_(num_users),
        num_machines_(num_machines),
        tasks_(num_users * num_machines, 0.0) {}

  std::size_t num_users() const { return num_users_; }
  std::size_t num_machines() const { return num_machines_; }

  double tasks(UserId i, MachineId m) const {
    TSF_DCHECK(i < num_users_ && m < num_machines_);
    return tasks_[i * num_machines_ + m];
  }
  void set_tasks(UserId i, MachineId m, double n) {
    TSF_DCHECK(i < num_users_ && m < num_machines_);
    tasks_[i * num_machines_ + m] = n;
  }
  void add_tasks(UserId i, MachineId m, double n) {
    TSF_DCHECK(i < num_users_ && m < num_machines_);
    tasks_[i * num_machines_ + m] += n;
  }

  // n_i: total tasks of user i across machines.
  double UserTasks(UserId i) const;

  // Resources consumed on machine m (normalized units, given the problem's
  // normalized demands).
  ResourceVector MachineUsage(MachineId m, const CompiledProblem& problem) const;

  // Leftover capacity on machine m.
  ResourceVector MachineSlack(MachineId m, const CompiledProblem& problem) const;

  // Per-user task share s_i = n_i / (h_i w_i) — the quantity TSF equalizes.
  std::vector<double> TaskShares(const CompiledProblem& problem) const;

  // Feasibility per Sec. IV-B2: no machine over capacity (within tolerance)
  // and no tasks placed on ineligible machines. On failure, *error explains.
  bool IsFeasible(const CompiledProblem& problem, std::string* error = nullptr,
                  double tolerance = 1e-6) const;

  // Fraction of datacenter resource r in use, averaged over resources when
  // r == SIZE_MAX.
  double Utilization(const CompiledProblem& problem,
                     std::size_t r = SIZE_MAX) const;

  std::string ToString(const CompiledProblem& problem) const;

 private:
  std::size_t num_users_ = 0;
  std::size_t num_machines_ = 0;
  std::vector<double> tasks_;  // row-major [user][machine]
};

}  // namespace tsf
