#include "core/constraint.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace tsf {

AttributeSet::AttributeSet(std::vector<AttributeId> ids) : ids_(std::move(ids)) {
  std::sort(ids_.begin(), ids_.end());
  ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
}

void AttributeSet::Add(AttributeId id) {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) ids_.insert(it, id);
}

bool AttributeSet::Contains(AttributeId id) const {
  return std::binary_search(ids_.begin(), ids_.end(), id);
}

bool AttributeSet::ContainsAll(const AttributeSet& required) const {
  return std::includes(ids_.begin(), ids_.end(), required.ids_.begin(),
                       required.ids_.end());
}

Constraint Constraint::None() { return Constraint{}; }

Constraint Constraint::RequireAttributes(AttributeSet required) {
  Constraint c;
  c.kind_ = Kind::kRequireAttributes;
  c.attributes_ = std::move(required);
  return c;
}

namespace {
std::vector<MachineId> SortedUnique(std::vector<MachineId> machines) {
  std::sort(machines.begin(), machines.end());
  machines.erase(std::unique(machines.begin(), machines.end()), machines.end());
  return machines;
}
}  // namespace

Constraint Constraint::Whitelist(std::vector<MachineId> machines) {
  // P.7 fail-early: a whitelist of zero machines means the job can run
  // nowhere; catching it here beats the downstream "no machine satisfies
  // the constraint" failure after the cluster is already compiled.
  TSF_CHECK(!machines.empty()) << "whitelist of zero machines";
  Constraint c;
  c.kind_ = Kind::kWhitelist;
  c.machines_ = SortedUnique(std::move(machines));
  return c;
}

Constraint Constraint::Blacklist(std::vector<MachineId> machines) {
  Constraint c;
  c.kind_ = Kind::kBlacklist;
  c.machines_ = SortedUnique(std::move(machines));
  return c;
}

bool Constraint::Allows(MachineId id,
                        const AttributeSet& machine_attributes) const {
  switch (kind_) {
    case Kind::kNone:
      return true;
    case Kind::kRequireAttributes:
      return machine_attributes.ContainsAll(attributes_);
    case Kind::kWhitelist:
      return std::binary_search(machines_.begin(), machines_.end(), id);
    case Kind::kBlacklist:
      return !std::binary_search(machines_.begin(), machines_.end(), id);
  }
  return false;
}

std::string Constraint::ToString() const {
  switch (kind_) {
    case Kind::kNone:
      return "none";
    case Kind::kRequireAttributes: {
      std::string out = "attrs{";
      for (std::size_t i = 0; i < attributes_.ids().size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(attributes_.ids()[i]);
      }
      return out + "}";
    }
    case Kind::kWhitelist:
    case Kind::kBlacklist: {
      std::string out = kind_ == Kind::kWhitelist ? "whitelist{" : "blacklist{";
      for (std::size_t i = 0; i < machines_.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(machines_[i]);
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace tsf
