// Incremental share-ranking machinery shared by the online scheduler and the
// Mesos-like offer allocator.
//
// Every non-FIFO policy's progress key factors as `running × coeff` with a
// per-user coefficient that is fixed at registration time:
//
//   DRF   coeff = MaxComponent(d_i) / w_i   (dominant share per task)
//   CDRF  coeff = 1 / (g_i · w_i)
//   CMMF  coeff = d_i[r] / w_i
//   TSF   coeff = 1 / (h_i · w_i)
//
// Caching the coefficient turns key maintenance into one multiply per
// running-count change, and selection into a min-heap ordered by (key, id)
// — the same "re-rank only the touched client" trick Mesos's DRF sorter
// uses. RankHeap is that heap: a binary min-heap over (key, id) pairs with
// lazy invalidation (a popped entry whose stored key is stale is re-pushed
// at the current key; keys only grow within a serve phase, so the stored
// key is always a lower bound and the true minimum is never popped late).
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/online/policy.h"
#include "core/resource.h"
#include "util/check.h"

namespace tsf {

// The per-user key coefficient under `policy` (see table above). FIFO has no
// running-dependent key — callers rank FIFO users by id — so it gets 0.
inline double ShareCoefficient(const OnlinePolicy& policy,
                               const ResourceVector& demand, double weight,
                               double h, double g) {
  switch (policy.kind) {
    case OnlinePolicy::Kind::kFifo:
      return 0.0;
    case OnlinePolicy::Kind::kDrf:
      return demand.MaxComponent() / weight;
    case OnlinePolicy::Kind::kCdrf:
      return 1.0 / (g * weight);
    case OnlinePolicy::Kind::kCmmf:
      return demand[policy.resource] / weight;
    case OnlinePolicy::Kind::kTsf:
      return 1.0 / (h * weight);
  }
  TSF_CHECK(false) << "unreachable";
}

struct RankEntry {
  double key = 0.0;
  std::size_t id = 0;
};

// Binary min-heap over (key, id), ties broken by lower id (arrival order) —
// the exact selection rule of the former linear scans. Callers keep at most
// one live entry per id and re-push after the key changes.
class RankHeap {
 public:
  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }

  void Clear() { heap_.clear(); }
  void Reserve(std::size_t n) { heap_.reserve(n); }

  void Push(double key, std::size_t id) {
    heap_.push_back(RankEntry{key, id});
    std::push_heap(heap_.begin(), heap_.end(), After);
  }

  RankEntry PopMin() {
    TSF_DCHECK(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), After);
    const RankEntry min = heap_.back();
    heap_.pop_back();
    return min;
  }

  // Bulk-load (O(n) heapify); replaces current contents.
  void Assign(std::vector<RankEntry> entries) {
    heap_ = std::move(entries);
    std::make_heap(heap_.begin(), heap_.end(), After);
  }

  // Bulk-build protocol that reuses the heap's storage across phases:
  // Clear() once, PushUnordered() per entry, Heapify() before the first
  // PopMin.
  void PushUnordered(double key, std::size_t id) {
    heap_.push_back(RankEntry{key, id});
  }
  void Heapify() { std::make_heap(heap_.begin(), heap_.end(), After); }

 private:
  // std:: heap algorithms build a max-heap w.r.t. the comparator, so "a
  // ranks after b" yields a min-heap on (key, id).
  static bool After(const RankEntry& a, const RankEntry& b) {
    if (a.key != b.key) return a.key > b.key;
    return a.id > b.id;
  }

  std::vector<RankEntry> heap_;
};

}  // namespace tsf
