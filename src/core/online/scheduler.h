// The online TSF algorithm of Sec. V-D, generalized over the progress key so
// the same machinery runs every baseline in the evaluation.
//
// State: per-machine free capacity, per-user {demand, eligibility, weight,
// h, g, pending, running}. Two entry points mirror the paper's event loop:
//
//  * PlaceUserGreedy — on job arrival: if the datacenter is not full, place
//    the new tasks on machines satisfying demand and constraints. (At that
//    instant no *other* queued user can place anywhere — the scheduler is
//    work-conserving after every event — so greedy placement of the
//    newcomer is policy-correct for all policies.)
//  * ServeMachine — on task completion on machine m: offer m's freed
//    resources to the users eligible on m, in ascending key order, until no
//    pending task fits.
//
// Time never appears here; the discrete-event simulator owns the clock and
// calls these hooks.
//
// Selection is incremental: each user's progress key is `running × coeff`
// with the coefficient cached at AddUser (see core/online/ranker.h), and
// both serve loops pick the next user from a (key, id) min-heap instead of
// rescanning every candidate — O(log n) per placement. ReferenceScheduler
// (core/online/reference_scheduler.h) retains the original linear-scan
// implementation as an executable spec; the differential tests assert
// placement-for-placement identity between the two.
//
// Collapsed mode (trace scale): constructed with a MachineClassIndex, the
// scheduler keeps its bookkeeping per machine *class* instead of per
// machine — one wait list per class, a stale-high free-capacity upper
// bound per class that prunes whole classes from placement scans, and
// resumable bitset cursors instead of materialized machine lists. Placement
// decisions still test the exact per-machine free vector, so the emitted
// placement stream is bit-identical to the flat path; only the work spent
// finding each placement shrinks from O(machines) to O(classes). Flat mode
// (the two-argument constructor) is byte-for-byte the legacy code path and
// serves as the A/B baseline.
//
// The on_place callbacks must not mutate the scheduler (no AddUser /
// AddPending / OnTaskFinish re-entry): both serve loops assume keys only
// grow and capacity only shrinks within a phase.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/eligibility.h"
#include "core/online/policy.h"
#include "core/online/ranker.h"
#include "core/resource.h"
#include "util/bitset.h"

namespace tsf {

using UserId = std::size_t;

struct OnlineUserSpec {
  ResourceVector demand;   // normalized per-task demand
  DynamicBitset eligible;  // over the scheduler's machines
  // Interned alternative to `eligible`: when set, it wins and `eligible` is
  // ignored (collapsed-mode callers share one compiled set across users
  // carrying the same constraint — see core/eligibility.h).
  EligibilityHandle eligible_set;
  double weight = 1.0;
  double h = 0.0;  // unconstrained monopoly tasks (TSF denominator)
  double g = 0.0;  // constrained monopoly tasks (CDRF denominator)
  long pending = 0;
};

class OnlineScheduler {
 public:
  // `machine_capacity` is the normalized configuration vector per machine.
  // Flat mode: every structure is per-machine (the legacy layout).
  OnlineScheduler(std::vector<ResourceVector> machine_capacity,
                  OnlinePolicy policy);

  // Collapsed mode when `classes` is non-null (must outlive the scheduler
  // and index the same machines); flat mode when null.
  OnlineScheduler(std::vector<ResourceVector> machine_capacity,
                  OnlinePolicy policy, const MachineClassIndex* classes);

  std::size_t num_machines() const { return free_.size(); }
  std::size_t num_users() const { return users_.size(); }
  const OnlinePolicy& policy() const { return policy_; }
  bool collapsed() const { return classes_ != nullptr; }

  // Registers a user; ids are dense and assigned in call order (which is
  // what FIFO ranks by).
  UserId AddUser(OnlineUserSpec spec);

  // Adds more queued tasks for an existing user.
  void AddPending(UserId user, long count);

  // Frees one task's resources on m. Does not trigger scheduling — call
  // ServeMachine afterwards.
  void OnTaskFinish(UserId user, MachineId machine);

  // Marks a user finished so serve loops skip it cheaply.
  void Retire(UserId user);

  // --- chaos hooks (src/chaos fault injection) ----------------------------
  // Takes a machine offline: its free capacity drops to zero so no task can
  // be placed there. The caller requeues every task running on the machine
  // *before* crashing it (OnTaskFinish + AddPending per task): the scheduler
  // tracks capacity, not placements, so it cannot do the kills itself.
  void CrashMachine(MachineId machine);
  // Brings a crashed machine back online, empty (full capacity free).
  void RestoreMachine(MachineId machine);
  bool MachineDown(MachineId machine) const { return down_[machine]; }

  // Greedy placement over every eligible machine for one user; invokes
  // on_place(machine) per task placed (resources already debited).
  void PlaceUserGreedy(UserId user,
                       const std::function<void(MachineId)>& on_place);

  // Key-ordered placement for a batch of users that became schedulable at
  // the same instant (e.g. jobs arriving at the same timestamp): repeatedly
  // serves the lowest-key batch member that still fits somewhere, so
  // simultaneous arrivals interleave instead of the first one monopolizing
  // the idle capacity. Only the listed users are considered — callers
  // invoke this when no other pending user can place (the scheduler is
  // work-conserving after every event).
  void PlaceUsersInterleaved(const std::vector<UserId>& users,
                             const std::function<void(UserId, MachineId)>& on_place);

  // Ascending-key service of machine m's free capacity; invokes
  // on_place(user, machine) per task placed.
  void ServeMachine(MachineId machine,
                    const std::function<void(UserId, MachineId)>& on_place);

  long pending(UserId user) const { return users_[user].pending; }
  long running(UserId user) const { return users_[user].running; }

  // True if any user still has queued tasks. O(1): serving a machine when
  // nothing is pending is a guaranteed no-op, so the simulator skips the
  // call entirely.
  bool HasPendingUsers() const { return total_pending_ > 0; }

  // Current progress key (lower = served first).
  double Key(UserId user) const;

  const ResourceVector& FreeCapacity(MachineId machine) const {
    return free_[machine];
  }

 private:
  struct User {
    ResourceVector demand;
    EligibilityHandle elig;  // shared across users with equal constraints
    std::uint32_t demand_id = 0;  // interned demand shape (collapsed mode)
    double weight = 1.0;
    double h = 0.0;
    double g = 0.0;
    long pending = 0;
    long running = 0;
    // Cached key state: key == running * coeff for every non-FIFO policy
    // (FIFO keys are the constant user id). Updated on every running-count
    // change instead of recomputed per comparison.
    double coeff = 0.0;
    double key = 0.0;
    bool retired = false;
  };

  // Resumable per-user scan for the collapsed interleaved loop: `next` is a
  // machine-id position into the user's eligibility bitset (no materialized
  // machine vector), `class_fit` memoizes per-class "no member can fit"
  // verdicts, final for the phase because the class upper bounds cannot
  // shrink while it runs.
  struct ClassCursor {
    UserId user = 0;
    std::size_t next = 0;
    std::vector<signed char> class_fit;  // -1 unknown, 0 never fits, 1 maybe
  };

  // Waiting users of one class sharing one demand shape. Demands come from
  // a small menu in trace workloads, so a machine serve tests Fits once per
  // bucket instead of once per waiting user — a serve on a full machine
  // costs O(demand shapes), not O(queue pressure).
  struct DemandBucket {
    std::uint32_t demand_id = 0;
    std::vector<UserId> users;
  };

  // True and debits resources if one task of `user` fits on `machine`.
  bool TryPlace(UserId user, MachineId machine);

  // Pushes `id` onto the wait list (flat: per eligible machine) or demand
  // bucket (collapsed: per eligible class) its eligibility covers.
  void RegisterWaiting(UserId id);

  // Dense id for a demand vector, byte-exact (collapsed mode only).
  std::uint32_t InternDemand(const ResourceVector& demand);

  void ServeMachineCollapsed(MachineId machine,
                             const std::function<void(UserId, MachineId)>& on_place);

  void PlaceUserGreedyCollapsed(UserId user,
                                const std::function<void(MachineId)>& on_place);
  void PlaceUsersInterleavedCollapsed(
      std::vector<UserId> users,
      const std::function<void(UserId, MachineId)>& on_place);

  // Advances `cursor` to its next placeable machine (exact fit test, classes
  // pruned via the upper bounds). Returns that machine, or SIZE_MAX when the
  // cursor is exhausted for this phase.
  std::size_t AdvanceCursor(ClassCursor& cursor);

  void UpdateKey(User& u) {
    if (policy_.kind != OnlinePolicy::Kind::kFifo)
      u.key = static_cast<double>(u.running) * u.coeff;
  }

  OnlinePolicy policy_;
  std::vector<ResourceVector> free_;
  std::vector<ResourceVector> capacity_;  // pristine copy, for RestoreMachine
  std::vector<bool> down_;                // crashed machines (chaos hooks)
  std::vector<User> users_;
  // Null in flat mode; non-null switches every per-machine sweep to the
  // class-level structures below.
  const MachineClassIndex* classes_ = nullptr;
  // Flat mode: per-machine wait lists of users with queued tasks. Lazily
  // compacted by ServeMachine as users drain or retire; AddPending
  // re-registers a drained user that gets new tasks. Empty in collapsed
  // mode (class_buckets_ takes over).
  std::vector<std::vector<UserId>> wait_lists_;
  // --- collapsed-mode state ----------------------------------------------
  // Per-class free-capacity upper bound: ub[c] >= free_[m] componentwise for
  // every member m, maintained stale-high (credits grow it via componentwise
  // max, debits leave it untouched) so a failed ub.Fits(demand) proves no
  // member fits. Greedy scans that visit a whole class commit the observed
  // max back, re-tightening the bound.
  std::vector<ResourceVector> class_ub_;
  // Per-class wait lists, sharded by demand shape (see DemandBucket). The
  // same lazy-compaction and duplicate-tolerance rules as wait_lists_
  // apply, bucket by bucket.
  std::vector<std::vector<DemandBucket>> class_buckets_;
  std::vector<ResourceVector> demands_;  // by demand id
  std::unordered_map<std::string, std::uint32_t> demand_ids_;
  // Per-scan scratch for PlaceUserGreedyCollapsed, epoch-versioned so a new
  // scan resets lazily in O(classes touched).
  std::uint32_t scan_epoch_ = 0;
  std::vector<std::uint32_t> class_scan_epoch_;
  std::vector<signed char> class_scan_fit_;
  std::vector<std::uint32_t> class_visited_;
  std::vector<ResourceVector> class_observed_;
  // Scratch heap reused across serve phases (capacity persists).
  RankHeap heap_;
  // Sum of every user's pending count (retired users included; they only
  // reach zero pending in normal retirement anyway).
  long total_pending_ = 0;
};

}  // namespace tsf
