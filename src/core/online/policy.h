// Online sharing policies compared in the evaluation (Sec. VI-B): FIFO plus
// five fair-sharing rules. Each policy reduces to a *progress key* per user;
// the online scheduler serves pending users in ascending key order, which is
// exactly the paper's "offer resources to the user furthest below its fair
// share" loop.
#pragma once

#include <cstddef>
#include <string>

namespace tsf {

struct OnlinePolicy {
  enum class Kind {
    kFifo,  // arrival order; no fairness
    kDrf,   // global dominant share (datacenter as one big machine)
    kCdrf,  // constrained work slowdown n_i / (g_i w_i)
    kCmmf,  // constrained max-min fairness on one resource (Choosy)
    kTsf,   // task share n_i / (h_i w_i) — this paper
  };

  Kind kind = Kind::kTsf;
  std::size_t resource = 0;  // which resource, for kCmmf
  std::string name = "TSF";

  static OnlinePolicy Fifo() { return {Kind::kFifo, 0, "FIFO"}; }
  static OnlinePolicy Drf() { return {Kind::kDrf, 0, "DRF"}; }
  static OnlinePolicy Cdrf() { return {Kind::kCdrf, 0, "CDRF"}; }
  static OnlinePolicy Tsf() { return {Kind::kTsf, 0, "TSF"}; }
  // The paper evaluates CMMF w.r.t. CPU ("CPU") and memory ("Mem").
  static OnlinePolicy Cmmf(std::size_t resource, std::string name) {
    return {Kind::kCmmf, resource, std::move(name)};
  }
};

}  // namespace tsf
