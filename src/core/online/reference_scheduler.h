// Naive reference implementation of the online scheduler — the executable
// spec the incremental core (core/online/scheduler.h) is differentially
// tested against.
//
// Same public API and the same key definition (running × ShareCoefficient,
// so keys are bit-identical to the incremental core's cached ones), but
// every selection is a full linear rescan of the candidates with the key
// recomputed per comparison — exactly the pre-optimization control flow,
// O(active users) per placement. Kept un-optimized on purpose: the
// differential tests in tests/online_scheduler_test.cc and
// tests/des_fuzz_test.cc assert that both cores emit identical placement
// streams over randomized workloads for every policy.
#pragma once

#include <functional>
#include <vector>

#include "core/online/scheduler.h"

namespace tsf {

class ReferenceScheduler {
 public:
  ReferenceScheduler(std::vector<ResourceVector> machine_capacity,
                     OnlinePolicy policy);

  std::size_t num_machines() const { return free_.size(); }
  std::size_t num_users() const { return users_.size(); }
  const OnlinePolicy& policy() const { return policy_; }

  UserId AddUser(OnlineUserSpec spec);
  void AddPending(UserId user, long count);
  void OnTaskFinish(UserId user, MachineId machine);
  void Retire(UserId user);

  // Chaos hooks, mirroring OnlineScheduler (see its header for the caller
  // contract: running tasks are requeued before the crash).
  void CrashMachine(MachineId machine);
  void RestoreMachine(MachineId machine);
  bool MachineDown(MachineId machine) const { return down_[machine]; }

  void PlaceUserGreedy(UserId user,
                       const std::function<void(MachineId)>& on_place);
  void PlaceUsersInterleaved(
      const std::vector<UserId>& users,
      const std::function<void(UserId, MachineId)>& on_place);
  void ServeMachine(MachineId machine,
                    const std::function<void(UserId, MachineId)>& on_place);

  long pending(UserId user) const { return users_[user].pending; }
  long running(UserId user) const { return users_[user].running; }

  // Naive full scan, matching this class's role as the executable spec.
  bool HasPendingUsers() const {
    for (const User& u : users_)
      if (u.pending > 0) return true;
    return false;
  }

  double Key(UserId user) const;

  const ResourceVector& FreeCapacity(MachineId machine) const {
    return free_[machine];
  }

 private:
  struct User {
    ResourceVector demand;
    DynamicBitset eligible;
    double weight = 1.0;
    double h = 0.0;
    double g = 0.0;
    long pending = 0;
    long running = 0;
    bool retired = false;
  };

  bool TryPlace(UserId user, MachineId machine);

  OnlinePolicy policy_;
  std::vector<ResourceVector> free_;
  std::vector<ResourceVector> capacity_;
  std::vector<bool> down_;
  std::vector<User> users_;
  std::vector<std::vector<UserId>> machine_users_;
};

}  // namespace tsf
