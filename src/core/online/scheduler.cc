#include "core/online/scheduler.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace tsf {

OnlineScheduler::OnlineScheduler(std::vector<ResourceVector> machine_capacity,
                                 OnlinePolicy policy)
    : OnlineScheduler(std::move(machine_capacity), std::move(policy), nullptr) {}

OnlineScheduler::OnlineScheduler(std::vector<ResourceVector> machine_capacity,
                                 OnlinePolicy policy,
                                 const MachineClassIndex* classes)
    : policy_(std::move(policy)),
      free_(std::move(machine_capacity)),
      capacity_(free_),
      down_(free_.size(), false),
      classes_(classes),
      wait_lists_(classes ? 0 : free_.size()) {
  TSF_CHECK(!free_.empty());
  if (classes_ == nullptr) return;
  TSF_CHECK_EQ(classes_->num_machines(), free_.size())
      << "class index built for a different machine set";
  const std::size_t nc = classes_->num_classes();
  class_ub_.reserve(nc);
  for (std::size_t c = 0; c < nc; ++c) {
    // All members share one capacity vector; the representative's pristine
    // capacity is a valid upper bound on every member's free capacity.
    class_ub_.push_back(capacity_[classes_->representative(c)]);
  }
  class_scan_epoch_.assign(nc, 0);
  class_scan_fit_.assign(nc, 0);
  class_visited_.assign(nc, 0);
  class_observed_.assign(nc, ResourceVector());
  class_buckets_.resize(nc);
}

std::uint32_t OnlineScheduler::InternDemand(const ResourceVector& demand) {
  std::string key(reinterpret_cast<const char*>(demand.values().data()),
                  demand.values().size() * sizeof(double));
  const auto [it, inserted] =
      demand_ids_.emplace(std::move(key),
                          static_cast<std::uint32_t>(demands_.size()));
  if (inserted) demands_.push_back(demand);
  return it->second;
}

UserId OnlineScheduler::AddUser(OnlineUserSpec spec) {
  // An all-zero demand would "fit" even a crashed (zero-capacity) machine
  // and has an infinite monopoly count; reject it at the boundary.
  TSF_CHECK_GT(spec.demand.MaxComponent(), 0.0) << "all-zero task demand";
  TSF_CHECK_GT(spec.weight, 0.0);
  TSF_CHECK_GT(spec.h, 0.0);
  TSF_CHECK_GT(spec.g, 0.0);

  const UserId id = users_.size();
  User user;
  user.demand = std::move(spec.demand);
  if (spec.eligible_set != nullptr) {
    user.elig = std::move(spec.eligible_set);
  } else if (classes_ != nullptr) {
    user.elig = WrapEligibility(std::move(spec.eligible), *classes_);
  } else {
    user.elig = WrapFlatEligibility(std::move(spec.eligible));
  }
  TSF_CHECK_EQ(user.elig->machines.size(), free_.size());
  TSF_CHECK(user.elig->machines.Any());
  if (classes_ != nullptr)
    TSF_CHECK_EQ(user.elig->classes.size(), classes_->num_classes())
        << "collapsed scheduler needs class summaries on the eligibility set";
  if (classes_ != nullptr) user.demand_id = InternDemand(user.demand);
  user.weight = spec.weight;
  user.h = spec.h;
  user.g = spec.g;
  user.pending = spec.pending;
  total_pending_ += spec.pending;
  user.coeff = ShareCoefficient(policy_, user.demand, user.weight, user.h,
                                user.g);
  user.key = policy_.kind == OnlinePolicy::Kind::kFifo
                 ? static_cast<double>(id)  // arrival order, never changes
                 : 0.0;
  users_.push_back(std::move(user));
  if (users_[id].pending > 0) RegisterWaiting(id);
  return id;
}

void OnlineScheduler::RegisterWaiting(UserId id) {
  const User& user = users_[id];
  const EligibilitySet& elig = *user.elig;
  if (classes_ != nullptr) {
    elig.classes.ForEachSet([&](std::size_t c) {
      // Classes see few distinct demand shapes; linear probe suffices.
      for (DemandBucket& bucket : class_buckets_[c])
        if (bucket.demand_id == user.demand_id) {
          bucket.users.push_back(id);
          return;
        }
      class_buckets_[c].push_back(DemandBucket{user.demand_id, {id}});
    });
  } else {
    elig.machines.ForEachSet(
        [&](std::size_t m) { wait_lists_[m].push_back(id); });
  }
}

void OnlineScheduler::AddPending(UserId user, long count) {
  TSF_CHECK_LT(user, users_.size());
  TSF_CHECK_GE(count, 0);
  User& u = users_[user];
  TSF_CHECK(!u.retired);
  const bool was_drained = u.pending <= 0;
  u.pending += count;
  total_pending_ += count;
  // Drained users fall out of the wait lists (see ServeMachine); put this
  // one back now that it has work again. A not-yet-compacted stale entry
  // just yields a duplicate, which the serve loop tolerates: the heap
  // orders by (key, id), so duplicates pop as stale and re-rank harmlessly.
  if (was_drained && u.pending > 0) RegisterWaiting(user);
}

void OnlineScheduler::OnTaskFinish(UserId user, MachineId machine) {
  User& u = users_[user];
  TSF_CHECK_GT(u.running, 0);
  TSF_CHECK(!down_[machine]) << "finish on crashed machine " << machine;
  TSF_CHECK(u.elig->machines.Test(machine));
  --u.running;
  UpdateKey(u);
  free_[machine] += u.demand;
  if (classes_ != nullptr)
    class_ub_[classes_->class_of(machine)].MaxWith(free_[machine]);
}

void OnlineScheduler::Retire(UserId user) {
  TSF_CHECK_LT(user, users_.size());
  users_[user].retired = true;
}

void OnlineScheduler::CrashMachine(MachineId machine) {
  TSF_CHECK_LT(machine, free_.size());
  TSF_CHECK(!down_[machine]) << "machine " << machine << " already down";
  free_[machine] = ResourceVector(capacity_[machine].dimension());
  down_[machine] = true;
  // class_ub_ stays stale-high: a zeroed member only lowers the true max,
  // and the bound is allowed to overestimate.
}

void OnlineScheduler::RestoreMachine(MachineId machine) {
  TSF_CHECK_LT(machine, free_.size());
  TSF_CHECK(down_[machine]) << "machine " << machine << " is not down";
  free_[machine] = capacity_[machine];
  down_[machine] = false;
  if (classes_ != nullptr)
    class_ub_[classes_->class_of(machine)].MaxWith(free_[machine]);
}

double OnlineScheduler::Key(UserId user) const { return users_[user].key; }

bool OnlineScheduler::TryPlace(UserId user, MachineId machine) {
  User& u = users_[user];
  if (u.pending <= 0) return false;
  if (!free_[machine].Fits(u.demand)) return false;
  free_[machine] -= u.demand;
  --u.pending;
  --total_pending_;
  ++u.running;
  UpdateKey(u);
  return true;
}

void OnlineScheduler::PlaceUserGreedy(
    UserId user, const std::function<void(MachineId)>& on_place) {
  User& u = users_[user];
  if (u.pending <= 0) return;
  if (classes_ != nullptr) {
    PlaceUserGreedyCollapsed(user, on_place);
    return;
  }
  // First-fit over eligible machines in index order; stop early once the
  // queue drains.
  u.elig->machines.ForEachSetUntil([&](std::size_t m) {
    while (TryPlace(user, m)) on_place(m);
    return u.pending <= 0;
  });
}

void OnlineScheduler::PlaceUserGreedyCollapsed(
    UserId user, const std::function<void(MachineId)>& on_place) {
  User& u = users_[user];
  const DynamicBitset& elig = u.elig->machines;
  ++scan_epoch_;
  if (scan_epoch_ == 0) {  // epoch counter wrapped: hard-reset the memo
    std::fill(class_scan_epoch_.begin(), class_scan_epoch_.end(), 0u);
    scan_epoch_ = 1;
  }
  // Same machine order as the flat scan; whole classes are pruned when the
  // upper bound proves no member can fit this demand.
  for (std::size_t m = elig.FindFirst(); m < elig.size();
       m = elig.FindNextSet(m + 1)) {
    const std::uint32_t c = classes_->class_of(m);
    if (class_scan_epoch_[c] != scan_epoch_) {
      class_scan_epoch_[c] = scan_epoch_;
      class_scan_fit_[c] =
          static_cast<signed char>(class_ub_[c].Fits(u.demand) ? 1 : 0);
      class_visited_[c] = 0;
    }
    if (class_scan_fit_[c] == 0) {
      TSF_COUNTER_ADD("scheduler.greedy.class_skips", 1);
      continue;
    }
    while (TryPlace(user, m)) on_place(m);
    // Only this user places during the scan (capacity is monotone
    // non-increasing), so the running max of post-visit free vectors upper
    // bounds every member visited so far.
    if (class_visited_[c] == 0) {
      class_observed_[c] = free_[m];
    } else {
      class_observed_[c].MaxWith(free_[m]);
    }
    ++class_visited_[c];
    if (class_visited_[c] == classes_->class_size(c)) {
      // Visited the whole class: the observed max is its true bound right
      // now. Commit it — this is the only place the bound tightens (the
      // event-driven updates only ever grow it).
      TSF_DCHECK(u.elig->ClassFull(c, *classes_));
      class_ub_[c] = class_observed_[c];
      TSF_COUNTER_ADD("scheduler.greedy.ub_tightened", 1);
    }
    if (u.pending <= 0) return;
  }
}

std::size_t OnlineScheduler::AdvanceCursor(ClassCursor& cursor) {
  const User& u = users_[cursor.user];
  const DynamicBitset& elig = u.elig->machines;
  std::size_t m = elig.FindNextSet(cursor.next);
  while (m < elig.size()) {
    const std::uint32_t c = classes_->class_of(m);
    signed char& fit = cursor.class_fit[c];
    if (fit < 0)
      fit = static_cast<signed char>(class_ub_[c].Fits(u.demand) ? 1 : 0);
    if (fit == 1 && free_[m].Fits(u.demand)) break;
    m = elig.FindNextSet(m + 1);
  }
  cursor.next = m;
  return m < elig.size() ? m : SIZE_MAX;
}

void OnlineScheduler::PlaceUsersInterleaved(
    const std::vector<UserId>& users,
    const std::function<void(UserId, MachineId)>& on_place) {
  TSF_TRACE_SCOPE("scheduler", "PlaceUsersInterleaved");
  if (users.size() == 1) {
    const UserId user = users.front();
    PlaceUserGreedy(user, [&](MachineId m) { on_place(user, m); });
    return;
  }
  if (classes_ != nullptr) {
    PlaceUsersInterleavedCollapsed(users, on_place);
    return;
  }

  // Per-user resumable scan over its eligible machines. Capacity only
  // shrinks during this phase, so a machine that failed the fit test once
  // never needs revisiting for the same user (cursors are monotone).
  struct Cursor {
    UserId user = 0;
    std::vector<MachineId> machines;
    std::size_t next = 0;
    bool exhausted() const { return next >= machines.size(); }
  };
  std::vector<Cursor> cursors;
  cursors.reserve(users.size());
  for (const UserId user : users) {
    TSF_CHECK_LT(user, users_.size());
    Cursor cursor;
    cursor.user = user;
    users_[user].elig->machines.ForEachSet(
        [&](std::size_t m) { cursor.machines.push_back(m); });
    cursors.push_back(std::move(cursor));
  }
  // Ordered by user id, the heap's tie-break is cursor index == the old
  // linear scan's "lowest user id wins" rule.
  std::stable_sort(cursors.begin(), cursors.end(),
                   [](const Cursor& a, const Cursor& b) { return a.user < b.user; });

  heap_.Clear();
  heap_.Reserve(cursors.size());
  for (std::size_t c = 0; c < cursors.size(); ++c)
    if (users_[cursors[c].user].pending > 0)
      heap_.PushUnordered(users_[cursors[c].user].key, c);
  heap_.Heapify();

  while (!heap_.Empty()) {
    const RankEntry entry = heap_.PopMin();
    TSF_COUNTER_ADD("scheduler.interleave.heap_pops", 1);
    Cursor& cursor = cursors[entry.id];
    User& u = users_[cursor.user];
    if (u.pending <= 0) continue;
    if (entry.key != u.key) {  // stale entry: re-rank at the current key
      TSF_COUNTER_ADD("scheduler.interleave.stale_entries", 1);
      heap_.Push(u.key, entry.id);
      continue;
    }
    while (!cursor.exhausted() &&
           !free_[cursor.machines[cursor.next]].Fits(u.demand))
      ++cursor.next;
    if (cursor.exhausted()) continue;  // permanently out of this phase
    const MachineId machine = cursor.machines[cursor.next];
    TSF_CHECK(TryPlace(cursor.user, machine));
    TSF_COUNTER_ADD("scheduler.interleave.placements", 1);
    on_place(cursor.user, machine);
    if (u.pending > 0) heap_.Push(u.key, entry.id);
  }
}

void OnlineScheduler::PlaceUsersInterleavedCollapsed(
    std::vector<UserId> users,
    const std::function<void(UserId, MachineId)>& on_place) {
  // Same (key, cursor-index) serving order as the flat loop; the cursors
  // walk the eligibility bitsets directly instead of materializing one
  // machine vector per user, and dead classes are pruned via the upper
  // bounds. Both loops advance past non-fitting machines permanently, so
  // every placement lands on the same (user, machine) pair as flat mode.
  std::vector<ClassCursor> cursors;
  cursors.reserve(users.size());
  std::sort(users.begin(), users.end());
  for (const UserId user : users) {
    TSF_CHECK_LT(user, users_.size());
    ClassCursor cursor;
    cursor.user = user;
    cursor.class_fit.assign(classes_->num_classes(), -1);
    cursors.push_back(std::move(cursor));
  }

  heap_.Clear();
  heap_.Reserve(cursors.size());
  for (std::size_t c = 0; c < cursors.size(); ++c)
    if (users_[cursors[c].user].pending > 0)
      heap_.PushUnordered(users_[cursors[c].user].key, c);
  heap_.Heapify();

  while (!heap_.Empty()) {
    const RankEntry entry = heap_.PopMin();
    TSF_COUNTER_ADD("scheduler.interleave.heap_pops", 1);
    ClassCursor& cursor = cursors[entry.id];
    User& u = users_[cursor.user];
    if (u.pending <= 0) continue;
    if (entry.key != u.key) {  // stale entry: re-rank at the current key
      TSF_COUNTER_ADD("scheduler.interleave.stale_entries", 1);
      heap_.Push(u.key, entry.id);
      continue;
    }
    const std::size_t machine = AdvanceCursor(cursor);
    if (machine == SIZE_MAX) continue;  // permanently out of this phase
    TSF_CHECK(TryPlace(cursor.user, machine));
    TSF_COUNTER_ADD("scheduler.interleave.placements", 1);
    on_place(cursor.user, machine);
    if (u.pending > 0) heap_.Push(u.key, entry.id);
  }
}

void OnlineScheduler::ServeMachine(
    MachineId machine, const std::function<void(UserId, MachineId)>& on_place) {
  if (classes_ != nullptr) {
    ServeMachineCollapsed(machine, on_place);
    return;
  }
  std::vector<UserId>& candidates = wait_lists_[machine];
  if (candidates.empty()) return;  // nobody waiting on this machine
  TSF_TRACE_SCOPE("scheduler", "ServeMachine");
  TSF_COUNTER_ADD("scheduler.serve_machine.calls", 1);
  TSF_HISTOGRAM_RECORD("scheduler.serve_machine.wait_list",
                       candidates.size());

  // Build the min-heap and compact the wait list in one pass: retired or
  // drained users drop out (AddPending re-registers a user that gets new
  // tasks), users with work but no room right now stay listed for the next
  // free-up. The scan is proportional to the machine's queue pressure, not
  // to every user ever admitted.
  heap_.Clear();
  heap_.Reserve(candidates.size());
  std::size_t keep = 0;
  for (const UserId id : candidates) {
    const User& u = users_[id];
    if (u.retired || u.pending <= 0) continue;
    candidates[keep++] = id;
    if (free_[machine].Fits(u.demand)) heap_.PushUnordered(u.key, id);
  }
  TSF_COUNTER_ADD("scheduler.serve_machine.wait_list_compacted",
                  static_cast<std::int64_t>(candidates.size() - keep));
  candidates.resize(keep);
  heap_.Heapify();

  // Serve ascending (key, id). Capacity only shrinks and keys only grow
  // within the phase, so a candidate that fails the fit test is out for
  // good, and the heap invariant is maintained by re-pushing the served
  // user at its raised key: O(log n) per placement instead of a rescan.

  while (!heap_.Empty()) {
    const RankEntry entry = heap_.PopMin();
    TSF_COUNTER_ADD("scheduler.serve_machine.heap_pops", 1);
    const UserId id = entry.id;
    User& u = users_[id];
    if (u.pending <= 0) continue;
    if (entry.key != u.key) {  // stale entry: re-rank at the current key
      TSF_COUNTER_ADD("scheduler.serve_machine.stale_entries", 1);
      heap_.Push(u.key, id);
      continue;
    }
    if (!free_[machine].Fits(u.demand)) continue;  // out for this phase
    TSF_CHECK(TryPlace(id, machine));
    TSF_COUNTER_ADD("scheduler.serve_machine.placements", 1);
    on_place(id, machine);
    if (u.pending > 0) heap_.Push(u.key, id);
  }
}

void OnlineScheduler::ServeMachineCollapsed(
    MachineId machine, const std::function<void(UserId, MachineId)>& on_place) {
  std::vector<DemandBucket>& buckets =
      class_buckets_[classes_->class_of(machine)];
  if (buckets.empty()) return;  // nobody waiting on this class
  TSF_TRACE_SCOPE("scheduler", "ServeMachine");
  TSF_COUNTER_ADD("scheduler.serve_machine.calls", 1);

  // Candidate construction, bucket by bucket: one Fits test per demand
  // shape retires or admits the whole bucket (members share the demand
  // vector byte-exactly, so their verdicts are identical to the flat
  // per-user tests). Admitted buckets compact exactly like the flat wait
  // list — retired/drained out, a member of a partially-eligible class
  // stays listed for its class but only enters the heap for machines it is
  // actually eligible on — so the heap holds exactly the flat path's
  // candidate set. Non-fitting buckets are untouched: on a full machine a
  // serve costs O(demand shapes), not O(queue pressure).
  heap_.Clear();
  std::size_t scanned = 0;
  for (DemandBucket& bucket : buckets) {
    if (!free_[machine].Fits(demands_[bucket.demand_id])) continue;
    scanned += bucket.users.size();
    std::size_t keep = 0;
    for (const UserId id : bucket.users) {
      const User& u = users_[id];
      if (u.retired || u.pending <= 0) continue;
      bucket.users[keep++] = id;
      if (!u.elig->machines.Test(machine)) continue;
      heap_.PushUnordered(u.key, id);
    }
    TSF_COUNTER_ADD("scheduler.serve_machine.wait_list_compacted",
                    static_cast<std::int64_t>(bucket.users.size() - keep));
    bucket.users.resize(keep);
  }
  TSF_HISTOGRAM_RECORD("scheduler.serve_machine.wait_list", scanned);
  heap_.Heapify();

  // Identical serve loop to the flat path: ascending (key, id), stale
  // entries re-ranked, a failed fit is final for the phase.
  while (!heap_.Empty()) {
    const RankEntry entry = heap_.PopMin();
    TSF_COUNTER_ADD("scheduler.serve_machine.heap_pops", 1);
    const UserId id = entry.id;
    User& u = users_[id];
    if (u.pending <= 0) continue;
    if (entry.key != u.key) {  // stale entry: re-rank at the current key
      TSF_COUNTER_ADD("scheduler.serve_machine.stale_entries", 1);
      heap_.Push(u.key, id);
      continue;
    }
    if (!free_[machine].Fits(u.demand)) continue;  // out for this phase
    TSF_CHECK(TryPlace(id, machine));
    TSF_COUNTER_ADD("scheduler.serve_machine.placements", 1);
    on_place(id, machine);
    if (u.pending > 0) heap_.Push(u.key, id);
  }
}

}  // namespace tsf
