#include "core/online/scheduler.h"

#include <algorithm>
#include <limits>

#include "telemetry/telemetry.h"
#include "util/check.h"

namespace tsf {

OnlineScheduler::OnlineScheduler(std::vector<ResourceVector> machine_capacity,
                                 OnlinePolicy policy)
    : policy_(std::move(policy)),
      free_(std::move(machine_capacity)),
      capacity_(free_),
      down_(free_.size(), false),
      machine_users_(free_.size()) {
  TSF_CHECK(!free_.empty());
}

UserId OnlineScheduler::AddUser(OnlineUserSpec spec) {
  TSF_CHECK_EQ(spec.eligible.size(), free_.size());
  TSF_CHECK(spec.eligible.Any());
  // An all-zero demand would "fit" even a crashed (zero-capacity) machine
  // and has an infinite monopoly count; reject it at the boundary.
  TSF_CHECK_GT(spec.demand.MaxComponent(), 0.0) << "all-zero task demand";
  TSF_CHECK_GT(spec.weight, 0.0);
  TSF_CHECK_GT(spec.h, 0.0);
  TSF_CHECK_GT(spec.g, 0.0);

  const UserId id = users_.size();
  User user;
  user.demand = std::move(spec.demand);
  user.eligible = std::move(spec.eligible);
  user.weight = spec.weight;
  user.h = spec.h;
  user.g = spec.g;
  user.pending = spec.pending;
  total_pending_ += spec.pending;
  user.coeff = ShareCoefficient(policy_, user.demand, user.weight, user.h,
                                user.g);
  user.key = policy_.kind == OnlinePolicy::Kind::kFifo
                 ? static_cast<double>(id)  // arrival order, never changes
                 : 0.0;
  users_.push_back(std::move(user));
  if (users_[id].pending > 0)
    users_[id].eligible.ForEachSet(
        [&](std::size_t m) { machine_users_[m].push_back(id); });
  return id;
}

void OnlineScheduler::AddPending(UserId user, long count) {
  TSF_CHECK_LT(user, users_.size());
  TSF_CHECK_GE(count, 0);
  User& u = users_[user];
  TSF_CHECK(!u.retired);
  const bool was_drained = u.pending <= 0;
  u.pending += count;
  total_pending_ += count;
  // Drained users fall out of the per-machine wait lists (see ServeMachine);
  // put this one back now that it has work again. A not-yet-compacted stale
  // entry just yields a duplicate, which the serve loop tolerates: the heap
  // orders by (key, id), so duplicates pop as stale and re-rank harmlessly.
  if (was_drained && u.pending > 0)
    u.eligible.ForEachSet(
        [&](std::size_t m) { machine_users_[m].push_back(user); });
}

void OnlineScheduler::OnTaskFinish(UserId user, MachineId machine) {
  User& u = users_[user];
  TSF_CHECK_GT(u.running, 0);
  TSF_CHECK(!down_[machine]) << "finish on crashed machine " << machine;
  TSF_CHECK(u.eligible.Test(machine));
  --u.running;
  UpdateKey(u);
  free_[machine] += u.demand;
}

void OnlineScheduler::Retire(UserId user) {
  TSF_CHECK_LT(user, users_.size());
  users_[user].retired = true;
}

void OnlineScheduler::CrashMachine(MachineId machine) {
  TSF_CHECK_LT(machine, free_.size());
  TSF_CHECK(!down_[machine]) << "machine " << machine << " already down";
  free_[machine] = ResourceVector(capacity_[machine].dimension());
  down_[machine] = true;
}

void OnlineScheduler::RestoreMachine(MachineId machine) {
  TSF_CHECK_LT(machine, free_.size());
  TSF_CHECK(down_[machine]) << "machine " << machine << " is not down";
  free_[machine] = capacity_[machine];
  down_[machine] = false;
}

double OnlineScheduler::Key(UserId user) const { return users_[user].key; }

bool OnlineScheduler::TryPlace(UserId user, MachineId machine) {
  User& u = users_[user];
  if (u.pending <= 0) return false;
  if (!free_[machine].Fits(u.demand)) return false;
  free_[machine] -= u.demand;
  --u.pending;
  --total_pending_;
  ++u.running;
  UpdateKey(u);
  return true;
}

void OnlineScheduler::PlaceUserGreedy(
    UserId user, const std::function<void(MachineId)>& on_place) {
  User& u = users_[user];
  if (u.pending <= 0) return;
  // First-fit over eligible machines in index order; stop early once the
  // queue drains.
  u.eligible.ForEachSetUntil([&](std::size_t m) {
    while (TryPlace(user, m)) on_place(m);
    return u.pending <= 0;
  });
}

void OnlineScheduler::PlaceUsersInterleaved(
    const std::vector<UserId>& users,
    const std::function<void(UserId, MachineId)>& on_place) {
  TSF_TRACE_SCOPE("scheduler", "PlaceUsersInterleaved");
  if (users.size() == 1) {
    const UserId user = users.front();
    PlaceUserGreedy(user, [&](MachineId m) { on_place(user, m); });
    return;
  }

  // Per-user resumable scan over its eligible machines. Capacity only
  // shrinks during this phase, so a machine that failed the fit test once
  // never needs revisiting for the same user (cursors are monotone).
  struct Cursor {
    UserId user = 0;
    std::vector<MachineId> machines;
    std::size_t next = 0;
    bool exhausted() const { return next >= machines.size(); }
  };
  std::vector<Cursor> cursors;
  cursors.reserve(users.size());
  for (const UserId user : users) {
    TSF_CHECK_LT(user, users_.size());
    Cursor cursor;
    cursor.user = user;
    users_[user].eligible.ForEachSet(
        [&](std::size_t m) { cursor.machines.push_back(m); });
    cursors.push_back(std::move(cursor));
  }
  // Ordered by user id, the heap's tie-break is cursor index == the old
  // linear scan's "lowest user id wins" rule.
  std::stable_sort(cursors.begin(), cursors.end(),
                   [](const Cursor& a, const Cursor& b) { return a.user < b.user; });

  heap_.Clear();
  heap_.Reserve(cursors.size());
  for (std::size_t c = 0; c < cursors.size(); ++c)
    if (users_[cursors[c].user].pending > 0)
      heap_.PushUnordered(users_[cursors[c].user].key, c);
  heap_.Heapify();

  while (!heap_.Empty()) {
    const RankEntry entry = heap_.PopMin();
    TSF_COUNTER_ADD("scheduler.interleave.heap_pops", 1);
    Cursor& cursor = cursors[entry.id];
    User& u = users_[cursor.user];
    if (u.pending <= 0) continue;
    if (entry.key != u.key) {  // stale entry: re-rank at the current key
      TSF_COUNTER_ADD("scheduler.interleave.stale_entries", 1);
      heap_.Push(u.key, entry.id);
      continue;
    }
    while (!cursor.exhausted() &&
           !free_[cursor.machines[cursor.next]].Fits(u.demand))
      ++cursor.next;
    if (cursor.exhausted()) continue;  // permanently out of this phase
    const MachineId machine = cursor.machines[cursor.next];
    TSF_CHECK(TryPlace(cursor.user, machine));
    TSF_COUNTER_ADD("scheduler.interleave.placements", 1);
    on_place(cursor.user, machine);
    if (u.pending > 0) heap_.Push(u.key, entry.id);
  }
}

void OnlineScheduler::ServeMachine(
    MachineId machine, const std::function<void(UserId, MachineId)>& on_place) {
  std::vector<UserId>& candidates = machine_users_[machine];
  if (candidates.empty()) return;  // nobody waiting on this machine
  TSF_TRACE_SCOPE("scheduler", "ServeMachine");
  TSF_COUNTER_ADD("scheduler.serve_machine.calls", 1);
  TSF_HISTOGRAM_RECORD("scheduler.serve_machine.wait_list",
                       candidates.size());

  // Build the min-heap and compact the wait list in one pass: retired or
  // drained users drop out (AddPending re-registers a user that gets new
  // tasks), users with work but no room right now stay listed for the next
  // free-up. The scan is proportional to the machine's queue pressure, not
  // to every user ever admitted.
  heap_.Clear();
  heap_.Reserve(candidates.size());
  std::size_t keep = 0;
  for (const UserId id : candidates) {
    const User& u = users_[id];
    if (u.retired || u.pending <= 0) continue;
    candidates[keep++] = id;
    if (free_[machine].Fits(u.demand)) heap_.PushUnordered(u.key, id);
  }
  TSF_COUNTER_ADD("scheduler.serve_machine.wait_list_compacted",
                  static_cast<std::int64_t>(candidates.size() - keep));
  candidates.resize(keep);
  heap_.Heapify();

  // Serve ascending (key, id). Capacity only shrinks and keys only grow
  // within the phase, so a candidate that fails the fit test is out for
  // good, and the heap invariant is maintained by re-pushing the served
  // user at its raised key: O(log n) per placement instead of a rescan.

  while (!heap_.Empty()) {
    const RankEntry entry = heap_.PopMin();
    TSF_COUNTER_ADD("scheduler.serve_machine.heap_pops", 1);
    const UserId id = entry.id;
    User& u = users_[id];
    if (u.pending <= 0) continue;
    if (entry.key != u.key) {  // stale entry: re-rank at the current key
      TSF_COUNTER_ADD("scheduler.serve_machine.stale_entries", 1);
      heap_.Push(u.key, id);
      continue;
    }
    if (!free_[machine].Fits(u.demand)) continue;  // out for this phase
    TSF_CHECK(TryPlace(id, machine));
    TSF_COUNTER_ADD("scheduler.serve_machine.placements", 1);
    on_place(id, machine);
    if (u.pending > 0) heap_.Push(u.key, id);
  }
}

}  // namespace tsf
