#include "core/online/reference_scheduler.h"

#include <algorithm>
#include <limits>

#include "core/online/ranker.h"
#include "util/check.h"

namespace tsf {

ReferenceScheduler::ReferenceScheduler(
    std::vector<ResourceVector> machine_capacity, OnlinePolicy policy)
    : policy_(std::move(policy)),
      free_(std::move(machine_capacity)),
      capacity_(free_),
      down_(free_.size(), false),
      machine_users_(free_.size()) {
  TSF_CHECK(!free_.empty());
}

UserId ReferenceScheduler::AddUser(OnlineUserSpec spec) {
  // Interned specs carry their bits in the shared set; copy them out — the
  // reference core stays flat and naive on purpose.
  if (spec.eligible_set != nullptr) spec.eligible = spec.eligible_set->machines;
  TSF_CHECK_EQ(spec.eligible.size(), free_.size());
  TSF_CHECK(spec.eligible.Any());
  TSF_CHECK_GT(spec.demand.MaxComponent(), 0.0) << "all-zero task demand";
  TSF_CHECK_GT(spec.weight, 0.0);
  TSF_CHECK_GT(spec.h, 0.0);
  TSF_CHECK_GT(spec.g, 0.0);

  const UserId id = users_.size();
  User user;
  user.demand = std::move(spec.demand);
  user.eligible = std::move(spec.eligible);
  user.weight = spec.weight;
  user.h = spec.h;
  user.g = spec.g;
  user.pending = spec.pending;
  users_.push_back(std::move(user));
  users_[id].eligible.ForEachSet(
      [&](std::size_t m) { machine_users_[m].push_back(id); });
  return id;
}

void ReferenceScheduler::AddPending(UserId user, long count) {
  TSF_CHECK_LT(user, users_.size());
  TSF_CHECK_GE(count, 0);
  TSF_CHECK(!users_[user].retired);
  users_[user].pending += count;
}

void ReferenceScheduler::OnTaskFinish(UserId user, MachineId machine) {
  User& u = users_[user];
  TSF_CHECK_GT(u.running, 0);
  TSF_CHECK(!down_[machine]) << "finish on crashed machine " << machine;
  TSF_CHECK(u.eligible.Test(machine));
  --u.running;
  free_[machine] += u.demand;
}

void ReferenceScheduler::CrashMachine(MachineId machine) {
  TSF_CHECK_LT(machine, free_.size());
  TSF_CHECK(!down_[machine]) << "machine " << machine << " already down";
  free_[machine] = ResourceVector(capacity_[machine].dimension());
  down_[machine] = true;
}

void ReferenceScheduler::RestoreMachine(MachineId machine) {
  TSF_CHECK_LT(machine, free_.size());
  TSF_CHECK(down_[machine]) << "machine " << machine << " is not down";
  free_[machine] = capacity_[machine];
  down_[machine] = false;
}

void ReferenceScheduler::Retire(UserId user) {
  TSF_CHECK_LT(user, users_.size());
  users_[user].retired = true;
}

double ReferenceScheduler::Key(UserId user) const {
  const User& u = users_[user];
  if (policy_.kind == OnlinePolicy::Kind::kFifo)
    return static_cast<double>(user);  // arrival order
  // Recomputed from first principles on every call — deliberately naive.
  return static_cast<double>(u.running) *
         ShareCoefficient(policy_, u.demand, u.weight, u.h, u.g);
}

bool ReferenceScheduler::TryPlace(UserId user, MachineId machine) {
  User& u = users_[user];
  if (u.pending <= 0) return false;
  if (!free_[machine].Fits(u.demand)) return false;
  free_[machine] -= u.demand;
  --u.pending;
  ++u.running;
  return true;
}

void ReferenceScheduler::PlaceUserGreedy(
    UserId user, const std::function<void(MachineId)>& on_place) {
  User& u = users_[user];
  if (u.pending <= 0) return;
  // First-fit over eligible machines in index order; keeps iterating every
  // set bit even after the queue drains (the incremental core stops early).
  bool more = true;
  u.eligible.ForEachSet([&](std::size_t m) {
    if (!more) return;
    while (TryPlace(user, m)) on_place(m);
    if (u.pending <= 0) more = false;
  });
}

void ReferenceScheduler::PlaceUsersInterleaved(
    const std::vector<UserId>& users,
    const std::function<void(UserId, MachineId)>& on_place) {
  if (users.size() == 1) {
    const UserId user = users.front();
    PlaceUserGreedy(user, [&](MachineId m) { on_place(user, m); });
    return;
  }

  struct Cursor {
    UserId user = 0;
    std::vector<MachineId> machines;
    std::size_t next = 0;
    bool exhausted() const { return next >= machines.size(); }
  };
  std::vector<Cursor> cursors;
  cursors.reserve(users.size());
  for (const UserId user : users) {
    TSF_CHECK_LT(user, users_.size());
    Cursor cursor;
    cursor.user = user;
    users_[user].eligible.ForEachSet(
        [&](std::size_t m) { cursor.machines.push_back(m); });
    cursors.push_back(std::move(cursor));
  }

  // Full linear rescan per placement (the spec the heap must match).
  for (;;) {
    Cursor* best = nullptr;
    double best_key = std::numeric_limits<double>::infinity();
    for (Cursor& cursor : cursors) {
      if (cursor.exhausted() || users_[cursor.user].pending <= 0) continue;
      const double key = Key(cursor.user);
      if (key < best_key ||
          (key == best_key && best != nullptr && cursor.user < best->user)) {
        best_key = key;
        best = &cursor;
      }
    }
    if (best == nullptr) return;
    const User& u = users_[best->user];
    while (!best->exhausted() &&
           !free_[best->machines[best->next]].Fits(u.demand))
      ++best->next;
    if (best->exhausted()) continue;  // permanently out of this phase
    const MachineId machine = best->machines[best->next];
    TSF_CHECK(TryPlace(best->user, machine));
    on_place(best->user, machine);
  }
}

void ReferenceScheduler::ServeMachine(
    MachineId machine, const std::function<void(UserId, MachineId)>& on_place) {
  std::vector<UserId>& candidates = machine_users_[machine];

  candidates.erase(std::remove_if(candidates.begin(), candidates.end(),
                                  [this](UserId id) { return users_[id].retired; }),
                   candidates.end());

  // Serve ascending key, re-selecting by full rescan after every placement.
  for (;;) {
    UserId best = std::numeric_limits<UserId>::max();
    double best_key = std::numeric_limits<double>::infinity();
    for (const UserId id : candidates) {
      const User& u = users_[id];
      if (u.pending <= 0) continue;
      if (!free_[machine].Fits(u.demand)) continue;
      const double key = Key(id);
      // Tie-break by id (arrival order) for determinism.
      if (key < best_key || (key == best_key && id < best)) {
        best_key = key;
        best = id;
      }
    }
    if (best == std::numeric_limits<UserId>::max()) return;
    TSF_CHECK(TryPlace(best, machine));
    on_place(best, machine);
  }
}

}  // namespace tsf
