#include "core/paper_examples.h"

namespace tsf::paper {

SharingProblem Fig2Truthful() {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{18.0, 18.0}, {}, "m1");
  problem.cluster.AddMachine(ResourceVector{18.0, 18.0}, {}, "m2");
  JobSpec u1{.id = 0, .name = "u1", .demand = {1.0, 2.0}};
  JobSpec u2{.id = 1, .name = "u2", .demand = {1.0, 3.0}};
  u2.constraint = Constraint::Whitelist({1});
  problem.jobs = {u1, u2};
  return problem;
}

SharingProblem Fig2Lie() {
  SharingProblem problem = Fig2Truthful();
  problem.jobs[1].constraint = Constraint::None();  // claims m1 as well
  return problem;
}

SharingProblem Fig3() {
  SharingProblem problem;
  for (int k = 0; k < 3; ++k)
    problem.cluster.AddMachine(ResourceVector{3.0}, {}, "m" + std::to_string(k + 1));
  auto user = [](UserId id, std::vector<MachineId> machines) {
    JobSpec job{.id = id, .name = "u" + std::to_string(id + 1), .demand = {1.0}};
    if (!machines.empty()) job.constraint = Constraint::Whitelist(std::move(machines));
    return job;
  };
  problem.jobs = {
      user(0, {0}),   // u1 -> m1
      user(1, {}),    // u2 -> all machines
      user(2, {1}),   // u3 -> m2
      user(3, {1}),   // u4 -> m2
      user(4, {2}),   // u5 -> m3
      user(5, {2}),   // u6 -> m3
      user(6, {2}),   // u7 -> m3
  };
  return problem;
}

SharingProblem Fig4() {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{9.0, 12.0}, {}, "m1");
  problem.cluster.AddMachine(ResourceVector{3.0, 4.0}, {}, "m2");
  problem.cluster.AddMachine(ResourceVector{9.0, 12.0}, {}, "m3");
  JobSpec u1{.id = 0, .name = "u1", .demand = {1.0, 2.0}};
  u1.constraint = Constraint::Blacklist({2});
  JobSpec u2{.id = 1, .name = "u2", .demand = {3.0, 1.0}};
  u2.constraint = Constraint::Whitelist({1});
  JobSpec u3{.id = 2, .name = "u3", .demand = {1.0, 4.0}};
  problem.jobs = {u1, u2, u3};
  return problem;
}

}  // namespace tsf::paper
