// Placement constraints (Sec. II-A).
//
// The paper models simple, non-combinatorial hard constraints: a job can run
// on a machine iff the machine satisfies the job's requirements. Two
// concrete forms appear in the paper and both are supported:
//
//  * attribute requirements — the trace-driven model (Sec. VI-B): machines
//    carry attributes (GPU, kernel version, machine class, public IP, ...)
//    and a task requires a subset of them;
//  * machine whitelists / blacklists — the Mesos prototype's interface
//    (Sec. VI-A): explicit node lists.
//
// A Constraint is the declarative form; Cluster compiles it against a
// concrete machine list into an eligibility bitset (the job's row of the
// bipartite constraint graph in Fig. 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitset.h"

namespace tsf {

using AttributeId = std::uint32_t;
using MachineId = std::size_t;

// Declarative machine attributes: an unordered small set of attribute ids.
class AttributeSet {
 public:
  AttributeSet() = default;
  explicit AttributeSet(std::vector<AttributeId> ids);

  // Idempotent insert; keeps the set sorted for fast subset tests.
  void Add(AttributeId id);
  bool Contains(AttributeId id) const;

  // True if every attribute in `required` is present here.
  bool ContainsAll(const AttributeSet& required) const;

  std::size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  const std::vector<AttributeId>& ids() const { return ids_; }

 private:
  std::vector<AttributeId> ids_;  // sorted, unique
};

class Constraint {
 public:
  enum class Kind {
    kNone,            // can run anywhere
    kRequireAttributes,
    kWhitelist,       // only the listed machines
    kBlacklist,       // everywhere except the listed machines
  };

  // Unconstrained (runs on every machine).
  Constraint() = default;

  static Constraint None();
  static Constraint RequireAttributes(AttributeSet required);
  static Constraint Whitelist(std::vector<MachineId> machines);
  static Constraint Blacklist(std::vector<MachineId> machines);

  Kind kind() const { return kind_; }
  const AttributeSet& required_attributes() const { return attributes_; }
  const std::vector<MachineId>& machine_list() const { return machines_; }

  // Does a machine with the given id and attributes satisfy this constraint?
  bool Allows(MachineId id, const AttributeSet& machine_attributes) const;

  std::string ToString() const;

 private:
  Kind kind_ = Kind::kNone;
  AttributeSet attributes_;
  std::vector<MachineId> machines_;  // sorted, unique (whitelist/blacklist)
};

}  // namespace tsf
