// Multi-resource vectors.
//
// A ResourceVector holds one non-negative quantity per resource type (CPU,
// memory, ...). The paper works with *normalized* vectors — every machine
// capacity and task demand divided by the datacenter-wide total of each
// resource — and so do the allocator internals here; the Cluster type owns
// the normalization. Dimension is fixed at construction and all arithmetic
// checks dimension agreement.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "util/check.h"

namespace tsf {

class ResourceVector {
 public:
  ResourceVector() = default;

  // Zero vector of the given dimension.
  explicit ResourceVector(std::size_t dimension) : values_(dimension, 0.0) {}

  ResourceVector(std::initializer_list<double> values) : values_(values) {
    for (const double v : values_) TSF_CHECK(v >= 0.0) << "negative resource";
  }

  explicit ResourceVector(std::vector<double> values)
      : values_(std::move(values)) {
    for (const double v : values_) TSF_CHECK(v >= 0.0) << "negative resource";
  }

  std::size_t dimension() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t r) const {
    TSF_DCHECK(r < values_.size());
    return values_[r];
  }
  double& operator[](std::size_t r) {
    TSF_DCHECK(r < values_.size());
    return values_[r];
  }

  const std::vector<double>& values() const { return values_; }

  ResourceVector& operator+=(const ResourceVector& other) {
    TSF_DCHECK(dimension() == other.dimension());
    for (std::size_t r = 0; r < values_.size(); ++r) values_[r] += other.values_[r];
    return *this;
  }

  ResourceVector& operator-=(const ResourceVector& other) {
    TSF_DCHECK(dimension() == other.dimension());
    for (std::size_t r = 0; r < values_.size(); ++r) values_[r] -= other.values_[r];
    return *this;
  }

  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    a -= b;
    return a;
  }

  // Element-wise scaling (e.g. k tasks' worth of one demand vector).
  friend ResourceVector operator*(double k, ResourceVector v) {
    for (double& x : v.values_) x *= k;
    return v;
  }

  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.values_ == b.values_;
  }

  // True if a task demanding `demand` fits within this vector, with a small
  // tolerance so accumulated floating-point debits do not reject the last
  // task that exactly fills a machine.
  bool Fits(const ResourceVector& demand, double tolerance = 1e-9) const {
    TSF_DCHECK(dimension() == demand.dimension());
    for (std::size_t r = 0; r < values_.size(); ++r)
      if (demand.values_[r] > values_[r] + tolerance) return false;
    return true;
  }

  // True if all components are >= -tolerance (used by feasibility checks).
  bool NonNegative(double tolerance = 1e-9) const {
    for (const double v : values_)
      if (v < -tolerance) return false;
    return true;
  }

  bool IsZero(double tolerance = 0.0) const {
    for (const double v : values_)
      if (v > tolerance) return false;
    return true;
  }

  double Sum() const {
    double s = 0;
    for (const double v : values_) s += v;
    return s;
  }

  double MaxComponent() const {
    double m = 0;
    for (const double v : values_) m = std::max(m, v);
    return m;
  }

  // Componentwise max-update: this_r = max(this_r, other_r). Maintains the
  // stale-high class upper bounds of the collapsed online scheduler.
  void MaxWith(const ResourceVector& other) {
    TSF_DCHECK(dimension() == other.dimension());
    for (std::size_t r = 0; r < values_.size(); ++r)
      values_[r] = std::max(values_[r], other.values_[r]);
  }

  // How many (divisible) tasks of `demand` fit in this vector:
  //   min over r with demand_r > 0 of this_r / demand_r.
  // Returns +inf when demand is all-zero (callers reject such demands).
  double DivisibleTaskCount(const ResourceVector& demand) const;

  // Largest integer k with k*demand <= this (within tolerance).
  long IntegralTaskCount(const ResourceVector& demand,
                         double tolerance = 1e-9) const;

  std::string ToString(int precision = 3) const;

 private:
  std::vector<double> values_;
};

}  // namespace tsf
