#include "core/cluster.h"

#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>

#include "util/check.h"

namespace tsf {

namespace {

// Byte-exact class key: raw capacity doubles + sorted attribute ids. Two
// machines share a class iff their keys are equal (no tolerance — equal
// means interchangeable for every fit test and constraint probe).
std::string ClassKey(const Machine& machine) {
  std::string key;
  key.reserve(machine.capacity.dimension() * sizeof(double) +
              machine.attributes.size() * sizeof(AttributeId));
  for (std::size_t r = 0; r < machine.capacity.dimension(); ++r) {
    const double v = machine.capacity[r];
    key.append(reinterpret_cast<const char*>(&v), sizeof(v));
  }
  for (const AttributeId id : machine.attributes.ids())
    key.append(reinterpret_cast<const char*>(&id), sizeof(id));
  return key;
}

}  // namespace

std::size_t MachineClassIndex::CountClasses(const Cluster& cluster) {
  std::unordered_map<std::string, std::uint32_t> class_by_key;
  for (const Machine& machine : cluster.machines())
    class_by_key.emplace(ClassKey(machine),
                         static_cast<std::uint32_t>(class_by_key.size()));
  return class_by_key.size();
}

MachineClassIndex::MachineClassIndex(const Cluster& cluster) {
  const std::size_t n = cluster.num_machines();
  TSF_CHECK_GT(n, 0u) << "class index of an empty cluster";
  class_of_.resize(n);
  std::unordered_map<std::string, std::uint32_t> class_by_key;
  for (MachineId m = 0; m < n; ++m) {
    const auto [it, inserted] = class_by_key.emplace(
        ClassKey(cluster.machine(m)),
        static_cast<std::uint32_t>(representative_.size()));
    if (inserted) {
      representative_.push_back(m);
      class_size_.push_back(0);
      members_.emplace_back(n);
    }
    class_of_[m] = it->second;
    ++class_size_[it->second];
    members_[it->second].Set(m);
  }

  // Capacity groups, first-seen by machine index — the exact partition and
  // order the flat DES monopoly sweep iterates (sim/des.cc GroupByCapacity).
  group_of_class_.assign(num_classes(), UINT32_MAX);
  std::vector<double> group_count;
  for (MachineId m = 0; m < n; ++m) {
    const std::uint32_t c = class_of_[m];
    if (group_of_class_[c] == UINT32_MAX) {
      const ResourceVector capacity = cluster.NormalizedCapacity(m);
      std::uint32_t g = UINT32_MAX;
      for (std::size_t i = 0; i < group_capacity_.size(); ++i)
        if (group_capacity_[i] == capacity) {
          g = static_cast<std::uint32_t>(i);
          break;
        }
      if (g == UINT32_MAX) {
        g = static_cast<std::uint32_t>(group_capacity_.size());
        group_capacity_.push_back(capacity);
        group_count.push_back(0.0);
      }
      group_of_class_[c] = g;
    }
    group_count[group_of_class_[c]] += 1.0;
  }
  group_count_ = std::move(group_count);
}

Cluster::Cluster(std::vector<Machine> machines) : machines_(std::move(machines)) {
  for (std::size_t m = 0; m < machines_.size(); ++m) {
    machines_[m].id = m;
    TSF_CHECK_EQ(machines_[m].capacity.dimension(),
                 machines_[0].capacity.dimension())
        << "all machines must report the same resource types";
  }
  RecomputeTotal();
}

MachineId Cluster::AddMachine(ResourceVector capacity, AttributeSet attributes,
                              std::string name) {
  if (!machines_.empty())
    TSF_CHECK_EQ(capacity.dimension(), machines_[0].capacity.dimension());
  Machine machine;
  machine.id = machines_.size();
  machine.name = name.empty() ? "m" + std::to_string(machine.id) : std::move(name);
  machine.capacity = std::move(capacity);
  machine.attributes = std::move(attributes);
  machines_.push_back(std::move(machine));
  // Incremental total: appending accumulates in machine order, the exact
  // addition sequence RecomputeTotal would produce — bitwise-identical
  // normalization, without the O(machines^2) rescan that dominated
  // 100k-machine fleet construction.
  if (machines_.size() == 1) {
    total_ = machines_.back().capacity;
  } else {
    total_ += machines_.back().capacity;
  }
  return machines_.back().id;
}

void Cluster::RecomputeTotal() {
  if (machines_.empty()) {
    total_ = ResourceVector{};
    return;
  }
  total_ = ResourceVector(machines_[0].capacity.dimension());
  for (const Machine& machine : machines_) total_ += machine.capacity;
}

ResourceVector Cluster::NormalizedCapacity(MachineId m) const {
  const ResourceVector& capacity = machine(m).capacity;
  ResourceVector normalized(capacity.dimension());
  for (std::size_t r = 0; r < capacity.dimension(); ++r)
    normalized[r] = total_[r] > 0.0 ? capacity[r] / total_[r] : 0.0;
  return normalized;
}

ResourceVector Cluster::NormalizedDemand(const ResourceVector& demand) const {
  TSF_CHECK_EQ(demand.dimension(), total_.dimension());
  ResourceVector normalized(demand.dimension());
  for (std::size_t r = 0; r < demand.dimension(); ++r) {
    if (total_[r] > 0.0) {
      normalized[r] = demand[r] / total_[r];
    } else {
      TSF_CHECK(demand[r] == 0.0)
          << "demand for resource " << r << " which no machine provides";
    }
  }
  return normalized;
}

DynamicBitset Cluster::Eligibility(const Constraint& constraint) const {
  DynamicBitset bits(machines_.size());
  // Unconstrained jobs are common (Fig. 8a: ~20 % can run anywhere); skip
  // the per-machine attribute probes for them.
  if (constraint.kind() == Constraint::Kind::kNone) {
    bits.SetAll();
    return bits;
  }
  for (const Machine& machine : machines_)
    if (constraint.Allows(machine.id, machine.attributes)) bits.Set(machine.id);
  return bits;
}

CompiledProblem Compile(const SharingProblem& problem) {
  const Cluster& cluster = problem.cluster;
  TSF_CHECK_GT(cluster.num_machines(), 0u) << "empty cluster";
  TSF_CHECK(!problem.jobs.empty()) << "no jobs";

  CompiledProblem compiled;
  compiled.num_users = problem.jobs.size();
  compiled.num_machines = cluster.num_machines();
  compiled.num_resources = cluster.num_resources();

  compiled.machine_capacity.reserve(compiled.num_machines);
  for (MachineId m = 0; m < compiled.num_machines; ++m)
    compiled.machine_capacity.push_back(cluster.NormalizedCapacity(m));

  compiled.demand.reserve(compiled.num_users);
  compiled.eligible.reserve(compiled.num_users);
  compiled.weight.reserve(compiled.num_users);
  for (const JobSpec& job : problem.jobs) {
    TSF_CHECK_GT(job.weight, 0.0) << "job " << job.name << ": weight must be positive";
    ResourceVector demand = cluster.NormalizedDemand(job.demand);
    TSF_CHECK(!demand.IsZero())
        << "job " << job.name << ": demand must be positive in some resource";
    DynamicBitset eligible = cluster.Eligibility(job.constraint);
    TSF_CHECK(eligible.Any())
        << "job " << job.name << ": no machine satisfies its constraints";
    compiled.demand.push_back(std::move(demand));
    compiled.eligible.push_back(std::move(eligible));
    compiled.weight.push_back(job.weight);
  }

  compiled.h.assign(compiled.num_users, 0.0);
  compiled.g.assign(compiled.num_users, 0.0);
  for (UserId i = 0; i < compiled.num_users; ++i) {
    for (MachineId m = 0; m < compiled.num_machines; ++m) {
      const double tasks = compiled.MonopolyTasksOn(i, m);
      compiled.h[i] += tasks;
      if (compiled.eligible[i].Test(m)) compiled.g[i] += tasks;
    }
    TSF_CHECK_GT(compiled.h[i], 0.0);
    TSF_CHECK_GT(compiled.g[i], 0.0)
        << "job " << problem.jobs[i].name
        << ": cannot run a single task on any eligible machine";
  }
  return compiled;
}

ConstraintComponents FindComponents(const CompiledProblem& problem) {
  ConstraintComponents components;
  components.machine_component.assign(problem.num_machines, SIZE_MAX);
  components.user_component.assign(problem.num_users, SIZE_MAX);

  // Union-find over machines; each user's eligible set is one hyper-edge.
  std::vector<std::size_t> parent(problem.num_machines);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  for (UserId i = 0; i < problem.num_users; ++i) {
    const std::size_t first = problem.eligible[i].FindFirst();
    problem.eligible[i].ForEachSet([&](std::size_t m) {
      parent[find(m)] = find(first);
    });
  }

  // Densify component ids.
  std::vector<std::size_t> dense(problem.num_machines, SIZE_MAX);
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    const std::size_t root = find(m);
    if (dense[root] == SIZE_MAX) dense[root] = components.count++;
    components.machine_component[m] = dense[root];
  }
  for (UserId i = 0; i < problem.num_users; ++i) {
    components.user_component[i] =
        components.machine_component[problem.eligible[i].FindFirst()];
  }
  return components;
}

}  // namespace tsf
