// Hash-consed, refcounted eligibility sets over machine equivalence classes.
//
// Many jobs carry the same placement constraint (the Google mix draws from a
// small pool of attribute combos), and on a class-collapsed cluster one
// constraint's eligibility is decided per *class*, not per machine. This
// module interns the compiled form: one EligibilitySet per distinct
// constraint, shared across every job that carries it (std::shared_ptr is
// the refcount), with both the exact per-machine bitset (placement streams
// must stay bit-identical to the flat path) and the class-level summaries
// (per-class eligible counts, the class bitset) that let the scheduler and
// the DES run O(classes) sweeps instead of O(machines).
//
// Attribute constraints are uniform within a class (equal attribute sets),
// so Intern probes one canonical representative per class. Whitelists and
// blacklists name concrete machines and may split a class: their exact
// machine bits are built from the list and the class counts derived, so a
// partially-eligible class reports 0 < class_count < class_size.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cluster.h"
#include "core/constraint.h"
#include "util/bitset.h"

namespace tsf {

struct EligibilitySet {
  DynamicBitset machines;  // exact per-machine eligibility (bit-identity)
  DynamicBitset classes;   // classes with at least one eligible machine
  std::vector<std::uint32_t> class_count;  // eligible machines per class
  std::size_t num_eligible = 0;            // machines.Count()

  // True iff machine m is eligible.
  bool EligibleOn(MachineId m) const { return machines.Test(m); }
  // True iff every member of class c is eligible (the tightening commits of
  // the scheduler's class upper bounds require full coverage).
  bool ClassFull(std::size_t c, const MachineClassIndex& classes_index) const {
    return class_count[c] == classes_index.class_size(c);
  }
};

// Shared, immutable handle. Owners (jobs, scheduler users) hold the
// refcount; EvictUnused drops pool entries nobody references any more.
using EligibilityHandle = std::shared_ptr<const EligibilitySet>;

// Builds a non-interned set from an ad-hoc machine bitset, deriving the
// class summaries from `classes` (collapsed-mode owners with a mask that
// did not come from a Constraint).
EligibilityHandle WrapEligibility(DynamicBitset machines,
                                  const MachineClassIndex& classes);

// Machines-only wrap, no class summaries (flat-mode owners; the class
// fields stay empty and must not be consulted).
EligibilityHandle WrapFlatEligibility(DynamicBitset machines);

class EligibilityPool {
 public:
  // Both referents must outlive the pool.
  EligibilityPool(const Cluster& cluster, const MachineClassIndex& classes);

  // Returns the interned set for `constraint`, compiling it on first sight.
  // Structurally equal constraints (same kind, attributes, machine list)
  // return the *same* handle, whoever asked first.
  EligibilityHandle Intern(const Constraint& constraint);

  // Builds a non-interned set for an ad-hoc machine bitset (flat callers
  // that already own an eligibility mask).
  EligibilityHandle Wrap(DynamicBitset machines) const;

  std::size_t size() const { return pool_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }

  // Drops entries whose only reference is the pool's own; returns how many
  // were evicted.
  std::size_t EvictUnused();

 private:
  EligibilityHandle Compile(const Constraint& constraint) const;

  const Cluster* cluster_;
  const MachineClassIndex* classes_;
  std::unordered_map<std::string, EligibilityHandle> pool_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace tsf
