// The paper's worked examples as ready-made SharingProblems. Used as golden
// fixtures by the test suite and regenerated verbatim by the bench
// harnesses for Figs. 2–4.
#pragma once

#include "core/cluster.h"

namespace tsf::paper {

// Fig. 2a: two <18 CPU, 18 GB> machines; u1 demands <1,2> and runs anywhere,
// u2 demands <1,3> and runs only on m2. Constrained CDRF gives (12, 4).
SharingProblem Fig2Truthful();

// Fig. 2b: same, but u2 falsely claims it can also run on m1. Constrained
// CDRF then gives u2 six tasks — all still placed on m2 — proving CDRF is
// not strategy-proof.
SharingProblem Fig2Lie();

// Fig. 3: three 3-CPU machines (single resource), 7 unit-demand users:
// u1 -> {m1}; u2 -> all; u3,u4 -> {m2}; u5..u7 -> {m3}. Constrained CDRF
// gives everyone 1 task and u2 three tasks (2 on m1), so u1 envies u2.
SharingProblem Fig3();

// Fig. 4 / Sec. V-A running example: machines <9,12>, <3,4>, <9,12>;
// u1 <1,2> on {m1,m2}; u2 <3,1> on {m2}; u3 <1,4> anywhere. TSF gives task
// shares (3/7, 1/7, 3/7) with 6, 1, and 3 tasks.
SharingProblem Fig4();

// Sec. IV-B3 worked example (same cluster as Fig. 2): expected constrained
// monopoly counts g = (18, 6) and the CDRF allocation above.
inline constexpr double kFig2CdrfTasksU1 = 12.0;
inline constexpr double kFig2CdrfTasksU2 = 4.0;
inline constexpr double kFig2LieCdrfTasksU2 = 6.0;

}  // namespace tsf::paper
