// Invariant checkers over recorded scheduler streams.
//
// Both substrates record their state transitions into an event stream
// (sim/des.h SimStreamEvent, mesos/mesos.h MasterEvent); the checker
// replays the stream against a shadow model of the cluster — free capacity,
// live tasks, machine up/down, user connectivity — and reports every
// invariant violation instead of aborting on the first, so the fuzzer can
// shrink a failing plan with the violation signature as the predicate.
//
// Invariants checked (the online-stack safety net of DESIGN.md §9):
//   - the virtual clock never runs backwards;
//   - tasks are only placed on up, allowed machines with room (no
//     oversubscription, whitelist compliance);
//   - a task id is live at most once, finishes/kills/failures name live
//     tasks on the machine the stream placed them on (no leaked or
//     duplicated ids across crash-rescheduling);
//   - a crash is preceded by the kill of every task the stream shows
//     running on that machine (a survivor == a leaked task);
//   - no launches for a disconnected user;
//   - at end of stream: every user completed exactly its task count, no
//     task is still live, and every up machine's free capacity returned to
//     its full capacity (resource conservation).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/resource.h"

namespace tsf::chaos {

// Substrate-neutral stream event (the union of the DES and Mesos streams).
struct StreamEvent {
  enum class Kind {
    kArrive,      // user registered
    kPlace,       // task placed on machine
    kFinish,      // task completed on machine
    kKill,        // task killed by a machine crash, requeued
    kFail,        // task failed (machine up), requeued
    kCrash,       // machine went down
    kRestart,     // machine came back
    kDisconnect,  // user stopped receiving offers (Mesos only)
    kReregister,  // user resumed receiving offers (Mesos only)
  };
  double time = 0.0;
  Kind kind = Kind::kArrive;
  std::uint32_t user = 0;
  std::uint32_t task = 0;  // substrate-scoped task id
  std::uint32_t machine = 0;

  bool operator==(const StreamEvent&) const = default;
};

std::string ToString(StreamEvent::Kind kind);
// One-line rendering, "t=<time> <kind> user=<u> task=<t> machine=<m>" — the
// unit of the golden placement streams and the first-divergence diffs.
std::string FormatStreamEvent(const StreamEvent& event);
// FNV-1a over the formatted lines; the golden tests' stream fingerprint.
std::uint64_t HashStream(const std::vector<StreamEvent>& stream);

// The static facts the checker validates a stream against. Capacity and
// demand must be in one consistent unit system (the scenario runners use
// raw units for Mesos and normalized units for the DES).
struct ScenarioView {
  std::vector<ResourceVector> capacity;     // per machine
  std::vector<ResourceVector> demand;       // per user, per-task
  std::vector<std::vector<bool>> allowed;   // [user][machine]
  std::vector<long> num_tasks;              // per user
  // Absolute slack for capacity comparisons (repeated +=/-= of doubles).
  double tolerance = 1e-6;
};

struct Violation {
  std::string invariant;  // stable snake_case id, e.g. "oversubscription"
  std::string detail;
  double time = 0.0;
  std::size_t event_index = 0;  // into the checked stream
};

std::string ToString(const Violation& violation);

// Replays `stream` against the shadow model; returns every violation in
// stream order (empty == all invariants hold).
std::vector<Violation> CheckStream(const ScenarioView& view,
                                   const std::vector<StreamEvent>& stream);

}  // namespace tsf::chaos
