// Invariant checkers over recorded scheduler streams.
//
// Both substrates record their state transitions into an event stream
// (sim/des.h SimStreamEvent, mesos/mesos.h MasterEvent); the checker
// replays the stream against a shadow model of the cluster — free capacity,
// live tasks, machine up/down, user connectivity — and reports every
// invariant violation instead of aborting on the first, so the fuzzer can
// shrink a failing plan with the violation signature as the predicate.
//
// Invariants checked (the online-stack safety net of DESIGN.md §9):
//   - the virtual clock never runs backwards;
//   - tasks are only placed on up, allowed machines with room (no
//     oversubscription, whitelist compliance);
//   - a task id is live at most once, finishes/kills/failures name live
//     tasks on the machine the stream placed them on (no leaked or
//     duplicated ids across crash-rescheduling);
//   - a crash is preceded by the kill of every task the stream shows
//     running on that machine (a survivor == a leaked task);
//   - no launches for a disconnected user;
//   - at end of stream: every user completed exactly its task count, no
//     task is still live, and every up machine's free capacity returned to
//     its full capacity (resource conservation).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/resource.h"

namespace tsf::chaos {

// Substrate-neutral stream event (the union of the DES and Mesos streams).
struct StreamEvent {
  enum class Kind {
    kArrive,      // user registered
    kPlace,       // task placed on machine
    kFinish,      // task completed on machine
    kKill,        // task killed by a machine crash, requeued
    kFail,        // task failed (machine up), requeued
    kCrash,       // machine went down
    kRestart,     // machine came back
    kDisconnect,  // user stopped receiving offers (Mesos only)
    kReregister,  // user resumed receiving offers (Mesos only)
  };
  double time = 0.0;
  Kind kind = Kind::kArrive;
  std::uint32_t user = 0;
  std::uint32_t task = 0;  // substrate-scoped task id
  std::uint32_t machine = 0;

  bool operator==(const StreamEvent&) const = default;
};

std::string ToString(StreamEvent::Kind kind);
// One-line rendering, "t=<time> <kind> user=<u> task=<t> machine=<m>" — the
// unit of the golden placement streams and the first-divergence diffs.
std::string FormatStreamEvent(const StreamEvent& event);
// FNV-1a over the formatted lines; the golden tests' stream fingerprint.
std::uint64_t HashStream(const std::vector<StreamEvent>& stream);

// The static facts the checker validates a stream against. Capacity and
// demand must be in one consistent unit system (the scenario runners use
// raw units for Mesos and normalized units for the DES).
struct ScenarioView {
  std::vector<ResourceVector> capacity;     // per machine
  std::vector<ResourceVector> demand;       // per user, per-task
  std::vector<std::vector<bool>> allowed;   // [user][machine]
  std::vector<long> num_tasks;              // per user
  // Absolute slack for capacity comparisons (repeated +=/-= of doubles).
  double tolerance = 1e-6;
};

struct Violation {
  std::string invariant;  // stable snake_case id, e.g. "oversubscription"
  std::string detail;
  double time = 0.0;
  std::size_t event_index = 0;  // into the checked stream
};

std::string ToString(const Violation& violation);

// --- checker coverage (the guided fuzzer's feedback signal) -----------------

// One bit per checker branch: every violation class, the clean application
// of each event kind, and a few derived transitions (re-placement after a
// requeue, placement on a restarted machine, ...) that mark an interleaving
// as having exercised a deeper slice of the crash-recovery state machine.
// Ids are append-only: corpus entries record admission-time bitmaps and a
// renumbering would silently invalidate them.
enum class CoverageBranch : std::uint8_t {
  // Clean application of each event kind (no violation reported).
  kArriveOk,
  kPlaceOk,
  kFinishOk,
  kKillOk,
  kFailOk,
  kCrashOk,
  kRestartOk,
  kDisconnectOk,
  kReregisterOk,
  // Derived transitions the search should learn to reach.
  kPlaceAfterRestart,    // placement on a machine that crashed and came back
  kPlaceOfRequeuedTask,  // re-placement of a previously killed/failed task
  kCrashWithPriorKills,  // crash of a machine whose tasks were killed before
  kFinishOfRequeuedTask, // a requeued task ran to completion
  kPlaceWhilePeerDown,   // placement while some other machine is down
  // One bit per invariant class (Report call sites of invariants.cc).
  kClockRegression,
  kUnknownUser,
  kUnknownMachine,
  kDuplicateArrival,
  kPlaceBeforeArrival,
  kPlaceWhileDisconnected,
  kPlaceOnDownMachine,
  kWhitelistViolation,
  kOversubscription,
  kDuplicateTaskId,
  kGhostTask,
  kTaskIdentityMismatch,
  kFinishOnDownMachine,
  kFreeCapacityOverflow,
  kTaskSurvivedCrash,
  kCrashOfDownMachine,
  kRestartOfUpMachine,
  kDuplicateDisconnect,
  kReregisterWhileConnected,
  kLeakedTask,
  kIncompleteUser,
  kMachineLeftDown,
  kConservation,
  kNumBranches,
};

// The checker branches one stream replay exercised, as a 64-bit bitmap.
// Cheap by design: Hit is a shift+or, and with -DTSF_CHAOS_COVERAGE_OFF the
// instrumentation sites in invariants.cc compile out entirely (CheckStream
// then never touches the sink).
class ChaosCoverage {
 public:
  static constexpr std::size_t kBits =
      static_cast<std::size_t>(CoverageBranch::kNumBranches);
  static_assert(kBits <= 64, "coverage bitmap must fit one word");

  void Hit(CoverageBranch branch) {
    bits_ |= std::uint64_t{1} << static_cast<std::size_t>(branch);
  }
  bool Covers(CoverageBranch branch) const {
    return (bits_ >> static_cast<std::size_t>(branch)) & 1u;
  }
  std::uint64_t bits() const { return bits_; }
  std::size_t Count() const;
  void Merge(const ChaosCoverage& other) { bits_ |= other.bits_; }
  // Bits of `other` not yet in this map (the admission test of search.cc).
  std::uint64_t NovelBits(const ChaosCoverage& other) const {
    return other.bits_ & ~bits_;
  }

  bool operator==(const ChaosCoverage&) const = default;

 private:
  std::uint64_t bits_ = 0;
};

// Replays `stream` against the shadow model; returns every violation in
// stream order (empty == all invariants hold). With a non-null `coverage`
// the checker also records which of its branches the stream exercised
// (no-op when built with -DTSF_CHAOS_COVERAGE_OFF).
std::vector<Violation> CheckStream(const ScenarioView& view,
                                   const std::vector<StreamEvent>& stream,
                                   ChaosCoverage* coverage);
std::vector<Violation> CheckStream(const ScenarioView& view,
                                   const std::vector<StreamEvent>& stream);

}  // namespace tsf::chaos
