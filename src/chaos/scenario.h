// Scenario runners: one (workload × policy × FaultPlan) triple end to end.
//
// A scenario run executes a substrate with fault injection enabled and the
// stream recorder attached, converts the substrate-native stream into the
// checker's neutral form, and replays it through every invariant checker
// (invariants.h). Scenario generators are seed-deterministic so a repro
// file only needs the seed and the (possibly shrunk) plan to rebuild the
// exact failing run.
#pragma once

#include <cstdint>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/invariants.h"
#include "core/online/policy.h"
#include "mesos/mesos.h"
#include "sim/des.h"
#include "sim/workload.h"

namespace tsf::chaos {

struct ScenarioReport {
  std::vector<StreamEvent> stream;     // the converted, checked stream
  std::vector<Violation> violations;   // empty == all invariants hold
  std::uint64_t stream_hash = 0;       // HashStream(stream)
  // Checker branches this run exercised (chaos::ChaosCoverage); empty unless
  // the run was made through an options struct with `coverage = true` (and
  // the build has coverage compiled in — see TSF_CHAOS_COVERAGE).
  ChaosCoverage coverage;
  // Post-quiescence fairness gap vs the offline TSF point; -1 when not
  // computed (DES runs with `fairness_sample_interval > 0` only).
  double fairness_gap = -1.0;

  bool ok() const { return violations.empty(); }
};

// The six online policies of the paper's macro-benchmarks, in canonical
// order (FIFO, DRF, CDRF, CMMF-CPU, CMMF-Mem, TSF).
std::vector<OnlinePolicy> AllOnlinePolicies();

// --- DES substrate ----------------------------------------------------------

// Seed-deterministic random workload sized so injected faults land while
// work is in flight (2-5 machines, 2-6 jobs, runtimes of a few seconds).
Workload RandomChaosWorkload(std::uint64_t seed);

// Like RandomChaosWorkload, but machine capacities and attribute sets are
// drawn whole from small per-seed menus, so several machines land in each
// equivalence class (core/cluster.h MachineClassIndex). Jobs mix
// unconstrained, attribute-constrained (class-uniform eligibility), and
// whitelisted (splits classes) constraints — the adversarial surface of
// the collapsed online scheduler.
Workload RandomUniformChaosWorkload(std::uint64_t seed);

struct DesScenario {
  Workload workload;
  FaultPlan plan;
};

// RandomChaosWorkload plus a RandomFaultPlan shaped to its cluster.
DesScenario RandomDesScenario(std::uint64_t seed);

// RandomUniformChaosWorkload plus a RandomFaultPlan shaped to its cluster:
// the collapsed-cluster golden/differential scenarios, where faults hit
// machines inside populated equivalence classes.
DesScenario RandomUniformDesScenario(std::uint64_t seed);

// The checker's static view of a DES workload (normalized units, matching
// the scheduler's internal arithmetic).
ScenarioView ViewOfWorkload(const Workload& workload);

std::vector<StreamEvent> ConvertDesStream(
    const std::vector<SimStreamEvent>& stream);

// Knobs of the instrumented scenario runners (the guided fuzzer's feedback
// taps). The defaults reproduce the plain runners exactly.
struct ScenarioRunOptions {
  SimCore core = SimCore::kIncremental;
  ClusterMode cluster_mode = ClusterMode::kAuto;
  // Record checker-branch coverage into ScenarioReport::coverage.
  bool coverage = false;
  // DES only: sample the fairness timeline at this virtual-time period and
  // fill ScenarioReport::fairness_gap from the post-quiescence convergence
  // check (chaos::FairnessGap over the trailing half of the run). 0 = off.
  double fairness_sample_interval = 0.0;
};

// Simulates with faults + stream recording, then checks every invariant.
// `cluster_mode` picks the machine-set representation (sim/des.h): kAuto
// collapses only when it pays off, kFlat/kCollapsed force one engine — the
// emitted stream must be identical either way.
ScenarioReport RunDesScenario(const Workload& workload,
                              const OnlinePolicy& policy,
                              const FaultPlan& plan,
                              SimCore core = SimCore::kIncremental,
                              ClusterMode cluster_mode = ClusterMode::kAuto);
ScenarioReport RunDesScenario(const Workload& workload,
                              const OnlinePolicy& policy,
                              const FaultPlan& plan,
                              const ScenarioRunOptions& options);

// --- Mesos substrate --------------------------------------------------------

struct MesosScenario {
  mesos::ClusterConfig config;
  std::vector<mesos::FrameworkSpec> frameworks;
  FaultPlan plan;
};

// Random offer-loop scenario; the allocator policy (TSF or DRF) is drawn
// from the seed. Fault times start after every framework has registered,
// so framework-level faults are always applicable.
MesosScenario RandomMesosScenario(std::uint64_t seed);

// The checker's static view of a Mesos cluster (raw units).
ScenarioView ViewOfMesos(const mesos::ClusterConfig& config,
                         const std::vector<mesos::FrameworkSpec>& frameworks);

std::vector<StreamEvent> ConvertMesosStream(
    const std::vector<mesos::MasterEvent>& stream);

ScenarioReport RunMesosScenario(const MesosScenario& scenario);
ScenarioReport RunMesosScenario(const MesosScenario& scenario,
                                const ScenarioRunOptions& options);

// --- Fairness convergence ---------------------------------------------------

// Post-quiescence fairness: time-averages each user's online task share
// over the fairness_timeline samples in [from, until] (the run must have
// used SimOptions::fairness_sample_interval > 0), max-normalizes both that
// vector and the offline ProgressiveFilling (SolveTsf) shares of the same
// instance, and returns the maximum absolute difference. Small values mean
// the faulted online run converged back to the offline fair point.
double FairnessGap(const Workload& workload, const SimResult& result,
                   double from, double until);

}  // namespace tsf::chaos
