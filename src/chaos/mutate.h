// Mutation operators over FaultPlan atoms (the guided fuzzer's move set).
//
// The mutation unit is the *atom* — the same unit chaos/shrink.h removes: a
// crash and its matching restart (or a disconnect and its re-register) move
// together, single events (task failures, offer faults) stand alone. Every
// operator keeps the plan well-formed by construction: outage windows of one
// target never overlap, no window combination blacks out the whole cluster,
// and the result is re-validated with ValidateFaultPlan before it is
// returned. An operator that cannot find a valid move within its retry
// budget returns nullopt instead of a malformed plan.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "util/rng.h"

namespace tsf::chaos {

// One mutation unit: an unpaired event, or an open/close outage pair.
struct FaultAtom {
  FaultSpec open;
  bool has_close = false;
  FaultSpec close;  // meaningful iff has_close

  bool operator==(const FaultAtom&) const = default;
};

// Splits a well-formed plan into atoms (pairing each crash/restart and
// disconnect/re-register per target in time order). TSF_CHECK-fails on an
// unpaired opener — validate the plan first.
std::vector<FaultAtom> DecomposeAtoms(const FaultPlan& plan);

// Flattens atoms back into a time-sorted plan. The inverse of
// DecomposeAtoms up to event order at equal times (ties are broken
// deterministically by target and kind).
FaultPlan AssembleAtoms(const std::vector<FaultAtom>& atoms);

// The operator alphabet. kSplice needs a donor plan; the others are unary.
enum class MutationOp {
  kAddAtom,      // insert a fresh random atom
  kRemoveAtom,   // drop one atom (pair removed together)
  kRetimeAtom,   // resample one atom's time (and outage duration)
  kRetargetAtom, // move one atom to a different machine/framework
  kSplice,       // time-cut cross of two plans, conflicts dropped
};
inline constexpr MutationOp kAllMutationOps[] = {
    MutationOp::kAddAtom, MutationOp::kRemoveAtom, MutationOp::kRetimeAtom,
    MutationOp::kRetargetAtom, MutationOp::kSplice};

std::string ToString(MutationOp op);

// The envelope a mutant must stay inside — mirrors FaultPlanShape, plus the
// atom cap that keeps guided plans from growing without bound.
struct MutationShape {
  std::size_t num_machines = 1;
  std::size_t num_frameworks = 0;  // 0 == DES plan (machine kinds only)
  double earliest = 0.0;
  double horizon = 60.0;
  double mean_outage = 8.0;
  std::size_t max_atoms = 16;
};

// Applies `op` to `plan`, drawing every choice from `rng`. `donor` is the
// second parent for kSplice (ignored otherwise; kSplice with a null donor
// returns nullopt). Returns nullopt when the operator is inapplicable (e.g.
// removing from a single-atom plan, retargeting in a 1-machine cluster) or
// when no valid placement was found within the retry budget; otherwise the
// returned plan passes ValidateFaultPlan against `shape` by construction
// (TSF_CHECK-enforced).
std::optional<FaultPlan> ApplyMutation(const FaultPlan& plan, MutationOp op,
                                       const MutationShape& shape, Rng& rng,
                                       const FaultPlan* donor = nullptr);

}  // namespace tsf::chaos
