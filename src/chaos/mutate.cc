#include "chaos/mutate.h"

#include <algorithm>
#include <tuple>

#include "util/check.h"

namespace tsf::chaos {
namespace {

// Minimum spacing between two outage windows of one target (matches the
// 0.25 settle gap RandomFaultPlan leaves between a restart and the next
// crash), and the retry budget of the placement-sampling operators.
constexpr double kWindowMargin = 0.25;
constexpr int kRetries = 8;

struct Window {
  double start = 0.0;
  double end = 0.0;
  std::size_t target = 0;
};

// Outage windows of the paired atoms, split by domain. `skip` excludes one
// atom index (the one being retimed/retargeted).
std::vector<Window> PairedWindows(
    const std::vector<FaultAtom>& atoms, bool machine_domain,
    std::size_t skip = static_cast<std::size_t>(-1)) {
  std::vector<Window> windows;
  for (std::size_t a = 0; a < atoms.size(); ++a) {
    if (a == skip || !atoms[a].has_close) continue;
    if (IsMachineFault(atoms[a].open.kind) != machine_domain) continue;
    windows.push_back(
        {atoms[a].open.time, atoms[a].close.time, atoms[a].open.target});
  }
  return windows;
}

bool Overlaps(const Window& w, double start, double end) {
  return w.start < end + kWindowMargin && start < w.end + kWindowMargin;
}

// True iff [start, end] on `target` keeps the target's windows disjoint.
bool TargetFree(const std::vector<Window>& windows, std::size_t target,
                double start, double end) {
  for (const Window& w : windows)
    if (w.target == target && Overlaps(w, start, end)) return false;
  return true;
}

// True iff crashing `machine` over [start, end] leaves at least one other
// machine up at every instant (the generator's no-blackout rule: a plan
// that stops the whole cluster stalls the run without proving anything).
bool BlackoutFree(const std::vector<Window>& machine_windows,
                  std::size_t num_machines, std::size_t machine, double start,
                  double end) {
  std::size_t concurrent = 0;
  for (const Window& w : machine_windows)
    if (w.target != machine && w.start < end && start < w.end) ++concurrent;
  return concurrent + 1 < num_machines;
}

bool IsPairKind(FaultKind kind) {
  return kind == FaultKind::kMachineCrash ||
         kind == FaultKind::kFrameworkDisconnect;
}

FaultKind CloserOf(FaultKind opener) {
  return opener == FaultKind::kMachineCrash ? FaultKind::kMachineRestart
                                            : FaultKind::kFrameworkReregister;
}

// Samples a fresh atom that fits the current atom set, or nullopt after
// kRetries failed placements.
std::optional<FaultAtom> SampleAtom(const std::vector<FaultAtom>& atoms,
                                    const MutationShape& shape, Rng& rng) {
  const bool mesos = shape.num_frameworks > 0;
  for (int attempt = 0; attempt < kRetries; ++attempt) {
    const double pick = rng.Uniform();
    FaultAtom atom;
    if (!mesos ? pick < 0.60 : pick < 0.45) {
      // Crash + restart pair.
      const auto m = static_cast<std::size_t>(rng.Below(shape.num_machines));
      const double start = rng.Uniform(shape.earliest, shape.horizon);
      const double end = start + rng.Uniform(0.5, 2.0 * shape.mean_outage);
      const std::vector<Window> windows = PairedWindows(atoms, true);
      if (!TargetFree(windows, m, start, end)) continue;
      if (!BlackoutFree(windows, shape.num_machines, m, start, end)) continue;
      atom.open = {start, FaultKind::kMachineCrash, m, 0.0};
      atom.has_close = true;
      atom.close = {end, FaultKind::kMachineRestart, m, 0.0};
    } else if (!mesos || pick < 0.60) {
      const auto m = static_cast<std::size_t>(rng.Below(shape.num_machines));
      atom.open = {rng.Uniform(shape.earliest, shape.horizon),
                   FaultKind::kTaskFailure, m, 0.0};
    } else if (pick < 0.75) {
      // Disconnect + re-register pair.
      const auto f = static_cast<std::size_t>(rng.Below(shape.num_frameworks));
      const double start = rng.Uniform(shape.earliest, shape.horizon);
      const double end = start + rng.Uniform(0.5, 2.0 * shape.mean_outage);
      if (!TargetFree(PairedWindows(atoms, false), f, start, end)) continue;
      atom.open = {start, FaultKind::kFrameworkDisconnect, f, 0.0};
      atom.has_close = true;
      atom.close = {end, FaultKind::kFrameworkReregister, f, 0.0};
    } else {
      const auto f = static_cast<std::size_t>(rng.Below(shape.num_frameworks));
      const double t = rng.Uniform(shape.earliest, shape.horizon);
      if (pick < 0.85) {
        atom.open = {t, FaultKind::kOfferDrop, f,
                     static_cast<double>(rng.Int(1, 3))};
      } else if (pick < 0.95) {
        atom.open = {t, FaultKind::kOfferRescind, f, 0.0};
      } else {
        atom.open = {t, FaultKind::kDeclineTimeout, f,
                     rng.Uniform(0.5, shape.mean_outage)};
      }
    }
    return atom;
  }
  return std::nullopt;
}

// Picks the atom a unary operator works on. Biased toward outage pairs:
// moving a crash/disconnect window changes which tasks get disrupted, while
// moving a lone task-failure or offer fault rarely opens new interleavings.
std::size_t PickAtom(const std::vector<FaultAtom>& atoms, Rng& rng) {
  std::vector<std::size_t> pairs;
  for (std::size_t a = 0; a < atoms.size(); ++a)
    if (atoms[a].has_close) pairs.push_back(a);
  if (!pairs.empty() && rng.Chance(0.7))
    return pairs[rng.Below(pairs.size())];
  return static_cast<std::size_t>(rng.Below(atoms.size()));
}

// An atom fits the accumulating splice result iff its windows stay disjoint
// per target and machine outages keep the cluster partially up.
bool Fits(const std::vector<FaultAtom>& atoms, const FaultAtom& atom,
          const MutationShape& shape) {
  if (atom.open.target >=
      (IsMachineFault(atom.open.kind) ? shape.num_machines
                                      : shape.num_frameworks))
    return false;
  if (!atom.has_close) return true;
  const bool machine_domain = IsMachineFault(atom.open.kind);
  const std::vector<Window> windows = PairedWindows(atoms, machine_domain);
  if (!TargetFree(windows, atom.open.target, atom.open.time, atom.close.time))
    return false;
  if (machine_domain &&
      !BlackoutFree(windows, shape.num_machines, atom.open.target,
                    atom.open.time, atom.close.time))
    return false;
  return true;
}

std::optional<FaultPlan> Finish(std::vector<FaultAtom> atoms,
                                const MutationShape& shape) {
  FaultPlan plan = AssembleAtoms(atoms);
  TSF_CHECK(
      ValidateFaultPlan(plan, shape.num_machines, shape.num_frameworks).empty())
      << "mutation produced an ill-formed plan";
  return plan;
}

}  // namespace

std::vector<FaultAtom> DecomposeAtoms(const FaultPlan& plan) {
  const std::vector<FaultSpec>& events = plan.events;
  std::vector<bool> used(events.size(), false);
  std::vector<FaultAtom> atoms;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    FaultAtom atom;
    atom.open = events[i];
    if (IsPairKind(events[i].kind)) {
      const FaultKind closer = CloserOf(events[i].kind);
      bool paired = false;
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (used[j] || events[j].kind != closer ||
            events[j].target != events[i].target)
          continue;
        used[j] = true;
        atom.has_close = true;
        atom.close = events[j];
        paired = true;
        break;
      }
      TSF_CHECK(paired) << "unpaired " << ToString(events[i].kind)
                        << " at event " << i
                        << " — validate the plan before mutating";
    }
    atoms.push_back(atom);
  }
  return atoms;
}

FaultPlan AssembleAtoms(const std::vector<FaultAtom>& atoms) {
  FaultPlan plan;
  for (const FaultAtom& atom : atoms) {
    plan.events.push_back(atom.open);
    if (atom.has_close) plan.events.push_back(atom.close);
  }
  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultSpec& a, const FaultSpec& b) {
              return std::tie(a.time, a.target, a.kind, a.param) <
                     std::tie(b.time, b.target, b.kind, b.param);
            });
  return plan;
}

std::string ToString(MutationOp op) {
  switch (op) {
    case MutationOp::kAddAtom: return "add";
    case MutationOp::kRemoveAtom: return "remove";
    case MutationOp::kRetimeAtom: return "retime";
    case MutationOp::kRetargetAtom: return "retarget";
    case MutationOp::kSplice: return "splice";
  }
  TSF_CHECK(false) << "unknown MutationOp " << static_cast<int>(op);
  return {};
}

std::optional<FaultPlan> ApplyMutation(const FaultPlan& plan, MutationOp op,
                                       const MutationShape& shape, Rng& rng,
                                       const FaultPlan* donor) {
  TSF_CHECK_GT(shape.num_machines, 0u);
  TSF_CHECK_LT(shape.earliest, shape.horizon);
  TSF_CHECK(
      ValidateFaultPlan(plan, shape.num_machines, shape.num_frameworks).empty())
      << "mutating an ill-formed plan";
  std::vector<FaultAtom> atoms = DecomposeAtoms(plan);

  switch (op) {
    case MutationOp::kAddAtom: {
      if (atoms.size() >= shape.max_atoms) return std::nullopt;
      std::optional<FaultAtom> atom = SampleAtom(atoms, shape, rng);
      if (!atom) return std::nullopt;
      atoms.push_back(*atom);
      return Finish(std::move(atoms), shape);
    }

    case MutationOp::kRemoveAtom: {
      if (atoms.size() <= 1) return std::nullopt;
      atoms.erase(atoms.begin() +
                  static_cast<std::ptrdiff_t>(rng.Below(atoms.size())));
      return Finish(std::move(atoms), shape);
    }

    case MutationOp::kRetimeAtom: {
      if (atoms.empty()) return std::nullopt;
      const std::size_t a = PickAtom(atoms, rng);
      FaultAtom& atom = atoms[a];
      for (int attempt = 0; attempt < kRetries; ++attempt) {
        const double start = rng.Uniform(shape.earliest, shape.horizon);
        if (!atom.has_close) {
          atom.open.time = start;
          return Finish(std::move(atoms), shape);
        }
        const double end = start + rng.Uniform(0.5, 2.0 * shape.mean_outage);
        const bool machine_domain = IsMachineFault(atom.open.kind);
        const std::vector<Window> windows =
            PairedWindows(atoms, machine_domain, a);
        if (!TargetFree(windows, atom.open.target, start, end)) continue;
        if (machine_domain &&
            !BlackoutFree(windows, shape.num_machines, atom.open.target, start,
                          end))
          continue;
        atom.open.time = start;
        atom.close.time = end;
        return Finish(std::move(atoms), shape);
      }
      return std::nullopt;
    }

    case MutationOp::kRetargetAtom: {
      if (atoms.empty()) return std::nullopt;
      const std::size_t a = PickAtom(atoms, rng);
      FaultAtom& atom = atoms[a];
      const bool machine_domain = IsMachineFault(atom.open.kind);
      const std::size_t domain =
          machine_domain ? shape.num_machines : shape.num_frameworks;
      if (domain <= 1) return std::nullopt;
      for (int attempt = 0; attempt < kRetries; ++attempt) {
        const auto target = static_cast<std::size_t>(rng.Below(domain));
        if (target == atom.open.target) continue;
        if (atom.has_close) {
          const std::vector<Window> windows =
              PairedWindows(atoms, machine_domain, a);
          if (!TargetFree(windows, target, atom.open.time, atom.close.time))
            continue;
          if (machine_domain &&
              !BlackoutFree(windows, shape.num_machines, target,
                            atom.open.time, atom.close.time))
            continue;
          atom.close.target = target;
        }
        atom.open.target = target;
        return Finish(std::move(atoms), shape);
      }
      return std::nullopt;
    }

    case MutationOp::kSplice: {
      if (donor == nullptr) return std::nullopt;
      TSF_CHECK(ValidateFaultPlan(*donor, shape.num_machines,
                                  shape.num_frameworks)
                    .empty())
          << "splicing an ill-formed donor plan";
      const std::vector<FaultAtom> theirs = DecomposeAtoms(*donor);
      if (atoms.empty() && theirs.empty()) return std::nullopt;
      // Time-cut crossover: our atoms before the cut, the donor's after,
      // donor atoms that would collide (overlapping window, blackout, cap)
      // are dropped — pairing is preserved because whole atoms move.
      const double cut = rng.Uniform(shape.earliest, shape.horizon);
      std::vector<FaultAtom> spliced;
      for (const FaultAtom& atom : atoms)
        if (atom.open.time < cut) spliced.push_back(atom);
      for (const FaultAtom& atom : theirs) {
        if (atom.open.time < cut) continue;
        if (spliced.size() >= shape.max_atoms) break;
        if (Fits(spliced, atom, shape)) spliced.push_back(atom);
      }
      if (spliced.empty()) return std::nullopt;
      return Finish(std::move(spliced), shape);
    }
  }
  TSF_CHECK(false) << "unknown MutationOp " << static_cast<int>(op);
  return std::nullopt;
}

}  // namespace tsf::chaos
