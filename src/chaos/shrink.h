// Delta-debugging of failing fault plans (Zeller's ddmin).
//
// The shrink unit is an *atom*, not an event: a crash and its matching
// restart (and a disconnect and its re-register) are removed together, so
// every candidate plan stays well-formed — no outage is left unlifted and
// every candidate run terminates. ddmin reduces the atom set to 1-minimal:
// removing any single remaining atom makes the failure disappear.
#pragma once

#include <cstddef>
#include <functional>

#include "chaos/fault_plan.h"

namespace tsf::chaos {

// Returns true iff the candidate plan still reproduces the failure.
// Candidates passed in are always well-formed subsets of the original plan
// with the original time order preserved.
using PlanPredicate = std::function<bool(const FaultPlan&)>;

struct ShrinkResult {
  FaultPlan plan;                   // 1-minimal failing plan
  std::size_t predicate_calls = 0;  // scenario executions spent shrinking
};

// Precondition: still_fails(plan) is true (TSF_CHECK-verified up front).
ShrinkResult ShrinkFaultPlan(const FaultPlan& plan,
                             const PlanPredicate& still_fails);

}  // namespace tsf::chaos
