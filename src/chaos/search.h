// Feedback-driven scenario search (the guided mode of tools/fuzz_scenarios).
//
// Where the blind fuzzer draws every scenario independently from a seed
// counter, the guided search keeps a corpus of *interesting* fault plans and
// grows it by mutation (chaos/mutate.h), using three feedback signals from
// each instrumented run (chaos/scenario.h ScenarioRunOptions):
//
//   1. checker-branch coverage — the ChaosCoverage bitmap of invariants.cc:
//      a mutant that lights a branch the corpus has never exercised is kept;
//   2. interleaving novelty — a hash of the run's disruption ordering
//      (which fault kinds fired, separated by how much placement work), so
//      structurally new schedules are kept even at equal coverage;
//   3. fairness-gap magnitude — the post-quiescence convergence gap; a
//      mutant that degrades fairness more than anything seen is kept.
//
// Parent selection is pluggable (Frontier): FIFO, LIFO, or a scored
// max-heap. The whole loop is seed-deterministic — one tsf::Rng drives
// every choice, containers iterate in sorted order, and the result carries
// FNV hashes of the corpus and of the frontier pop sequence so two runs can
// be compared bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/repro.h"
#include "sim/des.h"

namespace tsf::chaos {

// Coarse fingerprint of a run's event interleaving: the sequence of
// disruptive event kinds (kill/fail/crash/restart/disconnect/re-register)
// with the amount of placement progress between them bucketed to log2.
// Deliberately lossy — runs differing only in exact task ids or timestamps
// collide, runs whose faults interleave differently with scheduling work do
// not.
std::uint64_t InterleavingSignature(const std::vector<StreamEvent>& stream);

// One admitted corpus member. `repro` alone rebuilds the run (the committed
// on-disk form is SerializeRepro with an empty violation); the rest is the
// admission-time feedback that justified keeping it.
struct CorpusEntry {
  Repro repro;
  ChaosCoverage coverage;        // branches this entry's run exercised
  std::uint64_t new_bits = 0;    // coverage bits first seen with this entry
  std::uint64_t novelty = 0;     // InterleavingSignature of the run
  double fairness_gap = -1.0;    // -1 when not computed (Mesos runs)
  std::uint64_t plan_hash = 0;   // HashFaultPlan(repro.plan)
  double score = 0.0;            // the "score" heuristic's priority
};

// Parent-selection order. Push/Pop move indices into the corpus vector;
// entries are popped exactly once per push (an exhausted frontier is
// re-seeded from the full corpus by the search loop).
class Frontier {
 public:
  virtual ~Frontier() = default;
  virtual void Push(std::size_t entry, double score) = 0;
  virtual std::size_t Pop() = 0;  // TSF_CHECK-fails when empty
  virtual bool Empty() const = 0;
};

// "bfs" (FIFO — breadth over the corpus), "dfs" (LIFO — chase the newest
// find), or "score" (max-heap on CorpusEntry::score, FIFO among ties).
// TSF_CHECK-fails on an unknown name.
std::unique_ptr<Frontier> MakeFrontier(const std::string& heuristic);

struct SearchOptions {
  // Scenario lanes to search: "des" | "des-uniform" | "mesos" | "both"
  // ("both" = all three, matching the blind fuzzer's lane set).
  std::string substrate = "both";
  // Online policy of the DES lanes (Mesos derives its allocator policy from
  // the scenario seed).
  std::string policy = "TSF";
  // Seed of the base scenario each lane starts from. The search mutates the
  // *plan* only; the workload/cluster of a lane stays pinned to this seed.
  std::uint64_t scenario_seed = 1;
  // Seed of the mutation/selection stream. Same (search_seed, scenario_seed,
  // corpus) => identical execution sequence and hashes.
  std::uint64_t search_seed = 1;
  std::size_t max_execs = 256;        // scenario runs, the search budget
  std::size_t mutations_per_parent = 4;
  std::string heuristic = "score";    // bfs | dfs | score
  // Stop at the first invariant violation (the executions-to-bug mode).
  // When false the search runs its full budget and violating plans are
  // recorded but never admitted to the corpus.
  bool stop_on_violation = true;
  // DES machine-set representation ("auto" | "flat" | "collapsed").
  std::string cluster_mode = "auto";
  // DES fairness feedback tap; 0 disables the fairness-gap signal.
  double fairness_sample_interval = 0.25;
  // Atom cap for mutants (the generator emits at most 8; the search may
  // grow denser plans up to this bound).
  std::size_t max_atoms = 16;
  // On-disk corpus to seed from (parsed corpus_*.txt files, in sorted
  // filename order). Entries of other substrates are ignored; duplicate
  // plans cost no executions.
  std::vector<Repro> corpus;
};

struct SearchResult {
  std::vector<CorpusEntry> corpus;    // admission order
  ChaosCoverage coverage;             // union over all executed runs
  std::size_t executions = 0;
  // Execution count at the first violation; 0 == none observed.
  std::size_t executions_to_violation = 0;
  // Every violating run, as an unshrunk repro (violation field filled).
  std::vector<Repro> violations;
  std::uint64_t corpus_hash = 0;      // FNV-1a over serialized corpus entries
  std::uint64_t frontier_hash = 0;    // FNV-1a over the pop sequence
  // Diagnostics for the tool's summary line.
  std::size_t duplicate_plans = 0;     // mutants deduped before running
  std::size_t inapplicable_mutations = 0;  // operators that returned nullopt
};

// Runs the guided loop: seed each enabled lane's base scenario, replay the
// provided corpus, then mutate frontier parents until the budget is spent
// (or the first violation under stop_on_violation). TSF_CHECK-fails on
// invalid options (unknown substrate/heuristic/cluster mode, zero budget)
// and on corpus entries whose plan does not validate against their own
// scenario.
SearchResult RunGuidedSearch(const SearchOptions& options);

// The blind baseline under the same accounting: iterate scenario seeds
// upward from options.scenario_seed (same lanes, same single DES policy),
// one run per lane per seed, until a violation or max_execs. This is what
// the executions-to-bug regression test compares RunGuidedSearch against.
struct BlindSweepResult {
  std::size_t executions = 0;
  std::size_t executions_to_violation = 0;  // 0 == none observed
  std::vector<Repro> violations;
};
BlindSweepResult RunBlindSweep(const SearchOptions& options);

}  // namespace tsf::chaos
