#include "chaos/scenario.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "core/offline/policies.h"
#include "util/check.h"
#include "util/rng.h"

namespace tsf::chaos {

std::vector<OnlinePolicy> AllOnlinePolicies() {
  return {OnlinePolicy::Fifo(),         OnlinePolicy::Drf(),
          OnlinePolicy::Cdrf(),         OnlinePolicy::Cmmf(0, "CPU"),
          OnlinePolicy::Cmmf(1, "Mem"), OnlinePolicy::Tsf()};
}

Workload RandomChaosWorkload(std::uint64_t seed) {
  Rng rng(seed);
  Workload workload;
  const auto machines = static_cast<std::size_t>(rng.Int(2, 5));
  for (std::size_t m = 0; m < machines; ++m)
    workload.cluster.AddMachine(ResourceVector(std::vector<double>{
        rng.Uniform(2.0, 8.0), rng.Uniform(2.0, 8.0)}));
  const auto jobs = static_cast<std::size_t>(rng.Int(2, 6));
  for (UserId i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.name = "j" + std::to_string(i);
    // Demands guaranteed to fit the smallest possible machine (2.0).
    spec.demand = ResourceVector(std::vector<double>{
        rng.Uniform(0.3, 2.0), rng.Uniform(0.3, 2.0)});
    spec.arrival_time = rng.Uniform(0.0, 10.0);
    spec.num_tasks = rng.Int(3, 25);
    spec.weight = rng.Chance(0.5) ? 1.0 : rng.Uniform(0.5, 4.0);
    if (rng.Chance(0.5)) {
      std::vector<MachineId> allowed;
      for (MachineId m = 0; m < machines; ++m)
        if (rng.Chance(0.6)) allowed.push_back(m);
      if (allowed.empty()) allowed.push_back(rng.Below(machines));
      spec.constraint = Constraint::Whitelist(allowed);
    }
    workload.jobs.push_back(
        MakeJitteredJob(std::move(spec), rng.Uniform(4.0, 15.0), 0.2, rng()));
  }
  std::sort(workload.jobs.begin(), workload.jobs.end(),
            [](const SimJob& a, const SimJob& b) {
              return a.spec.arrival_time < b.spec.arrival_time;
            });
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    workload.jobs[j].spec.id = j;
  return workload;
}

Workload RandomUniformChaosWorkload(std::uint64_t seed) {
  // Decorrelated from RandomChaosWorkload so the two generators' goldens
  // never alias even at equal seeds.
  Rng rng(seed ^ 0xda3e39cb94b95bdbull);
  Workload workload;

  // Menus first: every machine draws a whole (capacity, attributes)
  // configuration, so the cluster collapses into a handful of equivalence
  // classes with several members each.
  const auto num_shapes = static_cast<std::size_t>(rng.Int(1, 2));
  std::vector<ResourceVector> shapes;
  for (std::size_t s = 0; s < num_shapes; ++s)
    shapes.push_back(ResourceVector(std::vector<double>{
        rng.Uniform(3.0, 8.0), rng.Uniform(3.0, 8.0)}));
  const auto num_profiles = static_cast<std::size_t>(rng.Int(1, 2));
  std::vector<AttributeSet> profiles;
  for (std::size_t p = 0; p < num_profiles; ++p) {
    AttributeSet attributes;
    for (AttributeId a = 0; a < 4; ++a)
      if (rng.Chance(0.5)) attributes.Add(a);
    profiles.push_back(std::move(attributes));
  }

  const auto machines = static_cast<std::size_t>(rng.Int(4, 8));
  for (std::size_t m = 0; m < machines; ++m) {
    AttributeSet attributes = profiles[rng.Below(profiles.size())];
    workload.cluster.AddMachine(shapes[rng.Below(shapes.size())],
                                std::move(attributes));
  }

  const auto jobs = static_cast<std::size_t>(rng.Int(2, 6));
  for (UserId i = 0; i < jobs; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.name = "j" + std::to_string(i);
    // Demands guaranteed to fit the smallest possible shape (3.0).
    spec.demand = ResourceVector(std::vector<double>{
        rng.Uniform(0.3, 2.0), rng.Uniform(0.3, 2.0)});
    spec.arrival_time = rng.Uniform(0.0, 10.0);
    spec.num_tasks = rng.Int(3, 25);
    spec.weight = rng.Chance(0.5) ? 1.0 : rng.Uniform(0.5, 4.0);
    const auto roll = rng.Int(0, 2);
    if (roll == 1) {
      // Whitelist: splits classes (a member can be listed while its
      // class-mates are not).
      std::vector<MachineId> allowed;
      for (MachineId m = 0; m < machines; ++m)
        if (rng.Chance(0.6)) allowed.push_back(m);
      if (allowed.empty()) allowed.push_back(rng.Below(machines));
      spec.constraint = Constraint::Whitelist(allowed);
    } else if (roll == 2) {
      // Attributes of a live machine: satisfiable by construction, and
      // eligibility stays class-uniform.
      const AttributeSet& menu =
          workload.cluster.machine(rng.Below(machines)).attributes;
      AttributeSet required;
      for (const AttributeId id : menu.ids())
        if (rng.Chance(0.5)) required.Add(id);
      if (!required.empty())
        spec.constraint = Constraint::RequireAttributes(std::move(required));
    }
    workload.jobs.push_back(
        MakeJitteredJob(std::move(spec), rng.Uniform(4.0, 15.0), 0.2, rng()));
  }
  std::sort(workload.jobs.begin(), workload.jobs.end(),
            [](const SimJob& a, const SimJob& b) {
              return a.spec.arrival_time < b.spec.arrival_time;
            });
  for (std::size_t j = 0; j < workload.jobs.size(); ++j)
    workload.jobs[j].spec.id = j;
  return workload;
}

DesScenario RandomDesScenario(std::uint64_t seed) {
  DesScenario scenario;
  scenario.workload = RandomChaosWorkload(seed);
  FaultPlanShape shape;
  shape.num_machines = scenario.workload.cluster.num_machines();
  shape.num_frameworks = 0;
  shape.earliest = 1.0;
  shape.horizon = 40.0;  // most faults land while tasks are in flight
  shape.max_atoms = 8;
  shape.mean_outage = 6.0;
  // Decorrelate the plan stream from the workload stream.
  scenario.plan = RandomFaultPlan(shape, seed ^ 0x9e3779b97f4a7c15ull);
  return scenario;
}

DesScenario RandomUniformDesScenario(std::uint64_t seed) {
  DesScenario scenario;
  scenario.workload = RandomUniformChaosWorkload(seed);
  FaultPlanShape shape;
  shape.num_machines = scenario.workload.cluster.num_machines();
  shape.num_frameworks = 0;
  shape.earliest = 1.0;
  shape.horizon = 40.0;
  shape.max_atoms = 8;
  shape.mean_outage = 6.0;
  scenario.plan = RandomFaultPlan(shape, seed ^ 0x9e3779b97f4a7c15ull);
  return scenario;
}

ScenarioView ViewOfWorkload(const Workload& workload) {
  const Cluster& cluster = workload.cluster;
  TSF_CHECK_GT(cluster.num_machines(), 0u);
  ScenarioView view;
  view.capacity.reserve(cluster.num_machines());
  for (MachineId m = 0; m < cluster.num_machines(); ++m)
    view.capacity.push_back(cluster.NormalizedCapacity(m));
  for (const SimJob& job : workload.jobs) {
    view.demand.push_back(cluster.NormalizedDemand(job.spec.demand));
    const DynamicBitset eligible = cluster.Eligibility(job.spec.constraint);
    std::vector<bool> allowed(cluster.num_machines(), false);
    eligible.ForEachSet([&](std::size_t m) { allowed[m] = true; });
    view.allowed.push_back(std::move(allowed));
    view.num_tasks.push_back(job.spec.num_tasks);
  }
  return view;
}

std::vector<StreamEvent> ConvertDesStream(
    const std::vector<SimStreamEvent>& stream) {
  std::vector<StreamEvent> converted;
  converted.reserve(stream.size());
  for (const SimStreamEvent& event : stream) {
    StreamEvent out;
    out.time = event.time;
    out.user = event.job;
    out.task = event.task;
    out.machine = event.machine;
    switch (event.kind) {
      case SimStreamEvent::Kind::kArrive:
        out.kind = StreamEvent::Kind::kArrive;
        break;
      case SimStreamEvent::Kind::kPlace:
        out.kind = StreamEvent::Kind::kPlace;
        break;
      case SimStreamEvent::Kind::kFinish:
        out.kind = StreamEvent::Kind::kFinish;
        break;
      case SimStreamEvent::Kind::kKill:
        out.kind = StreamEvent::Kind::kKill;
        break;
      case SimStreamEvent::Kind::kFail:
        out.kind = StreamEvent::Kind::kFail;
        break;
      case SimStreamEvent::Kind::kCrash:
        out.kind = StreamEvent::Kind::kCrash;
        break;
      case SimStreamEvent::Kind::kRestart:
        out.kind = StreamEvent::Kind::kRestart;
        break;
    }
    converted.push_back(out);
  }
  return converted;
}

ScenarioReport RunDesScenario(const Workload& workload,
                              const OnlinePolicy& policy,
                              const FaultPlan& plan, SimCore core,
                              ClusterMode cluster_mode) {
  ScenarioRunOptions options;
  options.core = core;
  options.cluster_mode = cluster_mode;
  return RunDesScenario(workload, policy, plan, options);
}

ScenarioReport RunDesScenario(const Workload& workload,
                              const OnlinePolicy& policy,
                              const FaultPlan& plan,
                              const ScenarioRunOptions& run_options) {
  TSF_CHECK(ValidateFaultPlan(plan, workload.cluster.num_machines(), 0).empty())
      << "ill-formed DES fault plan";
  std::vector<SimStreamEvent> raw;
  SimOptions options;
  options.faults = CompileForDes(plan);
  options.stream = &raw;
  options.cluster_mode = run_options.cluster_mode;
  options.fairness_sample_interval = run_options.fairness_sample_interval;
  const SimResult result =
      Simulate(workload, policy, run_options.core, options);
  ScenarioReport report;
  report.stream = ConvertDesStream(raw);
  report.violations =
      CheckStream(ViewOfWorkload(workload), report.stream,
                  run_options.coverage ? &report.coverage : nullptr);
  report.stream_hash = HashStream(report.stream);
  // Post-quiescence convergence over the trailing half of the run, where
  // the surviving tasks have drained back onto the restored machines. The
  // makespan guard keeps at least one sample instant inside the window
  // (FairnessGap requires a non-empty window).
  if (run_options.fairness_sample_interval > 0.0 &&
      result.makespan >= 2.0 * run_options.fairness_sample_interval)
    report.fairness_gap = FairnessGap(workload, result, result.makespan * 0.5,
                                      result.makespan);
  return report;
}

MesosScenario RandomMesosScenario(std::uint64_t seed) {
  Rng rng(seed);
  MesosScenario scenario;
  const auto slaves = static_cast<std::size_t>(rng.Int(2, 4));
  for (std::size_t s = 0; s < slaves; ++s) {
    mesos::SlaveSpec slave;
    slave.capacity = ResourceVector(std::vector<double>{
        rng.Uniform(2.0, 6.0), rng.Uniform(2.0, 6.0)});
    slave.name = "s" + std::to_string(s);
    scenario.config.slaves.push_back(std::move(slave));
  }
  scenario.config.policy =
      rng.Chance(0.5) ? mesos::AllocatorPolicy::kTsf
                      : mesos::AllocatorPolicy::kDrf;
  scenario.config.seed = rng();
  scenario.config.sample_interval = 0.0;  // timeline not needed for checking
  const auto frameworks = static_cast<std::size_t>(rng.Int(2, 5));
  for (std::size_t f = 0; f < frameworks; ++f) {
    mesos::FrameworkSpec spec;
    spec.name = "f" + std::to_string(f);
    spec.start_time = rng.Uniform(0.0, 5.0);
    spec.num_tasks = rng.Int(5, 30);
    // Demands guaranteed to fit the smallest possible slave (2.0).
    spec.demand = ResourceVector(std::vector<double>{
        rng.Uniform(0.3, 2.0), rng.Uniform(0.3, 2.0)});
    spec.mean_runtime = rng.Uniform(4.0, 12.0);
    spec.runtime_jitter = 0.2;
    spec.weight = rng.Chance(0.5) ? 1.0 : rng.Uniform(0.5, 4.0);
    if (rng.Chance(0.4)) {
      for (std::size_t s = 0; s < slaves; ++s)
        if (rng.Chance(0.6)) spec.whitelist.push_back(s);
      if (spec.whitelist.empty())
        spec.whitelist.push_back(rng.Below(slaves));
    }
    scenario.frameworks.push_back(std::move(spec));
  }
  FaultPlanShape shape;
  shape.num_machines = slaves;
  shape.num_frameworks = frameworks;
  // Start after every framework registered (start times are < 5), so
  // disconnect faults always hit a registered framework.
  shape.earliest = 6.0;
  shape.horizon = 40.0;
  shape.max_atoms = 8;
  shape.mean_outage = 6.0;
  scenario.plan = RandomFaultPlan(shape, seed ^ 0xd1b54a32d192ed03ull);
  return scenario;
}

ScenarioView ViewOfMesos(const mesos::ClusterConfig& config,
                         const std::vector<mesos::FrameworkSpec>& frameworks) {
  ScenarioView view;
  for (const mesos::SlaveSpec& slave : config.slaves)
    view.capacity.push_back(slave.capacity);
  for (const mesos::FrameworkSpec& spec : frameworks) {
    view.demand.push_back(spec.demand);
    std::vector<bool> allowed(config.slaves.size(), spec.whitelist.empty());
    for (const std::size_t s : spec.whitelist) {
      TSF_CHECK_LT(s, config.slaves.size());
      allowed[s] = true;
    }
    view.allowed.push_back(std::move(allowed));
    view.num_tasks.push_back(spec.num_tasks);
  }
  return view;
}

std::vector<StreamEvent> ConvertMesosStream(
    const std::vector<mesos::MasterEvent>& stream) {
  std::vector<StreamEvent> converted;
  converted.reserve(stream.size());
  for (const mesos::MasterEvent& event : stream) {
    StreamEvent out;
    out.time = event.time;
    out.user = event.framework;
    out.task = event.task;
    out.machine = event.slave;
    switch (event.kind) {
      case mesos::MasterEvent::Kind::kRegister:
        out.kind = StreamEvent::Kind::kArrive;
        break;
      case mesos::MasterEvent::Kind::kDisconnect:
        out.kind = StreamEvent::Kind::kDisconnect;
        break;
      case mesos::MasterEvent::Kind::kReregister:
        out.kind = StreamEvent::Kind::kReregister;
        break;
      case mesos::MasterEvent::Kind::kLaunch:
        out.kind = StreamEvent::Kind::kPlace;
        break;
      case mesos::MasterEvent::Kind::kFinish:
        out.kind = StreamEvent::Kind::kFinish;
        break;
      case mesos::MasterEvent::Kind::kKill:
        out.kind = StreamEvent::Kind::kKill;
        break;
      case mesos::MasterEvent::Kind::kFail:
        out.kind = StreamEvent::Kind::kFail;
        break;
      case mesos::MasterEvent::Kind::kCrash:
        out.kind = StreamEvent::Kind::kCrash;
        break;
      case mesos::MasterEvent::Kind::kRestart:
        out.kind = StreamEvent::Kind::kRestart;
        break;
    }
    converted.push_back(out);
  }
  return converted;
}

ScenarioReport RunMesosScenario(const MesosScenario& scenario) {
  return RunMesosScenario(scenario, ScenarioRunOptions{});
}

ScenarioReport RunMesosScenario(const MesosScenario& scenario,
                                const ScenarioRunOptions& run_options) {
  TSF_CHECK(ValidateFaultPlan(scenario.plan, scenario.config.slaves.size(),
                              scenario.frameworks.size())
                .empty())
      << "ill-formed Mesos fault plan";
  std::vector<mesos::MasterEvent> raw;
  mesos::RunOptions options;
  options.faults = CompileForMesos(scenario.plan);
  options.stream = &raw;
  mesos::RunCluster(scenario.config, scenario.frameworks, options);
  ScenarioReport report;
  report.stream = ConvertMesosStream(raw);
  report.violations =
      CheckStream(ViewOfMesos(scenario.config, scenario.frameworks),
                  report.stream,
                  run_options.coverage ? &report.coverage : nullptr);
  report.stream_hash = HashStream(report.stream);
  return report;
}

double FairnessGap(const Workload& workload, const SimResult& result,
                   double from, double until) {
  TSF_CHECK_LT(from, until);
  const std::size_t users = workload.jobs.size();
  TSF_CHECK_GT(users, 0u);

  // Time-averaged online task share per user over the sample window. A
  // user absent from a window sample (already finished) averages in as 0.
  std::vector<double> online(users, 0.0);
  std::size_t samples_in_window = 0;
  double current_sample_time = -1.0;
  for (const telemetry::FairnessSample& sample : result.fairness_timeline) {
    if (sample.time < from || sample.time > until) continue;
    if (sample.time != current_sample_time) {
      current_sample_time = sample.time;
      ++samples_in_window;
    }
    TSF_CHECK_LT(sample.user, users);
    online[sample.user] += sample.task_share;
  }
  TSF_CHECK_GT(samples_in_window, 0u)
      << "no fairness samples in [" << from << ", " << until
      << "] — was fairness_sample_interval set?";
  for (double& share : online)
    share /= static_cast<double>(samples_in_window);

  // Offline fair point of the same instance.
  SharingProblem problem;
  problem.cluster = workload.cluster;
  for (const SimJob& job : workload.jobs) problem.jobs.push_back(job.spec);
  const FillingResult offline = SolveTsf(Compile(problem));
  TSF_CHECK_EQ(offline.shares.size(), users);

  const double online_max = *std::max_element(online.begin(), online.end());
  const double offline_max =
      *std::max_element(offline.shares.begin(), offline.shares.end());
  TSF_CHECK_GT(offline_max, 0.0);
  if (online_max <= 0.0) return 1.0;  // nothing ran in the window
  double gap = 0.0;
  for (std::size_t u = 0; u < users; ++u)
    gap = std::max(gap, std::abs(online[u] / online_max -
                                 offline.shares[u] / offline_max));
  return gap;
}

}  // namespace tsf::chaos
