// Repro files: committed, replayable records of a failing chaos scenario.
//
// A repro carries everything needed to rebuild a failure from scratch: the
// substrate, the scenario seed (workload/cluster generators are
// seed-deterministic), the policy, the (shrunk) fault plan, and — for
// harness self-tests — which deliberately injected bug was armed. The text
// format is line-oriented and diff-friendly; tests/repros/*.txt are replayed
// by scenario_replay_test to keep shipped repros evergreen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/invariants.h"
#include "chaos/scenario.h"

namespace tsf::chaos {

struct Repro {
  // "des" (RandomChaosWorkload), "des-uniform" (RandomUniformChaosWorkload,
  // the class-collapsible clusters), or "mesos" (RandomMesosScenario).
  std::string substrate;
  std::uint64_t scenario_seed = 0;
  // DES: online policy name (FIFO/DRF/CDRF/CPU/Mem/TSF); Mesos: ignored
  // (the allocator policy is derived from the scenario seed).
  std::string policy = "TSF";
  std::string injected_bug = "none";  // "none" | "leak_task_on_crash"
  // DES machine-set representation the failure was observed under:
  // "auto" | "flat" | "collapsed" (sim/des.h ClusterMode). Serialized only
  // when not "auto", so pre-existing repro files parse unchanged.
  std::string cluster_mode = "auto";
  FaultPlan plan;
  // Informational: the first violation observed when the repro was minted.
  std::string violation;

  bool operator==(const Repro&) const = default;
};

std::string SerializeRepro(const Repro& repro);
// Parses the SerializeRepro format; TSF_CHECK-fails on malformed input.
Repro ParseRepro(const std::string& text);

// Rebuilds the scenario from the seed, arms the injected bug (and disarms
// it afterwards), runs the plan, and returns the full scenario report: the
// recorded event stream, its hash, and the violations observed. An intact
// repro reports a non-empty violation list iff a bug (injected or real) is
// still present; the stream is what tools/viz_repro renders.
ScenarioReport ReplayReproReport(const Repro& repro);

// Convenience wrapper: just the violations of ReplayReproReport.
std::vector<Violation> ReplayRepro(const Repro& repro);

}  // namespace tsf::chaos
