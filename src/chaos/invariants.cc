#include "chaos/invariants.h"

#include <bit>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <limits>
#include <map>
#include <set>
#include <sstream>

#include "util/check.h"

// The guided fuzzer's feedback instrumentation (ChaosCoverage). Each site
// costs one null check + shift/or; -DTSF_CHAOS_COVERAGE_OFF (CMake
// -DTSF_CHAOS_COVERAGE=OFF) compiles every site — and the derived-transition
// bookkeeping — out of the checker entirely.
#if !defined(TSF_CHAOS_COVERAGE_OFF)
#define TSF_CHAOS_COV(branch)                                          \
  do {                                                                 \
    if (coverage_ != nullptr) coverage_->Hit(CoverageBranch::branch);  \
  } while (0)
#else
#define TSF_CHAOS_COV(branch) \
  do {                        \
  } while (0)
#endif

namespace tsf::chaos {
namespace {

constexpr const char* kKindNames[] = {
    "arrive", "place",   "finish",     "kill",       "fail",
    "crash",  "restart", "disconnect", "reregister",
};

struct LiveTask {
  std::uint32_t user = 0;
  std::uint32_t machine = 0;
};

// Bundles the mutable shadow state so the per-kind handlers stay short.
class Checker {
 public:
  Checker(const ScenarioView& view, const std::vector<StreamEvent>& stream,
          ChaosCoverage* coverage)
      : view_(view), stream_(stream), coverage_(coverage) {
    TSF_CHECK_EQ(view.demand.size(), view.allowed.size());
    TSF_CHECK_EQ(view.demand.size(), view.num_tasks.size());
    free_ = view.capacity;
    up_.assign(view.capacity.size(), true);
    arrived_.assign(view.demand.size(), false);
    connected_.assign(view.demand.size(), true);
    finished_.assign(view.demand.size(), 0);
    for (const auto& allowed : view.allowed)
      TSF_CHECK_EQ(allowed.size(), view.capacity.size());
#if !defined(TSF_CHAOS_COVERAGE_OFF)
    restarted_.assign(view.capacity.size(), false);
    killed_on_.assign(view.capacity.size(), false);
#endif
  }

  std::vector<Violation> Run() {
    double prev_time = -std::numeric_limits<double>::infinity();
    for (index_ = 0; index_ < stream_.size(); ++index_) {
      const StreamEvent& event = stream_[index_];
      if (event.time < prev_time)
        Report(CoverageBranch::kClockRegression, "clock_regression", event.time,
               [&](std::ostream& out) {
                 out << ToString(event.kind) << " at t=" << event.time
                     << " after t=" << prev_time;
               });
      prev_time = std::max(prev_time, event.time);
      if (event.user >= view_.demand.size() &&
          RequiresUser(event.kind)) {
        Report(CoverageBranch::kUnknownUser, "unknown_user", event.time,
               [&](std::ostream& out) {
                 out << "user " << event.user << " out of range";
               });
        continue;
      }
      if (event.machine >= view_.capacity.size() &&
          RequiresMachine(event.kind)) {
        Report(CoverageBranch::kUnknownMachine, "unknown_machine", event.time,
               [&](std::ostream& out) {
                 out << "machine " << event.machine << " out of range";
               });
        continue;
      }
      Apply(event);
    }
    Finalize(prev_time);
    return std::move(violations_);
  }

 private:
  static bool RequiresUser(StreamEvent::Kind kind) {
    return kind != StreamEvent::Kind::kCrash &&
           kind != StreamEvent::Kind::kRestart;
  }
  static bool RequiresMachine(StreamEvent::Kind kind) {
    return kind == StreamEvent::Kind::kPlace ||
           kind == StreamEvent::Kind::kFinish ||
           kind == StreamEvent::Kind::kKill ||
           kind == StreamEvent::Kind::kFail ||
           kind == StreamEvent::Kind::kCrash ||
           kind == StreamEvent::Kind::kRestart;
  }

  // Every violation class doubles as a coverage branch: the guided fuzzer
  // learns to reach checker code paths whether or not they fire cleanly.
  template <class Fn>
  void Report(CoverageBranch branch, const char* invariant, double time,
              Fn&& detail) {
#if !defined(TSF_CHAOS_COVERAGE_OFF)
    if (coverage_ != nullptr) coverage_->Hit(branch);
#else
    (void)branch;
#endif
    Violation violation;
    violation.invariant = invariant;
    violation.time = time;
    violation.event_index = index_;
    std::ostringstream out;
    detail(out);
    violation.detail = out.str();
    violations_.push_back(std::move(violation));
  }

  void Apply(const StreamEvent& event) {
    const double t = event.time;
    switch (event.kind) {
      case StreamEvent::Kind::kArrive:
        if (arrived_[event.user])
          Report(CoverageBranch::kDuplicateArrival, "duplicate_arrival", t,
                 [&](std::ostream& out) {
                   out << "user " << event.user << " arrived twice";
                 });
        arrived_[event.user] = true;
        TSF_CHAOS_COV(kArriveOk);
        break;

      case StreamEvent::Kind::kPlace: {
        if (!arrived_[event.user])
          Report(CoverageBranch::kPlaceBeforeArrival, "place_before_arrival", t,
                 [&](std::ostream& out) {
                   out << "user " << event.user;
                 });
        if (!connected_[event.user])
          Report(CoverageBranch::kPlaceWhileDisconnected,
                 "place_while_disconnected", t, [&](std::ostream& out) {
                   out << "user " << event.user << " on machine "
                       << event.machine;
                 });
        if (!up_[event.machine])
          Report(CoverageBranch::kPlaceOnDownMachine,
                 "place_on_down_machine", t, [&](std::ostream& out) {
                   out << "user " << event.user << " task " << event.task
                       << " on machine " << event.machine;
                 });
        if (!view_.allowed[event.user][event.machine])
          Report(CoverageBranch::kWhitelistViolation, "whitelist_violation", t,
                 [&](std::ostream& out) {
                   out << "user " << event.user << " not allowed on machine "
                       << event.machine;
                 });
        const ResourceVector& demand = view_.demand[event.user];
        ResourceVector& room = free_[event.machine];
        for (std::size_t r = 0; r < demand.dimension(); ++r)
          if (demand[r] > room[r] + view_.tolerance) {
            Report(CoverageBranch::kOversubscription, "oversubscription", t,
                   [&](std::ostream& out) {
                     out << "machine " << event.machine << " resource " << r
                         << ": demand " << demand[r] << " > free " << room[r];
                   });
            break;
          }
        if (live_.count(event.task) != 0)
          Report(CoverageBranch::kDuplicateTaskId, "duplicate_task_id", t,
                 [&](std::ostream& out) {
                   out << "task " << event.task
                       << " placed while already live on "
                       << "machine " << live_[event.task].machine;
                 });
        room -= demand;
        live_[event.task] = LiveTask{event.user, event.machine};
        TSF_CHAOS_COV(kPlaceOk);
#if !defined(TSF_CHAOS_COVERAGE_OFF)
        if (coverage_ != nullptr) {
          if (restarted_[event.machine]) TSF_CHAOS_COV(kPlaceAfterRestart);
          if (requeued_.count(event.task) != 0)
            TSF_CHAOS_COV(kPlaceOfRequeuedTask);
          for (std::size_t m = 0; m < up_.size(); ++m)
            if (!up_[m]) {
              TSF_CHAOS_COV(kPlaceWhilePeerDown);
              break;
            }
        }
#endif
        break;
      }

      case StreamEvent::Kind::kFinish:
      case StreamEvent::Kind::kKill:
      case StreamEvent::Kind::kFail: {
        const char* verb = event.kind == StreamEvent::Kind::kFinish ? "finish"
                           : event.kind == StreamEvent::Kind::kKill ? "kill"
                                                                    : "fail";
        const auto it = live_.find(event.task);
        if (it == live_.end()) {
          Report(CoverageBranch::kGhostTask, "ghost_task", t,
                 [&](std::ostream& out) {
                   out << verb << " of task " << event.task
                       << " that is not live";
                 });
          break;
        }
        if (it->second.machine != event.machine ||
            it->second.user != event.user)
          Report(CoverageBranch::kTaskIdentityMismatch,
                 "task_identity_mismatch", t, [&](std::ostream& out) {
                   out << verb << " of task " << event.task << " on machine "
                       << event.machine << " user " << event.user
                       << " but it is live on machine " << it->second.machine
                       << " for user " << it->second.user;
                 });
        if (event.kind == StreamEvent::Kind::kFinish && !up_[event.machine])
          Report(CoverageBranch::kFinishOnDownMachine,
                 "finish_on_down_machine", t, [&](std::ostream& out) {
                   out << "task " << event.task << " finished on down machine "
                       << event.machine;
                 });
        ResourceVector& room = free_[event.machine];
        room += view_.demand[event.user];
        const ResourceVector& cap = view_.capacity[event.machine];
        for (std::size_t r = 0; r < cap.dimension(); ++r)
          if (room[r] > cap[r] + view_.tolerance) {
            Report(CoverageBranch::kFreeCapacityOverflow,
                   "free_capacity_overflow", t, [&](std::ostream& out) {
                     out << "machine " << event.machine << " resource " << r
                         << ": free " << room[r] << " > capacity " << cap[r];
                   });
            break;
          }
        if (event.kind == StreamEvent::Kind::kFinish)
          ++finished_[event.user];
        live_.erase(it);
#if !defined(TSF_CHAOS_COVERAGE_OFF)
        if (coverage_ != nullptr) {
          switch (event.kind) {
            case StreamEvent::Kind::kFinish:
              TSF_CHAOS_COV(kFinishOk);
              if (requeued_.count(event.task) != 0)
                TSF_CHAOS_COV(kFinishOfRequeuedTask);
              break;
            case StreamEvent::Kind::kKill:
              TSF_CHAOS_COV(kKillOk);
              requeued_.insert(event.task);
              killed_on_[event.machine] = true;
              break;
            default:
              TSF_CHAOS_COV(kFailOk);
              requeued_.insert(event.task);
              break;
          }
        }
#endif
        break;
      }

      case StreamEvent::Kind::kCrash: {
        if (!up_[event.machine])
          Report(CoverageBranch::kCrashOfDownMachine,
                 "crash_of_down_machine", t, [&](std::ostream& out) {
                   out << "machine " << event.machine;
                 });
        // Every task the stream showed running here must have been killed
        // (kKill) before the crash; a survivor is a leaked task — the
        // defect InjectedBug::kLeakTaskOnCrash plants.
        for (const auto& [task, lt] : live_)
          if (lt.machine == event.machine)
            Report(CoverageBranch::kTaskSurvivedCrash, "task_survived_crash", t,
                   [&, task = task, lt = lt](std::ostream& out) {
                     out << "task " << task << " of user " << lt.user
                         << " still live on crashed machine " << event.machine;
                   });
        up_[event.machine] = false;
        TSF_CHAOS_COV(kCrashOk);
#if !defined(TSF_CHAOS_COVERAGE_OFF)
        if (coverage_ != nullptr) {
          // The kills a crash triggers precede the crash in the stream, so
          // this bit marks a crash that actually disrupted running work —
          // the interleaving the leak-class bugs need.
          if (killed_on_[event.machine]) TSF_CHAOS_COV(kCrashWithPriorKills);
          killed_on_[event.machine] = false;
        }
#endif
        break;
      }

      case StreamEvent::Kind::kRestart:
        if (up_[event.machine])
          Report(CoverageBranch::kRestartOfUpMachine,
                 "restart_of_up_machine", t, [&](std::ostream& out) {
                   out << "machine " << event.machine;
                 });
        up_[event.machine] = true;
        free_[event.machine] = view_.capacity[event.machine];
        TSF_CHAOS_COV(kRestartOk);
#if !defined(TSF_CHAOS_COVERAGE_OFF)
        restarted_[event.machine] = true;
#endif
        break;

      case StreamEvent::Kind::kDisconnect:
        if (!connected_[event.user])
          Report(CoverageBranch::kDuplicateDisconnect,
                 "duplicate_disconnect", t, [&](std::ostream& out) {
                   out << "user " << event.user;
                 });
        connected_[event.user] = false;
        TSF_CHAOS_COV(kDisconnectOk);
        break;

      case StreamEvent::Kind::kReregister:
        if (connected_[event.user])
          Report(CoverageBranch::kReregisterWhileConnected,
                 "reregister_while_connected", t, [&](std::ostream& out) {
                   out << "user " << event.user;
                 });
        connected_[event.user] = true;
        TSF_CHAOS_COV(kReregisterOk);
        break;
    }
  }

  void Finalize(double end_time) {
    index_ = stream_.size();
    for (const auto& [task, lt] : live_)
      Report(CoverageBranch::kLeakedTask, "leaked_task", end_time,
             [&, task = task, lt = lt](std::ostream& out) {
               out << "task " << task << " of user " << lt.user
                   << " still live on machine " << lt.machine
                   << " at end of stream";
             });
    for (std::size_t u = 0; u < finished_.size(); ++u)
      if (finished_[u] != view_.num_tasks[u])
        Report(CoverageBranch::kIncompleteUser, "incomplete_user", end_time,
               [&](std::ostream& out) {
                 out << "user " << u << " finished " << finished_[u] << " of "
                     << view_.num_tasks[u] << " tasks";
               });
    for (std::size_t m = 0; m < free_.size(); ++m) {
      if (!up_[m]) {
        Report(CoverageBranch::kMachineLeftDown, "machine_left_down", end_time,
               [&](std::ostream& out) {
                 out << "machine " << m << " still down at end of stream";
               });
        continue;
      }
      const ResourceVector& cap = view_.capacity[m];
      for (std::size_t r = 0; r < cap.dimension(); ++r)
        if (std::abs(free_[m][r] - cap[r]) > view_.tolerance) {
          Report(CoverageBranch::kConservation, "conservation", end_time,
                 [&](std::ostream& out) {
                   out << "machine " << m << " resource " << r << ": free "
                       << free_[m][r] << " != capacity " << cap[r]
                       << " after quiescence";
                 });
          break;
        }
    }
  }

  const ScenarioView& view_;
  const std::vector<StreamEvent>& stream_;
  std::size_t index_ = 0;
  std::vector<ResourceVector> free_;
  std::vector<bool> up_;
  std::vector<bool> arrived_;
  std::vector<bool> connected_;
  std::vector<long> finished_;
  // Ordered by task id on purpose: the crash-survivor and leaked-task sweeps
  // below iterate this map to emit violations, and violation order is part of
  // the harness's deterministic contract (repro files and shrinking diff
  // against it). An unordered_map would tie report order to the hash seed /
  // stdlib implementation.
  std::map<std::uint32_t, LiveTask> live_;
  std::vector<Violation> violations_;
#if !defined(TSF_CHAOS_COVERAGE_OFF)
  std::vector<bool> restarted_;        // machine restarted at least once
  std::vector<bool> killed_on_;        // kills since the machine's last crash
  std::set<std::uint32_t> requeued_;   // task ids seen in a kill/fail
#endif
  ChaosCoverage* coverage_ = nullptr;
};

}  // namespace

std::string ToString(StreamEvent::Kind kind) {
  const auto index = static_cast<std::size_t>(kind);
  TSF_CHECK_LT(index, std::size(kKindNames));
  return kKindNames[index];
}

std::string FormatStreamEvent(const StreamEvent& event) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "t=%.17g %s user=%u task=%u machine=%u", event.time,
                ToString(event.kind).c_str(), event.user, event.task,
                event.machine);
  return buffer;
}

std::uint64_t HashStream(const std::vector<StreamEvent>& stream) {
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  auto mix = [&hash](const char* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= static_cast<unsigned char>(data[i]);
      hash *= 1099511628211ull;  // FNV prime
    }
  };
  for (const StreamEvent& event : stream) {
    const std::string line = FormatStreamEvent(event);
    mix(line.data(), line.size());
    mix("\n", 1);
  }
  return hash;
}

std::string ToString(const Violation& violation) {
  std::ostringstream out;
  out << "[" << violation.invariant << "] t=" << violation.time << " event #"
      << violation.event_index << ": " << violation.detail;
  return out.str();
}

std::size_t ChaosCoverage::Count() const {
  return static_cast<std::size_t>(std::popcount(bits_));
}

std::vector<Violation> CheckStream(const ScenarioView& view,
                                   const std::vector<StreamEvent>& stream,
                                   ChaosCoverage* coverage) {
  return Checker(view, stream, coverage).Run();
}

std::vector<Violation> CheckStream(const ScenarioView& view,
                                   const std::vector<StreamEvent>& stream) {
  return CheckStream(view, stream, nullptr);
}

}  // namespace tsf::chaos
