#include "chaos/shrink.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace tsf::chaos {
namespace {

// An atom is the indices (into the original plan) of events that must be
// kept or removed together.
using Atom = std::vector<std::size_t>;

std::vector<Atom> BuildAtoms(const FaultPlan& plan) {
  const std::vector<FaultSpec>& events = plan.events;
  std::vector<bool> used(events.size(), false);
  std::vector<Atom> atoms;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    Atom atom{i};
    const FaultKind opener = events[i].kind;
    const FaultKind closer =
        opener == FaultKind::kMachineCrash     ? FaultKind::kMachineRestart
        : opener == FaultKind::kFrameworkDisconnect
            ? FaultKind::kFrameworkReregister
            : opener;  // self: no pairing
    if (closer != opener) {
      bool paired = false;
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (used[j] || events[j].kind != closer ||
            events[j].target != events[i].target)
          continue;
        used[j] = true;
        atom.push_back(j);
        paired = true;
        break;
      }
      TSF_CHECK(paired) << "unpaired " << ToString(opener) << " at event "
                        << i << " — validate the plan before shrinking";
    }
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

FaultPlan PlanFromAtoms(const FaultPlan& plan, const std::vector<Atom>& atoms) {
  std::vector<std::size_t> keep;
  for (const Atom& atom : atoms)
    keep.insert(keep.end(), atom.begin(), atom.end());
  std::sort(keep.begin(), keep.end());
  FaultPlan subset;
  subset.events.reserve(keep.size());
  for (const std::size_t i : keep) subset.events.push_back(plan.events[i]);
  return subset;
}

}  // namespace

ShrinkResult ShrinkFaultPlan(const FaultPlan& plan,
                             const PlanPredicate& still_fails) {
  ShrinkResult result;
  auto fails = [&](const std::vector<Atom>& atoms) {
    ++result.predicate_calls;
    return still_fails(PlanFromAtoms(plan, atoms));
  };

  std::vector<Atom> current = BuildAtoms(plan);
  TSF_CHECK(fails(current)) << "plan does not fail before shrinking";

  // ddmin: try dropping ever-finer chunks of atoms; whenever a complement
  // still fails, recurse on it. Terminates at a 1-minimal atom set.
  std::size_t granularity = std::min<std::size_t>(2, current.size());
  while (current.size() >= 2) {
    const std::size_t chunk =
        (current.size() + granularity - 1) / granularity;
    bool reduced = false;
    for (std::size_t start = 0; start < current.size(); start += chunk) {
      std::vector<Atom> complement;
      complement.reserve(current.size());
      for (std::size_t a = 0; a < current.size(); ++a)
        if (a < start || a >= start + chunk) complement.push_back(current[a]);
      if (complement.empty()) continue;
      if (fails(complement)) {
        current = std::move(complement);
        granularity = std::max<std::size_t>(
            2, std::min(granularity - 1, current.size()));
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= current.size()) break;  // 1-minimal
      granularity = std::min(granularity * 2, current.size());
    }
  }

  result.plan = PlanFromAtoms(plan, current);
  return result;
}

}  // namespace tsf::chaos
