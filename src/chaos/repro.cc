#include "chaos/repro.h"

#include <sstream>

#include "chaos/scenario.h"
#include "util/check.h"

namespace tsf::chaos {
namespace {

constexpr const char* kHeader = "tsf-chaos-repro v1";

ClusterMode ModeFromString(const std::string& name) {
  if (name == "auto") return ClusterMode::kAuto;
  if (name == "flat") return ClusterMode::kFlat;
  if (name == "collapsed") return ClusterMode::kCollapsed;
  TSF_CHECK(false) << "unknown cluster mode '" << name << "'";
  return ClusterMode::kAuto;
}

bool IsDesSubstrate(const std::string& substrate) {
  return substrate == "des" || substrate == "des-uniform";
}

mesos::InjectedBug BugFromString(const std::string& name) {
  if (name == "none") return mesos::InjectedBug::kNone;
  if (name == "leak_task_on_crash")
    return mesos::InjectedBug::kLeakTaskOnCrash;
  TSF_CHECK(false) << "unknown injected bug '" << name << "'";
  return mesos::InjectedBug::kNone;
}

// Scoped arm/disarm so a replay cannot leave the bug switch set.
class ScopedInjectedBug {
 public:
  explicit ScopedInjectedBug(mesos::InjectedBug bug) {
    mesos::SetInjectedBugForTesting(bug);
  }
  ~ScopedInjectedBug() {
    mesos::SetInjectedBugForTesting(mesos::InjectedBug::kNone);
  }
  ScopedInjectedBug(const ScopedInjectedBug&) = delete;
  ScopedInjectedBug& operator=(const ScopedInjectedBug&) = delete;
};

}  // namespace

std::string SerializeRepro(const Repro& repro) {
  TSF_CHECK(IsDesSubstrate(repro.substrate) || repro.substrate == "mesos")
      << "unknown substrate '" << repro.substrate << "'";
  std::ostringstream out;
  out << kHeader << "\n";
  out << "substrate " << repro.substrate << "\n";
  out << "seed " << repro.scenario_seed << "\n";
  out << "policy " << repro.policy << "\n";
  out << "bug " << repro.injected_bug << "\n";
  if (repro.cluster_mode != "auto")
    out << "mode " << repro.cluster_mode << "\n";
  if (!repro.violation.empty()) out << "violation " << repro.violation << "\n";
  out << SerializeFaultPlan(repro.plan);
  return out.str();
}

Repro ParseRepro(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  TSF_CHECK(std::getline(in, line) && line == kHeader)
      << "not a chaos repro file (expected '" << kHeader << "')";
  Repro repro;
  std::string plan_text;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head.empty()) continue;
    if (head == "substrate") {
      fields >> repro.substrate;
    } else if (head == "seed") {
      fields >> repro.scenario_seed;
    } else if (head == "policy") {
      fields >> repro.policy;
    } else if (head == "bug") {
      fields >> repro.injected_bug;
    } else if (head == "mode") {
      fields >> repro.cluster_mode;
    } else if (head == "violation") {
      // The remainder of the line, spaces included.
      std::getline(fields >> std::ws, repro.violation);
    } else if (head == "fault") {
      plan_text += line;
      plan_text += "\n";
    } else {
      TSF_CHECK(false) << "unknown repro field '" << head << "'";
    }
  }
  TSF_CHECK(IsDesSubstrate(repro.substrate) || repro.substrate == "mesos")
      << "repro missing/invalid substrate";
  repro.plan = ParseFaultPlan(plan_text);
  return repro;
}

ScenarioReport ReplayReproReport(const Repro& repro) {
  const ScopedInjectedBug armed(BugFromString(repro.injected_bug));
  if (IsDesSubstrate(repro.substrate)) {
    const Workload workload =
        repro.substrate == "des-uniform"
            ? RandomUniformChaosWorkload(repro.scenario_seed)
            : RandomChaosWorkload(repro.scenario_seed);
    for (const OnlinePolicy& policy : AllOnlinePolicies())
      if (policy.name == repro.policy)
        return RunDesScenario(workload, policy, repro.plan,
                              SimCore::kIncremental,
                              ModeFromString(repro.cluster_mode));
    TSF_CHECK(false) << "unknown policy '" << repro.policy << "'";
    return {};
  }
  TSF_CHECK_EQ(repro.substrate, "mesos");
  MesosScenario scenario = RandomMesosScenario(repro.scenario_seed);
  scenario.plan = repro.plan;
  return RunMesosScenario(scenario);
}

std::vector<Violation> ReplayRepro(const Repro& repro) {
  return ReplayReproReport(repro).violations;
}

}  // namespace tsf::chaos
