#include "chaos/fault_plan.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"
#include "util/rng.h"

namespace tsf::chaos {
namespace {

constexpr struct {
  FaultKind kind;
  const char* token;
} kKindTokens[] = {
    {FaultKind::kMachineCrash, "crash"},
    {FaultKind::kMachineRestart, "restart"},
    {FaultKind::kTaskFailure, "task_failure"},
    {FaultKind::kOfferDrop, "offer_drop"},
    {FaultKind::kOfferRescind, "offer_rescind"},
    {FaultKind::kDeclineTimeout, "decline_timeout"},
    {FaultKind::kFrameworkDisconnect, "disconnect"},
    {FaultKind::kFrameworkReregister, "reregister"},
};

bool IsMachineKind(FaultKind kind) { return IsMachineFault(kind); }

// Round-tripping double format (shortest exact form).
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string ToString(FaultKind kind) {
  for (const auto& entry : kKindTokens)
    if (entry.kind == kind) return entry.token;
  TSF_CHECK(false) << "unknown FaultKind " << static_cast<int>(kind);
  return {};
}

FaultKind FaultKindFromString(const std::string& token) {
  for (const auto& entry : kKindTokens)
    if (token == entry.token) return entry.kind;
  TSF_CHECK(false) << "unknown fault kind token '" << token << "'";
  return FaultKind::kMachineCrash;
}

bool IsMachineFault(FaultKind kind) {
  return kind == FaultKind::kMachineCrash ||
         kind == FaultKind::kMachineRestart ||
         kind == FaultKind::kTaskFailure;
}

FaultPlan RandomFaultPlan(const FaultPlanShape& shape, std::uint64_t seed) {
  TSF_CHECK_GT(shape.num_machines, 0u);
  TSF_CHECK_LT(shape.earliest, shape.horizon);
  TSF_CHECK_GT(shape.mean_outage, 0.0);
  Rng rng(seed);
  FaultPlan plan;

  // Per-target earliest time the next outage may start (windows of one
  // target never overlap), and every generated machine-outage window, so a
  // new crash can be rejected if it would take the whole cluster down.
  std::vector<double> machine_free(shape.num_machines, shape.earliest);
  std::vector<double> framework_free(shape.num_frameworks, shape.earliest);
  struct Outage {
    double start = 0.0, end = 0.0;
    std::size_t machine = 0;
  };
  std::vector<Outage> outages;

  const auto atoms = static_cast<std::size_t>(
      rng.Int(1, static_cast<std::int64_t>(std::max<std::size_t>(
                     shape.max_atoms, 1))));
  for (std::size_t a = 0; a < atoms; ++a) {
    const double pick = rng.Uniform();
    const bool mesos = shape.num_frameworks > 0;
    if (!mesos ? pick < 0.55 : pick < 0.30) {
      // Crash + restart pair.
      const auto m = static_cast<std::size_t>(rng.Below(shape.num_machines));
      if (machine_free[m] >= shape.horizon) continue;
      const double start = rng.Uniform(machine_free[m], shape.horizon);
      const double duration = rng.Uniform(0.5, 2.0 * shape.mean_outage);
      const double end = start + duration;
      // Reject if at any point of [start, end] every other machine is also
      // down — a whole-cluster blackout stalls the run without testing
      // anything the partial outages don't.
      std::size_t concurrent = 0;
      for (const Outage& o : outages)
        if (o.machine != m && o.start < end && start < o.end) ++concurrent;
      if (concurrent + 1 >= shape.num_machines) continue;
      plan.events.push_back({start, FaultKind::kMachineCrash, m, 0.0});
      plan.events.push_back({end, FaultKind::kMachineRestart, m, 0.0});
      outages.push_back({start, end, m});
      machine_free[m] = end + 0.25;
    } else if (!mesos || pick < 0.50) {
      // Single task failure (a no-op if the machine is down or idle).
      const auto m = static_cast<std::size_t>(rng.Below(shape.num_machines));
      plan.events.push_back({rng.Uniform(shape.earliest, shape.horizon),
                             FaultKind::kTaskFailure, m, 0.0});
    } else if (pick < 0.70) {
      // Disconnect + re-register pair.
      const auto f = static_cast<std::size_t>(rng.Below(shape.num_frameworks));
      if (framework_free[f] >= shape.horizon) continue;
      const double start = rng.Uniform(framework_free[f], shape.horizon);
      const double end = start + rng.Uniform(0.5, 2.0 * shape.mean_outage);
      plan.events.push_back({start, FaultKind::kFrameworkDisconnect, f, 0.0});
      plan.events.push_back({end, FaultKind::kFrameworkReregister, f, 0.0});
      framework_free[f] = end + 0.25;
    } else {
      // Single offer-level fault.
      const auto f = static_cast<std::size_t>(rng.Below(shape.num_frameworks));
      const double t = rng.Uniform(shape.earliest, shape.horizon);
      if (pick < 0.80) {
        plan.events.push_back({t, FaultKind::kOfferDrop, f,
                               static_cast<double>(rng.Int(1, 3))});
      } else if (pick < 0.90) {
        plan.events.push_back({t, FaultKind::kOfferRescind, f, 0.0});
      } else {
        plan.events.push_back({t, FaultKind::kDeclineTimeout, f,
                               rng.Uniform(0.5, shape.mean_outage)});
      }
    }
  }

  std::stable_sort(plan.events.begin(), plan.events.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.time < b.time;
                   });
  TSF_CHECK(ValidateFaultPlan(plan, shape.num_machines, shape.num_frameworks)
                .empty());
  return plan;
}

std::string ValidateFaultPlan(const FaultPlan& plan, std::size_t num_machines,
                              std::size_t num_frameworks) {
  std::ostringstream error;
  std::vector<bool> down(num_machines, false);
  std::vector<bool> disconnected(num_frameworks, false);
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultSpec& fault = plan.events[i];
    if (i > 0 && fault.time < plan.events[i - 1].time) {
      error << "event " << i << ": times not sorted";
      return error.str();
    }
    if (IsMachineKind(fault.kind)) {
      if (fault.target >= num_machines) {
        error << "event " << i << ": machine target " << fault.target
              << " out of range";
        return error.str();
      }
    } else {
      if (fault.target >= num_frameworks) {
        error << "event " << i << ": framework target " << fault.target
              << " out of range (or Mesos-only fault in a DES plan)";
        return error.str();
      }
    }
    switch (fault.kind) {
      case FaultKind::kMachineCrash:
        if (down[fault.target]) {
          error << "event " << i << ": crash of already-down machine "
                << fault.target;
          return error.str();
        }
        down[fault.target] = true;
        break;
      case FaultKind::kMachineRestart:
        if (!down[fault.target]) {
          error << "event " << i << ": restart of up machine " << fault.target;
          return error.str();
        }
        down[fault.target] = false;
        break;
      case FaultKind::kFrameworkDisconnect:
        if (disconnected[fault.target]) {
          error << "event " << i << ": disconnect of disconnected framework "
                << fault.target;
          return error.str();
        }
        disconnected[fault.target] = true;
        break;
      case FaultKind::kFrameworkReregister:
        if (!disconnected[fault.target]) {
          error << "event " << i << ": re-register of connected framework "
                << fault.target;
          return error.str();
        }
        disconnected[fault.target] = false;
        break;
      case FaultKind::kDeclineTimeout:
        if (fault.param <= 0.0) {
          error << "event " << i << ": decline-timeout window must be > 0";
          return error.str();
        }
        break;
      case FaultKind::kTaskFailure:
      case FaultKind::kOfferDrop:
      case FaultKind::kOfferRescind:
        break;
    }
  }
  for (std::size_t m = 0; m < num_machines; ++m)
    if (down[m]) {
      error << "machine " << m << " is crashed and never restarted";
      return error.str();
    }
  for (std::size_t f = 0; f < num_frameworks; ++f)
    if (disconnected[f]) {
      error << "framework " << f << " is disconnected and never re-registers";
      return error.str();
    }
  return {};
}

std::string SerializeFaultPlan(const FaultPlan& plan) {
  std::ostringstream out;
  for (const FaultSpec& fault : plan.events)
    out << "fault " << ToString(fault.kind) << " t=" << FormatDouble(fault.time)
        << " target=" << fault.target << " param=" << FormatDouble(fault.param)
        << "\n";
  return out.str();
}

std::uint64_t HashFaultPlan(const FaultPlan& plan) {
  const std::string text = SerializeFaultPlan(plan);
  std::uint64_t hash = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;  // FNV prime
  }
  return hash;
}

FaultPlan ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head != "fault") continue;
    std::string kind, time_field, target_field, param_field;
    fields >> kind >> time_field >> target_field >> param_field;
    TSF_CHECK(time_field.rfind("t=", 0) == 0 &&
              target_field.rfind("target=", 0) == 0 &&
              param_field.rfind("param=", 0) == 0)
        << "malformed fault line: " << line;
    FaultSpec fault;
    fault.kind = FaultKindFromString(kind);
    fault.time = std::stod(time_field.substr(2));
    fault.target = static_cast<std::size_t>(std::stoul(target_field.substr(7)));
    fault.param = std::stod(param_field.substr(6));
    plan.events.push_back(fault);
  }
  return plan;
}

std::vector<SimFault> CompileForDes(const FaultPlan& plan) {
  std::vector<SimFault> faults;
  faults.reserve(plan.events.size());
  for (const FaultSpec& fault : plan.events) {
    TSF_CHECK(IsMachineKind(fault.kind))
        << "Mesos-only fault '" << ToString(fault.kind) << "' in a DES plan";
    SimFault compiled;
    compiled.time = fault.time;
    compiled.machine = fault.target;
    switch (fault.kind) {
      case FaultKind::kMachineCrash:
        compiled.kind = SimFault::Kind::kMachineCrash;
        break;
      case FaultKind::kMachineRestart:
        compiled.kind = SimFault::Kind::kMachineRestart;
        break;
      default:
        compiled.kind = SimFault::Kind::kTaskFailure;
        break;
    }
    faults.push_back(compiled);
  }
  return faults;
}

std::vector<mesos::Fault> CompileForMesos(const FaultPlan& plan) {
  std::vector<mesos::Fault> faults;
  faults.reserve(plan.events.size());
  for (const FaultSpec& fault : plan.events) {
    mesos::Fault compiled;
    compiled.time = fault.time;
    compiled.target = fault.target;
    compiled.param = fault.param;
    switch (fault.kind) {
      case FaultKind::kMachineCrash:
        compiled.kind = mesos::Fault::Kind::kSlaveCrash;
        break;
      case FaultKind::kMachineRestart:
        compiled.kind = mesos::Fault::Kind::kSlaveRestart;
        break;
      case FaultKind::kTaskFailure:
        compiled.kind = mesos::Fault::Kind::kTaskFailure;
        break;
      case FaultKind::kOfferDrop:
        compiled.kind = mesos::Fault::Kind::kOfferDrop;
        break;
      case FaultKind::kOfferRescind:
        compiled.kind = mesos::Fault::Kind::kOfferRescind;
        break;
      case FaultKind::kDeclineTimeout:
        compiled.kind = mesos::Fault::Kind::kDeclineTimeout;
        break;
      case FaultKind::kFrameworkDisconnect:
        compiled.kind = mesos::Fault::Kind::kFrameworkDisconnect;
        break;
      case FaultKind::kFrameworkReregister:
        compiled.kind = mesos::Fault::Kind::kFrameworkReregister;
        break;
    }
    faults.push_back(compiled);
  }
  return faults;
}

}  // namespace tsf::chaos
