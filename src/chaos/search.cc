#include "chaos/search.h"

#include <algorithm>
#include <bit>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <utility>

#include "chaos/mutate.h"
#include "chaos/scenario.h"
#include "util/check.h"
#include "util/rng.h"

namespace tsf::chaos {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t FnvString(std::uint64_t hash, const std::string& text) {
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

bool IsDesSubstrate(const std::string& substrate) {
  return substrate == "des" || substrate == "des-uniform";
}

ClusterMode ModeFromString(const std::string& name) {
  if (name == "auto") return ClusterMode::kAuto;
  if (name == "flat") return ClusterMode::kFlat;
  if (name == "collapsed") return ClusterMode::kCollapsed;
  TSF_CHECK(false) << "unknown cluster mode '" << name << "'";
  return ClusterMode::kAuto;
}

// The lane set of a substrate selector ("both" matches the blind fuzzer's
// three lanes).
std::vector<std::string> LanesOf(const std::string& substrate) {
  if (substrate == "both") return {"des", "des-uniform", "mesos"};
  TSF_CHECK(IsDesSubstrate(substrate) || substrate == "mesos")
      << "unknown substrate '" << substrate << "'";
  return {substrate};
}

// Rebuilds and caches the seed-deterministic scenarios entries refer to, and
// runs one repro with the feedback taps armed. Caching matters: every
// mutant of one parent re-uses the parent's workload, and rebuilding the
// workload per execution would dominate the search loop.
class Runner {
 public:
  explicit Runner(const SearchOptions& options)
      : options_(options), policies_(AllOnlinePolicies()) {}

  const DesScenario& DesFor(const std::string& substrate, std::uint64_t seed) {
    TSF_CHECK(IsDesSubstrate(substrate));
    std::map<std::uint64_t, DesScenario>& cache = des_cache_[substrate];
    auto it = cache.find(seed);
    if (it == cache.end())
      it = cache
               .emplace(seed, substrate == "des-uniform"
                                  ? RandomUniformDesScenario(seed)
                                  : RandomDesScenario(seed))
               .first;
    return it->second;
  }

  const MesosScenario& MesosFor(std::uint64_t seed) {
    auto it = mesos_cache_.find(seed);
    if (it == mesos_cache_.end())
      it = mesos_cache_.emplace(seed, RandomMesosScenario(seed)).first;
    return it->second;
  }

  // The base plan the lane's scenario generator would have used.
  const FaultPlan& BasePlan(const std::string& lane, std::uint64_t seed) {
    return IsDesSubstrate(lane) ? DesFor(lane, seed).plan
                                : MesosFor(seed).plan;
  }

  // The mutation envelope of a repro's scenario (mirrors the generator
  // shapes of scenario.cc, with the search's own atom cap).
  MutationShape ShapeFor(const Repro& repro) {
    MutationShape shape;
    if (IsDesSubstrate(repro.substrate)) {
      shape.num_machines = DesFor(repro.substrate, repro.scenario_seed)
                               .workload.cluster.num_machines();
      shape.num_frameworks = 0;
      shape.earliest = 1.0;
    } else {
      const MesosScenario& scenario = MesosFor(repro.scenario_seed);
      shape.num_machines = scenario.config.slaves.size();
      shape.num_frameworks = scenario.frameworks.size();
      shape.earliest = 6.0;  // after every framework has registered
    }
    shape.horizon = 40.0;
    shape.mean_outage = 6.0;
    shape.max_atoms = options_.max_atoms;
    return shape;
  }

  ScenarioReport Run(const Repro& repro) {
    ScenarioRunOptions run;
    run.coverage = true;
    if (IsDesSubstrate(repro.substrate)) {
      run.cluster_mode = ModeFromString(repro.cluster_mode);
      run.fairness_sample_interval = options_.fairness_sample_interval;
      return RunDesScenario(DesFor(repro.substrate, repro.scenario_seed)
                                .workload,
                            PolicyNamed(repro.policy), repro.plan, run);
    }
    TSF_CHECK_EQ(repro.substrate, "mesos");
    MesosScenario scenario = MesosFor(repro.scenario_seed);
    scenario.plan = repro.plan;
    return RunMesosScenario(scenario, run);
  }

 private:
  const OnlinePolicy& PolicyNamed(const std::string& name) const {
    for (const OnlinePolicy& policy : policies_)
      if (policy.name == name) return policy;
    TSF_CHECK(false) << "unknown policy '" << name << "'";
    return policies_.front();
  }

  const SearchOptions& options_;
  const std::vector<OnlinePolicy> policies_;
  std::map<std::string, std::map<std::uint64_t, DesScenario>> des_cache_;
  std::map<std::uint64_t, MesosScenario> mesos_cache_;
};

class FifoFrontier : public Frontier {
 public:
  void Push(std::size_t entry, double) override { entries_.push_back(entry); }
  std::size_t Pop() override {
    TSF_CHECK(!entries_.empty()) << "pop of an empty frontier";
    const std::size_t entry = entries_.front();
    entries_.pop_front();
    return entry;
  }
  bool Empty() const override { return entries_.empty(); }

 private:
  std::deque<std::size_t> entries_;
};

class LifoFrontier : public Frontier {
 public:
  void Push(std::size_t entry, double) override { entries_.push_back(entry); }
  std::size_t Pop() override {
    TSF_CHECK(!entries_.empty()) << "pop of an empty frontier";
    const std::size_t entry = entries_.back();
    entries_.pop_back();
    return entry;
  }
  bool Empty() const override { return entries_.empty(); }

 private:
  std::vector<std::size_t> entries_;
};

// Max-heap on score, FIFO among equal scores. std::set iterates in sorted
// order, so Pop (= *begin) is deterministic: highest score first, lowest
// push sequence number on ties.
class ScoreFrontier : public Frontier {
 public:
  void Push(std::size_t entry, double score) override {
    entries_.emplace(-score, sequence_++, entry);
  }
  std::size_t Pop() override {
    TSF_CHECK(!entries_.empty()) << "pop of an empty frontier";
    const std::size_t entry = std::get<2>(*entries_.begin());
    entries_.erase(entries_.begin());
    return entry;
  }
  bool Empty() const override { return entries_.empty(); }

 private:
  std::set<std::tuple<double, std::uint64_t, std::size_t>> entries_;
  std::uint64_t sequence_ = 0;
};

// The "score" heuristic: new coverage dominates, then breadth of coverage
// and fairness degradation, with a mild bias toward smaller plans (cheaper
// to run and to shrink).
double ScoreOf(const CorpusEntry& entry) {
  double score =
      10.0 * static_cast<double>(std::popcount(entry.new_bits)) +
      static_cast<double>(entry.coverage.Count());
  if (entry.fairness_gap >= 0.0) score += 10.0 * entry.fairness_gap;
  score -= 0.1 * static_cast<double>(entry.repro.plan.events.size());
  return score;
}

}  // namespace

std::uint64_t InterleavingSignature(const std::vector<StreamEvent>& stream) {
  std::uint64_t hash = kFnvOffset;
  std::uint64_t places = 0;
  for (const StreamEvent& event : stream) {
    switch (event.kind) {
      case StreamEvent::Kind::kPlace:
        ++places;
        continue;
      case StreamEvent::Kind::kArrive:
      case StreamEvent::Kind::kFinish:
        continue;  // steady-state progress carries no disruption ordering
      default:
        break;
    }
    hash = FnvMix(hash, static_cast<std::uint64_t>(event.kind));
    hash = FnvMix(hash, std::bit_width(places));
    places = 0;
  }
  return FnvMix(hash, std::bit_width(places));
}

std::unique_ptr<Frontier> MakeFrontier(const std::string& heuristic) {
  if (heuristic == "bfs") return std::make_unique<FifoFrontier>();
  if (heuristic == "dfs") return std::make_unique<LifoFrontier>();
  if (heuristic == "score") return std::make_unique<ScoreFrontier>();
  TSF_CHECK(false) << "unknown frontier heuristic '" << heuristic << "'";
  return nullptr;
}

SearchResult RunGuidedSearch(const SearchOptions& options) {
  TSF_CHECK_GT(options.max_execs, 0u);
  TSF_CHECK_GT(options.mutations_per_parent, 0u);
  TSF_CHECK_GT(options.max_atoms, 0u);
  ModeFromString(options.cluster_mode);  // validates the name
  const std::vector<std::string> lanes = LanesOf(options.substrate);
  // One frontier per lane, serviced round-robin: a lane whose entries score
  // high (the DES lanes carry a fairness-gap bonus the Mesos lane cannot
  // earn) must not starve the others — the corpus should stay balanced
  // across substrates.
  std::map<std::string, std::unique_ptr<Frontier>> frontiers;
  for (const std::string& lane : lanes)
    frontiers.emplace(lane, MakeFrontier(options.heuristic));
  Runner runner(options);
  Rng rng(options.search_seed);

  SearchResult result;
  result.frontier_hash = kFnvOffset;
  std::set<std::uint64_t> seen_plans;
  std::set<std::uint64_t> seen_novelty;
  int max_gap_decile = -1;
  bool stop = false;

  // Runs one repro and applies the admission test. Sets `stop` on a
  // violation under stop_on_violation; violating plans are recorded but
  // never admitted (the committed corpus must replay violation-free).
  const auto execute = [&](const Repro& repro) {
    const ScenarioReport report = runner.Run(repro);
    ++result.executions;
    const std::uint64_t new_bits = result.coverage.NovelBits(report.coverage);
    result.coverage.Merge(report.coverage);
    if (!report.ok()) {
      if (result.executions_to_violation == 0)
        result.executions_to_violation = result.executions;
      Repro failing = repro;
      failing.violation = ToString(report.violations.front());
      result.violations.push_back(std::move(failing));
      if (options.stop_on_violation) stop = true;
      return;
    }
    const std::uint64_t novelty = InterleavingSignature(report.stream);
    const int decile =
        report.fairness_gap >= 0.0
            ? std::min(9, static_cast<int>(report.fairness_gap * 10.0))
            : -1;
    if (new_bits == 0 && seen_novelty.count(novelty) != 0 &&
        decile <= max_gap_decile)
      return;  // nothing new: the run is dropped, only its coverage kept
    seen_novelty.insert(novelty);
    max_gap_decile = std::max(max_gap_decile, decile);
    CorpusEntry entry;
    entry.repro = repro;
    entry.repro.violation.clear();
    entry.coverage = report.coverage;
    entry.new_bits = new_bits;
    entry.novelty = novelty;
    entry.fairness_gap = report.fairness_gap;
    entry.plan_hash = HashFaultPlan(repro.plan);
    entry.score = ScoreOf(entry);
    frontiers.at(repro.substrate)->Push(result.corpus.size(), entry.score);
    result.corpus.push_back(std::move(entry));
  };

  // Seed round 1: each lane's base scenario at the pinned scenario seed.
  for (const std::string& lane : lanes) {
    if (stop || result.executions >= options.max_execs) break;
    Repro base;
    base.substrate = lane;
    base.scenario_seed = options.scenario_seed;
    base.policy = options.policy;
    base.cluster_mode = options.cluster_mode;
    base.plan = runner.BasePlan(lane, options.scenario_seed);
    if (!seen_plans.insert(HashFaultPlan(base.plan)).second) continue;
    execute(base);
  }

  // Seed round 2: the on-disk corpus, in the caller's (sorted) order.
  for (const Repro& seed : options.corpus) {
    if (stop || result.executions >= options.max_execs) break;
    if (std::find(lanes.begin(), lanes.end(), seed.substrate) == lanes.end())
      continue;
    const MutationShape shape = runner.ShapeFor(seed);
    TSF_CHECK(ValidateFaultPlan(seed.plan, shape.num_machines,
                                shape.num_frameworks)
                  .empty())
        << "corpus entry (substrate " << seed.substrate << ", seed "
        << seed.scenario_seed << ") no longer fits its scenario";
    if (!seen_plans.insert(HashFaultPlan(seed.plan)).second) {
      ++result.duplicate_plans;
      continue;
    }
    Repro repro = seed;
    repro.violation.clear();
    repro.injected_bug = "none";
    execute(repro);
  }

  // The guided loop, rotating over the lane frontiers. `attempts` bounds
  // mutation tries that consume no executions (duplicates, inapplicable
  // operators) so a saturated corpus cannot spin the loop forever.
  std::size_t attempts = 0;
  std::size_t next_lane = 0;
  const std::size_t max_attempts = options.max_execs * 64;
  while (!stop && result.executions < options.max_execs &&
         attempts < max_attempts) {
    // Find the next lane with a poppable parent, re-seeding an exhausted
    // frontier from that lane's slice of the corpus.
    Frontier* frontier = nullptr;
    for (std::size_t tries = 0; tries < lanes.size(); ++tries) {
      const std::string& lane = lanes[(next_lane + tries) % lanes.size()];
      Frontier* candidate = frontiers.at(lane).get();
      if (candidate->Empty())
        for (std::size_t i = 0; i < result.corpus.size(); ++i)
          if (result.corpus[i].repro.substrate == lane)
            candidate->Push(i, result.corpus[i].score);
      if (candidate->Empty()) continue;  // lane has no admitted entries
      frontier = candidate;
      next_lane = (next_lane + tries + 1) % lanes.size();
      break;
    }
    if (frontier == nullptr) break;  // every seed violated or deduped
    const std::size_t parent_index = frontier->Pop();
    result.frontier_hash =
        FnvMix(result.frontier_hash, result.corpus[parent_index].plan_hash);
    // Copies: execute() grows result.corpus, invalidating references.
    const Repro parent = result.corpus[parent_index].repro;
    const MutationShape shape = runner.ShapeFor(parent);
    for (std::size_t m = 0; m < options.mutations_per_parent; ++m) {
      if (stop || result.executions >= options.max_execs) break;
      ++attempts;
      // Weighted toward the operators that move outage windows around
      // (add/retime/retarget) — those drive the crash-recovery branches the
      // checker instruments; remove mostly simplifies and splice is
      // inapplicable until a lane has several corpus entries.
      static const std::vector<double> kOpWeights = {
          0.30,  // kAddAtom
          0.10,  // kRemoveAtom
          0.25,  // kRetimeAtom
          0.20,  // kRetargetAtom
          0.15,  // kSplice
      };
      const MutationOp op = kAllMutationOps[rng.WeightedIndex(kOpWeights)];
      FaultPlan donor_plan;
      const FaultPlan* donor = nullptr;
      if (op == MutationOp::kSplice) {
        // Donors must share the parent's scenario: splice moves atoms
        // verbatim, so target indices only make sense in the same cluster.
        std::vector<std::size_t> donors;
        for (std::size_t i = 0; i < result.corpus.size(); ++i)
          if (i != parent_index &&
              result.corpus[i].repro.substrate == parent.substrate &&
              result.corpus[i].repro.scenario_seed == parent.scenario_seed)
            donors.push_back(i);
        if (donors.empty()) {
          ++result.inapplicable_mutations;
          continue;
        }
        donor_plan = result.corpus[donors[rng.Below(donors.size())]].repro.plan;
        donor = &donor_plan;
      }
      std::optional<FaultPlan> mutant =
          ApplyMutation(parent.plan, op, shape, rng, donor);
      if (!mutant) {
        ++result.inapplicable_mutations;
        continue;
      }
      if (!seen_plans.insert(HashFaultPlan(*mutant)).second) {
        ++result.duplicate_plans;
        continue;
      }
      Repro repro = parent;
      repro.plan = std::move(*mutant);
      execute(repro);
    }
  }

  std::uint64_t corpus_hash = kFnvOffset;
  for (const CorpusEntry& entry : result.corpus)
    corpus_hash = FnvString(corpus_hash, SerializeRepro(entry.repro));
  result.corpus_hash = corpus_hash;
  return result;
}

BlindSweepResult RunBlindSweep(const SearchOptions& options) {
  TSF_CHECK_GT(options.max_execs, 0u);
  ModeFromString(options.cluster_mode);  // validates the name
  const std::vector<std::string> lanes = LanesOf(options.substrate);
  Runner runner(options);
  BlindSweepResult result;
  for (std::uint64_t seed = options.scenario_seed;
       result.executions < options.max_execs; ++seed) {
    for (const std::string& lane : lanes) {
      if (result.executions >= options.max_execs) break;
      Repro repro;
      repro.substrate = lane;
      repro.scenario_seed = seed;
      repro.policy = options.policy;
      repro.cluster_mode = options.cluster_mode;
      repro.plan = runner.BasePlan(lane, seed);
      const ScenarioReport report = runner.Run(repro);
      ++result.executions;
      if (report.ok()) continue;
      result.executions_to_violation = result.executions;
      repro.violation = ToString(report.violations.front());
      result.violations.push_back(std::move(repro));
      return result;
    }
  }
  return result;
}

}  // namespace tsf::chaos
