// Fault plans: the seed-deterministic event programs of the chaos harness.
//
// A FaultPlan is a time-sorted list of fault events against machines
// (crash/restart/task failure) and — in the Mesos substrate — offers and
// frameworks (drop/rescind/decline-timeout, disconnect/re-register). Plans
// are generated randomly (RandomFaultPlan), validated for well-formedness
// (ValidateFaultPlan: every outage is eventually lifted, so a faulted run
// still completes), serialized into the text format that repro files embed,
// and compiled down to the substrate-native fault structs consumed by
// sim/des.h and mesos/mesos.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mesos/mesos.h"
#include "sim/des.h"

namespace tsf::chaos {

enum class FaultKind {
  // Machine faults, shared by both substrates.
  kMachineCrash,
  kMachineRestart,
  kTaskFailure,
  // Offer/framework faults, Mesos substrate only.
  kOfferDrop,
  kOfferRescind,
  kDeclineTimeout,
  kFrameworkDisconnect,
  kFrameworkReregister,
};

// Stable token used by the plan/repro text format ("crash", "offer_drop"...).
std::string ToString(FaultKind kind);
// Inverse of ToString; TSF_CHECK-fails on an unknown token.
FaultKind FaultKindFromString(const std::string& token);

// True for the machine-targeted kinds shared by both substrates
// (crash/restart/task-failure); false for the Mesos-only framework kinds.
bool IsMachineFault(FaultKind kind);

struct FaultSpec {
  double time = 0.0;
  FaultKind kind = FaultKind::kMachineCrash;
  std::size_t target = 0;  // machine/slave index, or framework index
  double param = 0.0;      // kOfferDrop: offer count; kDeclineTimeout: window

  bool operator==(const FaultSpec&) const = default;
};

struct FaultPlan {
  std::vector<FaultSpec> events;  // sorted by time

  bool operator==(const FaultPlan&) const = default;
};

// Generator knobs for RandomFaultPlan.
struct FaultPlanShape {
  std::size_t num_machines = 1;
  // 0 disables the Mesos-only fault kinds (DES plans).
  std::size_t num_frameworks = 0;
  // Faults land in [earliest, horizon); outage windows may end later.
  double earliest = 0.0;
  double horizon = 60.0;
  // Upper bound on generated atoms (a crash+restart pair is one atom).
  std::size_t max_atoms = 8;
  // Mean crash-to-restart (and disconnect-to-reregister) gap.
  double mean_outage = 8.0;
};

// Seed-deterministic random plan. Guarantees well-formedness: outage windows
// of one target never overlap and every crash/disconnect is paired with its
// restart/re-register. Never crashes ALL machines at once (a plan that
// stops the whole cluster stalls arrivals but proves nothing extra).
FaultPlan RandomFaultPlan(const FaultPlanShape& shape, std::uint64_t seed);

// Empty string if the plan is well-formed against the given cluster sizes;
// otherwise a one-line description of the first defect. Checks: sorted
// times, targets in range, strict crash/restart (and
// disconnect/re-register) alternation per target with every outage lifted,
// positive decline-timeout windows, and no Mesos-only kinds when
// num_frameworks == 0.
std::string ValidateFaultPlan(const FaultPlan& plan, std::size_t num_machines,
                              std::size_t num_frameworks);

// One event per line: "fault <kind> t=<time> target=<n> param=<p>".
std::string SerializeFaultPlan(const FaultPlan& plan);
// FNV-1a over SerializeFaultPlan — the corpus/novelty fingerprint of a plan
// (chaos/search.h). Equal plans hash equal across processes and runs.
std::uint64_t HashFaultPlan(const FaultPlan& plan);
// Parses the SerializeFaultPlan format; TSF_CHECK-fails on malformed input.
// Ignores blank lines and lines not starting with "fault".
FaultPlan ParseFaultPlan(const std::string& text);

// Substrate compilers. CompileForDes TSF_CHECK-fails on Mesos-only kinds.
std::vector<SimFault> CompileForDes(const FaultPlan& plan);
std::vector<mesos::Fault> CompileForMesos(const FaultPlan& plan);

}  // namespace tsf::chaos
