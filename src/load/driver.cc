#include "load/driver.h"

#include <bit>
#include <chrono>
#include <deque>
#include <utility>

#include "util/check.h"

namespace tsf::load {

namespace {

constexpr double kMsPerSecond = 1000.0;

std::uint64_t FnvMix(std::uint64_t hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xffU;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t FnvMix(std::uint64_t hash, double value) {
  return FnvMix(hash, std::bit_cast<std::uint64_t>(value));
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;

// Emits queue-depth samples at t = 0, interval, 2*interval, ... each
// reflecting the depth just before the events at that instant apply.
class QueueSampler {
 public:
  QueueSampler(double interval, std::vector<QueueSample>* out)
      : interval_(interval), out_(out) {}

  // Called with the (nondecreasing) time of the next event before its depth
  // delta is applied.
  void AdvanceTo(double time) {
    if (interval_ <= 0.0) return;
    while (next_ < time) {
      out_->push_back({next_, depth_});
      next_ += interval_;
    }
  }

  void Apply(long delta) { depth_ += delta; }

  // Emits the trailing samples up to and including the makespan instant.
  void Finish(double makespan) {
    if (interval_ <= 0.0) return;
    while (next_ <= makespan) {
      out_->push_back({next_, depth_});
      next_ += interval_;
    }
  }

  long depth() const { return depth_; }

 private:
  double interval_;
  std::vector<QueueSample>* out_;
  double next_ = 0.0;
  long depth_ = 0;
};

LoadReport InitReport(const DriverConfig& config, const GeneratedStream& stream,
                      std::string substrate, std::string policy) {
  LoadReport report;
  report.substrate = std::move(substrate);
  report.policy = std::move(policy);
  report.rate = config.stream.rate;
  report.total_jobs = stream.jobs.size();
  report.all.label = "all";
  report.per_class.resize(stream.class_names.size());
  for (std::size_t c = 0; c < stream.class_names.size(); ++c)
    report.per_class[c].label = stream.class_names[c];
  return report;
}

}  // namespace

LoadReport RunDesLoad(const DriverConfig& config, const OnlinePolicy& policy,
                      std::vector<SimFault> faults) {
  const GeneratedStream stream =
      GenerateArrivals(config.stream, config.num_machines);
  LoadReport report = InitReport(config, stream, "des", policy.name);

  // Global task slots are dense over (job, task index), matching the
  // simulator's numbering.
  std::vector<std::size_t> slot_base(stream.jobs.size() + 1, 0);
  for (std::size_t j = 0; j < stream.jobs.size(); ++j)
    slot_base[j + 1] =
        slot_base[j] + static_cast<std::size_t>(stream.jobs[j].spec.num_tasks);
  const std::size_t total_tasks = slot_base.back();
  report.total_tasks = total_tasks;

  // pending_since[slot]: when the task last became pending. All of a job's
  // tasks are submitted at its arrival; kills and failures re-arm the clock.
  std::vector<double> pending_since(total_tasks, 0.0);
  std::vector<std::uint32_t> job_of(total_tasks, 0);
  for (std::size_t j = 0; j < stream.jobs.size(); ++j)
    for (std::size_t s = slot_base[j]; s < slot_base[j + 1]; ++s) {
      pending_since[s] = stream.jobs[j].spec.arrival_time;
      job_of[s] = static_cast<std::uint32_t>(j);
    }

  std::vector<SimStreamEvent> events;
  Workload workload{MakeLoadCluster(config.num_machines), stream.jobs};
  SimOptions options;
  options.stream = &events;
  options.faults = std::move(faults);

  // wall_seconds is a reporting-only measurement; every placement-affecting
  // quantity below derives from virtual-time events.
  // NOLINT-determinism(reporting-only wall-clock measurement)
  const auto wall_start = std::chrono::steady_clock::now();
  const SimResult result =
      Simulate(workload, policy, SimCore::kIncremental, options);
  report.wall_seconds =
      // NOLINT-determinism(reporting-only wall-clock measurement)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.makespan = result.makespan;

  QueueSampler sampler(config.queue_sample_interval, &report.queue_depth);
  std::uint64_t hash = kFnvOffset;
  for (const SimStreamEvent& event : events) {
    hash = FnvMix(hash, static_cast<std::uint64_t>(event.kind));
    hash = FnvMix(hash, event.time);
    hash = FnvMix(hash, (static_cast<std::uint64_t>(event.job) << 32) |
                            event.task);
    hash = FnvMix(hash, (static_cast<std::uint64_t>(event.machine) << 32) |
                            event.attempt);
    sampler.AdvanceTo(event.time);
    switch (event.kind) {
      case SimStreamEvent::Kind::kArrive:
        sampler.Apply(stream.jobs.at(event.job).spec.num_tasks);
        break;
      case SimStreamEvent::Kind::kPlace: {
        const double ttp_ms =
            (event.time - pending_since.at(event.task)) * kMsPerSecond;
        report.all.ttp_ms.Record(ttp_ms);
        report.per_class.at(stream.class_of.at(job_of.at(event.task)))
            .ttp_ms.Record(ttp_ms);
        ++report.placements;
        sampler.Apply(-1);
        break;
      }
      case SimStreamEvent::Kind::kKill:
      case SimStreamEvent::Kind::kFail:
        pending_since.at(event.task) = event.time;
        ++report.requeues;
        sampler.Apply(+1);
        break;
      case SimStreamEvent::Kind::kFinish:
      case SimStreamEvent::Kind::kCrash:
      case SimStreamEvent::Kind::kRestart:
        break;
    }
  }
  sampler.Finish(report.makespan);
  TSF_CHECK(sampler.depth() == 0) << "run ended with pending tasks";
  report.placement_hash = hash;
  return report;
}

LoadReport RunMesosLoad(const DriverConfig& config,
                        mesos::AllocatorPolicy policy,
                        std::vector<mesos::Fault> faults) {
  const GeneratedStream stream =
      GenerateArrivals(config.stream, config.num_machines);
  LoadReport report = InitReport(
      config, stream, "mesos",
      policy == mesos::AllocatorPolicy::kTsf ? "TSF" : "DRF");

  const std::vector<mesos::FrameworkSpec> frameworks = ToFrameworks(stream);
  std::uint64_t total_tasks = 0;
  for (const mesos::FrameworkSpec& fw : frameworks)
    total_tasks += static_cast<std::uint64_t>(fw.num_tasks);
  report.total_tasks = total_tasks;

  mesos::ClusterConfig cluster;
  cluster.slaves = MakeLoadSlaves(config.num_machines);
  cluster.policy = policy;
  cluster.seed = config.stream.seed;
  cluster.sample_interval = 0.0;

  std::vector<mesos::MasterEvent> events;
  mesos::RunOptions options;
  options.faults = std::move(faults);
  options.stream = &events;

  // wall_seconds is a reporting-only measurement; every placement-affecting
  // quantity below derives from virtual-time events.
  // NOLINT-determinism(reporting-only wall-clock measurement)
  const auto wall_start = std::chrono::steady_clock::now();
  const mesos::SimOutcome outcome =
      mesos::RunCluster(cluster, frameworks, options);
  report.wall_seconds =
      // NOLINT-determinism(reporting-only wall-clock measurement)
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  report.makespan = outcome.makespan;

  // The Mesos substrate assigns a fresh launch id per (re)launch, so pending
  // times are matched FIFO per framework: registration enqueues one entry
  // per task, a launch consumes the oldest, kills/failures re-enqueue.
  std::vector<std::deque<double>> pending_since(frameworks.size());

  QueueSampler sampler(config.queue_sample_interval, &report.queue_depth);
  std::uint64_t hash = kFnvOffset;
  for (const mesos::MasterEvent& event : events) {
    hash = FnvMix(hash, static_cast<std::uint64_t>(event.kind));
    hash = FnvMix(hash, event.time);
    hash = FnvMix(hash, (static_cast<std::uint64_t>(event.framework) << 32) |
                            event.task);
    hash = FnvMix(hash, static_cast<std::uint64_t>(event.slave));
    sampler.AdvanceTo(event.time);
    std::deque<double>& queue = pending_since.at(event.framework);
    switch (event.kind) {
      case mesos::MasterEvent::Kind::kRegister: {
        const long n = frameworks.at(event.framework).num_tasks;
        for (long t = 0; t < n; ++t) queue.push_back(event.time);
        sampler.Apply(n);
        break;
      }
      case mesos::MasterEvent::Kind::kLaunch: {
        TSF_CHECK(!queue.empty()) << "launch with no pending task";
        const double ttp_ms = (event.time - queue.front()) * kMsPerSecond;
        queue.pop_front();
        report.all.ttp_ms.Record(ttp_ms);
        report.per_class.at(stream.class_of.at(event.framework))
            .ttp_ms.Record(ttp_ms);
        ++report.placements;
        sampler.Apply(-1);
        break;
      }
      case mesos::MasterEvent::Kind::kKill:
      case mesos::MasterEvent::Kind::kFail:
        queue.push_back(event.time);
        ++report.requeues;
        sampler.Apply(+1);
        break;
      case mesos::MasterEvent::Kind::kFinish:
      case mesos::MasterEvent::Kind::kDisconnect:
      case mesos::MasterEvent::Kind::kReregister:
      case mesos::MasterEvent::Kind::kCrash:
      case mesos::MasterEvent::Kind::kRestart:
        break;
    }
  }
  sampler.Finish(report.makespan);
  TSF_CHECK(sampler.depth() == 0) << "run ended with pending tasks";
  report.placement_hash = hash;
  return report;
}

}  // namespace tsf::load
