#include "load/stream.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "core/constraint.h"
#include "util/check.h"
#include "util/rng.h"

namespace tsf::load {

namespace {

// Raw arrival instants in [0, duration), nondecreasing.
std::vector<double> ArrivalTimes(const StreamSpec& spec, Rng& rng) {
  std::vector<double> times;
  switch (spec.shape) {
    case ArrivalShape::kPoisson: {
      for (double t = rng.Exponential(spec.rate); t < spec.duration;
           t += rng.Exponential(spec.rate))
        times.push_back(t);
      break;
    }
    case ArrivalShape::kBurst: {
      TSF_CHECK(spec.burst_period > 0.0);
      TSF_CHECK(spec.burst_width > 0.0 &&
                spec.burst_width <= spec.burst_period);
      // Draw a Poisson process at the mean rate, then compress each period's
      // arrivals into its leading burst_width. The map is monotonic, so the
      // stream stays sorted and keeps its mean rate.
      const double squeeze = spec.burst_width / spec.burst_period;
      for (double t = rng.Exponential(spec.rate); t < spec.duration;
           t += rng.Exponential(spec.rate)) {
        const double period_start =
            std::floor(t / spec.burst_period) * spec.burst_period;
        times.push_back(period_start + (t - period_start) * squeeze);
      }
      break;
    }
    case ArrivalShape::kUniform: {
      const double gap = 1.0 / spec.rate;
      for (double t = 0.0; t < spec.duration; t += gap) times.push_back(t);
      break;
    }
  }
  return times;
}

// A whitelist of ceil(fraction * num_machines) distinct machines, sampled
// without replacement (deterministic in the stream rng).
std::vector<MachineId> SampleWhitelist(double fraction,
                                       std::size_t num_machines, Rng& rng) {
  auto want = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(num_machines)));
  want = std::clamp<std::size_t>(want, 1, num_machines);
  std::vector<MachineId> machines(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) machines[m] = m;
  rng.Shuffle(machines);
  machines.resize(want);
  return machines;
}

}  // namespace

std::vector<MixClass> DefaultMix() {
  std::vector<MixClass> mix(3);
  mix[0].name = "mice";
  mix[0].weight = 0.6;
  mix[0].min_tasks = 1;
  mix[0].max_tasks = 4;
  mix[0].demand = ResourceVector{1.0, 1024.0};
  mix[0].mean_runtime = 4.0;
  mix[1].name = "batch";
  mix[1].weight = 0.3;
  mix[1].min_tasks = 8;
  mix[1].max_tasks = 24;
  mix[1].demand = ResourceVector{1.0, 1536.0};
  mix[1].mean_runtime = 8.0;
  mix[1].constrained_prob = 0.5;
  mix[1].whitelist_fraction = 0.5;
  mix[2].name = "elephant";
  mix[2].weight = 0.1;
  mix[2].min_tasks = 32;
  mix[2].max_tasks = 64;
  mix[2].demand = ResourceVector{2.0, 2048.0};
  mix[2].mean_runtime = 12.0;
  mix[2].constrained_prob = 0.75;
  mix[2].whitelist_fraction = 0.25;
  return mix;
}

Cluster MakeLoadCluster(std::size_t num_machines) {
  TSF_CHECK(num_machines > 0);
  Cluster cluster;
  for (std::size_t m = 0; m < num_machines; ++m) {
    const bool big = m % 2 == 0;
    cluster.AddMachine(big ? ResourceVector{4.0, 8192.0}
                           : ResourceVector{2.0, 2048.0},
                       {}, (big ? "big" : "small") + std::to_string(m));
  }
  return cluster;
}

std::vector<mesos::SlaveSpec> MakeLoadSlaves(std::size_t num_machines) {
  TSF_CHECK(num_machines > 0);
  std::vector<mesos::SlaveSpec> slaves(num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    const bool big = m % 2 == 0;
    slaves[m].capacity =
        big ? ResourceVector{4.0, 8192.0} : ResourceVector{2.0, 2048.0};
    slaves[m].name = (big ? "big" : "small") + std::to_string(m);
  }
  return slaves;
}

GeneratedStream GenerateArrivals(const StreamSpec& spec,
                                 std::size_t num_machines) {
  TSF_CHECK(spec.rate > 0.0);
  TSF_CHECK(spec.duration > 0.0);
  TSF_CHECK(num_machines > 0);
  const std::vector<MixClass> mix =
      spec.mix.empty() ? DefaultMix() : spec.mix;
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const MixClass& cls : mix) {
    TSF_CHECK(cls.weight >= 0.0);
    TSF_CHECK(0 < cls.min_tasks && cls.min_tasks <= cls.max_tasks);
    TSF_CHECK(cls.mean_runtime > 0.0);
    TSF_CHECK(0.0 <= cls.runtime_jitter && cls.runtime_jitter < 1.0);
    weights.push_back(cls.weight);
  }

  Rng rng(spec.seed);
  GeneratedStream stream;
  stream.mix = mix;
  stream.class_names.reserve(mix.size());
  for (const MixClass& cls : mix) stream.class_names.push_back(cls.name);

  for (const double arrival : ArrivalTimes(spec, rng)) {
    const std::size_t c = rng.WeightedIndex(weights);
    const MixClass& cls = mix[c];
    SimJob job;
    job.spec.id = stream.jobs.size();
    job.spec.name =
        cls.name + "_" + std::to_string(stream.jobs.size());
    job.spec.demand = cls.demand;
    job.spec.weight = 1.0;
    job.spec.num_tasks = rng.Int(cls.min_tasks, cls.max_tasks);
    job.spec.arrival_time = arrival;
    job.spec.mean_task_runtime = cls.mean_runtime;
    if (cls.constrained_prob > 0.0 && rng.Chance(cls.constrained_prob))
      job.spec.constraint = Constraint::Whitelist(
          SampleWhitelist(cls.whitelist_fraction, num_machines, rng));
    job.task_runtimes.reserve(static_cast<std::size_t>(job.spec.num_tasks));
    for (long t = 0; t < job.spec.num_tasks; ++t)
      job.task_runtimes.push_back(
          cls.mean_runtime *
          rng.Uniform(1.0 - cls.runtime_jitter, 1.0 + cls.runtime_jitter));
    stream.class_of.push_back(static_cast<std::uint32_t>(c));
    stream.jobs.push_back(std::move(job));
  }
  TSF_CHECK(!stream.jobs.empty())
      << "stream spec produced no arrivals (rate * duration too small)";
  return stream;
}

std::vector<mesos::FrameworkSpec> ToFrameworks(const GeneratedStream& stream) {
  TSF_CHECK(stream.class_of.size() == stream.jobs.size());
  std::vector<mesos::FrameworkSpec> frameworks;
  frameworks.reserve(stream.jobs.size());
  for (std::size_t j = 0; j < stream.jobs.size(); ++j) {
    const SimJob& job = stream.jobs[j];
    mesos::FrameworkSpec fw;
    fw.name = job.spec.name;
    fw.start_time = job.spec.arrival_time;
    fw.num_tasks = job.spec.num_tasks;
    fw.demand = job.spec.demand;
    fw.mean_runtime = job.spec.mean_task_runtime;
    fw.runtime_jitter = stream.mix.at(stream.class_of[j]).runtime_jitter;
    fw.weight = job.spec.weight;
    if (job.spec.constraint.kind() == Constraint::Kind::kWhitelist)
      fw.whitelist = job.spec.constraint.machine_list();
    frameworks.push_back(std::move(fw));
  }
  return frameworks;
}

}  // namespace tsf::load
