// Open-loop sustained-load stream synthesis (the SLO observatory's input).
//
// Unlike the batch workloads in sim/workload.h — where every job is known up
// front and the experiment ends when the backlog drains — an open-loop stream
// models a long-running allocator: jobs arrive at a configured *rate*
// regardless of how fast the cluster serves them, so queueing delay and
// time-to-placement tails are properties of the (rate, policy) operating
// point rather than of a fixed job list. The same generated stream feeds both
// online substrates (the DES scheduler cores and the Mesos master), which is
// what makes their latency numbers comparable.
//
// Everything here is a pure function of (StreamSpec, num_machines): two calls
// with the same inputs produce bit-identical job lists, which the
// determinism tests pin on both substrates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/resource.h"
#include "mesos/mesos.h"
#include "sim/workload.h"

namespace tsf::load {

// Inter-arrival shape of the open-loop process. All shapes share the same
// mean rate; they differ in how arrivals clump.
enum class ArrivalShape {
  kPoisson,  // exponential gaps (memoryless baseline)
  kBurst,    // Poisson arrivals time-compressed into a window at the start
             // of each burst_period (diurnal-peak / thundering-herd model)
  kUniform,  // evenly spaced (closed-form best case for queueing)
};

// One job class of the arrival mix. `weight` is the class-selection
// probability weight, not the job's fair-share weight (jobs all run at
// weight 1 so latency differences come from the policy, not the knob).
struct MixClass {
  std::string name;
  double weight = 1.0;
  long min_tasks = 1;
  long max_tasks = 1;            // task count ~ Uniform[min, max]
  ResourceVector demand;         // per-task, raw units
  double mean_runtime = 4.0;     // seconds
  double runtime_jitter = 0.2;   // +/- fraction around the mean
  double constrained_prob = 0.0;     // P(job carries a machine whitelist)
  double whitelist_fraction = 1.0;   // fraction of machines in that whitelist
};

struct StreamSpec {
  double rate = 1.0;       // mean job arrivals per virtual second
  double duration = 60.0;  // arrival window [0, duration); jobs then drain
  std::uint64_t seed = 1;
  ArrivalShape shape = ArrivalShape::kPoisson;
  double burst_period = 10.0;  // kBurst: one burst per period (seconds)
  double burst_width = 1.0;    // kBurst: arrivals squeezed into this width
  std::vector<MixClass> mix;   // empty => DefaultMix()
};

// A generated arrival stream plus the class labels the latency report
// aggregates by. jobs[i] belongs to class class_of[i] (an index into mix /
// class_names). Jobs are sorted by arrival time.
struct GeneratedStream {
  std::vector<SimJob> jobs;
  std::vector<std::uint32_t> class_of;
  std::vector<std::string> class_names;  // mix[c].name, for convenience
  std::vector<MixClass> mix;             // the resolved mix actually used
};

// Default three-class mix: many small latency-sensitive "mice", a band of
// medium "batch" jobs (half of them whitelist-constrained), and rare
// "elephant" jobs constrained to a quarter of the fleet. Demands are sized
// against MakeLoadCluster machines so every class fits on every machine.
std::vector<MixClass> DefaultMix();

// The observatory fleet: machine 2k gets <4 CPU, 8192 MB>, machine 2k+1 gets
// <2 CPU, 4096 MB> — two equivalence classes, so both the flat and collapsed
// DES engines are exercised.
Cluster MakeLoadCluster(std::size_t num_machines);

// The same fleet as Mesos slave specs (capacity-identical to
// MakeLoadCluster so the two substrates see one cluster).
std::vector<mesos::SlaveSpec> MakeLoadSlaves(std::size_t num_machines);

// Synthesizes the arrival stream. Deterministic in (spec, num_machines);
// requires rate > 0, duration > 0, and at least one generated arrival.
GeneratedStream GenerateArrivals(const StreamSpec& spec,
                                 std::size_t num_machines);

// The stream's jobs as Mesos frameworks (one framework per job, start_time =
// arrival, whitelist carried over). Task runtimes are re-jittered by the
// Mesos substrate from its own seed; determinism is per substrate.
std::vector<mesos::FrameworkSpec> ToFrameworks(const GeneratedStream& stream);

}  // namespace tsf::load
