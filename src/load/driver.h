// Open-loop load driver: runs a generated arrival stream (stream.h) against
// an online substrate and derives the SLO observability metrics from the
// recorded event stream.
//
// Both substrates already emit a total-order event stream (SimStreamEvent /
// MasterEvent) for the golden-determinism and chaos invariant checks; the
// driver reuses it as the measurement tap. Per-task time-to-placement is the
// virtual time between a task becoming pending (job arrival, or a
// fault-driven requeue) and its (re)placement; queue depth is the number of
// pending tasks at each sample instant. Deriving both offline from the
// stream keeps the substrates untouched and the metrics exact — the
// in-substrate TSF_HISTOGRAM_RECORD sites are the live-process view of the
// same quantities and are compiled out under -DTSF_TELEMETRY=OFF.
//
// Latencies are recorded in *milliseconds*: the log-bucketed histogram's
// bucket 0 swallows everything below 1, so sub-second waits — the common
// case at low load — must be scaled up to keep their quantile resolution.
//
// Every metric except wall_seconds is derived from virtual time and is
// therefore a deterministic function of (config, policy, faults) — the SLO
// regression gate can compare it across machines bit for bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/online/policy.h"
#include "load/stream.h"
#include "mesos/mesos.h"
#include "sim/des.h"
#include "telemetry/metrics.h"

namespace tsf::load {

// Pending-task count at a virtual-time instant (state just before the
// events at that instant apply).
struct QueueSample {
  double time = 0.0;
  long depth = 0;
};

// Time-to-placement distribution for one aggregation bucket, in ms.
// telemetry::HistogramSnapshot is the always-compiled data API: Quantile()
// gives p50/p95/p99 with the documented <2x log-bucket error bound.
struct LatencySeries {
  std::string label;  // "all" or a mix-class name
  telemetry::HistogramSnapshot ttp_ms;
};

struct DriverConfig {
  StreamSpec stream;
  std::size_t num_machines = 60;
  // Virtual-time period of the queue-depth sampler (seconds); 0 disables.
  double queue_sample_interval = 1.0;
};

struct LoadReport {
  std::string substrate;  // "des" | "mesos"
  std::string policy;
  double rate = 0.0;      // the stream's configured arrival rate
  double makespan = 0.0;  // virtual seconds until the backlog drained
  double wall_seconds = 0.0;  // host wall time of the run (informational
                              // only: never hashed or gated)
  std::uint64_t total_jobs = 0;
  std::uint64_t total_tasks = 0;
  std::uint64_t placements = 0;  // includes fault-driven replacements
  std::uint64_t requeues = 0;    // kills + failures
  // FNV-1a over the full event stream — the determinism pin: equal streams
  // have equal hashes.
  std::uint64_t placement_hash = 0;
  LatencySeries all;
  std::vector<LatencySeries> per_class;  // one per mix class, stream order
  std::vector<QueueSample> queue_depth;
};

// Runs the stream through the DES substrate (sim/des.h) under `policy`.
LoadReport RunDesLoad(const DriverConfig& config, const OnlinePolicy& policy,
                      std::vector<SimFault> faults = {});

// Runs the stream through the Mesos master (mesos/mesos.h) under `policy`.
// The Mesos substrate does not preserve task identity across fault-driven
// relaunches, so pending times are matched FIFO per framework (entries are
// pushed in nondecreasing time order, so the match is exact for the
// fault-free case and oldest-first otherwise).
LoadReport RunMesosLoad(const DriverConfig& config,
                        mesos::AllocatorPolicy policy,
                        std::vector<mesos::Fault> faults = {});

}  // namespace tsf::load
