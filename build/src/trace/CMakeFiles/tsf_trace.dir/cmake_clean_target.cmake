file(REMOVE_RECURSE
  "libtsf_trace.a"
)
