file(REMOVE_RECURSE
  "CMakeFiles/tsf_trace.dir/google.cc.o"
  "CMakeFiles/tsf_trace.dir/google.cc.o.d"
  "CMakeFiles/tsf_trace.dir/io.cc.o"
  "CMakeFiles/tsf_trace.dir/io.cc.o.d"
  "libtsf_trace.a"
  "libtsf_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
