# Empty dependencies file for tsf_trace.
# This may be replaced when dependencies are built.
