# Empty compiler generated dependencies file for tsf_stats.
# This may be replaced when dependencies are built.
