file(REMOVE_RECURSE
  "CMakeFiles/tsf_stats.dir/cdf.cc.o"
  "CMakeFiles/tsf_stats.dir/cdf.cc.o.d"
  "CMakeFiles/tsf_stats.dir/table.cc.o"
  "CMakeFiles/tsf_stats.dir/table.cc.o.d"
  "libtsf_stats.a"
  "libtsf_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
