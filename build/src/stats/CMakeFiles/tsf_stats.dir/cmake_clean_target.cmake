file(REMOVE_RECURSE
  "libtsf_stats.a"
)
