
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/des.cc" "src/sim/CMakeFiles/tsf_sim.dir/des.cc.o" "gcc" "src/sim/CMakeFiles/tsf_sim.dir/des.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/tsf_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/tsf_sim.dir/runner.cc.o.d"
  "/root/repo/src/sim/slots.cc" "src/sim/CMakeFiles/tsf_sim.dir/slots.cc.o" "gcc" "src/sim/CMakeFiles/tsf_sim.dir/slots.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/tsf_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/tsf_sim.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tsf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tsf_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
