# Empty dependencies file for tsf_sim.
# This may be replaced when dependencies are built.
