file(REMOVE_RECURSE
  "CMakeFiles/tsf_sim.dir/des.cc.o"
  "CMakeFiles/tsf_sim.dir/des.cc.o.d"
  "CMakeFiles/tsf_sim.dir/runner.cc.o"
  "CMakeFiles/tsf_sim.dir/runner.cc.o.d"
  "CMakeFiles/tsf_sim.dir/slots.cc.o"
  "CMakeFiles/tsf_sim.dir/slots.cc.o.d"
  "CMakeFiles/tsf_sim.dir/workload.cc.o"
  "CMakeFiles/tsf_sim.dir/workload.cc.o.d"
  "libtsf_sim.a"
  "libtsf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
