file(REMOVE_RECURSE
  "libtsf_sim.a"
)
