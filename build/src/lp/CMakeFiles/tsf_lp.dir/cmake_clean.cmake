file(REMOVE_RECURSE
  "CMakeFiles/tsf_lp.dir/simplex.cc.o"
  "CMakeFiles/tsf_lp.dir/simplex.cc.o.d"
  "libtsf_lp.a"
  "libtsf_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
