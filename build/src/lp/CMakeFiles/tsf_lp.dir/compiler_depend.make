# Empty compiler generated dependencies file for tsf_lp.
# This may be replaced when dependencies are built.
