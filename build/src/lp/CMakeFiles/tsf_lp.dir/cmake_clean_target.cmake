file(REMOVE_RECURSE
  "libtsf_lp.a"
)
