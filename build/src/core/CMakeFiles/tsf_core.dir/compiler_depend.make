# Empty compiler generated dependencies file for tsf_core.
# This may be replaced when dependencies are built.
