file(REMOVE_RECURSE
  "libtsf_core.a"
)
