file(REMOVE_RECURSE
  "CMakeFiles/tsf_core.dir/allocation.cc.o"
  "CMakeFiles/tsf_core.dir/allocation.cc.o.d"
  "CMakeFiles/tsf_core.dir/cluster.cc.o"
  "CMakeFiles/tsf_core.dir/cluster.cc.o.d"
  "CMakeFiles/tsf_core.dir/constraint.cc.o"
  "CMakeFiles/tsf_core.dir/constraint.cc.o.d"
  "CMakeFiles/tsf_core.dir/offline/multiclass.cc.o"
  "CMakeFiles/tsf_core.dir/offline/multiclass.cc.o.d"
  "CMakeFiles/tsf_core.dir/offline/policies.cc.o"
  "CMakeFiles/tsf_core.dir/offline/policies.cc.o.d"
  "CMakeFiles/tsf_core.dir/offline/progressive_filling.cc.o"
  "CMakeFiles/tsf_core.dir/offline/progressive_filling.cc.o.d"
  "CMakeFiles/tsf_core.dir/offline/properties.cc.o"
  "CMakeFiles/tsf_core.dir/offline/properties.cc.o.d"
  "CMakeFiles/tsf_core.dir/offline/weights.cc.o"
  "CMakeFiles/tsf_core.dir/offline/weights.cc.o.d"
  "CMakeFiles/tsf_core.dir/online/scheduler.cc.o"
  "CMakeFiles/tsf_core.dir/online/scheduler.cc.o.d"
  "CMakeFiles/tsf_core.dir/paper_examples.cc.o"
  "CMakeFiles/tsf_core.dir/paper_examples.cc.o.d"
  "CMakeFiles/tsf_core.dir/resource.cc.o"
  "CMakeFiles/tsf_core.dir/resource.cc.o.d"
  "libtsf_core.a"
  "libtsf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
