
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/tsf_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/cluster.cc" "src/core/CMakeFiles/tsf_core.dir/cluster.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/cluster.cc.o.d"
  "/root/repo/src/core/constraint.cc" "src/core/CMakeFiles/tsf_core.dir/constraint.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/constraint.cc.o.d"
  "/root/repo/src/core/offline/multiclass.cc" "src/core/CMakeFiles/tsf_core.dir/offline/multiclass.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/offline/multiclass.cc.o.d"
  "/root/repo/src/core/offline/policies.cc" "src/core/CMakeFiles/tsf_core.dir/offline/policies.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/offline/policies.cc.o.d"
  "/root/repo/src/core/offline/progressive_filling.cc" "src/core/CMakeFiles/tsf_core.dir/offline/progressive_filling.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/offline/progressive_filling.cc.o.d"
  "/root/repo/src/core/offline/properties.cc" "src/core/CMakeFiles/tsf_core.dir/offline/properties.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/offline/properties.cc.o.d"
  "/root/repo/src/core/offline/weights.cc" "src/core/CMakeFiles/tsf_core.dir/offline/weights.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/offline/weights.cc.o.d"
  "/root/repo/src/core/online/scheduler.cc" "src/core/CMakeFiles/tsf_core.dir/online/scheduler.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/online/scheduler.cc.o.d"
  "/root/repo/src/core/paper_examples.cc" "src/core/CMakeFiles/tsf_core.dir/paper_examples.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/paper_examples.cc.o.d"
  "/root/repo/src/core/resource.cc" "src/core/CMakeFiles/tsf_core.dir/resource.cc.o" "gcc" "src/core/CMakeFiles/tsf_core.dir/resource.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tsf_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tsf_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
