# Empty compiler generated dependencies file for tsf_util.
# This may be replaced when dependencies are built.
