file(REMOVE_RECURSE
  "CMakeFiles/tsf_util.dir/check.cc.o"
  "CMakeFiles/tsf_util.dir/check.cc.o.d"
  "CMakeFiles/tsf_util.dir/flags.cc.o"
  "CMakeFiles/tsf_util.dir/flags.cc.o.d"
  "CMakeFiles/tsf_util.dir/log.cc.o"
  "CMakeFiles/tsf_util.dir/log.cc.o.d"
  "CMakeFiles/tsf_util.dir/thread_pool.cc.o"
  "CMakeFiles/tsf_util.dir/thread_pool.cc.o.d"
  "libtsf_util.a"
  "libtsf_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
