file(REMOVE_RECURSE
  "libtsf_util.a"
)
