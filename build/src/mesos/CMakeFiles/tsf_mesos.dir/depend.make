# Empty dependencies file for tsf_mesos.
# This may be replaced when dependencies are built.
