file(REMOVE_RECURSE
  "CMakeFiles/tsf_mesos.dir/mesos.cc.o"
  "CMakeFiles/tsf_mesos.dir/mesos.cc.o.d"
  "libtsf_mesos.a"
  "libtsf_mesos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_mesos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
