file(REMOVE_RECURSE
  "libtsf_mesos.a"
)
