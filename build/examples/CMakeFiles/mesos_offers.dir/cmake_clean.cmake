file(REMOVE_RECURSE
  "CMakeFiles/mesos_offers.dir/mesos_offers.cpp.o"
  "CMakeFiles/mesos_offers.dir/mesos_offers.cpp.o.d"
  "mesos_offers"
  "mesos_offers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesos_offers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
