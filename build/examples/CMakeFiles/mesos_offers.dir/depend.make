# Empty dependencies file for mesos_offers.
# This may be replaced when dependencies are built.
