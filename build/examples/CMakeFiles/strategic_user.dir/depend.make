# Empty dependencies file for strategic_user.
# This may be replaced when dependencies are built.
