file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_static_vs_tsf.dir/bench_fig6_static_vs_tsf.cc.o"
  "CMakeFiles/bench_fig6_static_vs_tsf.dir/bench_fig6_static_vs_tsf.cc.o.d"
  "bench_fig6_static_vs_tsf"
  "bench_fig6_static_vs_tsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_static_vs_tsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
