# Empty dependencies file for bench_fig6_static_vs_tsf.
# This may be replaced when dependencies are built.
