# Empty dependencies file for bench_table2_fig5_micro.
# This may be replaced when dependencies are built.
