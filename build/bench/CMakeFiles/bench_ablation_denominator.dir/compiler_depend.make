# Empty compiler generated dependencies file for bench_ablation_denominator.
# This may be replaced when dependencies are built.
