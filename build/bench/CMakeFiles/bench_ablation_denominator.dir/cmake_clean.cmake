file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_denominator.dir/bench_ablation_denominator.cc.o"
  "CMakeFiles/bench_ablation_denominator.dir/bench_ablation_denominator.cc.o.d"
  "bench_ablation_denominator"
  "bench_ablation_denominator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_denominator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
