file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_workload_stats.dir/bench_fig8_workload_stats.cc.o"
  "CMakeFiles/bench_fig8_workload_stats.dir/bench_fig8_workload_stats.cc.o.d"
  "bench_fig8_workload_stats"
  "bench_fig8_workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
