# Empty compiler generated dependencies file for bench_fig11_task_perf.
# This may be replaced when dependencies are built.
