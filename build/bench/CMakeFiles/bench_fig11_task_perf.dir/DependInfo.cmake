
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_task_perf.cc" "bench/CMakeFiles/bench_fig11_task_perf.dir/bench_fig11_task_perf.cc.o" "gcc" "bench/CMakeFiles/bench_fig11_task_perf.dir/bench_fig11_task_perf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tsf_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tsf_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tsf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mesos/CMakeFiles/tsf_mesos.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tsf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/tsf_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/tsf_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tsf_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
