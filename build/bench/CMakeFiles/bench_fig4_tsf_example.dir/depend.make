# Empty dependencies file for bench_fig4_tsf_example.
# This may be replaced when dependencies are built.
