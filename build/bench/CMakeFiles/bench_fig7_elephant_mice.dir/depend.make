# Empty dependencies file for bench_fig7_elephant_mice.
# This may be replaced when dependencies are built.
