file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_elephant_mice.dir/bench_fig7_elephant_mice.cc.o"
  "CMakeFiles/bench_fig7_elephant_mice.dir/bench_fig7_elephant_mice.cc.o.d"
  "bench_fig7_elephant_mice"
  "bench_fig7_elephant_mice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_elephant_mice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
