file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_cdrf_strategyproof.dir/bench_fig2_cdrf_strategyproof.cc.o"
  "CMakeFiles/bench_fig2_cdrf_strategyproof.dir/bench_fig2_cdrf_strategyproof.cc.o.d"
  "bench_fig2_cdrf_strategyproof"
  "bench_fig2_cdrf_strategyproof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_cdrf_strategyproof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
