# Empty dependencies file for bench_fig2_cdrf_strategyproof.
# This may be replaced when dependencies are built.
