# Empty compiler generated dependencies file for bench_fig3_cdrf_envy.
# This may be replaced when dependencies are built.
