file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cdrf_envy.dir/bench_fig3_cdrf_envy.cc.o"
  "CMakeFiles/bench_fig3_cdrf_envy.dir/bench_fig3_cdrf_envy.cc.o.d"
  "bench_fig3_cdrf_envy"
  "bench_fig3_cdrf_envy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cdrf_envy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
