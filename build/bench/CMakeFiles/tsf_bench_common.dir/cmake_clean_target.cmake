file(REMOVE_RECURSE
  "../lib/libtsf_bench_common.a"
)
