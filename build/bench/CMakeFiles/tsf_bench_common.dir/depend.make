# Empty dependencies file for tsf_bench_common.
# This may be replaced when dependencies are built.
