file(REMOVE_RECURSE
  "../lib/libtsf_bench_common.a"
  "../lib/libtsf_bench_common.pdb"
  "CMakeFiles/tsf_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/tsf_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsf_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
