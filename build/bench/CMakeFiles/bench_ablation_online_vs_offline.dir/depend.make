# Empty dependencies file for bench_ablation_online_vs_offline.
# This may be replaced when dependencies are built.
