file(REMOVE_RECURSE
  "CMakeFiles/des_fuzz_test.dir/des_fuzz_test.cc.o"
  "CMakeFiles/des_fuzz_test.dir/des_fuzz_test.cc.o.d"
  "des_fuzz_test"
  "des_fuzz_test.pdb"
  "des_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/des_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
