file(REMOVE_RECURSE
  "CMakeFiles/online_scheduler_test.dir/online_scheduler_test.cc.o"
  "CMakeFiles/online_scheduler_test.dir/online_scheduler_test.cc.o.d"
  "online_scheduler_test"
  "online_scheduler_test.pdb"
  "online_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
