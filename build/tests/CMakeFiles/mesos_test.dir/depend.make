# Empty dependencies file for mesos_test.
# This may be replaced when dependencies are built.
