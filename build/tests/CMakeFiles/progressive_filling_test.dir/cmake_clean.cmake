file(REMOVE_RECURSE
  "CMakeFiles/progressive_filling_test.dir/progressive_filling_test.cc.o"
  "CMakeFiles/progressive_filling_test.dir/progressive_filling_test.cc.o.d"
  "progressive_filling_test"
  "progressive_filling_test.pdb"
  "progressive_filling_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_filling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
