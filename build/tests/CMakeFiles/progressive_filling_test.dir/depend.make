# Empty dependencies file for progressive_filling_test.
# This may be replaced when dependencies are built.
