# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/progressive_filling_test[1]_include.cmake")
include("/root/repo/build/tests/policies_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/property_random_test[1]_include.cmake")
include("/root/repo/build/tests/online_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/des_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/mesos_test[1]_include.cmake")
include("/root/repo/build/tests/weights_test[1]_include.cmake")
include("/root/repo/build/tests/slots_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/allocation_test[1]_include.cmake")
include("/root/repo/build/tests/des_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/multiclass_test[1]_include.cmake")
