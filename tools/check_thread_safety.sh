#!/usr/bin/env sh
# Clang thread-safety analysis gate + self-proving canary.
#
# Two halves, mirroring run_clang_tidy.sh's skip-or-require shape:
#
#   1. Canary: compiles tests/analysis/thread_safety_canary_good.cc (must be
#      CLEAN under -Wthread-safety -Werror=thread-safety) and
#      thread_safety_canary_bad.cc (must FAIL — a deliberately mis-annotated
#      TSF_GUARDED_BY field and friends). The bad half failing proves the
#      TSF_* macros still expand to live attributes and the analysis still
#      fires; the good half proves the wrappers (Mutex/MutexLock, SpinLock/
#      SpinGuard) are annotation-clean by construction.
#   2. Full build: configures + builds the `analysis` CMake preset, so every
#      annotated lock site in the tree is checked with warnings fatal.
#
# Usage:
#   tools/check_thread_safety.sh              canary + full analysis build
#   tools/check_thread_safety.sh --canary-only    skip the full build
#   tools/check_thread_safety.sh --require    fail (not skip) if clang++ is
#                                             not installed — CI mode
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
require=0
canary_only=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --require) require=1; shift ;;
    --canary-only) canary_only=1; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
done

CLANGXX=${CLANGXX:-clang++}
if ! command -v "$CLANGXX" >/dev/null 2>&1; then
  if [ "$require" -eq 1 ]; then
    echo "error: $CLANGXX not found and --require was given" >&2
    exit 1
  fi
  echo "clang++ not installed; skipping thread-safety analysis" \
       "(pass --require to make this fatal)"
  exit 0
fi

flags="-std=c++20 -fsyntax-only -I$repo_root/src \
  -Wthread-safety -Werror=thread-safety"

echo "== canary: known-good must compile clean =="
# shellcheck disable=SC2086 — flags is a word list on purpose.
if ! "$CLANGXX" $flags \
    "$repo_root/tests/analysis/thread_safety_canary_good.cc"; then
  echo "FAIL: the known-good canary no longer compiles under" \
       "-Werror=thread-safety — an annotation in the wrappers regressed" >&2
  exit 1
fi

echo "== canary: known-bad must fail =="
# shellcheck disable=SC2086
if "$CLANGXX" $flags \
    "$repo_root/tests/analysis/thread_safety_canary_bad.cc" 2>/dev/null; then
  echo "FAIL: the deliberately mis-annotated canary compiled — the TSF_*" \
       "annotations have gone blind (macros no longer expand to attributes" \
       "or the analysis flags were dropped)" >&2
  exit 1
fi
echo "canary ok: analysis fires on the bad input, good input is clean"

if [ "$canary_only" -eq 1 ]; then
  exit 0
fi

echo "== full tree: analysis preset build (warnings fatal) =="
cmake --preset analysis
cmake --build --preset analysis -j "$(nproc)"
echo "thread-safety analysis: full tree clean"
