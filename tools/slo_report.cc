// SLO observatory report: sweeps the open-loop load driver (src/load)
// across arrival rates on both online substrates and writes BENCH_slo.json
// with p50/p95/p99 time-to-placement, queue-depth timelines, and the
// throughput-vs-latency curve per (substrate, policy) pair.
//
// Every reported figure except wall_seconds is derived from virtual time,
// so a lane is a deterministic function of (seed, rate, machines, duration,
// shape, policy, fault plan): tools/slo_gate.sh compares the smoke lanes
// against the committed baseline bit-for-bit on the quantiles and the
// placement-stream hash. --smoke restricts the sweep to the rate-1 lanes
// with otherwise identical knobs, so smoke lanes match their full-report
// counterparts by name and value.
//
// An optional --fault_plan=<file> (chaos text format, machine faults only)
// overlays the same crash/restart program on every lane; faulted lanes are
// suffixed "_faults" so a gate never compares them against fault-free
// baselines.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "load/driver.h"
#include "load/stream.h"
#include "util/check.h"
#include "util/flags.h"

namespace tsf::load {
namespace {

std::vector<std::string> SplitCsv(const std::string& text) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, ','))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

std::string FormatRate(double rate) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%g", rate);
  return buffer;
}

std::string HashHex(std::uint64_t hash) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(hash));
  return buffer;
}

ArrivalShape ShapeFromString(const std::string& name) {
  if (name == "poisson") return ArrivalShape::kPoisson;
  if (name == "burst") return ArrivalShape::kBurst;
  if (name == "uniform") return ArrivalShape::kUniform;
  TSF_CHECK(false) << "unknown --shape '" << name
                   << "' (want poisson|burst|uniform)";
  return ArrivalShape::kPoisson;
}

void AppendSeriesJson(std::ostream& out, const LatencySeries& series) {
  const telemetry::HistogramSnapshot& h = series.ttp_ms;
  out << "{\"count\": " << h.count << ", \"mean\": " << h.mean
      << ", \"min\": " << h.min << ", \"max\": " << h.max
      << ", \"p50\": " << h.Quantile(0.50) << ", \"p95\": " << h.Quantile(0.95)
      << ", \"p99\": " << h.Quantile(0.99) << "}";
}

void AppendLaneJson(std::ostream& out, const std::string& name,
                    const LoadReport& report) {
  out << "    {\"name\": \"" << name << "\", \"substrate\": \""
      << report.substrate << "\", \"policy\": \"" << report.policy
      << "\", \"rate\": " << report.rate << ",\n"
      << "     \"jobs\": " << report.total_jobs
      << ", \"tasks\": " << report.total_tasks
      << ", \"placements\": " << report.placements
      << ", \"requeues\": " << report.requeues
      << ", \"makespan\": " << report.makespan
      << ", \"wall_seconds\": " << report.wall_seconds << ",\n"
      << "     \"throughput_tasks_per_vsec\": "
      << (report.makespan > 0.0
              ? static_cast<double>(report.placements) / report.makespan
              : 0.0)
      << ", \"placement_hash\": \"" << HashHex(report.placement_hash)
      << "\",\n     \"ttp_ms\": ";
  AppendSeriesJson(out, report.all);
  out << ",\n     \"per_class\": [";
  for (std::size_t c = 0; c < report.per_class.size(); ++c) {
    out << (c > 0 ? ", " : "") << "{\"class\": \""
        << report.per_class[c].label << "\", \"ttp_ms\": ";
    AppendSeriesJson(out, report.per_class[c]);
    out << "}";
  }
  out << "],\n     \"queue_depth\": [";
  for (std::size_t i = 0; i < report.queue_depth.size(); ++i)
    out << (i > 0 ? ", " : "") << "{\"t\": " << report.queue_depth[i].time
        << ", \"depth\": " << report.queue_depth[i].depth << "}";
  out << "]}";
}

int Main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"rates", "comma-separated arrival rates, jobs/sec (default 0.5,1,2)"},
       {"machines", "fleet size, alternating big/small shapes (default 60)"},
       {"duration", "arrival window in virtual seconds (default 60)"},
       {"seed", "stream seed (default 1)"},
       {"shape", "arrival shape: poisson|burst|uniform (default poisson)"},
       {"substrates", "comma-separated subset of des,mesos (default both)"},
       {"policies", "comma-separated subset of tsf,drf (default both)"},
       {"queue_interval", "queue-depth sample period, vsec (default 1)"},
       {"out", "output JSON path (default BENCH_slo.json)"},
       {"fault_plan", "chaos fault-plan file overlaid on every lane"},
       {"smoke", "run only the rate-1 lanes (CI gate subset)"}});
  const bool smoke = flags.GetBool("smoke", false);
  const std::string out_path = flags.GetString("out", "BENCH_slo.json");
  const std::string shape_name = flags.GetString("shape", "poisson");
  const std::string plan_path = flags.GetString("fault_plan", "");
  const auto machines =
      static_cast<std::size_t>(flags.GetInt("machines", 60));
  const double duration = flags.GetDouble("duration", 60.0);
  const auto seed = static_cast<std::uint64_t>(flags.GetInt("seed", 1));
  const double queue_interval = flags.GetDouble("queue_interval", 1.0);

  std::vector<double> rates;
  for (const std::string& token :
       SplitCsv(smoke ? "1" : flags.GetString("rates", "0.5,1,2")))
    rates.push_back(std::stod(token));
  const std::vector<std::string> substrates =
      SplitCsv(flags.GetString("substrates", "des,mesos"));
  const std::vector<std::string> policies =
      SplitCsv(flags.GetString("policies", "tsf,drf"));
  TSF_CHECK(!rates.empty() && !substrates.empty() && !policies.empty());

  // Optional fault overlay, compiled once per substrate. Machine faults
  // only: framework counts vary per lane, so framework-targeted kinds
  // cannot be validated against a single plan.
  std::vector<SimFault> des_faults;
  std::vector<mesos::Fault> mesos_faults;
  const bool faulted = !plan_path.empty();
  if (faulted) {
    std::ifstream in(plan_path);
    TSF_CHECK(in.good()) << "cannot read fault plan " << plan_path;
    std::stringstream text;
    text << in.rdbuf();
    const chaos::FaultPlan plan = chaos::ParseFaultPlan(text.str());
    const std::string defect = chaos::ValidateFaultPlan(plan, machines, 0);
    TSF_CHECK(defect.empty()) << "fault plan rejected: " << defect;
    des_faults = chaos::CompileForDes(plan);
    mesos_faults = chaos::CompileForMesos(plan);
  }

  std::vector<std::pair<std::string, LoadReport>> lanes;
  std::printf("%-22s %7s %7s %9s %9s %9s %9s %7s\n", "lane", "jobs", "tasks",
              "makespan", "p50 ms", "p95 ms", "p99 ms", "wall s");
  for (const double rate : rates) {
    DriverConfig config;
    config.stream.rate = rate;
    config.stream.duration = duration;
    config.stream.seed = seed;
    config.stream.shape = ShapeFromString(shape_name);
    config.num_machines = machines;
    config.queue_sample_interval = queue_interval;
    for (const std::string& substrate : substrates) {
      for (const std::string& policy : policies) {
        TSF_CHECK(policy == "tsf" || policy == "drf")
            << "unknown policy '" << policy << "' (want tsf|drf)";
        LoadReport report;
        if (substrate == "des") {
          report = RunDesLoad(
              config, policy == "tsf" ? OnlinePolicy::Tsf() : OnlinePolicy::Drf(),
              des_faults);
        } else {
          TSF_CHECK(substrate == "mesos")
              << "unknown substrate '" << substrate << "' (want des|mesos)";
          report = RunMesosLoad(config,
                                policy == "tsf" ? mesos::AllocatorPolicy::kTsf
                                                : mesos::AllocatorPolicy::kDrf,
                                mesos_faults);
        }
        // The driver labels DES lanes with OnlinePolicy::name; normalize to
        // the short flag token so lane names are substrate-uniform.
        report.policy = policy;
        const std::string name = substrate + "_" + policy + "_r" +
                                 FormatRate(rate) +
                                 (faulted ? "_faults" : "");
        std::printf("%-22s %7llu %7llu %9.2f %9.1f %9.1f %9.1f %7.3f\n",
                    name.c_str(),
                    static_cast<unsigned long long>(report.total_jobs),
                    static_cast<unsigned long long>(report.total_tasks),
                    report.makespan, report.all.ttp_ms.Quantile(0.50),
                    report.all.ttp_ms.Quantile(0.95),
                    report.all.ttp_ms.Quantile(0.99), report.wall_seconds);
        std::fflush(stdout);
        lanes.emplace_back(name, std::move(report));
      }
    }
  }

  std::ofstream out(out_path);
  TSF_CHECK(out.good()) << "cannot write " << out_path;
  out << "{\n  \"context\": {\n    \"tsf_build_type\": \""
#ifdef NDEBUG
      << "release"
#else
      << "debug"
#endif
      << "\",\n    \"seed\": " << seed << ",\n    \"machines\": " << machines
      << ",\n    \"duration\": " << duration << ",\n    \"shape\": \""
      << shape_name << "\",\n    \"queue_interval\": " << queue_interval
      << ",\n    \"smoke\": " << (smoke ? "true" : "false")
      << ",\n    \"fault_plan\": \"" << plan_path
      << "\",\n    \"latency_note\": \"ttp quantiles come from 64 log-2 "
         "buckets: relative error < 2x for values >= 1 ms, exact at bucket "
         "boundaries and under merge\"\n  },\n  \"lanes\": [\n";
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    AppendLaneJson(out, lanes[i].first, lanes[i].second);
    out << (i + 1 < lanes.size() ? "," : "") << "\n";
  }
  // The throughput-vs-latency curve per (substrate, policy): one point per
  // rate, in sweep order. Offered load is tasks/duration (what the stream
  // pushed), served throughput is placements/makespan (what the substrate
  // absorbed); the p99 knee between them is the SLO story.
  out << "  ],\n  \"curves\": [\n";
  bool first_curve = true;
  for (const std::string& substrate : substrates) {
    for (const std::string& policy : policies) {
      if (!first_curve) out << ",\n";
      first_curve = false;
      out << "    {\"substrate\": \"" << substrate << "\", \"policy\": \""
          << policy << "\", \"points\": [";
      bool first_point = true;
      for (const auto& [name, report] : lanes) {
        if (report.substrate != substrate || report.policy != policy) continue;
        if (!first_point) out << ", ";
        first_point = false;
        out << "{\"rate\": " << report.rate << ", \"offered_tasks_per_vsec\": "
            << (static_cast<double>(report.total_tasks) / duration)
            << ", \"served_tasks_per_vsec\": "
            << (report.makespan > 0.0
                    ? static_cast<double>(report.placements) / report.makespan
                    : 0.0)
            << ", \"p50_ms\": " << report.all.ttp_ms.Quantile(0.50)
            << ", \"p95_ms\": " << report.all.ttp_ms.Quantile(0.95)
            << ", \"p99_ms\": " << report.all.ttp_ms.Quantile(0.99) << "}";
      }
      out << "]}";
    }
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (%zu lanes)\n", out_path.c_str(), lanes.size());
  return 0;
}

}  // namespace
}  // namespace tsf::load

int main(int argc, char** argv) { return tsf::load::Main(argc, argv); }
