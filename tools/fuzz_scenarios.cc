// Randomized chaos fuzzer over the online stack (DESIGN.md §9).
//
// Runs seeded (workload × policy × FaultPlan) scenarios on both substrates
// — the DES with all six online policies and the Mesos-like offer loop —
// with fault injection enabled and every invariant checker armed. On a
// violation the failing plan is delta-debugged (chaos/shrink.h) down to a
// 1-minimal event sequence and written as a repro file replayable by
// scenario_replay_test.
//
//   tools/fuzz_scenarios --seeds=256 --repro_dir=out/repros
//   tools/fuzz_scenarios --smoke                  # CI lane: 64 seeds
//   tools/fuzz_scenarios --inject_bug=leak_task_on_crash --repro_dir=out
//
// With --inject_bug the exit code inverts into a harness self-test: the
// run fails unless the planted bug is caught, shrunk to a small plan, and
// its repro replays deterministically.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "chaos/repro.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

using tsf::chaos::FaultPlan;
using tsf::chaos::Repro;
using tsf::chaos::ScenarioReport;
using tsf::chaos::ShrinkResult;
using tsf::chaos::Violation;

struct Failure {
  Repro repro;
  std::size_t original_events = 0;
  std::size_t predicate_calls = 0;
};

void WriteRepro(const std::string& repro_dir, const Failure& failure,
                std::size_t index) {
  if (repro_dir.empty()) return;
  const std::string path = repro_dir + "/repro_" + failure.repro.substrate +
                           "_" + std::to_string(index) + ".txt";
  std::ofstream out(path);
  TSF_CHECK(out.good()) << "cannot write " << path;
  out << tsf::chaos::SerializeRepro(failure.repro);
  std::printf("  repro written: %s\n", path.c_str());
}

// Shrinks a failing plan and packages the repro. The predicate re-runs the
// full scenario per candidate, so shrinking is itself a determinism test:
// a flaky failure would not survive ddmin.
Failure Shrink(const Repro& seed_repro, const FaultPlan& failing_plan,
               const std::function<bool(const FaultPlan&)>& still_fails,
               const std::string& first_violation) {
  const ShrinkResult shrunk =
      tsf::chaos::ShrinkFaultPlan(failing_plan, still_fails);
  Failure failure;
  failure.repro = seed_repro;
  failure.repro.plan = shrunk.plan;
  failure.repro.violation = first_violation;
  failure.original_events = failing_plan.events.size();
  failure.predicate_calls = shrunk.predicate_calls;
  return failure;
}

}  // namespace

int main(int argc, char** argv) {
  tsf::Flags flags(
      argc, argv,
      {{"seeds", "number of scenario seeds per substrate (default 256)"},
       {"first_seed", "first seed (default 1)"},
       {"smoke", "CI smoke lane: cap seeds at 64"},
       {"substrate", "des | mesos | both (default both)"},
       {"cluster_mode",
        "auto | flat | collapsed — DES machine-set representation "
        "(default auto)"},
       {"repro_dir", "directory for repro files of failing scenarios"},
       {"inject_bug",
        "none | leak_task_on_crash — plant a bug and require the harness "
        "to catch it (harness self-test)"}});
  std::size_t seeds = static_cast<std::size_t>(flags.GetInt("seeds", 256));
  const auto first_seed =
      static_cast<std::uint64_t>(flags.GetInt("first_seed", 1));
  if (flags.GetBool("smoke", false)) seeds = std::min<std::size_t>(seeds, 64);
  const std::string substrate = flags.GetString("substrate", "both");
  const std::string mode_name = flags.GetString("cluster_mode", "auto");
  tsf::ClusterMode cluster_mode = tsf::ClusterMode::kAuto;
  if (mode_name == "flat") {
    cluster_mode = tsf::ClusterMode::kFlat;
  } else if (mode_name == "collapsed") {
    cluster_mode = tsf::ClusterMode::kCollapsed;
  } else {
    TSF_CHECK(mode_name == "auto")
        << "unknown cluster mode '" << mode_name << "'";
  }
  const std::string repro_dir = flags.GetString("repro_dir", "");
  const std::string inject_bug = flags.GetString("inject_bug", "none");
  const bool run_des = substrate == "both" || substrate == "des";
  const bool run_mesos = substrate == "both" || substrate == "mesos";
  TSF_CHECK(run_des || run_mesos) << "unknown substrate '" << substrate << "'";
  TSF_CHECK(inject_bug == "none" || inject_bug == "leak_task_on_crash")
      << "unknown injected bug '" << inject_bug << "'";
  const bool bug_armed = inject_bug != "none";
  if (bug_armed)
    tsf::mesos::SetInjectedBugForTesting(
        tsf::mesos::InjectedBug::kLeakTaskOnCrash);

  std::size_t scenarios = 0;
  std::vector<Failure> failures;

  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    if (run_des && !bug_armed) {  // the injectable bug lives in the master
      // Two DES generators: the legacy all-distinct clusters and the
      // class-collapsible uniform clusters, where the equivalence-class
      // scheduler engages (under --cluster_mode=collapsed it is forced on
      // both).
      const struct {
        const char* substrate;
        tsf::chaos::DesScenario scenario;
      } des_lanes[] = {
          {"des", tsf::chaos::RandomDesScenario(seed)},
          {"des-uniform", tsf::chaos::RandomUniformDesScenario(seed)},
      };
      for (const auto& lane : des_lanes) {
        for (const tsf::OnlinePolicy& policy :
             tsf::chaos::AllOnlinePolicies()) {
          ++scenarios;
          const ScenarioReport report = tsf::chaos::RunDesScenario(
              lane.scenario.workload, policy, lane.scenario.plan,
              tsf::SimCore::kIncremental, cluster_mode);
          if (report.ok()) continue;
          std::printf("FAIL %s seed=%llu policy=%s: %s\n", lane.substrate,
                      static_cast<unsigned long long>(seed),
                      policy.name.c_str(),
                      tsf::chaos::ToString(report.violations.front()).c_str());
          Repro repro;
          repro.substrate = lane.substrate;
          repro.scenario_seed = seed;
          repro.policy = policy.name;
          repro.cluster_mode = mode_name;
          failures.push_back(Shrink(
              repro, lane.scenario.plan,
              [&](const FaultPlan& candidate) {
                return !tsf::chaos::RunDesScenario(
                            lane.scenario.workload, policy, candidate,
                            tsf::SimCore::kIncremental, cluster_mode)
                            .ok();
              },
              tsf::chaos::ToString(report.violations.front())));
          WriteRepro(repro_dir, failures.back(), failures.size());
        }
      }
    }
    if (run_mesos) {
      ++scenarios;
      tsf::chaos::MesosScenario scenario =
          tsf::chaos::RandomMesosScenario(seed);
      const ScenarioReport report = tsf::chaos::RunMesosScenario(scenario);
      if (!report.ok()) {
        std::printf("FAIL mesos seed=%llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    tsf::chaos::ToString(report.violations.front()).c_str());
        Repro repro;
        repro.substrate = "mesos";
        repro.scenario_seed = seed;
        repro.injected_bug = inject_bug;
        failures.push_back(Shrink(
            repro, scenario.plan,
            [&](const FaultPlan& candidate) {
              tsf::chaos::MesosScenario shrunk = scenario;
              shrunk.plan = candidate;
              return !tsf::chaos::RunMesosScenario(shrunk).ok();
            },
            tsf::chaos::ToString(report.violations.front())));
        WriteRepro(repro_dir, failures.back(), failures.size());
        if (bug_armed) break;  // one caught + shrunk repro is enough
      }
    }
  }

  if (bug_armed)
    tsf::mesos::SetInjectedBugForTesting(tsf::mesos::InjectedBug::kNone);

  std::printf("fuzz_scenarios: %zu scenarios, %zu failure(s)\n", scenarios,
              failures.size());
  for (const Failure& failure : failures)
    std::printf("  %s seed=%llu policy=%s: shrunk %zu -> %zu events "
                "(%zu replays): %s\n",
                failure.repro.substrate.c_str(),
                static_cast<unsigned long long>(failure.repro.scenario_seed),
                failure.repro.policy.c_str(), failure.original_events,
                failure.repro.plan.events.size(), failure.predicate_calls,
                failure.repro.violation.c_str());

  if (!bug_armed) return failures.empty() ? 0 : 1;

  // Harness self-test: the planted bug must have been caught, shrunk, and
  // its repro must replay to the same class of violation.
  if (failures.empty()) {
    std::printf("inject_bug=%s was NOT caught — harness is blind\n",
                inject_bug.c_str());
    return 1;
  }
  const std::vector<Violation> replayed =
      tsf::chaos::ReplayRepro(failures.front().repro);
  if (replayed.empty()) {
    std::printf("shrunk repro does not replay — shrinker broke the repro\n");
    return 1;
  }
  std::printf("harness self-test OK: bug caught, shrunk to %zu event(s), "
              "repro replays (%s)\n",
              failures.front().repro.plan.events.size(),
              tsf::chaos::ToString(replayed.front()).c_str());
  return 0;
}
