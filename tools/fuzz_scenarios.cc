// Randomized chaos fuzzer over the online stack (DESIGN.md §9, §13).
//
// Two modes share one binary:
//
// Blind (default): runs seeded (workload × policy × FaultPlan) scenarios on
// both substrates — the DES with all six online policies and the Mesos-like
// offer loop — with fault injection enabled and every invariant checker
// armed. On a violation the failing plan is delta-debugged (chaos/shrink.h)
// down to a 1-minimal event sequence and written as a repro file replayable
// by scenario_replay_test.
//
// Guided (--guided): feedback-driven scenario search (chaos/search.h). One
// base scenario per lane (--first_seed) is mutated at FaultPlan-atom
// granularity; runs that light new checker branches, new fault
// interleavings, or larger fairness gaps are kept in a corpus that seeds
// future runs (--corpus_dir to load, --corpus_out to write). The loop is
// seed-deterministic: same --first_seed/--search_seed and corpus give
// identical execution sequences and corpus hashes.
//
//   tools/fuzz_scenarios --seeds=256 --repro_dir=out/repros
//   tools/fuzz_scenarios --smoke                  # CI lane: 64 seeds
//   tools/fuzz_scenarios --inject_bug=leak_task_on_crash --repro_dir=out
//   tools/fuzz_scenarios --guided --corpus_dir=tests/corpus --max_execs=96
//   tools/fuzz_scenarios --guided --corpus_out=tests/corpus  # regenerate
//
// Flag interaction: --smoke caps --seeds at 64 (blind) and --max_execs at
// 96 (guided); an explicit larger value is clamped with a warning so a CI
// lane cannot silently run the full campaign. With --inject_bug the exit
// code inverts into a harness self-test: the run fails unless the planted
// bug is caught, shrunk to a small plan, and its repro replays
// deterministically (guided mode must catch it within --max_execs).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/repro.h"
#include "chaos/scenario.h"
#include "chaos/search.h"
#include "chaos/shrink.h"
#include "util/check.h"
#include "util/flags.h"

namespace {

using tsf::chaos::BlindSweepResult;
using tsf::chaos::ChaosCoverage;
using tsf::chaos::CorpusEntry;
using tsf::chaos::FaultPlan;
using tsf::chaos::Repro;
using tsf::chaos::ScenarioReport;
using tsf::chaos::SearchOptions;
using tsf::chaos::SearchResult;
using tsf::chaos::ShrinkResult;
using tsf::chaos::Violation;

struct Failure {
  Repro repro;
  std::size_t original_events = 0;
  std::size_t predicate_calls = 0;
};

void WriteRepro(const std::string& repro_dir, const Failure& failure,
                std::size_t index) {
  if (repro_dir.empty()) return;
  const std::string path = repro_dir + "/repro_" + failure.repro.substrate +
                           "_" + std::to_string(index) + ".txt";
  std::ofstream out(path);
  TSF_CHECK(out.good()) << "cannot write " << path;
  out << tsf::chaos::SerializeRepro(failure.repro);
  std::printf("  repro written: %s\n", path.c_str());
}

// Shrinks a failing plan and packages the repro. The predicate re-runs the
// full scenario per candidate, so shrinking is itself a determinism test:
// a flaky failure would not survive ddmin.
Failure Shrink(const Repro& seed_repro, const FaultPlan& failing_plan,
               const std::function<bool(const FaultPlan&)>& still_fails,
               const std::string& first_violation) {
  const ShrinkResult shrunk =
      tsf::chaos::ShrinkFaultPlan(failing_plan, still_fails);
  Failure failure;
  failure.repro = seed_repro;
  failure.repro.plan = shrunk.plan;
  failure.repro.violation = first_violation;
  failure.original_events = failing_plan.events.size();
  failure.predicate_calls = shrunk.predicate_calls;
  return failure;
}

// Loads every corpus_*.txt of `dir` in sorted filename order (the search's
// determinism contract needs a stable load order).
std::vector<Repro> LoadCorpus(const std::string& dir) {
  std::vector<Repro> corpus;
  if (dir.empty() || !std::filesystem::is_directory(dir)) return corpus;
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("corpus_", 0) == 0 && name.size() > 4 &&
        name.substr(name.size() - 4) == ".txt")
      paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const std::filesystem::path& path : paths) {
    std::ifstream in(path);
    TSF_CHECK(in.good()) << "cannot read " << path.string();
    std::ostringstream text;
    text << in.rdbuf();
    corpus.push_back(tsf::chaos::ParseRepro(text.str()));
  }
  return corpus;
}

// Writes the admitted corpus as corpus_<substrate>_<planhash>.txt files —
// content-addressed names, so regenerating an unchanged corpus is a no-op
// under git.
void WriteCorpus(const std::string& dir,
                 const std::vector<CorpusEntry>& corpus) {
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  std::size_t written = 0;
  for (const CorpusEntry& entry : corpus) {
    char hash[32];
    std::snprintf(hash, sizeof hash, "%016llx",
                  static_cast<unsigned long long>(entry.plan_hash));
    const std::string path =
        dir + "/corpus_" + entry.repro.substrate + "_" + hash + ".txt";
    std::ofstream out(path);
    TSF_CHECK(out.good()) << "cannot write " << path;
    out << tsf::chaos::SerializeRepro(entry.repro);
    ++written;
  }
  std::printf("corpus written: %zu entries -> %s\n", written, dir.c_str());
}

int RunGuided(const tsf::Flags& flags, const std::string& substrate,
              const std::string& mode_name, const std::string& repro_dir,
              const std::string& inject_bug, std::uint64_t first_seed) {
  const bool bug_armed = inject_bug != "none";
  SearchOptions options;
  // The injectable bug lives in the Mesos master, so the self-test lane
  // searches mesos only (matching the blind mode's lane skip).
  options.substrate = bug_armed ? "mesos" : substrate;
  options.policy = flags.GetString("policy", "TSF");
  options.scenario_seed = first_seed;
  options.search_seed =
      static_cast<std::uint64_t>(flags.GetInt("search_seed", 1));
  options.heuristic = flags.GetString("heuristic", "score");
  options.cluster_mode = mode_name;
  options.max_execs =
      static_cast<std::size_t>(flags.GetInt("max_execs", 256));
  if (flags.GetBool("smoke", false) && options.max_execs > 96) {
    if (flags.Has("max_execs"))
      std::printf("warning: --smoke caps --max_execs at 96 (got %zu)\n",
                  options.max_execs);
    options.max_execs = 96;
  }
  options.corpus = LoadCorpus(flags.GetString("corpus_dir", ""));

  if (bug_armed)
    tsf::mesos::SetInjectedBugForTesting(
        tsf::mesos::InjectedBug::kLeakTaskOnCrash);
  const SearchResult result = tsf::chaos::RunGuidedSearch(options);
  if (bug_armed)
    tsf::mesos::SetInjectedBugForTesting(tsf::mesos::InjectedBug::kNone);

  std::printf(
      "guided search: %zu execs, %zu corpus entries (%zu seeded), "
      "coverage %zu/%zu branches\n",
      result.executions, result.corpus.size(), options.corpus.size(),
      result.coverage.Count(), ChaosCoverage::kBits);
  std::printf(
      "  heuristic=%s dup_plans=%zu inapplicable=%zu corpus_hash=%016llx "
      "frontier_hash=%016llx\n",
      options.heuristic.c_str(), result.duplicate_plans,
      result.inapplicable_mutations,
      static_cast<unsigned long long>(result.corpus_hash),
      static_cast<unsigned long long>(result.frontier_hash));

  WriteCorpus(flags.GetString("corpus_out", ""), result.corpus);

  std::vector<Failure> failures;
  for (const Repro& violating : result.violations) {
    std::printf("FAIL %s seed=%llu policy=%s: %s\n",
                violating.substrate.c_str(),
                static_cast<unsigned long long>(violating.scenario_seed),
                violating.policy.c_str(), violating.violation.c_str());
    // ReplayRepro re-arms the repro's own injected bug, so the shrink
    // predicate is self-contained.
    Repro seed_repro = violating;
    seed_repro.injected_bug = inject_bug;
    failures.push_back(Shrink(
        seed_repro, violating.plan,
        [&](const FaultPlan& candidate) {
          Repro attempt = seed_repro;
          attempt.plan = candidate;
          return !tsf::chaos::ReplayRepro(attempt).empty();
        },
        violating.violation));
    WriteRepro(repro_dir, failures.back(), failures.size());
  }
  for (const Failure& failure : failures)
    std::printf("  %s seed=%llu policy=%s: shrunk %zu -> %zu events "
                "(%zu replays): %s\n",
                failure.repro.substrate.c_str(),
                static_cast<unsigned long long>(failure.repro.scenario_seed),
                failure.repro.policy.c_str(), failure.original_events,
                failure.repro.plan.events.size(), failure.predicate_calls,
                failure.repro.violation.c_str());

  if (!bug_armed) return failures.empty() ? 0 : 1;
  if (failures.empty()) {
    std::printf("inject_bug=%s was NOT caught in %zu execs — guided search "
                "is blind\n",
                inject_bug.c_str(), result.executions);
    return 1;
  }
  const std::vector<Violation> replayed =
      tsf::chaos::ReplayRepro(failures.front().repro);
  if (replayed.empty()) {
    std::printf("shrunk repro does not replay — shrinker broke the repro\n");
    return 1;
  }
  std::printf("guided self-test OK: bug caught at exec %zu, shrunk to %zu "
              "event(s), repro replays (%s)\n",
              result.executions_to_violation,
              failures.front().repro.plan.events.size(),
              tsf::chaos::ToString(replayed.front()).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tsf::Flags flags(
      argc, argv,
      {{"seeds", "number of scenario seeds per substrate (default 256)"},
       {"first_seed", "first seed (default 1)"},
       {"smoke", "CI smoke lane: cap seeds at 64 and max_execs at 96"},
       {"substrate", "des | des-uniform | mesos | both (default both)"},
       {"cluster_mode",
        "auto | flat | collapsed — DES machine-set representation "
        "(default auto)"},
       {"repro_dir", "directory for repro files of failing scenarios"},
       {"inject_bug",
        "none | leak_task_on_crash — plant a bug and require the harness "
        "to catch it (harness self-test)"},
       {"guided", "feedback-driven search instead of the blind sweep"},
       {"corpus_dir", "guided: committed corpus to seed the search from"},
       {"corpus_out", "guided: directory to write the grown corpus to"},
       {"heuristic", "guided: bfs | dfs | score frontier order (default "
                     "score)"},
       {"max_execs", "guided: scenario-run budget (default 256)"},
       {"search_seed", "guided: mutation stream seed (default 1)"},
       {"policy", "guided: DES-lane online policy (default TSF)"}});
  std::size_t seeds = static_cast<std::size_t>(flags.GetInt("seeds", 256));
  const auto first_seed =
      static_cast<std::uint64_t>(flags.GetInt("first_seed", 1));
  if (flags.GetBool("smoke", false) && seeds > 64) {
    // Warn on an explicit larger ask; clamping it silently made CI lanes
    // look like full campaigns.
    if (flags.Has("seeds"))
      std::printf("warning: --smoke caps --seeds at 64 (got %zu)\n", seeds);
    seeds = 64;
  }
  const std::string substrate = flags.GetString("substrate", "both");
  const std::string mode_name = flags.GetString("cluster_mode", "auto");
  tsf::ClusterMode cluster_mode = tsf::ClusterMode::kAuto;
  if (mode_name == "flat") {
    cluster_mode = tsf::ClusterMode::kFlat;
  } else if (mode_name == "collapsed") {
    cluster_mode = tsf::ClusterMode::kCollapsed;
  } else {
    TSF_CHECK(mode_name == "auto")
        << "unknown cluster mode '" << mode_name << "'";
  }
  const std::string repro_dir = flags.GetString("repro_dir", "");
  const std::string inject_bug = flags.GetString("inject_bug", "none");
  const bool run_des = substrate == "both" || substrate == "des" ||
                       substrate == "des-uniform";
  const bool run_mesos = substrate == "both" || substrate == "mesos";
  TSF_CHECK(run_des || run_mesos) << "unknown substrate '" << substrate << "'";
  TSF_CHECK(inject_bug == "none" || inject_bug == "leak_task_on_crash")
      << "unknown injected bug '" << inject_bug << "'";

  if (flags.GetBool("guided", false))
    return RunGuided(flags, substrate, mode_name, repro_dir, inject_bug,
                     first_seed);

  const bool bug_armed = inject_bug != "none";
  if (bug_armed)
    tsf::mesos::SetInjectedBugForTesting(
        tsf::mesos::InjectedBug::kLeakTaskOnCrash);

  std::size_t scenarios = 0;
  std::vector<Failure> failures;

  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    if (run_des && !bug_armed) {  // the injectable bug lives in the master
      // Two DES generators: the legacy all-distinct clusters and the
      // class-collapsible uniform clusters, where the equivalence-class
      // scheduler engages (under --cluster_mode=collapsed it is forced on
      // both).
      const struct {
        const char* substrate;
        tsf::chaos::DesScenario scenario;
      } des_lanes[] = {
          {"des", tsf::chaos::RandomDesScenario(seed)},
          {"des-uniform", tsf::chaos::RandomUniformDesScenario(seed)},
      };
      for (const auto& lane : des_lanes) {
        if (substrate != "both" && substrate != lane.substrate) continue;
        for (const tsf::OnlinePolicy& policy :
             tsf::chaos::AllOnlinePolicies()) {
          ++scenarios;
          const ScenarioReport report = tsf::chaos::RunDesScenario(
              lane.scenario.workload, policy, lane.scenario.plan,
              tsf::SimCore::kIncremental, cluster_mode);
          if (report.ok()) continue;
          std::printf("FAIL %s seed=%llu policy=%s: %s\n", lane.substrate,
                      static_cast<unsigned long long>(seed),
                      policy.name.c_str(),
                      tsf::chaos::ToString(report.violations.front()).c_str());
          Repro repro;
          repro.substrate = lane.substrate;
          repro.scenario_seed = seed;
          repro.policy = policy.name;
          repro.cluster_mode = mode_name;
          failures.push_back(Shrink(
              repro, lane.scenario.plan,
              [&](const FaultPlan& candidate) {
                return !tsf::chaos::RunDesScenario(
                            lane.scenario.workload, policy, candidate,
                            tsf::SimCore::kIncremental, cluster_mode)
                            .ok();
              },
              tsf::chaos::ToString(report.violations.front())));
          WriteRepro(repro_dir, failures.back(), failures.size());
        }
      }
    }
    if (run_mesos) {
      ++scenarios;
      tsf::chaos::MesosScenario scenario =
          tsf::chaos::RandomMesosScenario(seed);
      const ScenarioReport report = tsf::chaos::RunMesosScenario(scenario);
      if (!report.ok()) {
        std::printf("FAIL mesos seed=%llu: %s\n",
                    static_cast<unsigned long long>(seed),
                    tsf::chaos::ToString(report.violations.front()).c_str());
        Repro repro;
        repro.substrate = "mesos";
        repro.scenario_seed = seed;
        repro.injected_bug = inject_bug;
        failures.push_back(Shrink(
            repro, scenario.plan,
            [&](const FaultPlan& candidate) {
              tsf::chaos::MesosScenario shrunk = scenario;
              shrunk.plan = candidate;
              return !tsf::chaos::RunMesosScenario(shrunk).ok();
            },
            tsf::chaos::ToString(report.violations.front())));
        WriteRepro(repro_dir, failures.back(), failures.size());
        if (bug_armed) break;  // one caught + shrunk repro is enough
      }
    }
  }

  if (bug_armed)
    tsf::mesos::SetInjectedBugForTesting(tsf::mesos::InjectedBug::kNone);

  std::printf("fuzz_scenarios: %zu scenarios, %zu failure(s)\n", scenarios,
              failures.size());
  for (const Failure& failure : failures)
    std::printf("  %s seed=%llu policy=%s: shrunk %zu -> %zu events "
                "(%zu replays): %s\n",
                failure.repro.substrate.c_str(),
                static_cast<unsigned long long>(failure.repro.scenario_seed),
                failure.repro.policy.c_str(), failure.original_events,
                failure.repro.plan.events.size(), failure.predicate_calls,
                failure.repro.violation.c_str());

  if (!bug_armed) return failures.empty() ? 0 : 1;

  // Harness self-test: the planted bug must have been caught, shrunk, and
  // its repro must replay to the same class of violation.
  if (failures.empty()) {
    std::printf("inject_bug=%s was NOT caught — harness is blind\n",
                inject_bug.c_str());
    return 1;
  }
  const std::vector<Violation> replayed =
      tsf::chaos::ReplayRepro(failures.front().repro);
  if (replayed.empty()) {
    std::printf("shrunk repro does not replay — shrinker broke the repro\n");
    return 1;
  }
  std::printf("harness self-test OK: bug caught, shrunk to %zu event(s), "
              "repro replays (%s)\n",
              failures.front().repro.plan.events.size(),
              tsf::chaos::ToString(replayed.front()).c_str());
  return 0;
}
