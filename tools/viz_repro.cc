// Repro visualizer: replays a committed chaos repro (src/chaos/repro.h) and
// renders the recorded scheduler stream for humans.
//
// Two output formats:
//   --format=trace  Chrome/Perfetto trace-event JSON (load in ui.perfetto.dev
//                   or chrome://tracing). Machines are threads of a
//                   "machines" process: each task is a span from placement
//                   to finish/kill/fail, each crash..restart window is a
//                   "DOWN" span, requeue events are instants. Users are
//                   threads of a "users" process (arrival instants,
//                   disconnect..re-register spans). Invariant violations —
//                   the reason the repro exists — land on a "checker"
//                   process as instants carrying the violation detail.
//   --format=dot    Graphviz placement graph: user -> machine edges labeled
//                   with placement/kill/fail counts, violations as red
//                   octagons attached to the event's machine.
//
// Times are virtual seconds; the trace encodes them as microseconds (the
// trace-event unit), so 1 virtual second reads as 1 ms in the viewer with
// displayTimeUnit=ms.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/invariants.h"
#include "chaos/repro.h"
#include "telemetry/metrics.h"
#include "util/check.h"
#include "util/flags.h"

namespace tsf::chaos {
namespace {

using Kind = StreamEvent::Kind;

constexpr int kMachinesPid = 1;
constexpr int kUsersPid = 2;
constexpr int kCheckerPid = 3;

long Micros(double seconds) { return static_cast<long>(seconds * 1e6); }

std::string Escaped(const std::string& text) {
  std::string out;
  telemetry::AppendJsonEscaped(out, text);
  return out;
}

void EmitMeta(std::ostream& out, int pid, const std::string& process,
              const std::map<std::uint32_t, std::string>& threads) {
  out << "  {\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " << pid
      << ", \"args\": {\"name\": \"" << process << "\"}},\n";
  for (const auto& [tid, name] : threads)
    out << "  {\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " << pid
        << ", \"tid\": " << tid << ", \"args\": {\"name\": \"" << name
        << "\"}},\n";
}

void EmitSpan(std::ostream& out, int pid, std::uint32_t tid,
              const std::string& name, const std::string& cat, double start,
              double end, const std::string& args) {
  out << "  {\"ph\": \"X\", \"pid\": " << pid << ", \"tid\": " << tid
      << ", \"name\": \"" << name << "\", \"cat\": \"" << cat
      << "\", \"ts\": " << Micros(start)
      << ", \"dur\": " << Micros(end - start) << ", \"args\": {" << args
      << "}},\n";
}

void EmitInstant(std::ostream& out, int pid, std::uint32_t tid,
                 const std::string& name, const std::string& cat, double time,
                 const std::string& args) {
  out << "  {\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
      << ", \"tid\": " << tid << ", \"name\": \"" << name << "\", \"cat\": \""
      << cat << "\", \"ts\": " << Micros(time) << ", \"args\": {" << args
      << "}},\n";
}

// An open task span: placement instant waiting for its finish/kill/fail.
struct OpenTask {
  double start = 0.0;
  std::uint32_t user = 0;
  std::uint32_t machine = 0;
};

void WriteTrace(std::ostream& out, const Repro& repro,
                const ScenarioReport& report) {
  double horizon = 0.0;
  for (const StreamEvent& event : report.stream)
    horizon = std::max(horizon, event.time);
  for (const Violation& violation : report.violations)
    horizon = std::max(horizon, violation.time);

  std::map<std::uint32_t, std::string> machine_names;
  std::map<std::uint32_t, std::string> user_names;
  for (const StreamEvent& event : report.stream) {
    if (event.kind == Kind::kPlace || event.kind == Kind::kCrash ||
        event.kind == Kind::kRestart)
      machine_names.try_emplace(event.machine,
                                "machine " + std::to_string(event.machine));
    user_names.try_emplace(event.user, "user " + std::to_string(event.user));
  }

  out << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  EmitMeta(out, kMachinesPid, "machines (repro: " + Escaped(repro.substrate) +
                                  " seed " +
                                  std::to_string(repro.scenario_seed) + ")",
           machine_names);
  EmitMeta(out, kUsersPid, "users", user_names);
  EmitMeta(out, kCheckerPid, "checker", {{0, "violations"}});

  std::map<std::uint32_t, OpenTask> live;        // task id -> open span
  std::map<std::uint32_t, double> down_since;    // machine -> crash time
  std::map<std::uint32_t, double> disconnected;  // user -> disconnect time
  auto close_task = [&](const StreamEvent& event, const char* outcome) {
    const auto it = live.find(event.task);
    if (it == live.end()) return;  // defective streams are still renderable
    EmitSpan(out, kMachinesPid, it->second.machine,
             "u" + std::to_string(it->second.user) + " t" +
                 std::to_string(event.task),
             outcome, it->second.start, event.time,
             "\"user\": " + std::to_string(it->second.user) +
                 ", \"outcome\": \"" + outcome + "\"");
    live.erase(it);
  };
  for (const StreamEvent& event : report.stream) {
    switch (event.kind) {
      case Kind::kArrive:
        EmitInstant(out, kUsersPid, event.user, "arrive", "lifecycle",
                    event.time, "");
        break;
      case Kind::kPlace:
        live[event.task] = {event.time, event.user, event.machine};
        break;
      case Kind::kFinish:
        close_task(event, "finished");
        break;
      case Kind::kKill:
        close_task(event, "killed");
        EmitInstant(out, kMachinesPid, event.machine, "kill", "fault",
                    event.time, "\"task\": " + std::to_string(event.task));
        break;
      case Kind::kFail:
        close_task(event, "failed");
        EmitInstant(out, kMachinesPid, event.machine, "fail", "fault",
                    event.time, "\"task\": " + std::to_string(event.task));
        break;
      case Kind::kCrash:
        down_since[event.machine] = event.time;
        break;
      case Kind::kRestart:
        if (const auto it = down_since.find(event.machine);
            it != down_since.end()) {
          EmitSpan(out, kMachinesPid, event.machine, "DOWN", "outage",
                   it->second, event.time, "");
          down_since.erase(it);
        }
        break;
      case Kind::kDisconnect:
        disconnected[event.user] = event.time;
        break;
      case Kind::kReregister:
        if (const auto it = disconnected.find(event.user);
            it != disconnected.end()) {
          EmitSpan(out, kUsersPid, event.user, "disconnected", "outage",
                   it->second, event.time, "");
          disconnected.erase(it);
        }
        break;
    }
  }
  // A violating stream can end with spans still open (e.g. a leaked task);
  // draw them to the horizon so the leak is visible, not dropped.
  for (const auto& [task, open] : live)
    EmitSpan(out, kMachinesPid, open.machine,
             "u" + std::to_string(open.user) + " t" + std::to_string(task) +
                 " (unresolved)",
             "leaked", open.start, horizon,
             "\"user\": " + std::to_string(open.user));
  for (const auto& [machine, since] : down_since)
    EmitSpan(out, kMachinesPid, machine, "DOWN (unrestored)", "outage", since,
             horizon, "");
  for (const auto& [user, since] : disconnected)
    EmitSpan(out, kUsersPid, user, "disconnected (unrestored)", "outage",
             since, horizon, "");

  for (const Violation& violation : report.violations)
    EmitInstant(out, kCheckerPid, 0, Escaped(violation.invariant), "violation",
                violation.time,
                "\"detail\": \"" + Escaped(violation.detail) +
                    "\", \"event_index\": " +
                    std::to_string(violation.event_index));

  // Closing sentinel so every real event line could end with a comma.
  out << "  {\"ph\": \"M\", \"name\": \"process_sort_index\", \"pid\": "
      << kCheckerPid << ", \"args\": {\"sort_index\": -1}}\n]\n}\n";
}

void WriteDot(std::ostream& out, const Repro& repro,
              const ScenarioReport& report) {
  struct EdgeStats {
    long placed = 0;
    long killed = 0;
    long failed = 0;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, EdgeStats> edges;
  std::map<std::uint32_t, OpenTask> live;
  std::map<std::uint32_t, long> crashes;  // machine -> crash count
  for (const StreamEvent& event : report.stream) {
    switch (event.kind) {
      case Kind::kPlace:
        live[event.task] = {event.time, event.user, event.machine};
        edges[{event.user, event.machine}].placed++;
        break;
      case Kind::kKill:
        if (const auto it = live.find(event.task); it != live.end()) {
          edges[{it->second.user, it->second.machine}].killed++;
          live.erase(it);
        }
        break;
      case Kind::kFail:
        if (const auto it = live.find(event.task); it != live.end()) {
          edges[{it->second.user, it->second.machine}].failed++;
          live.erase(it);
        }
        break;
      case Kind::kFinish:
        live.erase(event.task);
        break;
      case Kind::kCrash:
        crashes[event.machine]++;
        break;
      default:
        break;
    }
  }

  out << "digraph repro {\n  rankdir=LR;\n  label=\"" << repro.substrate
      << " seed " << repro.scenario_seed << " policy " << repro.policy
      << (report.ok() ? " (clean)" : " (VIOLATIONS)") << "\";\n";
  std::map<std::uint32_t, bool> machines;
  std::map<std::uint32_t, bool> users;
  for (const auto& [key, stats] : edges) {
    users[key.first] = true;
    machines[key.second] = true;
  }
  for (const auto& [machine, count] : crashes) machines[machine] = true;
  for (const auto& [user, unused] : users)
    out << "  u" << user << " [label=\"user " << user << "\"];\n";
  for (const auto& [machine, unused] : machines) {
    const long crash_count =
        crashes.count(machine) != 0 ? crashes.at(machine) : 0;
    out << "  m" << machine << " [shape=box, label=\"machine " << machine
        << (crash_count > 0
                ? "\\n" + std::to_string(crash_count) + " crash(es)\""
                  ", style=filled, fillcolor=lightyellow"
                : "\"")
        << "];\n";
  }
  for (const auto& [key, stats] : edges) {
    out << "  u" << key.first << " -> m" << key.second << " [label=\""
        << stats.placed << " placed";
    if (stats.killed > 0) out << ", " << stats.killed << " killed";
    if (stats.failed > 0) out << ", " << stats.failed << " failed";
    out << "\"";
    if (stats.killed + stats.failed > 0) out << ", color=orange";
    out << "];\n";
  }
  for (std::size_t v = 0; v < report.violations.size(); ++v) {
    const Violation& violation = report.violations[v];
    out << "  v" << v << " [shape=octagon, color=red, fontcolor=red, "
        << "label=\"" << violation.invariant << "\\nt="
        << violation.time << "\"];\n";
    if (violation.event_index < report.stream.size())
      out << "  v" << v << " -> m"
          << report.stream[violation.event_index].machine
          << " [style=dashed, color=red];\n";
  }
  out << "}\n";
}

int Main(int argc, char** argv) {
  const Flags flags(
      argc, argv,
      {{"repro", "repro file to replay (or pass it as the positional arg)"},
       {"format", "trace (Chrome/Perfetto JSON, default) or dot (graphviz)"},
       {"out", "output path (default <repro>.trace.json / <repro>.dot)"}});
  std::string repro_path = flags.GetString("repro", "");
  if (repro_path.empty() && !flags.positional().empty())
    repro_path = flags.positional().front();
  TSF_CHECK(!repro_path.empty())
      << "usage: viz_repro [--format=trace|dot] [--out=PATH] <repro file>";
  const std::string format = flags.GetString("format", "trace");
  TSF_CHECK(format == "trace" || format == "dot")
      << "unknown --format '" << format << "' (want trace|dot)";
  const std::string out_path = flags.GetString(
      "out", repro_path + (format == "trace" ? ".trace.json" : ".dot"));

  std::ifstream in(repro_path);
  TSF_CHECK(in.good()) << "cannot read " << repro_path;
  std::stringstream text;
  text << in.rdbuf();
  const Repro repro = ParseRepro(text.str());
  const ScenarioReport report = ReplayReproReport(repro);

  std::ofstream out(out_path);
  TSF_CHECK(out.good()) << "cannot write " << out_path;
  if (format == "trace")
    WriteTrace(out, repro, report);
  else
    WriteDot(out, repro, report);
  std::printf(
      "%s: %zu stream events, %zu violation(s)%s -> %s\n", repro_path.c_str(),
      report.stream.size(), report.violations.size(),
      report.ok() ? " (repro no longer fails — bug fixed or rotted)" : "",
      out_path.c_str());
  for (const Violation& violation : report.violations)
    std::printf("  %s\n", ToString(violation).c_str());
  return 0;
}

}  // namespace
}  // namespace tsf::chaos

int main(int argc, char** argv) { return tsf::chaos::Main(argc, argv); }
