#!/usr/bin/env sh
# Perf-regression harness: runs the core microbenchmarks and rewrites
# BENCH_core.json at the repo root, printing a before/after delta against
# the committed baseline so perf changes are visible in every PR.
#
# Usage: tools/bench_regression.sh [build-dir]   (default: build)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_perf_core"
baseline="$repo_root/BENCH_core.json"
fresh="$repo_root/BENCH_core.json.new"

if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake --build $build_dir --target bench_perf_core)" >&2
  exit 1
fi

"$bench" --benchmark_format=console \
         --benchmark_out="$fresh" --benchmark_out_format=json

if [ -f "$baseline" ]; then
  python3 - "$baseline" "$fresh" <<'EOF'
import json, sys
old = {b["name"]: b for b in json.load(open(sys.argv[1]))["benchmarks"]}
new = {b["name"]: b for b in json.load(open(sys.argv[2]))["benchmarks"]}
print(f"{'benchmark':40s} {'old':>12s} {'new':>12s} {'speedup':>8s}")
for name, b in new.items():
    if name not in old:
        print(f"{name:40s} {'-':>12s} {b['real_time']:>10.1f}{b['time_unit']:<2s}")
        continue
    o, n = old[name]["real_time"], b["real_time"]
    unit = b["time_unit"]
    print(f"{name:40s} {o:>10.1f}{unit:<2s} {n:>10.1f}{unit:<2s} {o / n:>7.2f}x")
EOF
fi

mv "$fresh" "$baseline"
echo "wrote $baseline"
