#!/usr/bin/env sh
# Perf-regression gate: runs the core microbenchmarks and compares against
# the committed baseline BENCH_core.json. Any benchmark slower than the
# baseline by more than the tolerance FAILS (non-zero exit), as does the
# telemetry-off overhead check (BM_TraceSimulation — telemetry compiled in,
# runtime-disabled, the default build — must stay within 2% of baseline).
#
# Usage:
#   tools/bench_regression.sh [build-dir]            gate; baseline untouched
#   tools/bench_regression.sh --update [build-dir]   gate, then rewrite the
#                                                    baseline IF the gate passed
#   tools/bench_regression.sh --init [build-dir]     create a missing baseline
#
# Environment:
#   TSF_BENCH_TOLERANCE_PCT   allowed slowdown per benchmark, in percent
#                             (default 10 — wall-clock on shared runners is
#                             noisy; the telemetry check stays at 2 because
#                             that benchmark is long enough to be stable)
set -eu

init=0
update=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --init) init=1; shift ;;
    --update) update=1; shift ;;
    *) break ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_perf_core"
baseline="$repo_root/BENCH_core.json"
fresh="$repo_root/BENCH_core.json.new"
tolerance="${TSF_BENCH_TOLERANCE_PCT:-10}"

# Refuses perf numbers from an unoptimized binary: a debug-built baseline
# once slipped in and made every release run look like a huge speedup while
# real regressions hid under it. bench_perf_core stamps tsf_build_type from
# its own NDEBUG; library_build_type only describes how libbenchmark was
# compiled (debug on some distro packages even for optimized builds), so it
# is merely the fallback for results predating the stamp.
check_release_build() {
  if ! python3 - "$1" <<'EOF'
import json, sys
ctx = json.load(open(sys.argv[1])).get("context", {})
bt = ctx.get("tsf_build_type", ctx.get("library_build_type", "unknown"))
if bt != "release":
    print(f"error: benchmark run reports build type '{bt}' — refusing to gate"
          " or record perf numbers from a non-release build.", file=sys.stderr)
    print("build the release preset first:", file=sys.stderr)
    print("  cmake --preset release && "
          "cmake --build --preset release --target bench_perf_core -j",
          file=sys.stderr)
    sys.exit(1)
EOF
  then
    rm -f "$1"
    exit 1
  fi
}

if [ ! -x "$bench" ]; then
  echo "error: benchmark binary $bench is missing or not executable." >&2
  echo "build it first:" >&2
  echo "  cmake -B $build_dir -S $repo_root -DTSF_BUILD_BENCH=ON" >&2
  echo "  cmake --build $build_dir --target bench_perf_core -j" >&2
  exit 1
fi

if [ ! -f "$baseline" ]; then
  if [ "$init" -eq 0 ]; then
    echo "error: baseline $baseline is missing — a diff against nothing would" >&2
    echo "silently record whatever this machine produces as the new truth." >&2
    echo "rerun as: tools/bench_regression.sh --init $build_dir" >&2
    exit 1
  fi
  "$bench" --benchmark_format=console \
           --benchmark_out="$fresh" --benchmark_out_format=json
  check_release_build "$fresh"
  mv "$fresh" "$baseline"
  echo "no baseline to diff against; created $baseline (--init)"
  exit 0
fi

"$bench" --benchmark_format=console \
         --benchmark_out="$fresh" --benchmark_out_format=json
check_release_build "$fresh"

if python3 - "$baseline" "$fresh" "$tolerance" <<'EOF'
import json, sys

def timed(path):
    # Complexity-fit rows (_BigO, _RMS) carry no real_time; skip them.
    return {b["name"]: b for b in json.load(open(path))["benchmarks"]
            if "real_time" in b}

old = timed(sys.argv[1])
new = timed(sys.argv[2])
tolerance = float(sys.argv[3])
failures = []

print(f"{'benchmark':40s} {'old':>12s} {'new':>12s} {'speedup':>8s}")
for name, b in new.items():
    if name not in old:
        print(f"{name:40s} {'-':>12s} {b['real_time']:>10.1f}{b['time_unit']:<2s}")
        continue
    o, n = old[name]["real_time"], b["real_time"]
    unit = b["time_unit"]
    slowdown_pct = (n - o) / o * 100.0
    flag = ""
    if slowdown_pct > tolerance:
        flag = "  << REGRESSION"
        failures.append(f"{name}: {slowdown_pct:+.1f}% (limit +{tolerance:g}%)")
    print(f"{name:40s} {o:>10.1f}{unit:<2s} {n:>10.1f}{unit:<2s} "
          f"{o / n:>7.2f}x{flag}")

# Telemetry-off overhead check (see tools/check_telemetry_overhead.sh for
# the stricter compiled-out vs compiled-in gate): the default build carries
# telemetry compiled in but disabled, so BM_TraceSimulation drifting beyond
# 2% of the committed baseline flags instrumentation creep on the hot path.
name = "BM_TraceSimulation"
if name in old and name in new:
    o, n = old[name]["real_time"], new[name]["real_time"]
    delta_pct = (n - o) / o * 100.0
    ok = delta_pct <= 2.0
    print(f"\ntelemetry-off overhead check: {name} {delta_pct:+.2f}% "
          f"vs baseline (limit +2%) — {'PASS' if ok else 'FAIL'}")
    if not ok:
        failures.append(f"{name} telemetry-off overhead: {delta_pct:+.2f}% "
                        "(limit +2%)")
else:
    print(f"\ntelemetry-off overhead check: {name} missing from "
          "baseline or fresh run — SKIPPED")

if failures:
    print("\nbench_regression: FAIL")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print("\nbench_regression: PASS")
EOF
then
  if [ "$update" -eq 1 ]; then
    mv "$fresh" "$baseline"
    echo "baseline updated: $baseline"
  else
    rm -f "$fresh"
  fi
else
  # Gate failed: never let a regressed run become the new baseline.
  rm -f "$fresh"
  exit 1
fi
