#!/usr/bin/env sh
# Perf-regression harness: runs the core microbenchmarks and rewrites
# BENCH_core.json at the repo root, printing a before/after delta against
# the committed baseline so perf changes are visible in every PR. The delta
# report includes the telemetry-off overhead check: BM_TraceSimulation
# (telemetry compiled in, runtime-disabled — the default build) must stay
# within 2% of the committed baseline.
#
# Usage: tools/bench_regression.sh [build-dir]   (default: build)
#        tools/bench_regression.sh --init [build-dir]   create a missing baseline
set -eu

init=0
if [ "${1:-}" = "--init" ]; then
  init=1
  shift
fi

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_perf_core"
baseline="$repo_root/BENCH_core.json"
fresh="$repo_root/BENCH_core.json.new"

if [ ! -x "$bench" ]; then
  echo "error: benchmark binary $bench is missing or not executable." >&2
  echo "build it first:" >&2
  echo "  cmake -B $build_dir -S $repo_root -DTSF_BUILD_BENCH=ON" >&2
  echo "  cmake --build $build_dir --target bench_perf_core -j" >&2
  exit 1
fi

if [ ! -f "$baseline" ] && [ "$init" -eq 0 ]; then
  echo "error: baseline $baseline is missing — a diff against nothing would" >&2
  echo "silently record whatever this machine produces as the new truth." >&2
  echo "rerun as: tools/bench_regression.sh --init $build_dir" >&2
  exit 1
fi

"$bench" --benchmark_format=console \
         --benchmark_out="$fresh" --benchmark_out_format=json

if [ -f "$baseline" ]; then
  python3 - "$baseline" "$fresh" <<'EOF'
import json, sys

def timed(path):
    # Complexity-fit rows (_BigO, _RMS) carry no real_time; skip them.
    return {b["name"]: b for b in json.load(open(path))["benchmarks"]
            if "real_time" in b}

old = timed(sys.argv[1])
new = timed(sys.argv[2])
print(f"{'benchmark':40s} {'old':>12s} {'new':>12s} {'speedup':>8s}")
for name, b in new.items():
    if name not in old:
        print(f"{name:40s} {'-':>12s} {b['real_time']:>10.1f}{b['time_unit']:<2s}")
        continue
    o, n = old[name]["real_time"], b["real_time"]
    unit = b["time_unit"]
    print(f"{name:40s} {o:>10.1f}{unit:<2s} {n:>10.1f}{unit:<2s} {o / n:>7.2f}x")

# Telemetry-off overhead check (see tools/check_telemetry_overhead.sh for
# the stricter compiled-out vs compiled-in gate): the default build carries
# telemetry compiled in but disabled, so BM_TraceSimulation drifting beyond
# 2% of the committed baseline flags instrumentation creep on the hot path.
name = "BM_TraceSimulation"
if name in old and name in new:
    o, n = old[name]["real_time"], new[name]["real_time"]
    delta_pct = (n - o) / o * 100.0
    verdict = "PASS" if delta_pct <= 2.0 else "FAIL (investigate before committing)"
    print(f"\ntelemetry-off overhead check: {name} {delta_pct:+.2f}% "
          f"vs baseline (limit +2%) — {verdict}")
else:
    print(f"\ntelemetry-off overhead check: {name} missing from "
          "baseline or fresh run — SKIPPED")
EOF
else
  echo "no baseline to diff against; creating $baseline (--init)"
fi

mv "$fresh" "$baseline"
echo "wrote $baseline"
