#!/usr/bin/env python3
"""Nondeterminism-hazard lints for placement-affecting code.

Every correctness contract in this repo — bit-identical placement streams
between the incremental cores and the ReferenceScheduler, flat==collapsed
ClusterMode equality, golden FNV-1a stream hashes, ddmin-shrinkable chaos
repros — requires the scheduling pipeline to be deterministic *by
construction*. These rules statically flag the constructs that silently break
that (see DESIGN.md §12 for the catalog and suppression policy):

  unordered-iteration  iterating a std::unordered_{map,set} (range-for or
                       explicit .begin() loops). Hash-map iteration order is
                       implementation-defined; one such loop in a
                       placement-affecting path ties golden streams to the
                       stdlib. Fix: iterate a sorted/indexed mirror, switch
                       to std::map, or suppress with a reason.
  nondet-source        rand()/srand(), std::random_device, time(...),
                       {steady,system,high_resolution}_clock::now(),
                       clock_gettime/gettimeofday. Randomness must come from
                       util/rng.h seeded streams; time must be virtual.
                       Lines inside `#if defined(TSF_TELEMETRY)` regions are
                       exempt (measurement-only by the telemetry-macros rule
                       in lint_repo.py; compiled out under TELEMETRY=OFF).
  pointer-keyed        std::map/set (ordered or unordered) keyed on a pointer
                       type, or std::less<T*> comparators: iteration order
                       becomes allocation order, which varies run to run.
                       Key on a stable id instead.
  address-hash         std::hash<T*> specializations/instantiations and
                       reinterpret_cast to (u)intptr_t — address-derived
                       values change across runs under ASLR.
  bad-suppression      a NOLINT-determinism marker without a reason; every
                       suppression is ledger material and must say why the
                       site is benign.
  stale-suppression    a NOLINT-determinism marker that no longer covers any
                       hazard — burn it down instead of letting it rot.

Suppression: append `// NOLINT-determinism(<reason>)` to the hazard line or
the line directly above it. `--list-suppressions` prints the audited ledger.

Scope: src/core, src/sim, src/mesos, src/load, src/lp, src/chaos — the code
whose outputs feed placement streams, golden hashes, or committed repros.
tools/, bench/, tests/ may read clocks and print freely.

Usage:
  tools/determinism_lint.py [--root DIR] [--format=text|github]
  tools/determinism_lint.py --self-test
  tools/determinism_lint.py --list-suppressions
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402
from lint_common import Finding  # noqa: E402

SCOPE_DIRS = ("src/core/", "src/sim/", "src/mesos/", "src/load/", "src/lp/",
              "src/chaos/")

SUPPRESS_RE = re.compile(r"//\s*NOLINT-determinism\b(?:\(([^)]*)\))?")

UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<")

TELEMETRY_IF_RE = re.compile(
    r"#\s*if\s+defined\s*\(\s*TSF_TELEMETRY\s*\)|#\s*ifdef\s+TSF_TELEMETRY")

RANGE_FOR_RE = re.compile(
    r"\bfor\s*\([^;()]*?:\s*\*?([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\)")

BEGIN_CALL_RE = re.compile(
    r"\b([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\.\s*c?begin\s*\(")

NONDET_SOURCE_RES = (
    (re.compile(r"(?<![\w.])rand\s*\(\s*\)"), "rand()"),
    (re.compile(r"(?<![\w.])srand\s*\("), "srand()"),
    (re.compile(r"std::random_device|(?<!\w)random_device\s+\w"),
     "std::random_device"),
    (re.compile(r"(?<![\w.])time\s*\(\s*(?:NULL|nullptr|0|&)"), "time()"),
    (re.compile(
        r"(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*now"),
     "wall-clock read"),
    (re.compile(r"(?<![\w.])(?:clock_gettime|gettimeofday)\s*\("),
     "wall-clock read"),
    (re.compile(r"std::random_shuffle"), "std::random_shuffle"),
)

POINTER_KEY_RES = (
    re.compile(r"std::(?:unordered_)?(?:map|multimap)\s*<\s*"
               r"(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^<>]*>)?\s*"
               r"(?:const\s*)?\*"),
    re.compile(r"std::(?:unordered_)?(?:set|multiset)\s*<\s*"
               r"(?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^<>]*>)?\s*"
               r"(?:const\s*)?\*"),
    re.compile(r"std::less\s*<[^<>]*\*\s*>"),
)

ADDRESS_HASH_RES = (
    re.compile(r"std::hash\s*<[^<>]*\*\s*>"),
    re.compile(r"reinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
)


def in_scope(path):
    return any(path.startswith(d) for d in SCOPE_DIRS)


# ---------------------------------------------------------- suppressions --


def suppression_for(raw_lines, lineno):
    """Returns the NOLINT-determinism reason covering 1-based `lineno` (its
    own line or the line directly above), or None."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(raw_lines):
            m = SUPPRESS_RE.search(raw_lines[candidate - 1])
            if m:
                return m.group(1) or ""
    return None


def iter_suppressions(text):
    """Yields (lineno, reason_or_None) for every marker in `text`."""
    for lineno, line in enumerate(text.splitlines(), 1):
        m = SUPPRESS_RE.search(line)
        if m:
            yield lineno, m.group(1)


# ----------------------------------------------------------------- rules --
# Each rule takes {relpath: text} and returns [Finding]. Detection runs on
# comment-stripped text; suppression lookup runs on the raw text.


def find_unordered_container_names(text):
    """Names of variables/fields declared with a std::unordered_* type.
    Walks the template bracket nesting so nested template arguments do not
    truncate the match."""
    names = set()
    clean = lint_common.strip_comments(text)
    for m in UNORDERED_DECL_RE.finditer(clean):
        depth = 1
        i = m.end()
        while i < len(clean) and depth > 0:
            if clean[i] == "<":
                depth += 1
            elif clean[i] == ">":
                depth -= 1
            i += 1
        if depth != 0:
            continue
        decl = re.match(r"\s*&?\s*([A-Za-z_]\w*)\s*[;={(]", clean[i:])
        if decl:
            names.add(decl.group(1))
    return names


def module_key(path):
    return os.path.splitext(path)[0]


def rule_unordered_iteration(files):
    # A container declared in foo.h may be iterated in foo.cc: pool declared
    # names per module stem so header/impl pairs share one namespace.
    names_by_module = {}
    for path, text in files.items():
        if not in_scope(path):
            continue
        names_by_module.setdefault(module_key(path), set()).update(
            find_unordered_container_names(text))

    findings = []
    for path, text in sorted(files.items()):
        if not in_scope(path):
            continue
        names = names_by_module.get(module_key(path), set())
        raw_lines = text.splitlines()
        clean = lint_common.strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), 1):
            hits = []
            for m in RANGE_FOR_RE.finditer(line):
                expr = m.group(1)
                leaf = re.split(r"\.|->", expr)[-1]
                if leaf in names:
                    hits.append(expr)
            for m in BEGIN_CALL_RE.finditer(line):
                expr = m.group(1)
                leaf = re.split(r"\.|->", expr)[-1]
                if leaf in names:
                    hits.append(f"{expr}.begin()")
            for expr in hits:
                if suppression_for(raw_lines, lineno) is not None:
                    continue
                findings.append(Finding(
                    "unordered-iteration", path, lineno,
                    f"iteration over unordered container `{expr}` — hash-map "
                    "order is implementation-defined and breaks the "
                    "deterministic-by-construction contract; iterate a "
                    "sorted/indexed mirror, use std::map, or suppress with "
                    "// NOLINT-determinism(<reason>)"))
    return findings


def rule_nondet_source(files):
    findings = []
    for path, text in sorted(files.items()):
        if not in_scope(path):
            continue
        raw_lines = text.splitlines()
        clean = lint_common.strip_comments(text)
        telemetry_region = lint_common.preprocessor_regions(
            clean, TELEMETRY_IF_RE)
        for lineno, line in enumerate(clean.splitlines(), 1):
            if lineno - 1 < len(telemetry_region) and \
                    telemetry_region[lineno - 1]:
                continue  # measurement-only: compiled out under TELEMETRY=OFF
            for pattern, what in NONDET_SOURCE_RES:
                if not pattern.search(line):
                    continue
                if suppression_for(raw_lines, lineno) is not None:
                    continue
                findings.append(Finding(
                    "nondet-source", path, lineno,
                    f"{what} in placement-affecting code — randomness must "
                    "come from seeded util/rng.h streams and time must be "
                    "virtual; move it behind #if defined(TSF_TELEMETRY) or "
                    "suppress with // NOLINT-determinism(<reason>)"))
    return findings


def rule_pointer_keyed(files):
    findings = []
    for path, text in sorted(files.items()):
        if not in_scope(path):
            continue
        raw_lines = text.splitlines()
        clean = lint_common.strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), 1):
            for pattern in POINTER_KEY_RES:
                if not pattern.search(line):
                    continue
                if suppression_for(raw_lines, lineno) is not None:
                    continue
                findings.append(Finding(
                    "pointer-keyed", path, lineno,
                    "container keyed/ordered on a pointer — iteration order "
                    "becomes allocation order, which varies run to run under "
                    "ASLR; key on a stable id (MachineId, user index, "
                    "interned string) instead"))
                break
    return findings


def rule_address_hash(files):
    findings = []
    for path, text in sorted(files.items()):
        if not in_scope(path):
            continue
        raw_lines = text.splitlines()
        clean = lint_common.strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), 1):
            for pattern in ADDRESS_HASH_RES:
                if not pattern.search(line):
                    continue
                if suppression_for(raw_lines, lineno) is not None:
                    continue
                findings.append(Finding(
                    "address-hash", path, lineno,
                    "address-derived value (std::hash<T*> / pointer-to-"
                    "intptr_t cast) — addresses change across runs under "
                    "ASLR; hash stable ids or content bytes instead"))
                break
    return findings


HAZARD_RULES = (
    rule_unordered_iteration,
    rule_nondet_source,
    rule_pointer_keyed,
    rule_address_hash,
)


def hazard_lines_without_suppression_filter(files, path):
    """1-based lines of `path` carrying any hazard, ignoring suppressions —
    used to decide whether an existing suppression still covers anything."""
    text = files[path]
    lines = set()
    clean = lint_common.strip_comments(text)
    names = set()
    for other, other_text in files.items():
        if module_key(other) == module_key(path) and in_scope(other):
            names.update(find_unordered_container_names(other_text))
    telemetry_region = lint_common.preprocessor_regions(clean, TELEMETRY_IF_RE)
    for lineno, line in enumerate(clean.splitlines(), 1):
        for m in list(RANGE_FOR_RE.finditer(line)) + \
                list(BEGIN_CALL_RE.finditer(line)):
            if re.split(r"\.|->", m.group(1))[-1] in names:
                lines.add(lineno)
        in_telemetry = lineno - 1 < len(telemetry_region) and \
            telemetry_region[lineno - 1]
        if not in_telemetry and any(
                p.search(line) for p, _ in NONDET_SOURCE_RES):
            lines.add(lineno)
        if any(p.search(line) for p in POINTER_KEY_RES + ADDRESS_HASH_RES):
            lines.add(lineno)
    return lines


def rule_suppression_hygiene(files):
    findings = []
    for path, text in sorted(files.items()):
        if not in_scope(path):
            continue
        hazards = None  # computed lazily: most files carry no markers
        for lineno, reason in iter_suppressions(text):
            if not (reason or "").strip():
                findings.append(Finding(
                    "bad-suppression", path, lineno,
                    "NOLINT-determinism without a reason — every suppression "
                    "is audited ledger material; write why this site cannot "
                    "affect placement, e.g. "
                    "// NOLINT-determinism(order-independent reduction)"))
                continue
            if hazards is None:
                hazards = hazard_lines_without_suppression_filter(files, path)
            # A marker covers its own line and the one below it.
            if lineno not in hazards and lineno + 1 not in hazards:
                findings.append(Finding(
                    "stale-suppression", path, lineno,
                    "NOLINT-determinism no longer covers any hazard on this "
                    "or the next line — delete it (burn the ledger down, "
                    "never let it rot)"))
    return findings


RULES = HAZARD_RULES + (rule_suppression_hygiene,)


# ------------------------------------------------------------- self-test --

BAD = [
    (rule_unordered_iteration,
     {"src/core/thing.cc":
      "std::unordered_map<std::string, int> pool_;\n"
      "void F() {\n  for (const auto& [k, v] : pool_) Use(k, v);\n}\n"}),
    (rule_unordered_iteration,  # nested template args must not truncate
     {"src/core/thing.cc":
      "std::unordered_map<int, std::vector<std::pair<int, int>>> waves_;\n"
      "void F() {\n  for (auto& w : waves_) Use(w);\n}\n"}),
    (rule_unordered_iteration,  # explicit iterator loop over .begin()
     {"src/core/thing.cc":
      "std::unordered_set<int> seen_;\n"
      "void F() {\n"
      "  for (auto it = seen_.begin(); it != seen_.end(); ++it) Use(*it);\n"
      "}\n"}),
    (rule_unordered_iteration,  # declared in the header, iterated in the .cc
     {"src/core/pool.h":
      "#pragma once\nstd::unordered_map<std::string, int> pool_;\n",
      "src/core/pool.cc":
      "void F() {\n  for (const auto& e : pool_) Use(e);\n}\n"}),
    (rule_unordered_iteration,  # member access spelling
     {"src/sim/thing.cc":
      "struct S { std::unordered_map<int, int> live_; };\n"
      "void F(S& s) {\n  for (auto& e : s.live_) Use(e);\n}\n"}),
    (rule_nondet_source,
     {"src/core/thing.cc": "int F() { return rand(); }\n"}),
    (rule_nondet_source,
     {"src/sim/thing.cc":
      "std::mt19937 F() { std::random_device rd; return std::mt19937(rd()); }\n"}),
    (rule_nondet_source,
     {"src/mesos/thing.cc": "long F() { return time(nullptr); }\n"}),
    (rule_nondet_source,
     {"src/load/thing.cc":
      "auto F() { return std::chrono::steady_clock::now(); }\n"}),
    (rule_nondet_source,  # TSF_TELEMETRY guard must be the *matching* guard
     {"src/lp/thing.cc":
      "#ifdef OTHER_FLAG\n"
      "auto F() { return std::chrono::steady_clock::now(); }\n"
      "#endif\n"}),
    (rule_pointer_keyed,
     {"src/core/thing.cc": "std::map<Job*, int> by_job_;\n"}),
    (rule_pointer_keyed,
     {"src/sim/thing.cc": "std::unordered_set<const Machine*> dirty_;\n"}),
    (rule_pointer_keyed,
     {"src/core/thing.cc":
      "std::priority_queue<E, std::vector<E>, std::less<Node*>> q_;\n"}),
    (rule_address_hash,
     {"src/core/thing.cc":
      "std::size_t F(Job* j) { return std::hash<Job*>{}(j); }\n"}),
    (rule_address_hash,
     {"src/chaos/thing.cc":
      "std::uint64_t F(void* p) {\n"
      "  return reinterpret_cast<std::uintptr_t>(p);\n}\n"}),
    (rule_suppression_hygiene,  # reason-less marker
     {"src/core/thing.cc":
      "int F() { return rand(); }  // NOLINT-determinism\n"}),
    (rule_suppression_hygiene,  # empty-parens marker
     {"src/core/thing.cc":
      "int F() { return rand(); }  // NOLINT-determinism()\n"}),
    (rule_suppression_hygiene,  # marker with no hazard underneath is stale
     {"src/core/thing.cc":
      "// NOLINT-determinism(left over from a deleted loop)\n"
      "int F() { return 4; }\n"}),
]

CLEAN = [
    (rule_unordered_iteration,  # lookups/inserts are fine; only iteration
     {"src/core/thing.cc":      # order is hazardous
      "std::unordered_map<std::string, int> pool_;\n"
      "int F(const std::string& k) {\n"
      "  auto it = pool_.find(k);\n  return it == pool_.end() ? 0 : it->second;\n"
      "}\n"}),
    (rule_unordered_iteration,  # std::map iteration is deterministic
     {"src/core/thing.cc":
      "std::map<std::uint32_t, int> live_;\n"
      "void F() {\n  for (auto& e : live_) Use(e);\n}\n"}),
    (rule_unordered_iteration,  # suppressed with a reason
     {"src/core/thing.cc":
      "std::unordered_map<std::string, int> pool_;\n"
      "void F() {\n"
      "  // NOLINT-determinism(order-independent eviction predicate)\n"
      "  for (auto it = pool_.begin(); it != pool_.end();) ++it;\n"
      "}\n"}),
    (rule_unordered_iteration,  # out of scope: tools/ and bench/ may iterate
     {"tools/thing.cc":
      "std::unordered_map<int, int> m_;\n"
      "void F() {\n  for (auto& e : m_) Use(e);\n}\n"}),
    (rule_nondet_source,  # seeded repo RNG is the sanctioned source
     {"src/sim/thing.cc":
      "#include \"util/rng.h\"\n"
      "double F(Rng& rng) { return rng.Uniform(); }\n"}),
    (rule_nondet_source,  # telemetry-guarded timing is measurement-only
     {"src/sim/thing.cc":
      "#if defined(TSF_TELEMETRY)\n"
      "auto F() { return std::chrono::steady_clock::now(); }\n"
      "#endif\n"}),
    (rule_nondet_source,  # suppressed with a reason
     {"src/load/thing.cc":
      "// NOLINT-determinism(reporting-only wall-clock measurement)\n"
      "auto F() { return std::chrono::steady_clock::now(); }\n"}),
    (rule_nondet_source,  # identifiers containing the tokens are fine
     {"src/sim/thing.cc":
      "double grand_total = 0.0;\n"
      "void F(double strand_time) { grand_total += strand_time; }\n"}),
    (rule_nondet_source,  # virtual-time time_point declarations are fine
     {"src/mesos/thing.cc":
      "std::chrono::steady_clock::time_point tm_round_start{};\n"}),
    (rule_pointer_keyed,  # value keys and smart-pointer *values* are fine
     {"src/core/thing.cc":
      "std::map<std::string, std::unique_ptr<Job>, std::less<>> jobs_;\n"}),
    (rule_address_hash,  # byte-serializing *values* is how class keys work
     {"src/core/thing.cc":
      "void F(std::string& key, double v) {\n"
      "  key.append(reinterpret_cast<const char*>(&v), sizeof(v));\n}\n"}),
    (rule_suppression_hygiene,  # reasoned marker covering a live hazard
     {"src/core/thing.cc":
      "int F() { return rand(); }  // NOLINT-determinism(test-only shim)\n"}),
]


# ------------------------------------------------------------------ main --


def list_suppressions(files):
    count = 0
    for path, text in sorted(files.items()):
        if not in_scope(path):
            continue
        for lineno, reason in iter_suppressions(text):
            print(f"{path}:{lineno}: {(reason or '').strip() or '<NO REASON>'}")
            count += 1
    print(f"determinism_lint: {count} suppression(s) in the ledger")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    lint_common.add_common_arguments(parser)
    parser.add_argument("--list-suppressions", action="store_true",
                        help="print the audited NOLINT-determinism ledger")
    args = parser.parse_args()
    if args.self_test:
        return lint_common.run_self_test("determinism_lint", BAD, CLEAN)
    root = args.root or lint_common.default_root(__file__)
    files = lint_common.load_tree(root, ("src",))
    if args.list_suppressions:
        return list_suppressions(files)
    findings = lint_common.run_rules(RULES, files)
    lint_common.emit_findings(findings, args.fmt)
    suppressions = sum(
        1 for path, text in files.items() if in_scope(path)
        for _ in iter_suppressions(text))
    print(f"determinism_lint: {len(files)} files, {len(findings)} finding(s), "
          f"{suppressions} suppression(s) in the ledger")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
