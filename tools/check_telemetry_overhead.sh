#!/usr/bin/env sh
# CI gate for the telemetry layer's "zero overhead when disabled" claim.
#
# Builds bench_perf_core twice — once with telemetry compiled out
# (-DTSF_TELEMETRY=OFF) and once compiled in but runtime-disabled (the
# default) — runs BM_TraceSimulation in both, and fails if the
# compiled-in-but-disabled median regresses more than TSF_OVERHEAD_LIMIT_PCT
# (default 2) percent against compiled-out.
#
# Usage: tools/check_telemetry_overhead.sh [repetitions]   (default: 7)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
reps=${1:-7}
limit=${TSF_OVERHEAD_LIMIT_PCT:-2}
filter='BM_TraceSimulation'

build_and_run() {
  # $1 = build dir, $2 = extra cmake args, $3 = output json
  cmake -B "$1" -S "$repo_root" -DTSF_BUILD_TESTS=OFF -DTSF_BUILD_EXAMPLES=OFF \
    -DTSF_BUILD_TOOLS=OFF $2 > /dev/null
  cmake --build "$1" --target bench_perf_core -j "$(nproc 2>/dev/null || echo 4)" > /dev/null
  "$1/bench/bench_perf_core" \
    --benchmark_filter="$filter" \
    --benchmark_repetitions="$reps" \
    --benchmark_report_aggregates_only=true \
    --benchmark_out="$3" --benchmark_out_format=json
}

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== building telemetry-compiled-out baseline =="
build_and_run "$repo_root/build-telemetry-off" "-DTSF_TELEMETRY=OFF" "$workdir/off.json"
echo "== building telemetry-compiled-in (runtime-disabled) =="
build_and_run "$repo_root/build-telemetry-on" "-DTSF_TELEMETRY=ON" "$workdir/on.json"

python3 - "$workdir/off.json" "$workdir/on.json" "$limit" <<'EOF'
import json, sys

def median(path):
    benches = json.load(open(path))["benchmarks"]
    for b in benches:
        if b.get("aggregate_name") == "median":
            return b["real_time"], b["time_unit"]
    # Unaggregated fallback (repetitions == 1).
    times = sorted(b["real_time"] for b in benches)
    return times[len(times) // 2], benches[0]["time_unit"]

off, unit = median(sys.argv[1])
on, _ = median(sys.argv[2])
limit = float(sys.argv[3])
delta_pct = (on - off) / off * 100.0
print(f"BM_TraceSimulation median: compiled-out {off:.2f}{unit}, "
      f"compiled-in-disabled {on:.2f}{unit}, delta {delta_pct:+.2f}% "
      f"(limit +{limit:.0f}%)")
if delta_pct > limit:
    print("FAIL: disabled-mode telemetry overhead exceeds the limit")
    sys.exit(1)
print("PASS: disabled-mode telemetry overhead within the limit")
EOF
