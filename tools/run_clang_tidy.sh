#!/usr/bin/env sh
# clang-tidy zero-findings gate.
#
# The legacy-debt baseline (tools/clang_tidy_baseline.txt) was burned down to
# empty and then deleted; the gate is now absolute — ANY finding fails. Fix
# it or argue the check out of .clang-tidy; there is no third option, so the
# tree can never re-accumulate tidy debt.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir]      gate (zero findings required)
#   tools/run_clang_tidy.sh --require [dir]  fail (not skip) if clang-tidy
#                                            is not installed — CI mode
#
# The build dir must have been configured with compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in this repo).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
require=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --require) require=1; shift ;;
    *) break ;;
  esac
done
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "$require" -eq 1 ]; then
    echo "error: clang-tidy not found and --require was given" >&2
    exit 1
  fi
  echo "clang-tidy not installed; skipping (pass --require to make this fatal)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json missing — configure first:" >&2
  echo "  cmake --preset release" >&2
  exit 1
fi

# Tidy only first-party translation units; third_party and generated code
# are out of scope.
files=$(cd "$repo_root" && find src bench tools -name '*.cc' | sort)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$repo_root/$f" 2>/dev/null || true
done > "$raw"

# Count real findings ("path:line:col: warning|error: ... [check]") and fail
# on any; everything else clang-tidy prints is progress noise.
python3 - "$repo_root" "$raw" <<'EOF'
import re, sys

root, raw_path = sys.argv[1:3]
finding_re = re.compile(
    r"^(?P<path>[^:\s]+):\d+:\d+: (?:warning|error): .* \[(?P<check>[^\]]+)\]")

findings = []
with open(raw_path, encoding="utf-8", errors="replace") as f:
    for line in f:
        line = line.strip()
        m = finding_re.match(line)
        if not m:
            continue
        if line.startswith(root):
            line = line[len(root):].lstrip("/")
        findings.append(line)

if findings:
    print("clang-tidy findings (the gate is zero-tolerance — fix them or "
          "argue the check out of .clang-tidy):")
    for line in findings:
        print(f"  {line}")
    sys.exit(1)
print("clang-tidy gate: 0 findings")
EOF
