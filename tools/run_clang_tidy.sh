#!/usr/bin/env sh
# clang-tidy gate with a tracked baseline.
#
# New findings FAIL; findings recorded in tools/clang_tidy_baseline.txt are
# legacy debt to burn down (the gate also fails if you add to a file's count
# for an already-baselined check). Fixing findings and re-running with
# --update shrinks the baseline; the diff shows the burn-down.
#
# Usage:
#   tools/run_clang_tidy.sh [build-dir]      gate against the baseline
#   tools/run_clang_tidy.sh --update [dir]   rewrite the baseline (only do
#                                            this to REMOVE entries)
#   tools/run_clang_tidy.sh --require [dir]  fail (not skip) if clang-tidy
#                                            is not installed — CI mode
#
# The build dir must have been configured with compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON by default in this repo).
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
update=0
require=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --update) update=1; shift ;;
    --require) require=1; shift ;;
    *) break ;;
  esac
done
build_dir=${1:-"$repo_root/build"}
baseline="$repo_root/tools/clang_tidy_baseline.txt"

if ! command -v clang-tidy >/dev/null 2>&1; then
  if [ "$require" -eq 1 ]; then
    echo "error: clang-tidy not found and --require was given" >&2
    exit 1
  fi
  echo "clang-tidy not installed; skipping (pass --require to make this fatal)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json missing — configure first:" >&2
  echo "  cmake --preset release" >&2
  exit 1
fi

# Tidy only first-party translation units; third_party and generated code
# are out of scope.
files=$(cd "$repo_root" && find src bench tools -name '*.cc' | sort)

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT
for f in $files; do
  clang-tidy -p "$build_dir" --quiet "$repo_root/$f" 2>/dev/null || true
done > "$raw"

# Normalize to stable "path [check-name] count" lines: absolute paths are
# stripped and line/column numbers dropped so the baseline survives
# unrelated edits that shift lines.
python3 - "$repo_root" "$raw" "$baseline" "$update" <<'EOF'
import collections, re, sys

root, raw_path, baseline_path, update = sys.argv[1:5]
finding_re = re.compile(
    r"^(?P<path>[^:\s]+):\d+:\d+: (?:warning|error): .* \[(?P<check>[^\]]+)\]")

counts = collections.Counter()
with open(raw_path, encoding="utf-8", errors="replace") as f:
    for line in f:
        m = finding_re.match(line.strip())
        if not m:
            continue
        path = m.group("path")
        if path.startswith(root):
            path = path[len(root):].lstrip("/")
        counts[(path, m.group("check"))] += 1

current = {f"{p} [{c}]": n for (p, c), n in counts.items()}

if update == "1":
    with open(baseline_path, "w", encoding="utf-8") as f:
        f.write("# clang-tidy legacy findings — burn down, never add.\n")
        f.write("# Format: <path> [<check>] <count>\n")
        for key in sorted(current):
            f.write(f"{key} {current[key]}\n")
    print(f"baseline updated: {sum(current.values())} finding(s) "
          f"across {len(current)} (file, check) pair(s)")
    sys.exit(0)

baseline = {}
try:
    with open(baseline_path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            key, _, n = line.rpartition(" ")
            baseline[key] = int(n)
except FileNotFoundError:
    pass  # no baseline: every finding is new

new = []
for key, n in sorted(current.items()):
    allowed = baseline.get(key, 0)
    if n > allowed:
        new.append(f"  {key}: {n} finding(s), baseline allows {allowed}")
fixed = sorted(set(baseline) - set(current))

if fixed:
    print("burned down since baseline (run --update to lock in):")
    for key in fixed:
        print(f"  {key}")
if new:
    print("NEW clang-tidy findings (fix them or argue the check out of "
          ".clang-tidy — do not grow the baseline):")
    print("\n".join(new))
    sys.exit(1)
print(f"clang-tidy gate: {sum(current.values())} finding(s), all baselined")
EOF
