#!/usr/bin/env python3
"""Repo-specific lints that generic tools cannot express.

Rules (each maps to a documented repo convention; see DESIGN.md §7 and §12):

  entry-point-checks   every .cc under src/core, src/sim, src/load, and
                       src/chaos
                       validates inputs with TSF_CHECK/TSF_DCHECK (Core
                       Guidelines P.7 — the rule stated in util/check.h).
                       Files whose entry points are data-only constructors
                       may be allowlisted below with a justification.
  no-stdout            library code (src/) never writes to stdout directly:
                       no std::cout, printf, puts, or fprintf(stdout, ...).
                       Diagnostics go through TSF_LOG (stderr); data goes to
                       caller-named files. tools/, bench/, examples/ are the
                       process entry points and may print.
  telemetry-macros     outside src/telemetry/, telemetry symbols are touched
                       only via the TSF_* macros or inside an explicit
                       `#if defined(TSF_TELEMETRY)` region, so
                       -DTSF_TELEMETRY=OFF truly compiles every
                       instrumentation site out. The always-compiled data
                       API (FairnessSample & writers, HistogramSnapshot
                       offline accumulation) is exempt.
  lock-discipline      src/ never names raw std locking primitives
                       (std::mutex, lock_guard, unique_lock, scoped_lock,
                       condition_variable, shared_mutex, atomic_flag, ...)
                       outside the two annotated wrapper headers
                       (util/mutex.h, telemetry/spinlock.h). The wrappers
                       carry clang thread-safety annotations; a raw primitive
                       is a lock the analysis cannot see. std::call_once /
                       std::once_flag stay allowed — one-time init is not a
                       critical section. This keeps lock discipline
                       statically enforced even on gcc-only hosts where
                       -Wthread-safety itself cannot run.
  include-cycles       the `#include "..."` graph over src/ headers is
                       acyclic.
  pragma-once          every header in src/, bench/, tools/ uses
                       `#pragma once`.

Usage:
  tools/lint_repo.py [--root DIR] [--format=text|github]
  tools/lint_repo.py --self-test      prove each rule still fires on a
                                      known-bad synthetic input; exit 1 if
                                      any rule has gone blind
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lint_common  # noqa: E402
from lint_common import Finding, strip_comments  # noqa: E402

# ---------------------------------------------------------------- config --

# entry-point-checks: files exempt from the TSF_CHECK requirement, with the
# reason on record. Keep this list short — it is the lint's burn-down ledger.
ENTRY_POINT_CHECK_ALLOWLIST = {
    # Data-only constructors of the paper's worked examples; every problem
    # they build is validated by Cluster/Compile at the consuming entry point.
    "src/core/paper_examples.cc",
}

# telemetry-macros: always-compiled telemetry *data* API (not
# instrumentation). The fairness timeline rides inside SimResult, so the
# simulator references these types unconditionally by design.
TELEMETRY_DATA_API = (
    "FairnessSample",
    "WriteFairnessCsv",
    "WriteFairnessJsonl",
    # Offline accumulation over recorded event streams (src/load driver,
    # tools/): plain data math, no registry, compiled unconditionally.
    # (HistogramSnapshot also escapes TELEMETRY_GUARDED_RE by construction —
    # the Histogram\b alternative stops at the word boundary — this entry
    # records that the escape is intentional.)
    "HistogramSnapshot",
)

# telemetry-macros: instrumentation symbols that must stay behind the TSF_*
# macros or an explicit #if defined(TSF_TELEMETRY) region.
TELEMETRY_GUARDED_RE = re.compile(
    r"telemetry::(Registry|Tracer|Counter|Gauge|Histogram\b|ScopedSpan|"
    r"Enabled|TraceActive|SetEnabled)"
)

STDOUT_RES = (
    re.compile(r"std::cout"),
    # Bare or std:: printf/puts — but not snprintf/fprintf/vsnprintf (the
    # preceding word character excludes them) and not our own identifiers.
    re.compile(r"(?<![A-Za-z0-9_.])printf\s*\("),
    re.compile(r"(?<![A-Za-z0-9_.])puts\s*\("),
    re.compile(r"fprintf\s*\(\s*stdout"),
    re.compile(r"fputs\s*\([^;]*,\s*stdout\s*\)"),
    re.compile(r"fwrite\s*\([^;]*,\s*stdout\s*\)"),
)

# lock-discipline: the only files allowed to name raw std locking primitives.
# Both wrap them behind clang thread-safety annotations (DESIGN.md §12).
LOCK_WRAPPER_FILES = {
    "src/util/mutex.h",
    "src/telemetry/spinlock.h",
}

# std::once_flag / std::call_once are deliberately absent: one-time init is
# not a critical section and carries no annotation story.
RAW_LOCK_RE = re.compile(
    r"std::(?:recursive_|timed_|recursive_timed_|shared_|shared_timed_)?"
    r"mutex\b"
    r"|std::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|std::condition_variable(?:_any)?\b"
    r"|std::atomic_flag\b"
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)

CHECK_RE = re.compile(r"\bTSF_D?CHECK")

TELEMETRY_IF_RE = re.compile(
    r"#\s*if\s+defined\s*\(\s*TSF_TELEMETRY\s*\)|#\s*ifdef\s+TSF_TELEMETRY"
)


# ----------------------------------------------------------------- rules --
# Each rule takes {relpath: text} and returns [lint_common.Finding].


def rule_entry_point_checks(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.endswith(".cc"):
            continue
        if not (path.startswith("src/core/") or path.startswith("src/sim/")
                or path.startswith("src/load/")
                or path.startswith("src/chaos/")):
            continue
        if path in ENTRY_POINT_CHECK_ALLOWLIST:
            continue
        if not CHECK_RE.search(strip_comments(text)):
            findings.append(Finding(
                "entry-point-checks", path, None,
                "no TSF_CHECK/TSF_DCHECK — public entry points must validate "
                "inputs (P.7); add checks or allowlist the file with a "
                "justification in lint_repo.py"))
    return findings


def rule_no_stdout(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.startswith("src/"):
            continue
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), 1):
            for pattern in STDOUT_RES:
                if pattern.search(line):
                    findings.append(Finding(
                        "no-stdout", path, lineno,
                        f"direct stdout write ({pattern.pattern!r}) — "
                        "library code logs via TSF_LOG or writes "
                        "caller-named files"))
    return findings


def rule_telemetry_macros(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.startswith("src/") or path.startswith("src/telemetry/"):
            continue
        clean = strip_comments(text)
        guarded = lint_common.preprocessor_regions(clean, TELEMETRY_IF_RE)
        for lineno, line in enumerate(clean.splitlines(), 1):
            if line.strip().startswith("#"):
                continue
            match = TELEMETRY_GUARDED_RE.search(line)
            if match and not guarded[lineno - 1]:
                if any(api in line for api in TELEMETRY_DATA_API):
                    continue
                findings.append(Finding(
                    "telemetry-macros", path, lineno,
                    f"unguarded `{match.group(0)}` — use a TSF_* macro or "
                    "wrap in #if defined(TSF_TELEMETRY) so "
                    "-DTSF_TELEMETRY=OFF compiles it out"))
    return findings


def rule_lock_discipline(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.startswith("src/") or path in LOCK_WRAPPER_FILES:
            continue
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), 1):
            match = RAW_LOCK_RE.search(line)
            if match:
                findings.append(Finding(
                    "lock-discipline", path, lineno,
                    f"raw `{match.group(0)}` outside the annotated wrappers "
                    "— use tsf::Mutex/MutexLock/CondVar (util/mutex.h) or "
                    "SpinLock/SpinGuard (telemetry/spinlock.h) so clang "
                    "thread-safety analysis can see the lock"))
    return findings


def rule_include_cycles(files):
    headers = {p: t for p, t in files.items()
               if p.startswith("src/") and p.endswith(".h")}
    graph = {}
    for path, text in headers.items():
        deps = []
        for inc in INCLUDE_RE.findall(strip_comments(text)):
            target = "src/" + inc
            if target in headers:
                deps.append(target)
        graph[path] = deps

    findings = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}

    def dfs(node, stack):
        color[node] = GRAY
        stack.append(node)
        for dep in graph[node]:
            if color[dep] == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                findings.append(Finding(
                    "include-cycles", node, None, " -> ".join(cycle)))
            elif color[dep] == WHITE:
                dfs(dep, stack)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node, [])
    return findings


def rule_pragma_once(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.endswith(".h"):
            continue
        if "#pragma once" not in text:
            findings.append(Finding(
                "pragma-once", path, None, "header lacks `#pragma once`"))
    return findings


RULES = (
    rule_entry_point_checks,
    rule_no_stdout,
    rule_telemetry_macros,
    rule_lock_discipline,
    rule_include_cycles,
    rule_pragma_once,
)


# ------------------------------------------------------------- self-test --

SELF_TEST_CASES = [
    # (rule, synthetic tree that MUST produce >= 1 finding)
    (rule_entry_point_checks,
     {"src/core/thing.cc": "void Api(int x) { use(x); }\n"}),
    (rule_entry_point_checks,  # a comment mentioning TSF_CHECK is not a check
     {"src/sim/thing.cc": "// TSF_CHECK lives elsewhere\nvoid Api() {}\n"}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { std::cout << "x"; }\n'}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { printf("x"); }\n'}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { std::printf("x"); }\n'}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { fprintf(stdout, "x"); }\n'}),
    (rule_telemetry_macros,
     {"src/core/thing.cc":
      "void F() { telemetry::Registry::Get(); }\n"}),
    (rule_telemetry_macros,  # guard must actually be TSF_TELEMETRY
     {"src/core/thing.cc":
      "#ifdef OTHER_FLAG\nvoid F() { telemetry::Tracer::Get(); }\n#endif\n"}),
    (rule_telemetry_macros,  # the warm LP engine is hot-path: src/lp/ must
     {"src/lp/revised.cc":   # never touch instrumentation outside the macros
      "void Solve() { telemetry::Registry::Get(); }\n"}),
    (rule_telemetry_macros,
     {"src/lp/standard_form.cc":
      "#ifdef NDEBUG\nvoid F() { telemetry::ScopedSpan s; }\n#endif\n"}),
    (rule_lock_discipline,
     {"src/core/thing.cc": "std::mutex mu_;\n"}),
    (rule_lock_discipline,
     {"src/sim/thing.cc":
      "void F() { const std::lock_guard<std::mutex> l(mu_); }\n"}),
    (rule_lock_discipline,
     {"src/telemetry/trace.cc": "std::atomic_flag busy_;\n"}),
    (rule_lock_discipline,  # condition_variable needs the annotated CondVar
     {"src/util/thread_pool.h": "std::condition_variable cv_;\n"}),
    (rule_lock_discipline,
     {"src/mesos/thing.cc": "std::shared_mutex registry_mu_;\n"}),
    (rule_include_cycles,
     {"src/a/a.h": '#pragma once\n#include "b/b.h"\n',
      "src/b/b.h": '#pragma once\n#include "a/a.h"\n'}),
    (rule_pragma_once,
     {"src/core/thing.h": "struct T {};\n"}),
    (rule_entry_point_checks,  # the interning pool is a core entry point:
     {"src/core/eligibility.cc":  # an unchecked Intern must be flagged
      "EligibilityHandle EligibilityPool::Intern(const Constraint& c) {\n"
      "  return Compile(c);\n}\n"}),
    (rule_telemetry_macros,  # collapsed-scheduler hot path: raw telemetry
     {"src/core/online/scheduler.cc":  # objects (not the TSF_* macros) leak
      "void OnlineScheduler::ServeMachineCollapsed() {\n"  # overhead into
      "  telemetry::Registry::Get();\n}\n"}),  # every serve
    (rule_entry_point_checks,  # the load driver is an entry point too: an
     {"src/load/driver.cc":    # unchecked stream config must be flagged
      "LoadReport RunDesLoad(const DriverConfig& c) { return Run(c); }\n"}),
    (rule_telemetry_macros,  # per-policy histogram lookups in src/load must
     {"src/load/driver.cc":  # stay inside a TSF_TELEMETRY region
      "void Observe() { telemetry::Registry::Get().GetHistogram(\"x\"); }\n"}),
    (rule_entry_point_checks,  # the guided-search loop is a chaos entry
     {"src/chaos/search.cc":   # point: unchecked SearchOptions must flag
      "SearchResult RunGuidedSearch(const SearchOptions& o) {\n"
      "  return Loop(o);\n}\n"}),
    (rule_entry_point_checks,  # mutation ops promise ValidateFaultPlan-by-
     {"src/chaos/mutate.cc":   # construction; an unchecked Finish must flag
      "FaultPlan Finish(std::vector<FaultAtom> atoms) {\n"
      "  return AssembleAtoms(std::move(atoms));\n}\n"}),
    (rule_telemetry_macros,  # coverage-guided search must not pay telemetry
     {"src/chaos/search.cc":  # costs when instrumentation is compiled out
      "void Score() { telemetry::Counter c; }\n"}),
]

# Synthetic trees that must stay CLEAN — guards against over-matching.
SELF_TEST_CLEAN = [
    (rule_no_stdout,
     {"src/core/thing.cc":
      'void P(char* b) { snprintf(b, 4, "x"); fprintf(stderr, "x"); }\n'}),
    (rule_no_stdout,  # printing from tools/ and bench/ is the whole point
     {"tools/main.cc": 'int main() { printf("ok\\n"); }\n'}),
    (rule_telemetry_macros,
     {"src/core/thing.cc":
      "#if defined(TSF_TELEMETRY)\n"
      "void F() { telemetry::Registry::Get(); }\n#endif\n"}),
    (rule_telemetry_macros,  # data API is always-compiled by design
     {"src/sim/thing.cc":
      "std::vector<telemetry::FairnessSample> samples;\n"}),
    (rule_telemetry_macros,  # the TSF_* macros are how src/lp instruments:
     {"src/lp/revised.cc":   # they compile out under -DTSF_TELEMETRY=OFF
      'void Solve() { TSF_COUNTER_ADD("lp.iterations", 1); }\n'
      'void Trace() { TSF_TRACE_SCOPE("lp", "Solve"); }\n'}),
    (rule_lock_discipline,  # the wrapper headers are the sanctioned homes
     {"src/util/mutex.h":
      "#pragma once\n#include <mutex>\nstd::mutex mu_;\n"
      "std::condition_variable cv_;\n",
      "src/telemetry/spinlock.h":
      "#pragma once\n#include <atomic>\nstd::atomic_flag flag_;\n"}),
    (rule_lock_discipline,  # one-time init is not a critical section
     {"src/sim/runner.cc":
      "#include <mutex>\nstd::once_flag warm_once;\n"
      "void F() { std::call_once(warm_once, [] {}); }\n"}),
    (rule_lock_discipline,  # plain atomics are fine; only atomic_flag (a
     {"src/telemetry/metrics.h":  # spinlock building block) is reserved
      "std::atomic<std::uint64_t> count{0};\n"}),
    (rule_lock_discipline,  # tools/ and bench/ are out of scope
     {"tools/main.cc": "#include <mutex>\nstd::mutex mu;\n"}),
    (rule_entry_point_checks,
     {"src/core/thing.cc": "void Api(int x) { TSF_CHECK(x > 0); }\n"}),
    (rule_entry_point_checks,  # the real pool validates at the boundary
     {"src/core/eligibility.cc":
      "EligibilityHandle EligibilityPool::Intern(const Constraint& c) {\n"
      "  TSF_CHECK_GT(cluster_->num_machines(), 0u);\n"
      "  return Compile(c);\n}\n"}),
    (rule_telemetry_macros,  # macro-only instrumentation in the collapsed
     {"src/core/online/scheduler.cc":  # serve/greedy hot paths is fine
      "void OnlineScheduler::ServeMachineCollapsed() {\n"
      '  TSF_COUNTER_ADD("scheduler.greedy.class_skips", 1);\n'
      '  TSF_HISTOGRAM_RECORD("scheduler.serve_machine.wait_list", 1);\n}\n'}),
    (rule_include_cycles,
     {"src/a/a.h": '#pragma once\n#include "b/b.h"\n',
      "src/b/b.h": '#pragma once\n'}),
    (rule_telemetry_macros,  # HistogramSnapshot is offline data math — the
     {"src/load/driver.cc":  # load driver accumulates into it unguarded
      "telemetry::HistogramSnapshot ttp;\n"
      "void Tally(double ms) { ttp.Record(ms); }\n"}),
    (rule_telemetry_macros,  # macro + guarded-region instrumentation in
     {"src/load/driver.cc":  # src/load compiles out under TELEMETRY=OFF
      '#if defined(TSF_TELEMETRY)\n'
      "void Observe() { telemetry::Registry::Get().GetHistogram(\"x\"); }\n"
      "#endif\n"
      'void Tick() { TSF_HISTOGRAM_RECORD("load.ttp_ms", 1.0); }\n'}),
    (rule_entry_point_checks,  # the real driver validates its spec up front
     {"src/load/stream.cc":
      "GeneratedStream GenerateArrivals(const StreamSpec& spec) {\n"
      "  TSF_CHECK(spec.rate > 0.0);\n  return Build(spec);\n}\n"}),
    (rule_entry_point_checks,  # the real search validates options and every
     {"src/chaos/search.cc":   # mutant plan at the boundary
      "SearchResult RunGuidedSearch(const SearchOptions& o) {\n"
      "  TSF_CHECK_GT(o.max_execs, 0u) << \"empty budget\";\n"
      "  return Loop(o);\n}\n"}),
    (rule_entry_point_checks,  # mutate.cc asserts its by-construction
     {"src/chaos/mutate.cc":   # contract before returning any mutant
      "FaultPlan Finish(std::vector<FaultAtom> atoms) {\n"
      "  FaultPlan plan = AssembleAtoms(std::move(atoms));\n"
      "  TSF_CHECK(ValidateFaultPlan(plan).empty());\n  return plan;\n}\n"}),
    (rule_telemetry_macros,  # ChaosCoverage is chaos-local feedback state
     {"src/chaos/search.cc":  # (its own TSF_CHAOS_COVERAGE_OFF switch), not
      "ChaosCoverage coverage;\n"  # a telemetry:: instrumentation symbol
      "void Merge(const ChaosCoverage& o) { coverage.Merge(o); }\n"}),
]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    lint_common.add_common_arguments(parser)
    args = parser.parse_args()
    if args.self_test:
        return lint_common.run_self_test(
            "lint_repo", SELF_TEST_CASES, SELF_TEST_CLEAN)
    root = args.root or lint_common.default_root(__file__)
    files = lint_common.load_tree(root, ("src", "bench", "tools"))
    findings = lint_common.run_rules(RULES, files)
    lint_common.emit_findings(findings, args.fmt)
    print(f"lint_repo: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
