#!/usr/bin/env python3
"""Repo-specific lints that generic tools cannot express.

Rules (each maps to a documented repo convention; see DESIGN.md §7):

  entry-point-checks   every .cc under src/core, src/sim, and src/load
                       validates inputs with TSF_CHECK/TSF_DCHECK (Core
                       Guidelines P.7 — the rule stated in util/check.h).
                       Files whose entry points are data-only constructors
                       may be allowlisted below with a justification.
  no-stdout            library code (src/) never writes to stdout directly:
                       no std::cout, printf, puts, or fprintf(stdout, ...).
                       Diagnostics go through TSF_LOG (stderr); data goes to
                       caller-named files. tools/, bench/, examples/ are the
                       process entry points and may print.
  telemetry-macros     outside src/telemetry/, telemetry symbols are touched
                       only via the TSF_* macros or inside an explicit
                       `#if defined(TSF_TELEMETRY)` region, so
                       -DTSF_TELEMETRY=OFF truly compiles every
                       instrumentation site out. The always-compiled data
                       API (FairnessSample & writers, HistogramSnapshot
                       offline accumulation) is exempt.
  include-cycles       the `#include "..."` graph over src/ headers is
                       acyclic.
  pragma-once          every header in src/, bench/, tools/ uses
                       `#pragma once`.

Usage:
  tools/lint_repo.py [--root DIR]     lint the tree; exit 1 on any finding
  tools/lint_repo.py --self-test      prove each rule still fires on a
                                      known-bad synthetic input; exit 1 if
                                      any rule has gone blind
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------- config --

# entry-point-checks: files exempt from the TSF_CHECK requirement, with the
# reason on record. Keep this list short — it is the lint's burn-down ledger.
ENTRY_POINT_CHECK_ALLOWLIST = {
    # Data-only constructors of the paper's worked examples; every problem
    # they build is validated by Cluster/Compile at the consuming entry point.
    "src/core/paper_examples.cc",
}

# telemetry-macros: always-compiled telemetry *data* API (not
# instrumentation). The fairness timeline rides inside SimResult, so the
# simulator references these types unconditionally by design.
TELEMETRY_DATA_API = (
    "FairnessSample",
    "WriteFairnessCsv",
    "WriteFairnessJsonl",
    # Offline accumulation over recorded event streams (src/load driver,
    # tools/): plain data math, no registry, compiled unconditionally.
    # (HistogramSnapshot also escapes TELEMETRY_GUARDED_RE by construction —
    # the Histogram\b alternative stops at the word boundary — this entry
    # records that the escape is intentional.)
    "HistogramSnapshot",
)

# telemetry-macros: instrumentation symbols that must stay behind the TSF_*
# macros or an explicit #if defined(TSF_TELEMETRY) region.
TELEMETRY_GUARDED_RE = re.compile(
    r"telemetry::(Registry|Tracer|Counter|Gauge|Histogram\b|ScopedSpan|"
    r"Enabled|TraceActive|SetEnabled)"
)

STDOUT_RES = (
    re.compile(r"std::cout"),
    # Bare or std:: printf/puts — but not snprintf/fprintf/vsnprintf (the
    # preceding word character excludes them) and not our own identifiers.
    re.compile(r"(?<![A-Za-z0-9_.])printf\s*\("),
    re.compile(r"(?<![A-Za-z0-9_.])puts\s*\("),
    re.compile(r"fprintf\s*\(\s*stdout"),
    re.compile(r"fputs\s*\([^;]*,\s*stdout\s*\)"),
    re.compile(r"fwrite\s*\([^;]*,\s*stdout\s*\)"),
)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)

CHECK_RE = re.compile(r"\bTSF_D?CHECK")

TELEMETRY_IF_RE = re.compile(
    r"#\s*if\s+defined\s*\(\s*TSF_TELEMETRY\s*\)|#\s*ifdef\s+TSF_TELEMETRY"
)


def strip_comments(text):
    """Removes // and /* */ comments (string literals are left alone: the
    code base does not hide lint-relevant tokens inside strings)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def walk_sources(root, subdirs, exts):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root)


# ----------------------------------------------------------------- rules --
# Each rule takes {relpath: text} and returns a list of findings
# "rule: path[:line]: message".


def rule_entry_point_checks(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.endswith(".cc"):
            continue
        if not (path.startswith("src/core/") or path.startswith("src/sim/")
                or path.startswith("src/load/")):
            continue
        if path in ENTRY_POINT_CHECK_ALLOWLIST:
            continue
        if not CHECK_RE.search(strip_comments(text)):
            findings.append(
                f"entry-point-checks: {path}: no TSF_CHECK/TSF_DCHECK — "
                "public entry points must validate inputs (P.7); add checks "
                "or allowlist the file with a justification in lint_repo.py"
            )
    return findings


def rule_no_stdout(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.startswith("src/"):
            continue
        clean = strip_comments(text)
        for lineno, line in enumerate(clean.splitlines(), 1):
            for pattern in STDOUT_RES:
                if pattern.search(line):
                    findings.append(
                        f"no-stdout: {path}:{lineno}: direct stdout write "
                        f"({pattern.pattern!r}) — library code logs via "
                        "TSF_LOG or writes caller-named files"
                    )
    return findings


def rule_telemetry_macros(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.startswith("src/") or path.startswith("src/telemetry/"):
            continue
        clean = strip_comments(text)
        # Track #if nesting; inside_guard counts TSF_TELEMETRY regions.
        depth_stack = []  # True where the level was opened by a telemetry #if
        for lineno, line in enumerate(clean.splitlines(), 1):
            stripped = line.strip()
            if stripped.startswith("#"):
                if TELEMETRY_IF_RE.search(line):
                    depth_stack.append(True)
                    continue
                if re.match(r"#\s*(if|ifdef|ifndef)\b", stripped):
                    depth_stack.append(False)
                    continue
                if re.match(r"#\s*endif\b", stripped) and depth_stack:
                    depth_stack.pop()
                    continue
            match = TELEMETRY_GUARDED_RE.search(line)
            if match and not any(depth_stack):
                if any(api in line for api in TELEMETRY_DATA_API):
                    continue
                findings.append(
                    f"telemetry-macros: {path}:{lineno}: unguarded "
                    f"`{match.group(0)}` — use a TSF_* macro or wrap in "
                    "#if defined(TSF_TELEMETRY) so -DTSF_TELEMETRY=OFF "
                    "compiles it out"
                )
    return findings


def rule_include_cycles(files):
    headers = {p: t for p, t in files.items() if p.startswith("src/") and p.endswith(".h")}
    graph = {}
    for path, text in headers.items():
        deps = []
        for inc in INCLUDE_RE.findall(strip_comments(text)):
            target = "src/" + inc
            if target in headers:
                deps.append(target)
        graph[path] = deps

    findings = []
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}

    def dfs(node, stack):
        color[node] = GRAY
        stack.append(node)
        for dep in graph[node]:
            if color[dep] == GRAY:
                cycle = stack[stack.index(dep):] + [dep]
                findings.append(
                    "include-cycles: " + " -> ".join(cycle)
                )
            elif color[dep] == WHITE:
                dfs(dep, stack)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node, [])
    return findings


def rule_pragma_once(files):
    findings = []
    for path, text in sorted(files.items()):
        if not path.endswith(".h"):
            continue
        if "#pragma once" not in text:
            findings.append(f"pragma-once: {path}: header lacks `#pragma once`")
    return findings


RULES = (
    rule_entry_point_checks,
    rule_no_stdout,
    rule_telemetry_macros,
    rule_include_cycles,
    rule_pragma_once,
)


def load_tree(root):
    files = {}
    for rel in walk_sources(root, ("src", "bench", "tools"),
                            {".h", ".cc", ".cpp"}):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            files[rel] = f.read()
    return files


def run_lint(root):
    files = load_tree(root)
    findings = []
    for rule in RULES:
        findings.extend(rule(files))
    for finding in findings:
        print(finding)
    print(f"lint_repo: {len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


# ------------------------------------------------------------- self-test --

SELF_TEST_CASES = [
    # (rule, synthetic tree that MUST produce >= 1 finding)
    (rule_entry_point_checks,
     {"src/core/thing.cc": "void Api(int x) { use(x); }\n"}),
    (rule_entry_point_checks,  # a comment mentioning TSF_CHECK is not a check
     {"src/sim/thing.cc": "// TSF_CHECK lives elsewhere\nvoid Api() {}\n"}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { std::cout << "x"; }\n'}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { printf("x"); }\n'}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { std::printf("x"); }\n'}),
    (rule_no_stdout,
     {"src/core/thing.cc": 'void P() { fprintf(stdout, "x"); }\n'}),
    (rule_telemetry_macros,
     {"src/core/thing.cc":
      "void F() { telemetry::Registry::Get(); }\n"}),
    (rule_telemetry_macros,  # guard must actually be TSF_TELEMETRY
     {"src/core/thing.cc":
      "#ifdef OTHER_FLAG\nvoid F() { telemetry::Tracer::Get(); }\n#endif\n"}),
    (rule_telemetry_macros,  # the warm LP engine is hot-path: src/lp/ must
     {"src/lp/revised.cc":   # never touch instrumentation outside the macros
      "void Solve() { telemetry::Registry::Get(); }\n"}),
    (rule_telemetry_macros,
     {"src/lp/standard_form.cc":
      "#ifdef NDEBUG\nvoid F() { telemetry::ScopedSpan s; }\n#endif\n"}),
    (rule_include_cycles,
     {"src/a/a.h": '#pragma once\n#include "b/b.h"\n',
      "src/b/b.h": '#pragma once\n#include "a/a.h"\n'}),
    (rule_pragma_once,
     {"src/core/thing.h": "struct T {};\n"}),
    (rule_entry_point_checks,  # the interning pool is a core entry point:
     {"src/core/eligibility.cc":  # an unchecked Intern must be flagged
      "EligibilityHandle EligibilityPool::Intern(const Constraint& c) {\n"
      "  return Compile(c);\n}\n"}),
    (rule_telemetry_macros,  # collapsed-scheduler hot path: raw telemetry
     {"src/core/online/scheduler.cc":  # objects (not the TSF_* macros) leak
      "void OnlineScheduler::ServeMachineCollapsed() {\n"  # overhead into
      "  telemetry::Registry::Get();\n}\n"}),  # every serve
    (rule_entry_point_checks,  # the load driver is an entry point too: an
     {"src/load/driver.cc":    # unchecked stream config must be flagged
      "LoadReport RunDesLoad(const DriverConfig& c) { return Run(c); }\n"}),
    (rule_telemetry_macros,  # per-policy histogram lookups in src/load must
     {"src/load/driver.cc":  # stay inside a TSF_TELEMETRY region
      "void Observe() { telemetry::Registry::Get().GetHistogram(\"x\"); }\n"}),
]

# Synthetic trees that must stay CLEAN — guards against over-matching.
SELF_TEST_CLEAN = [
    (rule_no_stdout,
     {"src/core/thing.cc":
      'void P(char* b) { snprintf(b, 4, "x"); fprintf(stderr, "x"); }\n'}),
    (rule_no_stdout,  # printing from tools/ and bench/ is the whole point
     {"tools/main.cc": 'int main() { printf("ok\\n"); }\n'}),
    (rule_telemetry_macros,
     {"src/core/thing.cc":
      "#if defined(TSF_TELEMETRY)\n"
      "void F() { telemetry::Registry::Get(); }\n#endif\n"}),
    (rule_telemetry_macros,  # data API is always-compiled by design
     {"src/sim/thing.cc":
      "std::vector<telemetry::FairnessSample> samples;\n"}),
    (rule_telemetry_macros,  # the TSF_* macros are how src/lp instruments:
     {"src/lp/revised.cc":   # they compile out under -DTSF_TELEMETRY=OFF
      'void Solve() { TSF_COUNTER_ADD("lp.iterations", 1); }\n'
      'void Trace() { TSF_TRACE_SCOPE("lp", "Solve"); }\n'}),
    (rule_entry_point_checks,
     {"src/core/thing.cc": "void Api(int x) { TSF_CHECK(x > 0); }\n"}),
    (rule_entry_point_checks,  # the real pool validates at the boundary
     {"src/core/eligibility.cc":
      "EligibilityHandle EligibilityPool::Intern(const Constraint& c) {\n"
      "  TSF_CHECK_GT(cluster_->num_machines(), 0u);\n"
      "  return Compile(c);\n}\n"}),
    (rule_telemetry_macros,  # macro-only instrumentation in the collapsed
     {"src/core/online/scheduler.cc":  # serve/greedy hot paths is fine
      "void OnlineScheduler::ServeMachineCollapsed() {\n"
      '  TSF_COUNTER_ADD("scheduler.greedy.class_skips", 1);\n'
      '  TSF_HISTOGRAM_RECORD("scheduler.serve_machine.wait_list", 1);\n}\n'}),
    (rule_include_cycles,
     {"src/a/a.h": '#pragma once\n#include "b/b.h"\n',
      "src/b/b.h": '#pragma once\n'}),
    (rule_telemetry_macros,  # HistogramSnapshot is offline data math — the
     {"src/load/driver.cc":  # load driver accumulates into it unguarded
      "telemetry::HistogramSnapshot ttp;\n"
      "void Tally(double ms) { ttp.Record(ms); }\n"}),
    (rule_telemetry_macros,  # macro + guarded-region instrumentation in
     {"src/load/driver.cc":  # src/load compiles out under TELEMETRY=OFF
      '#if defined(TSF_TELEMETRY)\n'
      "void Observe() { telemetry::Registry::Get().GetHistogram(\"x\"); }\n"
      "#endif\n"
      'void Tick() { TSF_HISTOGRAM_RECORD("load.ttp_ms", 1.0); }\n'}),
    (rule_entry_point_checks,  # the real driver validates its spec up front
     {"src/load/stream.cc":
      "GeneratedStream GenerateArrivals(const StreamSpec& spec) {\n"
      "  TSF_CHECK(spec.rate > 0.0);\n  return Build(spec);\n}\n"}),
]


def run_self_test():
    failures = 0
    for rule, tree in SELF_TEST_CASES:
        if not rule(tree):
            print(f"self-test FAILED: {rule.__name__} missed a planted "
                  f"violation in {sorted(tree)}")
            failures += 1
    for rule, tree in SELF_TEST_CLEAN:
        findings = rule(tree)
        if findings:
            print(f"self-test FAILED: {rule.__name__} false-positive on "
                  f"clean input: {findings}")
            failures += 1
    total = len(SELF_TEST_CASES) + len(SELF_TEST_CLEAN)
    print(f"lint_repo self-test: {total - failures}/{total} cases ok")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule still detects violations")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    return run_lint(root)


if __name__ == "__main__":
    sys.exit(main())
