"""Shared scaffolding for the repo's static-analysis passes.

tools/lint_repo.py (repo-convention lints) and tools/determinism_lint.py
(nondeterminism-hazard lints) share this module instead of copy-pasting:

  Finding          one structured finding (rule, path, line, message)
  strip_comments   // and /* */ removal (string literals untouched)
  walk_sources / load_tree
                   deterministic tree walk -> {relpath: text}
  preprocessor_regions
                   per-line "inside an #if matching PATTERN" map, used by
                   the telemetry-guard rule and the wall-clock rule
  emit_findings    --format=text (human, grep-able) or --format=github
                   (GitHub Actions workflow commands -> inline annotations)
  run_self_test    proves every rule fires on known-bad synthetic trees and
                   stays silent on known-good ones

Both linters keep the same self-testing architecture: a rule without a
self-test case that fires is a rule that can silently go blind.
"""

import collections
import os
import re

Finding = collections.namedtuple("Finding", ("rule", "path", "line", "message"))
# line may be None for whole-file / graph findings (e.g. include cycles).

SOURCE_EXTS = {".h", ".cc", ".cpp"}


def strip_comments(text):
    """Removes // and /* */ comments (string literals are left alone: the
    code base does not hide lint-relevant tokens inside strings)."""
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def walk_sources(root, subdirs, exts=frozenset(SOURCE_EXTS)):
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, filenames in os.walk(base):
            for name in sorted(filenames):
                if os.path.splitext(name)[1] in exts:
                    path = os.path.join(dirpath, name)
                    yield os.path.relpath(path, root)


def load_tree(root, subdirs, exts=frozenset(SOURCE_EXTS)):
    files = {}
    for rel in walk_sources(root, subdirs, exts):
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            files[rel] = f.read()
    return files


def preprocessor_regions(text, if_pattern):
    """Returns a list with one bool per line of `text`: True where the line
    sits inside a preprocessor conditional whose opening #if matches
    `if_pattern` (at any nesting depth). #else/#elif keep the opening #if's
    classification — the repo's guarded regions do not use #else branches for
    unguarded code."""
    matches = []
    depth_stack = []  # True where the level was opened by a matching #if
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("#"):
            if if_pattern.search(line):
                depth_stack.append(True)
                matches.append(True)
                continue
            if re.match(r"#\s*(if|ifdef|ifndef)\b", stripped):
                depth_stack.append(False)
                matches.append(any(depth_stack))
                continue
            if re.match(r"#\s*endif\b", stripped):
                inside = any(depth_stack)
                if depth_stack:
                    depth_stack.pop()
                matches.append(inside)
                continue
        matches.append(any(depth_stack))
    return matches


def format_finding(finding, fmt):
    if fmt == "github":
        location = f"file={finding.path}"
        if finding.line is not None:
            location += f",line={finding.line}"
        # Workflow commands surface as inline PR annotations; the message
        # must be single-line with %0A escapes for any embedded newline.
        message = finding.message.replace("%", "%25").replace(
            "\n", "%0A").replace("\r", "")
        return f"::error {location},title={finding.rule}::{message}"
    where = finding.path if finding.line is None else (
        f"{finding.path}:{finding.line}")
    return f"{finding.rule}: {where}: {finding.message}"


def emit_findings(findings, fmt):
    for finding in findings:
        print(format_finding(finding, fmt))


def run_rules(rules, files):
    findings = []
    for rule in rules:
        findings.extend(rule(files))
    return findings


def run_self_test(name, bad_cases, clean_cases):
    """bad_cases: [(rule, tree)] that MUST produce >= 1 finding.
    clean_cases: [(rule, tree)] that MUST produce none (over-match guard).
    Returns a process exit code."""
    failures = 0
    for rule, tree in bad_cases:
        if not rule(tree):
            print(f"self-test FAILED: {rule.__name__} missed a planted "
                  f"violation in {sorted(tree)}")
            failures += 1
    for rule, tree in clean_cases:
        findings = rule(tree)
        if findings:
            print(f"self-test FAILED: {rule.__name__} false-positive on "
                  f"clean input: {[format_finding(f, 'text') for f in findings]}")
            failures += 1
    total = len(bad_cases) + len(clean_cases)
    print(f"{name} self-test: {total - failures}/{total} cases ok")
    return 1 if failures else 0


def add_common_arguments(parser):
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify each rule still detects violations")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text", dest="fmt",
                        help="finding output: text (default) or github "
                             "workflow commands (inline CI annotations)")


def default_root(script_file):
    return os.path.dirname(os.path.dirname(os.path.abspath(script_file)))
