#!/usr/bin/env sh
# SLO smoke gate: re-runs the slo_report smoke lanes (rate-1, both
# substrates x both policies) and compares them against the committed
# BENCH_slo.json. Every gated figure is virtual-time — a deterministic
# function of (seed, config, policy) — so unlike the wall-clock bench gates
# this one compares tight. Fails when
#   * the fresh run comes from a non-release binary (JSON context check),
#   * a smoke lane is missing from the committed baseline,
#   * a lane's quantiles are not monotone (p50 <= p95 <= p99),
#   * a fault-free lane did not drain (placements != tasks, requeues != 0),
#   * a lane's placement-stream hash diverged from the baseline,
#   * p50/p95/p99 or makespan moved beyond the tolerance.
#
# Usage:
#   tools/slo_gate.sh [build-dir]
#
# Environment:
#   TSF_SLO_TOLERANCE_PCT     allowed relative drift on makespan and the
#                             ttp quantiles, in percent (default 0.5 — only
#                             there to absorb libm differences across
#                             toolchains; same-image CI reproduces exactly)
#   TSF_SLO_ALLOW_HASH_DRIFT  set to 1 to demote a placement-hash mismatch
#                             from failure to warning (cross-toolchain runs)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
report="$build_dir/tools/slo_report"
baseline="$repo_root/BENCH_slo.json"
fresh="$repo_root/BENCH_slo.json.new"
tolerance="${TSF_SLO_TOLERANCE_PCT:-0.5}"
allow_hash_drift="${TSF_SLO_ALLOW_HASH_DRIFT:-0}"

if [ ! -x "$report" ]; then
  echo "error: $report is missing or not executable." >&2
  echo "build it first:" >&2
  echo "  cmake --preset release && cmake --build build --target slo_report -j" >&2
  exit 1
fi
if [ ! -f "$baseline" ]; then
  echo "error: no committed baseline ($baseline); run $report once" >&2
  echo "(full sweep, default flags) and commit its output." >&2
  exit 1
fi

"$report" --smoke --out="$fresh"

if python3 - "$baseline" "$fresh" "$tolerance" "$allow_hash_drift" <<'EOF'
import json, sys

old = json.load(open(sys.argv[1]))
new = json.load(open(sys.argv[2]))
tolerance = float(sys.argv[3])
allow_hash_drift = sys.argv[4] == "1"
failures = []

build_type = new.get("context", {}).get("tsf_build_type", "unknown")
if build_type != "release":
    failures.append(f"fresh run reports build type '{build_type}' — rebuild "
                    "with the release preset")

def drift(old_value, new_value):
    if old_value == new_value:
        return 0.0
    base = max(abs(old_value), 1e-12)
    return abs(new_value - old_value) / base * 100.0

old_lanes = {l["name"]: l for l in old["lanes"]}
print(f"{'lane':18s} {'hash':6s} {'makespan':>18s} {'p99 ms':>20s}")
for lane in new["lanes"]:
    name = lane["name"]
    q = lane["ttp_ms"]
    if not q["p50"] <= q["p95"] <= q["p99"]:
        failures.append(f"{name}: quantiles not monotone "
                        f"(p50={q['p50']} p95={q['p95']} p99={q['p99']})")
    if lane["placements"] != lane["tasks"] or lane["requeues"] != 0:
        failures.append(f"{name}: fault-free lane did not drain cleanly "
                        f"(placements={lane['placements']} "
                        f"tasks={lane['tasks']} requeues={lane['requeues']})")
    if name not in old_lanes:
        failures.append(f"{name}: missing from committed baseline — "
                        "regenerate BENCH_slo.json")
        continue
    o = old_lanes[name]
    hash_ok = o["placement_hash"] == lane["placement_hash"]
    if not hash_ok:
        msg = (f"{name}: placement hash {lane['placement_hash']} != baseline "
               f"{o['placement_hash']} — the placement stream changed; if "
               "intended, regenerate BENCH_slo.json")
        if allow_hash_drift:
            print(f"warning: {msg}")
        else:
            failures.append(msg)
    checks = [("makespan", o["makespan"], lane["makespan"])]
    for quantile in ("p50", "p95", "p99"):
        checks.append((quantile, o["ttp_ms"][quantile], q[quantile]))
    flagged = []
    for label, old_value, new_value in checks:
        if drift(old_value, new_value) > tolerance:
            flagged.append(f"{label} {old_value} -> {new_value}")
    if flagged:
        failures.append(f"{name}: drifted beyond {tolerance:g}%: "
                        + "; ".join(flagged))
    print(f"{name:18s} {'ok' if hash_ok else 'DIFF':6s} "
          f"{o['makespan']:>8.2f} ->{lane['makespan']:>8.2f} "
          f"{o['ttp_ms']['p99']:>9.1f} ->{q['p99']:>9.1f}"
          f"{'  << DRIFT' if flagged else ''}")

if failures:
    print("\nslo_gate: FAIL")
    for failure in failures:
        print(f"  {failure}")
    sys.exit(1)
print("\nslo_gate: PASS")
EOF
then
  rm -f "$fresh"
else
  rm -f "$fresh"
  exit 1
fi
