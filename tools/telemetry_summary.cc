// Pretty-prints a metrics JSONL snapshot produced by
// telemetry::Registry::WriteJsonlSnapshot (e.g. <telemetry_dir>/metrics.jsonl
// from any bench binary run with --telemetry_dir).
//
//   telemetry_summary out/metrics.jsonl
//
// Counters and gauges print as aligned name/value rows; histograms add
// mean/stddev/min/max, p50/p95/p99, and an ASCII sketch of the log-bucket
// mass. The quantiles are reconstructed from the serialized log-2 buckets
// via telemetry::HistogramSnapshot::Quantile, so they inherit its error
// bound: within the rank's bucket the true and estimated quantile coincide
// to <2x relative error for values >= 1 (see src/telemetry/metrics.h).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace {

// Extracts the value of `"key":"..."` (string) from a JSONL line written by
// the metrics writer; names are escaped, which this un-escapes for display.
bool FindString(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  out->clear();
  for (std::size_t i = start + needle.size(); i < line.size(); ++i) {
    const char c = line[i];
    if (c == '\\' && i + 1 < line.size()) {
      out->push_back(line[++i]);
      continue;
    }
    if (c == '"') return true;
    out->push_back(c);
  }
  return false;
}

bool FindNumber(const std::string& line, const char* key, double* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  *out = std::strtod(line.c_str() + start + needle.size(), nullptr);
  return true;
}

// Pulls the {"ge":g,"count":n} pairs out of the buckets array.
void FindBuckets(const std::string& line,
                 std::vector<std::pair<double, double>>* out) {
  out->clear();
  std::size_t pos = line.find("\"buckets\":[");
  if (pos == std::string::npos) return;
  while ((pos = line.find("{\"ge\":", pos)) != std::string::npos) {
    const double ge = std::strtod(line.c_str() + pos + 6, nullptr);
    const std::size_t count_pos = line.find("\"count\":", pos);
    if (count_pos == std::string::npos) break;
    const double count = std::strtod(line.c_str() + count_pos + 8, nullptr);
    out->emplace_back(ge, count);
    pos = count_pos;
  }
}

std::string Bar(double fraction, int width) {
  const int fill = static_cast<int>(std::lround(fraction * width));
  return std::string(static_cast<std::size_t>(std::clamp(fill, 0, width)), '#');
}

// Rebuilds the in-memory snapshot from one serialized histogram line so
// Quantile() can run on it. The writer emits bucket lower bounds: ge=0 is
// bucket 0 (values < 1), ge=2^(b-1) is bucket b.
tsf::telemetry::HistogramSnapshot RebuildSnapshot(
    double count, double mean, double variance, double min, double max,
    const std::vector<std::pair<double, double>>& buckets) {
  tsf::telemetry::HistogramSnapshot snapshot;
  snapshot.count = static_cast<std::uint64_t>(count);
  snapshot.mean = mean;
  snapshot.m2 = variance * count;
  snapshot.min = min;
  snapshot.max = max;
  for (const auto& [ge, n] : buckets) {
    const std::size_t bucket =
        ge < 1.0 ? 0 : static_cast<std::size_t>(std::lround(std::log2(ge))) + 1;
    if (bucket < snapshot.buckets.size())
      snapshot.buckets[bucket] = static_cast<std::uint64_t>(n);
  }
  return snapshot;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <metrics.jsonl>\n", argv[0]);
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }

  struct Scalar {
    std::string name;
    double value = 0.0;
  };
  std::vector<Scalar> counters, gauges;
  std::vector<std::string> histogram_lines;

  std::string line;
  while (std::getline(file, line)) {
    if (line.empty()) continue;
    std::string type, name;
    if (!FindString(line, "type", &type) || !FindString(line, "name", &name)) {
      std::fprintf(stderr, "warning: skipping malformed line: %s\n",
                   line.c_str());
      continue;
    }
    double value = 0.0;
    if (type == "counter" && FindNumber(line, "value", &value))
      counters.push_back({name, value});
    else if (type == "gauge" && FindNumber(line, "value", &value))
      gauges.push_back({name, value});
    else if (type == "histogram")
      histogram_lines.push_back(line);
  }

  std::size_t width = 24;
  for (const Scalar& s : counters) width = std::max(width, s.name.size());
  for (const Scalar& s : gauges) width = std::max(width, s.name.size());

  if (!counters.empty()) {
    std::printf("counters:\n");
    for (const Scalar& s : counters)
      std::printf("  %-*s %14.0f\n", static_cast<int>(width), s.name.c_str(),
                  s.value);
  }
  if (!gauges.empty()) {
    std::printf("%sgauges:\n", counters.empty() ? "" : "\n");
    for (const Scalar& s : gauges)
      std::printf("  %-*s %14.3f\n", static_cast<int>(width), s.name.c_str(),
                  s.value);
  }
  if (!histogram_lines.empty()) {
    std::printf("%shistograms:\n", counters.empty() && gauges.empty() ? "" : "\n");
    std::string name;
    std::vector<std::pair<double, double>> buckets;
    for (const std::string& h : histogram_lines) {
      double count = 0, mean = 0, variance = 0, min = 0, max = 0;
      FindString(h, "name", &name);
      FindNumber(h, "count", &count);
      FindNumber(h, "mean", &mean);
      FindNumber(h, "variance", &variance);
      FindNumber(h, "min", &min);
      FindNumber(h, "max", &max);
      FindBuckets(h, &buckets);
      std::printf("  %s\n", name.c_str());
      std::printf("    count=%.0f mean=%.4g stddev=%.4g min=%.4g max=%.4g\n",
                  count, mean, std::sqrt(variance), min, max);
      const tsf::telemetry::HistogramSnapshot snapshot =
          RebuildSnapshot(count, mean, variance, min, max, buckets);
      std::printf("    p50=%.4g p95=%.4g p99=%.4g  (log-bucket estimate, "
                  "<2x relative error for values >= 1)\n",
                  snapshot.Quantile(0.50), snapshot.Quantile(0.95),
                  snapshot.Quantile(0.99));
      double total = 0;
      for (const auto& [ge, n] : buckets) total += n;
      for (const auto& [ge, n] : buckets)
        std::printf("    >= %-10.4g %12.0f  %s\n", ge, n,
                    Bar(total > 0 ? n / total : 0.0, 40).c_str());
    }
  }
  if (counters.empty() && gauges.empty() && histogram_lines.empty())
    std::printf("(no metrics in %s — was telemetry enabled?)\n", argv[1]);
  return 0;
}
