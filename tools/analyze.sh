#!/usr/bin/env sh
# One-command correctness matrix. Runs, in order:
#
#   release   configure+build the release preset, run the full ctest suite
#   asan      AddressSanitizer + UBSan build, full ctest suite
#   tsan      ThreadSanitizer build, full ctest suite (races are fatal:
#             TSAN_OPTIONS=halt_on_error=1 via the test preset)
#   tidy      clang-tidy zero-findings gate (tools/run_clang_tidy.sh;
#             skipped with a note if clang-tidy is not installed)
#   annotate  clang thread-safety analysis: canary pair must pass/fail as
#             expected, then the `analysis` preset builds the whole tree
#             with -Werror=thread-safety (tools/check_thread_safety.sh;
#             skipped with a note if clang++ is not installed)
#   lint      repo-specific lints (tools/lint_repo.py) + their self-test
#   determinism
#             nondeterminism-hazard lints (tools/determinism_lint.py) +
#             their self-test + the audited suppression ledger
#   format    clang-format --dry-run over first-party sources
#             (skipped with a note if clang-format is not installed)
#   bench     perf-regression smoke: build benchmarks, gate via
#             tools/bench_regression.sh (skipped if no baseline committed)
#   scale     trace-scale smoke: bench_scale 10k-machine collapsed/flat
#             lanes gated against BENCH_scale.json
#             (tools/bench_scale_gate.sh; skipped without a baseline)
#   fuzz      chaos fuzz smoke: tools/fuzz_scenarios --smoke (64 seeded
#             fault-injected scenarios, every policy, invariants armed)
#             plus the injected-bug harness self-test, then the same smoke
#             with the equivalence-class engine forced on
#             (--cluster_mode=collapsed); then the guided lane: a
#             corpus-seeded feedback-driven search (--guided --smoke
#             --corpus_dir=tests/corpus) and its own injected-bug
#             self-test (guided must find the planted bug within the
#             capped budget)
#   slo       sustained-load SLO smoke: slo_report rate-1 lanes on both
#             substrates gated against BENCH_slo.json (tools/slo_gate.sh;
#             skipped without a baseline)
#
# Usage:
#   tools/analyze.sh              run every step
#   tools/analyze.sh tsan lint    run a subset, in the order given
#
# Any step failing fails the whole run (the summary shows every step's
# status regardless, so one failure does not hide another).
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cd "$repo_root"

steps="${*:-release asan tsan tidy annotate lint determinism format bench scale fuzz slo}"
results=""
failed=0

run_step() {
  step="$1"
  echo ""
  echo "==== analyze: $step ===="
  case "$step" in
    release)
      cmake --preset release &&
      cmake --build --preset release -j "$(nproc)" &&
      ctest --preset release -j "$(nproc)"
      ;;
    asan)
      cmake --preset asan &&
      cmake --build --preset asan -j "$(nproc)" &&
      ctest --preset asan -j "$(nproc)"
      ;;
    tsan)
      cmake --preset tsan &&
      cmake --build --preset tsan -j "$(nproc)" &&
      ctest --preset tsan -j "$(nproc)"
      ;;
    tidy)
      # Needs compile_commands.json from any configured build dir.
      if [ ! -f build/compile_commands.json ]; then cmake --preset release; fi
      tools/run_clang_tidy.sh build
      ;;
    annotate)
      tools/check_thread_safety.sh
      ;;
    lint)
      python3 tools/lint_repo.py --self-test &&
      python3 tools/lint_repo.py
      ;;
    determinism)
      python3 tools/determinism_lint.py --self-test &&
      python3 tools/determinism_lint.py &&
      python3 tools/determinism_lint.py --list-suppressions
      ;;
    format)
      if command -v clang-format >/dev/null 2>&1; then
        find src bench tools tests -name '*.h' -o -name '*.cc' |
          xargs clang-format --dry-run -Werror
      else
        echo "clang-format not installed; skipping"
      fi
      ;;
    bench)
      if [ ! -f BENCH_core.json ]; then
        echo "no committed baseline (BENCH_core.json); skipping bench gate"
      else
        cmake --preset release -DTSF_BUILD_BENCH=ON &&
        cmake --build --preset release --target bench_perf_core -j "$(nproc)" &&
        tools/bench_regression.sh build
      fi
      ;;
    scale)
      if [ ! -f BENCH_scale.json ]; then
        echo "no committed baseline (BENCH_scale.json); skipping scale gate"
      else
        cmake --preset release -DTSF_BUILD_BENCH=ON &&
        cmake --build --preset release --target bench_scale -j "$(nproc)" &&
        tools/bench_scale_gate.sh build
      fi
      ;;
    fuzz)
      cmake --preset release &&
      cmake --build --preset release --target fuzz_scenarios -j "$(nproc)" &&
      build/tools/fuzz_scenarios --smoke &&
      build/tools/fuzz_scenarios --smoke --inject_bug=leak_task_on_crash &&
      build/tools/fuzz_scenarios --smoke --cluster_mode=collapsed &&
      build/tools/fuzz_scenarios --guided --smoke \
        --corpus_dir=tests/corpus &&
      build/tools/fuzz_scenarios --guided --smoke \
        --inject_bug=leak_task_on_crash
      ;;
    slo)
      if [ ! -f BENCH_slo.json ]; then
        echo "no committed baseline (BENCH_slo.json); skipping slo gate"
      else
        cmake --preset release &&
        cmake --build --preset release --target slo_report -j "$(nproc)" &&
        tools/slo_gate.sh build
      fi
      ;;
    *)
      echo "unknown step: $step (known: release asan tsan tidy annotate lint determinism format bench scale fuzz slo)" >&2
      return 2
      ;;
  esac
}

for step in $steps; do
  if run_step "$step"; then
    results="$results\n  $step: PASS"
  else
    results="$results\n  $step: FAIL"
    failed=1
  fi
done

echo ""
echo "==== analyze summary ===="
# shellcheck disable=SC2059 — results embeds \n escapes on purpose.
printf "$results\n"
exit "$failed"
