#!/usr/bin/env sh
# Trace-scale smoke gate: runs the bench_scale smoke lanes (10k machines,
# collapsed + flat) and compares them against the committed BENCH_scale.json.
# Fails when
#   * the fresh run comes from a non-release binary (JSON context check),
#   * a lane's items/sec dropped below baseline by more than the tolerance,
#   * the collapsed-over-flat smoke speedup fell under the floor.
# Peak RSS per lane is printed alongside (ru_maxrss is process-monotone, so
# only the first lane's value is a tight per-lane bound; rss_delta_mb is the
# growth during the lane).
#
# Usage:
#   tools/bench_scale_gate.sh [build-dir]
#
# Environment:
#   TSF_BENCH_TOLERANCE_PCT   allowed items/sec drop per lane, in percent
#                             (default 50 — the smoke lanes run well under a
#                             second, so shared-runner noise is large)
#   TSF_SCALE_MIN_SPEEDUP     collapsed-vs-flat floor (default 3; the pinned
#                             perf box holds >6, CI only screams on collapse)
set -eu

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench="$build_dir/bench/bench_scale"
baseline="$repo_root/BENCH_scale.json"
fresh="$repo_root/BENCH_scale.json.new"
tolerance="${TSF_BENCH_TOLERANCE_PCT:-50}"
min_speedup="${TSF_SCALE_MIN_SPEEDUP:-3}"

if [ ! -x "$bench" ]; then
  echo "error: $bench is missing or not executable." >&2
  echo "build it first:" >&2
  echo "  cmake --preset release && cmake --build build --target bench_scale -j" >&2
  exit 1
fi
if [ ! -f "$baseline" ]; then
  echo "error: no committed baseline ($baseline); run $bench once" >&2
  echo "(full lanes) and commit its output." >&2
  exit 1
fi

"$bench" --smoke --out="$fresh"

if python3 - "$baseline" "$fresh" "$tolerance" "$min_speedup" <<'EOF'
import json, sys

old = json.load(open(sys.argv[1]))
new = json.load(open(sys.argv[2]))
tolerance = float(sys.argv[3])
min_speedup = float(sys.argv[4])
failures = []

build_type = new.get("context", {}).get("tsf_build_type", "unknown")
if build_type != "release":
    failures.append(f"fresh run reports build type '{build_type}' — rebuild "
                    "with the release preset")

old_lanes = {b["name"]: b for b in old["benchmarks"]}
print(f"{'lane':28s} {'old':>12s} {'new':>12s} {'peak rss':>10s}")
for lane in new["benchmarks"]:
    name = lane["name"]
    rss = f"{lane['peak_rss_mb']:.1f}MB"
    if name not in old_lanes:
        print(f"{name:28s} {'-':>12s} {lane['items_per_second']:>10.0f}/s {rss:>10s}")
        continue
    o = old_lanes[name]["items_per_second"]
    n = lane["items_per_second"]
    drop_pct = (o - n) / o * 100.0
    flag = ""
    if drop_pct > tolerance:
        flag = "  << REGRESSION"
        failures.append(f"{name}: items/sec {drop_pct:+.1f}% below baseline "
                        f"(limit -{tolerance:g}%)")
    print(f"{name:28s} {o:>10.0f}/s {n:>10.0f}/s {rss:>10s}{flag}")

speedup = new.get("speedup_smoke_10k", 0.0)
ok = speedup >= min_speedup
print(f"\ncollapsed-over-flat smoke speedup: {speedup:.2f}x "
      f"(floor {min_speedup:g}x) — {'PASS' if ok else 'FAIL'}")
if not ok:
    failures.append(f"smoke speedup {speedup:.2f}x under the "
                    f"{min_speedup:g}x floor")

if failures:
    print("\nbench_scale_gate: FAIL")
    for f in failures:
        print(f"  {f}")
    sys.exit(1)
print("\nbench_scale_gate: PASS")
EOF
then
  rm -f "$fresh"
else
  rm -f "$fresh"
  exit 1
fi
