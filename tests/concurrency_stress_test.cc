// Multi-threaded stress tests for every concurrent subsystem: the metrics
// registry, the tracer, ThreadPool, RunSeeds, and the Mesos offer loop.
//
// These tests exist primarily as ThreadSanitizer fodder — the TSan preset
// (cmake --preset tsan) runs them with full race instrumentation and any
// report fails the build (tools/analyze.sh step `tsan`). They assert real
// invariants too (exact counter totals, conserved placements), so they pull
// their weight under the plain build as well.
//
// Each TEST runs in its own process (gtest_discover_tests registers them
// individually), so tests may flip the global telemetry flags freely.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "mesos/mesos.h"
#include "sim/runner.h"
#include "sim/workload.h"
#include "telemetry/metrics.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace tsf {
namespace {

constexpr std::size_t kThreads = 8;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// ------------------------------------------------------------ metrics ----

TEST(MetricsStress, CountersAndHistogramsUnderContention) {
  telemetry::SetEnabled(true);
  constexpr std::int64_t kPerThread = 4000;
  ThreadPool pool(kThreads);
  std::atomic<bool> snapshotting{true};
  // A dedicated snapshotter hammers Snapshot()/WriteJsonlSnapshot while the
  // pool writes: registration, shard writes, and merges all overlap.
  std::thread snapshotter([&] {
    const std::string path = TempPath("tsf_stress_metrics.jsonl");
    while (snapshotting.load(std::memory_order_acquire)) {
      const telemetry::MetricsSnapshot snap =
          telemetry::Registry::Get().Snapshot();
      ASSERT_TRUE(telemetry::Registry::Get().WriteJsonlSnapshot(path));
      for (const auto& [name, total] : snap.counters)
        ASSERT_GE(total, 0) << name;
    }
  });
  pool.ParallelFor(kThreads, [&](std::size_t t) {
    for (std::int64_t i = 0; i < kPerThread; ++i) {
      TSF_COUNTER_ADD("stress.ops", 1);
      TSF_GAUGE_SET("stress.last_thread", t);
      TSF_HISTOGRAM_RECORD("stress.value", static_cast<double>(i));
    }
  });
  snapshotting.store(false, std::memory_order_release);
  snapshotter.join();

  const auto total =
      telemetry::Registry::Get().GetCounter("stress.ops").Total();
  EXPECT_EQ(total, static_cast<std::int64_t>(kThreads) * kPerThread);
  const telemetry::HistogramSnapshot hist =
      telemetry::Registry::Get().GetHistogram("stress.value").Snapshot();
  EXPECT_EQ(hist.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_NEAR(hist.mean, (kPerThread - 1) / 2.0, 1e-6);
  telemetry::SetEnabled(false);
}

TEST(MetricsStress, EnableToggleRacesWriters) {
  constexpr int kToggles = 400;
  ThreadPool pool(kThreads);
  std::atomic<bool> done{false};
  pool.Submit([&] {
    for (int i = 0; i < kToggles; ++i) telemetry::SetEnabled(i % 2 == 0);
    telemetry::SetEnabled(true);
    done.store(true, std::memory_order_release);
  });
  pool.ParallelFor(kThreads - 1, [&](std::size_t) {
    // Spin until the toggler finished so the tail of the loop runs with
    // telemetry definitely on; the head races the toggles on purpose.
    for (int i = 0; i < 20000 || !done.load(std::memory_order_acquire); ++i)
      TSF_COUNTER_ADD("stress.toggle_ops", 1);
  });
  pool.Wait();
  EXPECT_GT(telemetry::Registry::Get().GetCounter("stress.toggle_ops").Total(),
            0);
  telemetry::SetEnabled(false);
}

// ------------------------------------------------------------- tracer ----

TEST(TracerStress, SpansFromManyThreadsWithConcurrentDrain) {
  constexpr int kPerThread = 3000;
  telemetry::Tracer& tracer = telemetry::Tracer::Get();
  tracer.Start(/*events_per_thread=*/1024);  // small ring: force wrap-around
  ThreadPool pool(kThreads);
  std::atomic<bool> draining{true};
  std::thread drainer([&] {
    const std::string path = TempPath("tsf_stress_trace.json");
    while (draining.load(std::memory_order_acquire)) {
      (void)tracer.BufferedRecords();
      (void)tracer.DroppedRecords();
      ASSERT_TRUE(tracer.WriteChromeTrace(path));
    }
  });
  pool.ParallelFor(kThreads, [&](std::size_t t) {
    const char* mine =
        tracer.Intern("stress/thread_" + std::to_string(t));
    for (int i = 0; i < kPerThread; ++i) {
      TSF_TRACE_SCOPE("stress", "span");
      TSF_TRACE_INSTANT("stress", mine);
      TSF_TRACE_COUNTER("stress", "i", i);
    }
  });
  draining.store(false, std::memory_order_release);
  drainer.join();
  tracer.Stop();

  const std::string path = TempPath("tsf_stress_trace_final.json");
  ASSERT_TRUE(tracer.WriteChromeTrace(path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  // 3 records per iteration per thread through rings of 1024: most overflow.
  EXPECT_GT(tracer.DroppedRecords(), 0u);
  EXPECT_LE(tracer.BufferedRecords(), kThreads * 1024u + 1024u);
}

TEST(TracerStress, RestartWhileAppending) {
  constexpr int kRestarts = 50;
  telemetry::Tracer& tracer = telemetry::Tracer::Get();
  tracer.Start(256);
  ThreadPool pool(kThreads);
  std::atomic<bool> stop{false};
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.Submit([&] {
      while (!stop.load(std::memory_order_acquire)) {
        TSF_TRACE_SCOPE("stress", "restart_span");
        TSF_TRACE_INSTANT("stress", "restart_tick");
      }
    });
  }
  // Session restarts clear every ring buffer while the writers above are
  // mid-append; the per-buffer spinlocks must serialize that.
  for (int r = 0; r < kRestarts; ++r) tracer.Start(256);
  stop.store(true, std::memory_order_release);
  pool.Wait();
  tracer.Stop();
  ASSERT_TRUE(tracer.WriteChromeTrace(TempPath("tsf_stress_restart.json")));
}

// -------------------------------------------------------- thread pool ----

TEST(ThreadPoolStress, SubmitWaitParallelForInterleaved) {
  ThreadPool pool(kThreads);
  std::atomic<std::int64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    for (int b = 0; b < 32; ++b)
      pool.Submit([&] { sum.fetch_add(1, std::memory_order_relaxed); });
    pool.ParallelFor(64, [&](std::size_t) {
      sum.fetch_add(1, std::memory_order_relaxed);
    });
    // ParallelFor waits for *all* in-flight tasks, including the Submits.
    EXPECT_EQ(sum.load(), (round + 1) * (32 + 64));
  }
}

// ------------------------------------------------------------- runner ----

Workload StressWorkload(std::uint64_t seed) {
  Cluster cluster;
  cluster.AddMachine(ResourceVector{4.0, 8.0});
  cluster.AddMachine(ResourceVector{8.0, 4.0});
  Workload workload;
  workload.cluster = cluster;
  for (int j = 0; j < 4; ++j) {
    JobSpec spec;
    spec.id = j;
    spec.name = "job" + std::to_string(j);
    spec.demand = ResourceVector{1.0, 1.0};
    spec.num_tasks = 6;
    spec.arrival_time = 0.5 * j;
    workload.jobs.push_back(
        MakeJitteredJob(spec, /*mean_runtime=*/2.0, /*jitter=*/0.2, seed + j));
  }
  return workload;
}

TEST(RunSeedsStress, SeedPolicyGridWithTelemetryAndTraceEnabled) {
  telemetry::SetEnabled(true);
  telemetry::Tracer::Get().Start(4096);
  const std::vector<OnlinePolicy> policies = {
      OnlinePolicy::Tsf(), OnlinePolicy::Drf(), OnlinePolicy::Fifo()};
  ThreadPool pool(kThreads);
  std::mutex mutex;
  std::set<std::uint64_t> reduced;
  RunSeeds(StressWorkload, policies, /*first_seed=*/1, /*num_seeds=*/8, pool,
           [&](std::uint64_t seed, const std::vector<SimResult>& results) {
             const std::lock_guard lock(mutex);
             ASSERT_EQ(results.size(), policies.size());
             for (const SimResult& result : results) {
               EXPECT_GT(result.makespan, 0.0);
               EXPECT_EQ(result.jobs.size(), 4u);
             }
             reduced.insert(seed);
           });
  telemetry::Tracer::Get().Stop();
  telemetry::SetEnabled(false);
  EXPECT_EQ(reduced.size(), 8u);
  EXPECT_EQ(*reduced.begin(), 1u);
  EXPECT_EQ(*reduced.rbegin(), 8u);
}

// -------------------------------------------------------------- mesos ----

TEST(MesosStress, ParallelClustersShareTelemetryRegistry) {
  telemetry::SetEnabled(true);
  ThreadPool pool(4);
  std::mutex mutex;
  std::vector<double> makespans;
  // RunCluster instances are independent (no shared mutable state), but all
  // of them funnel counters into the one global registry concurrently.
  pool.ParallelFor(4, [&](std::size_t k) {
    mesos::ClusterConfig config;
    config.slaves = {{ResourceVector{2.0, 2.0}, "s0"},
                     {ResourceVector{2.0, 2.0}, "s1"},
                     {ResourceVector{4.0, 1.0}, "s2"}};
    config.policy = k % 2 == 0 ? mesos::AllocatorPolicy::kTsf
                               : mesos::AllocatorPolicy::kDrf;
    config.seed = 17 + k;
    config.sample_interval = 0.5;
    std::vector<mesos::FrameworkSpec> frameworks(3);
    for (std::size_t f = 0; f < frameworks.size(); ++f) {
      frameworks[f].name = "fw" + std::to_string(f);
      frameworks[f].num_tasks = 12;
      frameworks[f].demand = ResourceVector{1.0, 0.5};
      frameworks[f].mean_runtime = 1.0;
      if (f == 2) frameworks[f].whitelist = {0, 2};
    }
    const mesos::SimOutcome outcome = mesos::RunCluster(config, frameworks);
    const std::lock_guard lock(mutex);
    makespans.push_back(outcome.makespan);
    for (const mesos::FrameworkStats& stats : outcome.frameworks)
      EXPECT_EQ(stats.tasks_run, 12);
  });
  telemetry::SetEnabled(false);
  ASSERT_EQ(makespans.size(), 4u);
  for (const double m : makespans) EXPECT_GT(m, 0.0);
  EXPECT_GT(
      telemetry::Registry::Get().GetCounter("mesos.offers.accepted").Total(),
      0);
}

// ---------------------------------------------------------------- log ----

TEST(LogStress, RateLimitedLoggingFromManyThreads) {
  SetLogLevel(LogLevel::kDebug);
  ThreadPool pool(kThreads);
  pool.ParallelFor(kThreads, [&](std::size_t t) {
    for (int i = 0; i < 5000; ++i) {
      // One shared site: at most a handful of the 40k passes may emit.
      TSF_LOG_EVERY_N(DEBUG, 1000000) << "stress tick t=" << t;
    }
  });
  SetLogLevel(LogLevel::kWarn);
  SUCCEED();
}

}  // namespace
}  // namespace tsf
