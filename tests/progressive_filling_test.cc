// Tests for Algorithm 1 (progressive filling) against the paper's worked
// examples and hand-checkable scenarios.
#include <gtest/gtest.h>

#include "core/offline/policies.h"
#include "core/offline/progressive_filling.h"
#include "core/paper_examples.h"

namespace tsf {
namespace {

TEST(ProgressiveFilling, Fig4TsfAllocationMatchesPaper) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const FillingResult result = SolveTsf(problem);

  std::string error;
  ASSERT_TRUE(result.allocation.IsFeasible(problem, &error)) << error;

  // The paper's allocation: u1 six tasks, u2 one, u3 three, with task shares
  // 3/7, 1/7, 3/7.
  EXPECT_NEAR(result.allocation.UserTasks(0), 6.0, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(1), 1.0, 1e-5);
  EXPECT_NEAR(result.allocation.UserTasks(2), 3.0, 1e-5);
  EXPECT_NEAR(result.shares[0], 3.0 / 7.0, 1e-6);
  EXPECT_NEAR(result.shares[1], 1.0 / 7.0, 1e-6);
  EXPECT_NEAR(result.shares[2], 3.0 / 7.0, 1e-6);

  // u2 saturates in round 1 (its only machine fills up); u1 and u3 later.
  EXPECT_EQ(result.freeze_round[1], 1u);
  EXPECT_GT(result.freeze_round[0], 1u);
  EXPECT_GT(result.freeze_round[2], 1u);
}

TEST(ProgressiveFilling, Fig2TsfIsConstraintLieProof) {
  // TSF's denominator h ignores constraints, so u2 claiming extra machines
  // must not raise its task count.
  const CompiledProblem honest = Compile(paper::Fig2Truthful());
  const CompiledProblem lied = Compile(paper::Fig2Lie());
  const FillingResult honest_result = SolveTsf(honest);
  const FillingResult lied_result = SolveTsf(lied);
  // Honest TSF: equalize n1/18 = n2/12 under m2's capacity: (9, 6).
  EXPECT_NEAR(honest_result.allocation.UserTasks(0), 9.0, 1e-5);
  EXPECT_NEAR(honest_result.allocation.UserTasks(1), 6.0, 1e-5);
  // The lie leaves h unchanged, and u2 gains nothing.
  EXPECT_LE(lied_result.allocation.UserTasks(1),
            honest_result.allocation.UserTasks(1) + 1e-5);
}

TEST(ProgressiveFilling, SingleUserMonopolizesEligibleMachines) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{4.0, 4.0});
  problem.cluster.AddMachine(ResourceVector{4.0, 4.0});
  JobSpec job{.id = 0, .name = "solo", .demand = {1.0, 1.0}};
  job.constraint = Constraint::Whitelist({0});
  problem.jobs = {job};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolveTsf(compiled);
  EXPECT_NEAR(result.allocation.UserTasks(0), 4.0, 1e-6);
  EXPECT_NEAR(result.allocation.tasks(0, 1), 0.0, 1e-9);
  // h = 8 (both machines), so the lone user's share is 1/2, not 1.
  EXPECT_NEAR(result.shares[0], 0.5, 1e-6);
}

TEST(ProgressiveFilling, IdenticalUsersSplitEvenly) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{12.0, 12.0});
  for (UserId i = 0; i < 3; ++i)
    problem.jobs.push_back(
        JobSpec{.id = i, .name = "u" + std::to_string(i), .demand = {1.0, 1.0}});
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolveTsf(compiled);
  for (UserId i = 0; i < 3; ++i)
    EXPECT_NEAR(result.allocation.UserTasks(i), 4.0, 1e-6);
}

TEST(ProgressiveFilling, WeightsScaleShares) {
  // Two identical users, weight 2 vs 1: tasks split 2:1.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{9.0});
  JobSpec heavy{.id = 0, .name = "heavy", .demand = {1.0}};
  heavy.weight = 2.0;
  JobSpec light{.id = 1, .name = "light", .demand = {1.0}};
  problem.jobs = {heavy, light};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolveTsf(compiled);
  EXPECT_NEAR(result.allocation.UserTasks(0), 6.0, 1e-6);
  EXPECT_NEAR(result.allocation.UserTasks(1), 3.0, 1e-6);
}

TEST(ProgressiveFilling, RoundLevelsAreNonDecreasing) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const FillingResult result = SolveTsf(problem);
  for (std::size_t t = 1; t < result.round_levels.size(); ++t)
    EXPECT_GE(result.round_levels[t], result.round_levels[t - 1] - 1e-9);
}

TEST(ProgressiveFilling, DisconnectedComponentsFillIndependently) {
  // Two separate machine islands; the small island's user saturates low,
  // the big island's user gets everything there.
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{2.0});
  problem.cluster.AddMachine(ResourceVector{10.0});
  JobSpec small{.id = 0, .name = "small", .demand = {1.0}};
  small.constraint = Constraint::Whitelist({0});
  JobSpec big{.id = 1, .name = "big", .demand = {1.0}};
  big.constraint = Constraint::Whitelist({1});
  problem.jobs = {small, big};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult result = SolveTsf(compiled);
  EXPECT_NEAR(result.allocation.UserTasks(0), 2.0, 1e-6);
  EXPECT_NEAR(result.allocation.UserTasks(1), 10.0, 1e-6);
}

TEST(ProgressiveFilling, InactiveUsersKeepFloorsInLaterRounds) {
  // u2 freezes first in Fig. 4; later rounds must not drop it below 1 task.
  const CompiledProblem problem = Compile(paper::Fig4());
  const FillingResult result = SolveTsf(problem);
  EXPECT_GE(result.allocation.UserTasks(1), 1.0 - 1e-6);
}

TEST(MaxShareWithFloors, UnboundedByOthersWhenAlone) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const std::vector<double> unit(problem.num_users, 1.0);
  std::vector<double> floors(problem.num_users, 0.0);
  // With no floors, u3 can reach its constrained monopoly: g = 7 tasks.
  const double max_tasks = MaxShareWithFloors(problem, unit, 2, floors);
  EXPECT_NEAR(max_tasks, 7.0, 1e-5);
}

TEST(MaxShareWithFloors, FloorsBind) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const std::vector<double> unit(problem.num_users, 1.0);
  std::vector<double> floors = {6.0, 1.0, 0.0};
  // With u1 and u2 at the TSF allocation, u3 can still reach only 3 tasks.
  const double max_tasks = MaxShareWithFloors(problem, unit, 2, floors);
  EXPECT_NEAR(max_tasks, 3.0, 1e-5);
}

TEST(ProgressiveFillingDeathTest, RejectsNonPositiveDenominator) {
  const CompiledProblem problem = Compile(paper::Fig4());
  std::vector<double> denominator(problem.num_users, 1.0);
  denominator[0] = 0.0;
  EXPECT_DEATH(ProgressiveFilling(problem, denominator), "check failed");
}

}  // namespace
}  // namespace tsf
