// Tests for the discrete-event simulator: conservation, timing, policy
// behaviour on hand-checkable workloads.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/des.h"
#include "sim/runner.h"

namespace tsf {
namespace {

Cluster SmallCluster(std::size_t machines, double cores, double ram) {
  Cluster cluster;
  for (std::size_t m = 0; m < machines; ++m)
    cluster.AddMachine(ResourceVector{cores, ram});
  return cluster;
}

TEST(Des, SingleJobRunsToCompletion) {
  Workload workload;
  workload.cluster = SmallCluster(2, 4.0, 4.0);
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
  spec.num_tasks = 8;  // exactly fills both machines
  workload.jobs.push_back(MakeUniformJob(spec, 10.0));

  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
  ASSERT_EQ(result.tasks.size(), 8u);
  // All 8 tasks start at t=0 and finish at t=10.
  for (const TaskRecord& task : result.tasks) {
    EXPECT_DOUBLE_EQ(task.schedule, 0.0);
    EXPECT_DOUBLE_EQ(task.finish, 10.0);
  }
  EXPECT_DOUBLE_EQ(result.jobs[0].QueueingDelay(), 0.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].CompletionTime(), 10.0);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Des, QueuedTasksWaitForCapacity) {
  Workload workload;
  workload.cluster = SmallCluster(1, 1.0, 1.0);
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
  spec.num_tasks = 3;  // machine holds one at a time
  workload.jobs.push_back(MakeUniformJob(spec, 5.0));

  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
  ASSERT_EQ(result.tasks.size(), 3u);
  EXPECT_DOUBLE_EQ(result.tasks[0].schedule, 0.0);
  EXPECT_DOUBLE_EQ(result.tasks[1].schedule, 5.0);
  EXPECT_DOUBLE_EQ(result.tasks[2].schedule, 10.0);
  EXPECT_DOUBLE_EQ(result.jobs[0].CompletionTime(), 15.0);
}

TEST(Des, ConstraintsRestrictPlacement) {
  Workload workload;
  workload.cluster = SmallCluster(2, 2.0, 2.0);
  JobSpec spec{.id = 0, .name = "pinned", .demand = {1.0, 1.0}};
  spec.num_tasks = 4;
  spec.constraint = Constraint::Whitelist({1});
  workload.jobs.push_back(MakeUniformJob(spec, 7.0));

  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
  // Only machine 1 usable → 2 at a time → waves at t=0 and t=7.
  EXPECT_DOUBLE_EQ(result.jobs[0].CompletionTime(), 14.0);
}

TEST(Des, LateArrivalWaitsForArrivalTime) {
  Workload workload;
  workload.cluster = SmallCluster(1, 4.0, 4.0);
  JobSpec spec{.id = 0, .name = "late", .demand = {1.0, 1.0}};
  spec.num_tasks = 1;
  spec.arrival_time = 100.0;
  workload.jobs.push_back(MakeUniformJob(spec, 2.0));

  const SimResult result = Simulate(workload, OnlinePolicy::Drf());
  EXPECT_DOUBLE_EQ(result.tasks[0].schedule, 100.0);
  EXPECT_DOUBLE_EQ(result.tasks[0].QueueingDelay(), 0.0);
}

TEST(Des, FifoStarvesLaterJobsUnderContention) {
  // Job A (1000 short tasks) then job B at t=1: FIFO makes B wait for A's
  // backlog; TSF serves B immediately as capacity frees.
  Workload workload;
  workload.cluster = SmallCluster(2, 1.0, 1.0);
  JobSpec a{.id = 0, .name = "A", .demand = {1.0, 1.0}};
  a.num_tasks = 100;
  workload.jobs.push_back(MakeUniformJob(a, 10.0));
  JobSpec b{.id = 1, .name = "B", .demand = {1.0, 1.0}};
  b.num_tasks = 2;
  b.arrival_time = 1.0;
  workload.jobs.push_back(MakeUniformJob(b, 10.0));

  const SimResult fifo = Simulate(workload, OnlinePolicy::Fifo());
  const SimResult tsf = Simulate(workload, OnlinePolicy::Tsf());
  // Under FIFO, B's first task waits until all of A's 100 are done.
  EXPECT_GT(fifo.jobs[1].QueueingDelay(), 400.0);
  // Under TSF, B has the lowest share after the first completions.
  EXPECT_LT(tsf.jobs[1].QueueingDelay(), 20.0);
}

TEST(Des, TsfEqualizesTaskSharesUnderSaturation) {
  // Two long-running jobs, identical demands/constraints, equal h: steady
  // state splits capacity evenly.
  Workload workload;
  workload.cluster = SmallCluster(4, 2.0, 2.0);
  for (UserId i = 0; i < 2; ++i) {
    JobSpec spec{.id = i, .name = "j" + std::to_string(i),
                 .demand = {1.0, 1.0}};
    spec.num_tasks = 100;
    workload.jobs.push_back(MakeUniformJob(spec, 3.0));
  }
  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
  // With equal shares, completion times are within one wave of each other.
  EXPECT_NEAR(result.jobs[0].CompletionTime(), result.jobs[1].CompletionTime(),
              3.0 + 1e-9);
}

TEST(Des, TaskIdentityStableAcrossPolicies) {
  // Same workload under two policies: tasks (job, index) align 1:1 with
  // identical runtimes, enabling per-task speedup comparisons.
  Workload workload;
  workload.cluster = SmallCluster(2, 2.0, 2.0);
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
  spec.num_tasks = 20;
  workload.jobs.push_back(MakeJitteredJob(spec, 5.0, 0.2, 7));

  const SimResult a = Simulate(workload, OnlinePolicy::Tsf());
  const SimResult b = Simulate(workload, OnlinePolicy::Fifo());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].job, b.tasks[t].job);
    EXPECT_EQ(a.tasks[t].index, b.tasks[t].index);
    EXPECT_NEAR(a.tasks[t].finish - a.tasks[t].schedule,
                b.tasks[t].finish - b.tasks[t].schedule, 1e-9);
  }
}

TEST(Des, MetricsVectorsMatchCounts) {
  Workload workload;
  workload.cluster = SmallCluster(2, 2.0, 2.0);
  for (UserId i = 0; i < 3; ++i) {
    JobSpec spec{.id = i, .name = "j" + std::to_string(i),
                 .demand = {1.0, 1.0}};
    spec.num_tasks = 4;
    spec.arrival_time = static_cast<double>(i);
    workload.jobs.push_back(MakeUniformJob(spec, 2.0));
  }
  const SimResult result = Simulate(workload, OnlinePolicy::Cdrf());
  EXPECT_EQ(result.JobQueueingDelays().size(), 3u);
  EXPECT_EQ(result.JobCompletionTimes().size(), 3u);
  EXPECT_EQ(result.TaskQueueingDelays().size(), 12u);
  for (const double d : result.TaskQueueingDelays()) EXPECT_GE(d, 0.0);
}

TEST(Des, WorkConservationNoIdleWithPendingEligible) {
  // At every schedule event, verify the invariant indirectly: total busy
  // time equals sum of task runtimes (no task lost or double-counted).
  Workload workload;
  workload.cluster = SmallCluster(3, 2.0, 4.0);
  for (UserId i = 0; i < 4; ++i) {
    JobSpec spec{.id = i, .name = "j" + std::to_string(i),
                 .demand = {1.0, 1.0}};
    spec.num_tasks = 10;
    spec.arrival_time = static_cast<double>(i) * 3.0;
    workload.jobs.push_back(MakeJitteredJob(spec, 4.0, 0.2, 17 + i));
  }
  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
  double runtime_sum = 0.0;
  for (const SimJob& job : workload.jobs)
    for (const double r : job.task_runtimes) runtime_sum += r;
  double busy_sum = 0.0;
  for (const TaskRecord& task : result.tasks)
    busy_sum += task.finish - task.schedule;
  EXPECT_NEAR(busy_sum, runtime_sum, 1e-6);
}

TEST(Runner, ReducerSeesEverySeedOnce) {
  ThreadPool pool(2);
  std::vector<int> seen(5, 0);
  const WorkloadFactory factory = [](std::uint64_t seed) {
    Workload workload;
    workload.cluster = SmallCluster(1, 2.0, 2.0);
    JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
    spec.num_tasks = static_cast<long>(1 + seed % 3);
    workload.jobs.push_back(MakeUniformJob(spec, 1.0));
    return workload;
  };
  RunSeeds(factory, {OnlinePolicy::Tsf(), OnlinePolicy::Fifo()}, 10, 5, pool,
           [&](std::uint64_t seed, const std::vector<SimResult>& results) {
             ASSERT_EQ(results.size(), 2u);
             EXPECT_EQ(results[0].policy, "TSF");
             EXPECT_EQ(results[1].policy, "FIFO");
             EXPECT_EQ(results[0].tasks.size(), 1 + seed % 3);
             ++seen[seed - 10];
           });
  for (const int count : seen) EXPECT_EQ(count, 1);
}


// --- fault injection (chaos hooks) ------------------------------------------

long CountKind(const std::vector<SimStreamEvent>& stream,
               SimStreamEvent::Kind kind) {
  long count = 0;
  for (const SimStreamEvent& event : stream) count += event.kind == kind;
  return count;
}

TEST(DesFaults, CrashKillsRequeuesAndCompletes) {
  Workload workload;
  workload.cluster = SmallCluster(2, 2.0, 2.0);
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
  spec.num_tasks = 8;  // 4 slots -> two 10 s waves, fault lands mid-wave
  workload.jobs.push_back(MakeUniformJob(spec, 10.0));

  SimOptions options;
  options.faults = {{5.0, SimFault::Kind::kMachineCrash, 1},
                    {12.0, SimFault::Kind::kMachineRestart, 1}};
  std::vector<SimStreamEvent> stream;
  options.stream = &stream;
  const SimResult result =
      Simulate(workload, OnlinePolicy::Tsf(), SimCore::kIncremental, options);

  // Every task still completes; the two killed on machine 1 at t=5 rerun
  // from scratch with their pre-sampled runtimes (task identity preserved).
  ASSERT_EQ(result.tasks.size(), 8u);
  long retried = 0;
  for (const TaskRecord& task : result.tasks) {
    EXPECT_GE(task.attempts, 1);
    retried += task.attempts > 1 ? 1 : 0;
  }
  EXPECT_EQ(retried, 2);
  EXPECT_EQ(CountKind(stream, SimStreamEvent::Kind::kKill), 2);
  EXPECT_EQ(CountKind(stream, SimStreamEvent::Kind::kCrash), 1);
  EXPECT_EQ(CountKind(stream, SimStreamEvent::Kind::kRestart), 1);
  // 8 first placements + 2 retries.
  EXPECT_EQ(CountKind(stream, SimStreamEvent::Kind::kPlace), 10);
  EXPECT_EQ(CountKind(stream, SimStreamEvent::Kind::kFinish), 8);
  // Lost work stretches the run: 2 slots carry the tail.
  EXPECT_GT(result.makespan, 20.0);
}

TEST(DesFaults, TaskFailureRetriesOnTheSpot) {
  Workload workload;
  workload.cluster = SmallCluster(1, 2.0, 2.0);
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
  spec.num_tasks = 2;
  workload.jobs.push_back(MakeUniformJob(spec, 5.0));

  SimOptions options;
  options.faults = {{2.0, SimFault::Kind::kTaskFailure, 0}};
  std::vector<SimStreamEvent> stream;
  options.stream = &stream;
  const SimResult result =
      Simulate(workload, OnlinePolicy::Tsf(), SimCore::kIncremental, options);

  // The victim re-enters the pending pool and is placed again immediately
  // (the machine stayed up with a free slot): 2 + 5 = 7 s makespan.
  ASSERT_EQ(result.tasks.size(), 2u);
  EXPECT_EQ(CountKind(stream, SimStreamEvent::Kind::kFail), 1);
  EXPECT_EQ(result.tasks[0].attempts + result.tasks[1].attempts, 3);
  EXPECT_DOUBLE_EQ(result.makespan, 7.0);
}

TEST(DesFaults, FaultsPreserveDifferentialStreamEquality) {
  Workload workload;
  workload.cluster = SmallCluster(2, 3.0, 3.0);
  JobSpec spec{.id = 0, .name = "a", .demand = {1.0, 1.0}};
  spec.num_tasks = 9;
  workload.jobs.push_back(MakeUniformJob(spec, 4.0));
  JobSpec other{.id = 1, .name = "b", .demand = {1.0, 2.0}};
  other.num_tasks = 5;
  workload.jobs.push_back(MakeUniformJob(other, 3.0));

  SimOptions incremental_options;
  incremental_options.faults = {{2.0, SimFault::Kind::kMachineCrash, 0},
                                {3.5, SimFault::Kind::kTaskFailure, 1},
                                {6.0, SimFault::Kind::kMachineRestart, 0}};
  SimOptions reference_options = incremental_options;
  std::vector<SimStreamEvent> incremental_stream, reference_stream;
  incremental_options.stream = &incremental_stream;
  reference_options.stream = &reference_stream;
  Simulate(workload, OnlinePolicy::Tsf(), SimCore::kIncremental,
           incremental_options);
  Simulate(workload, OnlinePolicy::Tsf(), SimCore::kReference,
           reference_options);

  ASSERT_EQ(incremental_stream.size(), reference_stream.size());
  for (std::size_t i = 0; i < incremental_stream.size(); ++i) {
    EXPECT_EQ(incremental_stream[i].kind, reference_stream[i].kind) << i;
    EXPECT_EQ(incremental_stream[i].task, reference_stream[i].task) << i;
    EXPECT_EQ(incremental_stream[i].machine, reference_stream[i].machine) << i;
  }
}

}  // namespace
}  // namespace tsf
