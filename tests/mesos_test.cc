// Tests for the Mesos-like offer substrate, including the Fig. 5 share
// plateaus the paper derives analytically for the Table II micro-benchmark.
#include <gtest/gtest.h>

#include <cmath>

#include "mesos/mesos.h"

namespace tsf::mesos {
namespace {

TEST(PaperFleet, MatchesExperimentSetup) {
  const std::vector<SlaveSpec> fleet = PaperFleet();
  ASSERT_EQ(fleet.size(), 50u);
  for (int n = 0; n < 25; ++n) {
    EXPECT_DOUBLE_EQ(fleet[n].capacity[0], 1.0);
    EXPECT_DOUBLE_EQ(fleet[n].capacity[1], 1024.0);
  }
  for (int n = 25; n < 50; ++n) EXPECT_DOUBLE_EQ(fleet[n].capacity[0], 2.0);
}

TEST(TableTwoJobs, MonopolyTaskCountsMatchTableII) {
  // Table II's h_i row: 75, 100, 100, 75 (CPU-bound for jobs 1 and 4,
  // memory caps jobs 2 and 3 at two 512 MB tasks per 1 GB node).
  const std::vector<SlaveSpec> fleet = PaperFleet();
  const std::vector<FrameworkSpec> jobs = TableTwoJobs();
  const double expected_h[] = {75.0, 100.0, 100.0, 75.0};
  for (std::size_t f = 0; f < jobs.size(); ++f) {
    double h = 0.0;
    for (const SlaveSpec& slave : fleet)
      h += slave.capacity.DivisibleTaskCount(jobs[f].demand);
    EXPECT_NEAR(h, expected_h[f], 1e-9) << jobs[f].name;
  }
}

TEST(RunCluster, SingleFrameworkMonopolizes) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{2.0, 1024.0}, "n1"},
                   {ResourceVector{2.0, 1024.0}, "n2"}};
  config.sample_interval = 0.0;
  FrameworkSpec fw{.name = "solo", .start_time = 0.0, .num_tasks = 8,
                   .demand = ResourceVector{1.0, 256.0}, .mean_runtime = 10.0,
                   .runtime_jitter = 0.0};
  const SimOutcome outcome = RunCluster(config, {fw});
  ASSERT_EQ(outcome.frameworks.size(), 1u);
  EXPECT_EQ(outcome.frameworks[0].tasks_run, 8);
  // 4 concurrent slots → two waves of 10 s.
  EXPECT_NEAR(outcome.frameworks[0].completion_time, 20.0, 1e-9);
}

TEST(RunCluster, WhitelistIsHonored) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{4.0, 1024.0}, "n1"},
                   {ResourceVector{4.0, 1024.0}, "n2"}};
  config.sample_interval = 0.0;
  FrameworkSpec fw{.name = "pinned", .start_time = 0.0, .num_tasks = 8,
                   .demand = ResourceVector{1.0, 128.0}, .mean_runtime = 5.0,
                   .runtime_jitter = 0.0, .whitelist = {1}};
  const SimOutcome outcome = RunCluster(config, {fw});
  // Only node 2's four slots usable → two waves.
  EXPECT_NEAR(outcome.frameworks[0].completion_time, 10.0, 1e-9);
}

TEST(RunCluster, TsfSharesCapacityByTaskShare) {
  // Two identical frameworks on one 4-slot node: each runs two at a time.
  ClusterConfig config;
  config.slaves = {{ResourceVector{4.0, 2048.0}, "n1"}};
  config.sample_interval = 0.0;
  std::vector<FrameworkSpec> fws(2);
  for (int f = 0; f < 2; ++f)
    fws[f] = {.name = "fw" + std::to_string(f), .start_time = 0.0,
              .num_tasks = 10, .demand = ResourceVector{1.0, 256.0},
              .mean_runtime = 4.0, .runtime_jitter = 0.0};
  const SimOutcome outcome = RunCluster(config, fws);
  // 20 tasks, 4 slots, 4 s each → makespan 20 s, both finish together.
  EXPECT_NEAR(outcome.frameworks[0].completion_time,
              outcome.frameworks[1].completion_time, 4.0 + 1e-9);
}

// The analytically derived share plateaus of Fig. 5 (Sec. VI-A2), with
// runtime jitter disabled for exactness:
//   t in (10, ~job2 done): job2 runs 50 tasks on nodes 1-25 (share 1/2),
//                          job1 runs 50 on nodes 26-50 (share 2/3).
//   t in (150+, job4 done): jobs 3 & 4 split the 20 whitelisted nodes
//                          (share 1/5 each); job1 holds 30 nodes (3/5).
TEST(RunCluster, Fig5SharePlateausMatchPaper) {
  ClusterConfig config;
  config.slaves = PaperFleet();
  config.sample_interval = 1.0;
  config.seed = 3;
  std::vector<FrameworkSpec> jobs = TableTwoJobs();
  for (FrameworkSpec& job : jobs) job.runtime_jitter = 0.0;
  // Stretch runtimes so plateaus are long and sampling is unambiguous.
  const SimOutcome outcome = RunCluster(config, jobs);

  auto share_at = [&](double time, std::size_t framework) {
    double best_delta = 1e18;
    double value = -1.0;
    for (const SharePoint& point : outcome.timeline) {
      const double delta = std::abs(point.time - time);
      if (delta < best_delta) {
        best_delta = delta;
        value = point.task_share[framework];
      }
    }
    return value;
  };

  // Before job2 arrives, job1 monopolizes: 75 slots for 1000 tasks, share
  // 75/75 = 1.
  EXPECT_NEAR(share_at(5.0, 0), 1.0, 0.05);
  // Job2's plateau. Slots hand over as job1 tasks finish (mean 23.2 s), so
  // sample after the transition settles: job2 at 1/2, job1 at 2/3.
  EXPECT_NEAR(share_at(45.0, 1), 0.5, 0.06);
  EXPECT_NEAR(share_at(45.0, 0), 2.0 / 3.0, 0.06);
  // Jobs 3 & 4 arrive at t=150 and split the 20 whitelisted nodes once
  // job1's tasks there drain; the paper reports both plateaus at 1/5 (the
  // exact level depends on the integer packing mix, so allow a band) and
  // job1 at 3/5.
  EXPECT_NEAR(share_at(200.0, 2), 0.21, 0.05);
  EXPECT_NEAR(share_at(200.0, 3), 0.21, 0.05);
  EXPECT_NEAR(std::abs(share_at(200.0, 2) - share_at(200.0, 3)), 0.0, 0.06);
  EXPECT_NEAR(share_at(200.0, 0), 0.6, 0.05);
}

TEST(RunCluster, DrfAllocatorUsesDominantShares) {
  // Node <8 CPU, 8192 MB>; fw A <4,512> has dominant share 1/2 per task,
  // fw B <1,512> has 1/8. DRF equalizes n_A/2 = n_B/8 → steady state is
  // 1 A + 4 B concurrently (CPU exactly full). With 40 A-tasks and 160
  // B-tasks both finish after 40 waves of 10 s.
  ClusterConfig config;
  config.slaves = {{ResourceVector{8.0, 8192.0}, "n1"}};
  config.policy = AllocatorPolicy::kDrf;
  config.sample_interval = 0.0;
  std::vector<FrameworkSpec> fws(2);
  fws[0] = {.name = "big", .start_time = 0.0, .num_tasks = 40,
            .demand = ResourceVector{4.0, 512.0}, .mean_runtime = 10.0,
            .runtime_jitter = 0.0};
  fws[1] = {.name = "small", .start_time = 0.0, .num_tasks = 160,
            .demand = ResourceVector{1.0, 512.0}, .mean_runtime = 10.0,
            .runtime_jitter = 0.0};
  const SimOutcome outcome = RunCluster(config, fws);
  EXPECT_NEAR(outcome.frameworks[0].completion_time, 400.0, 10.0 + 1e-9);
  EXPECT_NEAR(outcome.frameworks[1].completion_time, 400.0, 10.0 + 1e-9);
}

TEST(RunCluster, TimelineSamplesCoverTheRun) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{2.0, 1024.0}, "n1"}};
  config.sample_interval = 2.0;
  FrameworkSpec fw{.name = "solo", .start_time = 0.0, .num_tasks = 6,
                   .demand = ResourceVector{1.0, 256.0}, .mean_runtime = 10.0,
                   .runtime_jitter = 0.0};
  const SimOutcome outcome = RunCluster(config, {fw});
  ASSERT_FALSE(outcome.timeline.empty());
  EXPECT_DOUBLE_EQ(outcome.timeline.front().time, 0.0);
  EXPECT_GE(outcome.timeline.back().time, outcome.makespan - 2.0);
  for (std::size_t k = 1; k < outcome.timeline.size(); ++k)
    EXPECT_GT(outcome.timeline[k].time, outcome.timeline[k - 1].time);
}

TEST(RunCluster, LateStartersWaitUntilRegistered) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{4.0, 4096.0}, "n1"}};
  config.sample_interval = 0.0;
  std::vector<FrameworkSpec> fws(2);
  // Five slots; "early" takes four, leaving one free for the late arrival.
  fws[0] = {.name = "early", .start_time = 0.0, .num_tasks = 4,
            .demand = ResourceVector{0.8, 512.0}, .mean_runtime = 100.0,
            .runtime_jitter = 0.0};
  fws[1] = {.name = "late", .start_time = 50.0, .num_tasks = 1,
            .demand = ResourceVector{0.5, 512.0}, .mean_runtime = 10.0,
            .runtime_jitter = 0.0};
  const SimOutcome outcome = RunCluster(config, fws);
  EXPECT_DOUBLE_EQ(outcome.frameworks[1].first_task_time, 50.0);
}

TEST(RunClusterDeathTest, RejectsImpossibleFramework) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{1.0, 128.0}, "n1"}};
  FrameworkSpec fw{.name = "huge", .start_time = 0.0, .num_tasks = 1,
                   .demand = ResourceVector{4.0, 4096.0}};
  EXPECT_DEATH(RunCluster(config, {fw}), "no slave fits");
}


// --- offer-path regression + fault injection --------------------------------

TEST(RunCluster, ExactlyFullSlavesAreSkippedNotOffered) {
  // Regression: a slave whose free capacity hits exactly zero mid-round
  // used to reach the fit probe and produce empty offers the framework
  // could only decline; the allocator now short-circuits it.
  ClusterConfig config;
  config.slaves = {{ResourceVector{2.0, 512.0}, "n1"},
                   {ResourceVector{2.0, 512.0}, "n2"}};
  config.sample_interval = 0.0;
  // Demand {1 CPU, 256 MB} on {2, 512} slaves: two tasks leave free
  // capacity at exactly <0, 0>.
  FrameworkSpec fw{.name = "fill", .start_time = 0.0, .num_tasks = 12,
                   .demand = ResourceVector{1.0, 256.0}, .mean_runtime = 4.0,
                   .runtime_jitter = 0.0};
  const SimOutcome outcome = RunCluster(config, {fw});
  EXPECT_EQ(outcome.frameworks[0].tasks_run, 12);
  EXPECT_EQ(outcome.stats.offers_accepted, 12);
  EXPECT_GT(outcome.stats.zero_slave_skips, 0);
  EXPECT_EQ(outcome.stats.down_slave_skips, 0);
}

long CountKind(const std::vector<MasterEvent>& stream,
               MasterEvent::Kind kind) {
  long count = 0;
  for (const MasterEvent& event : stream) count += event.kind == kind;
  return count;
}

TEST(RunCluster, SlaveCrashReschedulesKilledTasks) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{2.0, 512.0}, "n1"},
                   {ResourceVector{2.0, 512.0}, "n2"}};
  config.sample_interval = 0.0;
  FrameworkSpec fw{.name = "f", .start_time = 0.0, .num_tasks = 8,
                   .demand = ResourceVector{1.0, 128.0}, .mean_runtime = 4.0,
                   .runtime_jitter = 0.0};
  RunOptions options;
  options.faults = {{2.0, Fault::Kind::kSlaveCrash, 1},
                    {3.0, Fault::Kind::kSlaveRestart, 1}};
  std::vector<MasterEvent> stream;
  options.stream = &stream;
  const SimOutcome outcome = RunCluster(config, {fw}, options);

  // The two tasks killed on slave 1 relaunch (fresh launch ids) and every
  // logical task still completes exactly once.
  EXPECT_EQ(outcome.frameworks[0].tasks_run, 8);
  EXPECT_EQ(CountKind(stream, MasterEvent::Kind::kKill), 2);
  EXPECT_EQ(CountKind(stream, MasterEvent::Kind::kCrash), 1);
  EXPECT_EQ(CountKind(stream, MasterEvent::Kind::kRestart), 1);
  EXPECT_EQ(CountKind(stream, MasterEvent::Kind::kLaunch), 10);
  EXPECT_EQ(CountKind(stream, MasterEvent::Kind::kFinish), 8);
  EXPECT_GT(outcome.stats.down_slave_skips, 0);
}

TEST(RunCluster, DisconnectPausesOffersUntilReregister) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{1.0, 256.0}, "n1"}};
  config.sample_interval = 0.0;
  FrameworkSpec fw{.name = "f", .start_time = 0.0, .num_tasks = 4,
                   .demand = ResourceVector{1.0, 128.0}, .mean_runtime = 2.0,
                   .runtime_jitter = 0.0};
  RunOptions options;
  options.faults = {{1.0, Fault::Kind::kFrameworkDisconnect, 0},
                    {9.0, Fault::Kind::kFrameworkReregister, 0}};
  const SimOutcome outcome = RunCluster(config, {fw}, options);

  // Task 1 (launched at t=0) keeps running through the disconnect and
  // finishes at t=2; the remaining three wait for the t=9 re-register:
  // 9-11, 11-13, 13-15.
  EXPECT_EQ(outcome.frameworks[0].tasks_run, 4);
  EXPECT_NEAR(outcome.frameworks[0].completion_time, 15.0, 1e-9);
}

TEST(RunCluster, DeclineTimeoutBlacksOutOffers) {
  ClusterConfig config;
  config.slaves = {{ResourceVector{1.0, 256.0}, "n1"}};
  config.sample_interval = 0.0;
  FrameworkSpec fw{.name = "f", .start_time = 0.0, .num_tasks = 2,
                   .demand = ResourceVector{1.0, 128.0}, .mean_runtime = 2.0,
                   .runtime_jitter = 0.0};
  RunOptions options;
  // At t=2 the first task finishes; the blackout window [2, 8) makes the
  // framework decline until the nudge at t=8: second task runs 8-10.
  options.faults = {{2.0, Fault::Kind::kDeclineTimeout, 0, 6.0}};
  const SimOutcome outcome = RunCluster(config, {fw}, options);
  EXPECT_EQ(outcome.frameworks[0].tasks_run, 2);
  EXPECT_NEAR(outcome.frameworks[0].completion_time, 10.0, 1e-9);
  EXPECT_GT(outcome.stats.blackout_declines, 0);
}

}  // namespace
}  // namespace tsf::mesos
