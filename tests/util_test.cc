// Unit tests for src/util: checks, bitset, RNG, flags, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "util/bitset.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace tsf {
namespace {

// ------------------------------------------------------------- check ----

TEST(Check, PassingCheckDoesNothing) {
  TSF_CHECK(1 + 1 == 2);
  TSF_CHECK_EQ(4, 4) << "never evaluated";
  SUCCEED();
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(TSF_CHECK(false) << "context 42", "context 42");
}

TEST(CheckDeathTest, FailingCheckOpPrintsOperands) {
  const int a = 3;
  EXPECT_DEATH(TSF_CHECK_EQ(a, 5), "lhs=3");
}

TEST(Check, DanglingElseCanary) {
  // Compile-time regression test for the macro parse-safety rule (see the
  // comment in util/check.h): TSF_CHECK / TSF_DCHECK / TSF_LOG used as the
  // body of a brace-less `if` must not capture a following `else`. The
  // build compiles this with -Werror=dangling-else, so a macro rewrite
  // that regresses to a statement form fails right here.
  int taken = 0;
  const bool flag = true;
  if (flag)
    TSF_CHECK(1 == 1) << "then-branch";
  else
    taken = -1;
  if (!flag)
    TSF_DCHECK_EQ(2, 2);
  else
    taken = 1;
  EXPECT_EQ(taken, 1);
}

TEST(Check, DcheckOpVariantsPassQuietly) {
  TSF_DCHECK_EQ(2 + 2, 4);
  TSF_DCHECK_NE(1, 2);
  TSF_DCHECK_LT(1, 2);
  TSF_DCHECK_LE(2, 2);
  TSF_DCHECK_GT(3, 2);
  TSF_DCHECK_GE(3, 3) << "streamed context compiles";
  SUCCEED();
}

#ifndef NDEBUG
TEST(CheckDeathTest, DcheckOpVariantsFireInDebugBuilds) {
  EXPECT_DEATH(TSF_DCHECK_LT(5, 5), "lhs=5");
}
#else
TEST(Check, DcheckOperandsNotEvaluatedInReleaseBuilds) {
  // In NDEBUG builds the condition must be odr-used but never executed.
  int calls = 0;
  const auto count = [&calls] { return ++calls; };
  TSF_DCHECK_EQ(count(), 1);
  TSF_DCHECK(count() > 0) << count();
  EXPECT_EQ(calls, 0);
}
#endif

// ------------------------------------------------------------ bitset ----

TEST(DynamicBitset, StartsAllClear) {
  const DynamicBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  EXPECT_FALSE(bits.Any());
}

TEST(DynamicBitset, SetTestReset) {
  DynamicBitset bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(DynamicBitset, SetAllRespectsSize) {
  DynamicBitset bits(70);  // crosses a word boundary with padding
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  EXPECT_TRUE(bits.All());
}

TEST(DynamicBitset, IntersectsAndOperators) {
  DynamicBitset a(128), b(128);
  a.Set(5);
  a.Set(100);
  b.Set(100);
  EXPECT_TRUE(a.Intersects(b));
  b.Reset(100);
  b.Set(6);
  EXPECT_FALSE(a.Intersects(b));

  const DynamicBitset both = a | b;
  EXPECT_EQ(both.Count(), 3u);
  const DynamicBitset neither = a & b;
  EXPECT_TRUE(neither.None());
}

TEST(DynamicBitset, ForEachSetVisitsAscending) {
  DynamicBitset bits(200);
  const std::vector<std::size_t> expected = {3, 64, 65, 127, 128, 199};
  for (const auto i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  bits.ForEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, ForEachSetUntilStopsAtFirstTrue) {
  DynamicBitset bits(200);
  for (const auto i : {3, 64, 65, 127, 128, 199}) bits.Set(static_cast<std::size_t>(i));
  std::vector<std::size_t> seen;
  const bool stopped = bits.ForEachSetUntil([&](std::size_t i) {
    seen.push_back(i);
    return i >= 65;
  });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, (std::vector<std::size_t>{3, 64, 65}));
}

TEST(DynamicBitset, ForEachSetUntilExhaustsWhenNeverStopped) {
  DynamicBitset bits(130);
  const std::vector<std::size_t> expected = {0, 63, 64, 129};
  for (const auto i : expected) bits.Set(i);
  std::vector<std::size_t> seen;
  const bool stopped =
      bits.ForEachSetUntil([&](std::size_t i) { seen.push_back(i); return false; });
  EXPECT_FALSE(stopped);
  EXPECT_EQ(seen, expected);
}

TEST(DynamicBitset, CountAndMatchesMaterializedIntersection) {
  DynamicBitset a(150), b(150);
  for (const auto i : {1, 63, 64, 100, 149}) a.Set(static_cast<std::size_t>(i));
  for (const auto i : {1, 64, 99, 149}) b.Set(static_cast<std::size_t>(i));
  EXPECT_EQ(a.CountAnd(b), (a & b).Count());
  EXPECT_EQ(a.CountAnd(b), 3u);
  EXPECT_EQ(a.CountAnd(a), a.Count());
  EXPECT_EQ(DynamicBitset(150).CountAnd(a), 0u);
}

TEST(DynamicBitset, ForEachSetUntilOnEmptySetNeverCalls) {
  DynamicBitset bits(100);
  bool called = false;
  const bool stopped = bits.ForEachSetUntil([&](std::size_t) {
    called = true;
    return true;
  });
  EXPECT_FALSE(stopped);
  EXPECT_FALSE(called);
  DynamicBitset zero(0);
  EXPECT_FALSE(zero.ForEachSetUntil([](std::size_t) { return true; }));
}

TEST(DynamicBitset, ForEachSetUntilLastWordBoundary) {
  // The final set bit sits exactly on the last valid index, both when the
  // size is word-aligned (128) and when the last word is partial (129).
  for (const std::size_t size : {128u, 129u, 64u, 65u}) {
    DynamicBitset bits(size);
    bits.Set(size - 1);
    std::vector<std::size_t> seen;
    const bool stopped = bits.ForEachSetUntil([&](std::size_t i) {
      seen.push_back(i);
      return i == size - 1;
    });
    EXPECT_TRUE(stopped) << size;
    EXPECT_EQ(seen, std::vector<std::size_t>{size - 1}) << size;
  }
}

TEST(DynamicBitset, ForEachSetUntilStopsOnVeryFirstBit) {
  DynamicBitset bits(200);
  for (const auto i : {0, 64, 199}) bits.Set(static_cast<std::size_t>(i));
  std::size_t calls = 0;
  EXPECT_TRUE(bits.ForEachSetUntil([&](std::size_t) {
    ++calls;
    return true;
  }));
  EXPECT_EQ(calls, 1u);
}

TEST(DynamicBitset, CountAndEdgeCases) {
  // Both empty.
  EXPECT_EQ(DynamicBitset(70).CountAnd(DynamicBitset(70)), 0u);
  // Zero-size bitsets have no words at all.
  EXPECT_EQ(DynamicBitset(0).CountAnd(DynamicBitset(0)), 0u);
  // Last-word boundary: overlap only at the final bit of a partial word.
  DynamicBitset a(65), b(65);
  a.Set(64);
  b.Set(64);
  b.Set(63);
  EXPECT_EQ(a.CountAnd(b), 1u);
  EXPECT_EQ(b.CountAnd(a), 1u);
  // Disjoint sets sharing words still count zero.
  DynamicBitset c(65);
  c.Set(63);
  EXPECT_EQ(a.CountAnd(c), 0u);
}

TEST(DynamicBitset, FindFirst) {
  DynamicBitset bits(128);
  EXPECT_EQ(bits.FindFirst(), 128u);
  bits.Set(77);
  EXPECT_EQ(bits.FindFirst(), 77u);
  bits.Set(3);
  EXPECT_EQ(bits.FindFirst(), 3u);
}

// --------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.Below(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(Rng, IntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.Int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedParetoStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.BoundedPareto(1.2, 1.0, 1000.0);
    EXPECT_GE(x, 1.0 - 1e-9);
    EXPECT_LE(x, 1000.0 + 1e-9);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(23);
  std::vector<int> hits(3, 0);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  for (int i = 0; i < 40000; ++i) ++hits[rng.WeightedIndex(weights)];
  EXPECT_EQ(hits[1], 0);
  EXPECT_NEAR(static_cast<double>(hits[2]) / hits[0], 3.0, 0.2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// ------------------------------------------------------------- flags ----

TEST(Flags, ParsesEqualsAndSpaceForms) {
  const char* argv[] = {"prog", "--machines=100", "--jobs", "42", "--fast"};
  Flags flags(5, const_cast<char**>(argv),
              {{"machines", ""}, {"jobs", ""}, {"fast", ""}});
  EXPECT_EQ(flags.GetInt("machines", 0), 100);
  EXPECT_EQ(flags.GetInt("jobs", 0), 42);
  EXPECT_TRUE(flags.GetBool("fast", false));
}

TEST(Flags, FallbackWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {{"x", ""}});
  EXPECT_EQ(flags.GetInt("x", 7), 7);
  EXPECT_EQ(flags.GetString("x", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.GetDouble("x", 2.5), 2.5);
  EXPECT_FALSE(flags.Has("x"));
}

TEST(Flags, EnvironmentFallback) {
  ::setenv("TSF_SOME_KNOB", "123", 1);
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv), {{"some-knob", ""}});
  EXPECT_EQ(flags.GetInt("some-knob", 0), 123);
  ::unsetenv("TSF_SOME_KNOB");
}

TEST(Flags, CommandLineBeatsEnvironment) {
  ::setenv("TSF_KNOB", "1", 1);
  const char* argv[] = {"prog", "--knob=2"};
  Flags flags(2, const_cast<char**>(argv), {{"knob", ""}});
  EXPECT_EQ(flags.GetInt("knob", 0), 2);
  ::unsetenv("TSF_KNOB");
}

TEST(FlagsDeathTest, UnknownFlagExits) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EXIT(Flags(2, const_cast<char**>(argv), {{"real", ""}}),
              ::testing::ExitedWithCode(2), "unknown flag");
}

// ------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&sum](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

// --------------------------------------------------------------- log ----

TEST(Log, ParseLogLevelReportsRecognition) {
  bool recognized = false;
  EXPECT_EQ(ParseLogLevel("info", &recognized), LogLevel::kInfo);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(ParseLogLevel("ERROR", &recognized), LogLevel::kError);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(ParseLogLevel("warn", &recognized), LogLevel::kWarn);
  EXPECT_TRUE(recognized);
  // Unknown strings fall back to kWarn but flag the fallback, so the env
  // parser can warn instead of silently downgrading a typo'd TRACE.
  EXPECT_EQ(ParseLogLevel("verbose", &recognized), LogLevel::kWarn);
  EXPECT_FALSE(recognized);
  EXPECT_EQ(ParseLogLevel("", &recognized), LogLevel::kWarn);
  EXPECT_FALSE(recognized);
  // Single-argument overload still just maps unknowns to kWarn.
  EXPECT_EQ(ParseLogLevel("bogus"), LogLevel::kWarn);
}

TEST(Log, ParseLogLevelRoundTripsEveryDocumentedLevel) {
  // Every spelling the TSF_LOG_LEVEL error message documents
  // ("expected trace|debug|info|warn|error"), plus the "warning" alias,
  // in lower/upper/mixed case — all must parse with recognized=true.
  const std::pair<const char*, LogLevel> levels[] = {
      {"trace", LogLevel::kTrace},   {"debug", LogLevel::kDebug},
      {"info", LogLevel::kInfo},     {"warn", LogLevel::kWarn},
      {"warning", LogLevel::kWarn},  {"error", LogLevel::kError},
  };
  for (const auto& [text, expected] : levels) {
    std::string upper(text), mixed(text);
    for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
    mixed[0] = static_cast<char>(std::toupper(mixed[0]));
    for (const std::string& spelling : {std::string(text), upper, mixed}) {
      bool recognized = false;
      EXPECT_EQ(ParseLogLevel(spelling, &recognized), expected) << spelling;
      EXPECT_TRUE(recognized) << spelling;
    }
  }
}

int CountOccurrences(const std::string& text, const std::string& needle) {
  int count = 0;
  for (std::size_t pos = 0;
       (pos = text.find(needle, pos)) != std::string::npos; ++pos)
    ++count;
  return count;
}

TEST(Log, LogEveryNEmitsFirstOfEachWindow) {
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 10; ++i)
    TSF_LOG_EVERY_N(WARN, 3) << "every-n marker " << i;
  const std::string err = testing::internal::GetCapturedStderr();
  // Records 1, 4, 7, 10 pass the modulus (i = 0, 3, 6, 9).
  EXPECT_EQ(CountOccurrences(err, "every-n marker"), 4);
  EXPECT_NE(err.find("every-n marker 0"), std::string::npos);
  EXPECT_NE(err.find("every-n marker 9"), std::string::npos);
  EXPECT_EQ(err.find("every-n marker 1"), std::string::npos);
}

TEST(Log, LogEveryNSuppressedRecordsDoNotAdvanceCadence) {
  // While the level filters the site out, the counter must not move: once
  // the level drops, the cadence restarts at the first record.
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 13; ++i) {
    if (i == 7) SetLogLevel(LogLevel::kInfo);
    TSF_LOG_EVERY_N(INFO, 5) << "cadence " << i;  // one site for all 13
  }
  const std::string err = testing::internal::GetCapturedStderr();
  SetLogLevel(LogLevel::kWarn);
  // i = 0..6 are filtered by level and must not consume counts, so the
  // cadence starts fresh at i = 7 and fires again 5 records later.
  EXPECT_EQ(CountOccurrences(err, "cadence"), 2);
  EXPECT_NE(err.find("cadence 7"), std::string::npos);
  EXPECT_NE(err.find("cadence 12"), std::string::npos);
}

TEST(Log, LogEveryNOneIsEveryRecord) {
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  for (int i = 0; i < 3; ++i) TSF_LOG_EVERY_N(WARN, 1) << "all " << i;
  const std::string err = testing::internal::GetCapturedStderr();
  EXPECT_EQ(CountOccurrences(err, "all "), 3);
}

}  // namespace
}  // namespace tsf
