// Tests for the workload text format (save/load round trips + error paths).
#include <gtest/gtest.h>

#include <cstdio>

#include "sim/des.h"
#include "trace/google.h"
#include "trace/io.h"

namespace tsf::trace {
namespace {

Workload SmallWorkload() {
  Workload workload;
  workload.cluster.AddMachine(ResourceVector{8.0, 16.0}, AttributeSet({2, 5}));
  workload.cluster.AddMachine(ResourceVector{4.0, 8.0});
  JobSpec a{.id = 0, .name = "alpha", .demand = {1.0, 2.0}};
  a.arrival_time = 3.5;
  a.weight = 2.0;
  a.num_tasks = 3;
  a.constraint = Constraint::Whitelist({0});
  workload.jobs.push_back(MakeJitteredJob(a, 10.0, 0.2, 4));
  JobSpec b{.id = 1, .name = "beta", .demand = {0.5, 1.0}};
  b.arrival_time = 1.0;
  b.num_tasks = 2;
  b.constraint = Constraint::RequireAttributes(AttributeSet({2}));
  workload.jobs.push_back(MakeUniformJob(b, 7.0));
  // Simulator requires arrival order; the loader re-sorts anyway.
  std::swap(workload.jobs[0], workload.jobs[1]);
  return workload;
}

TEST(WorkloadIo, RoundTripPreservesEverything) {
  const Workload original = SmallWorkload();
  const std::string text = WorkloadToText(original);
  Workload loaded;
  std::string error;
  ASSERT_TRUE(WorkloadFromText(text, &loaded, &error)) << error;

  ASSERT_EQ(loaded.cluster.num_machines(), 2u);
  EXPECT_EQ(loaded.cluster.machine(0).capacity, (ResourceVector{8.0, 16.0}));
  EXPECT_TRUE(loaded.cluster.machine(0).attributes.Contains(5));
  EXPECT_TRUE(loaded.cluster.machine(1).attributes.empty());

  ASSERT_EQ(loaded.jobs.size(), 2u);
  // Loader sorts by arrival: beta (t=1.0) first.
  EXPECT_EQ(loaded.jobs[0].spec.name, "beta");
  EXPECT_EQ(loaded.jobs[1].spec.name, "alpha");
  EXPECT_DOUBLE_EQ(loaded.jobs[1].spec.weight, 2.0);
  EXPECT_EQ(loaded.jobs[1].spec.num_tasks, 3);
  EXPECT_EQ(loaded.jobs[1].spec.constraint.kind(), Constraint::Kind::kWhitelist);
  EXPECT_EQ(loaded.jobs[0].spec.constraint.kind(),
            Constraint::Kind::kRequireAttributes);
  // Runtimes survive the %.10g round trip ("alpha" sits at index 1 both in
  // the original, post-swap, and after the loader's arrival sort).
  ASSERT_EQ(loaded.jobs[1].task_runtimes.size(), 3u);
  for (std::size_t t = 0; t < loaded.jobs[1].task_runtimes.size(); ++t)
    EXPECT_NEAR(loaded.jobs[1].task_runtimes[t],
                SmallWorkload().jobs[1].task_runtimes[t], 1e-8);
}

TEST(WorkloadIo, RoundTripOfSynthesizedWorkload) {
  GoogleTraceConfig config;
  config.num_machines = 30;
  config.num_jobs = 60;
  config.seed = 12;
  const Workload original = SynthesizeGoogleWorkload(config);
  Workload loaded;
  std::string error;
  ASSERT_TRUE(WorkloadFromText(WorkloadToText(original), &loaded, &error))
      << error;
  ASSERT_EQ(loaded.jobs.size(), original.jobs.size());
  EXPECT_EQ(loaded.TotalTasks(), original.TotalTasks());
  for (std::size_t j = 0; j < original.jobs.size(); ++j) {
    EXPECT_EQ(loaded.jobs[j].spec.num_tasks, original.jobs[j].spec.num_tasks);
    EXPECT_EQ(loaded.cluster.Eligibility(loaded.jobs[j].spec.constraint),
              original.cluster.Eligibility(original.jobs[j].spec.constraint));
  }
}

TEST(WorkloadIo, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/workload.tsf";
  std::string error;
  ASSERT_TRUE(SaveWorkload(SmallWorkload(), path, &error)) << error;
  Workload loaded;
  ASSERT_TRUE(LoadWorkload(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.jobs.size(), 2u);
  std::remove(path.c_str());
}

TEST(WorkloadIo, LoadMissingFileFails) {
  Workload loaded;
  std::string error;
  EXPECT_FALSE(LoadWorkload("/nonexistent/nowhere.tsf", &loaded, &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

struct BadInputCase {
  const char* name;
  const char* text;
  const char* expected_error;
};

class WorkloadIoBadInput : public ::testing::TestWithParam<BadInputCase> {};

TEST_P(WorkloadIoBadInput, IsRejectedWithDiagnostic) {
  Workload loaded;
  std::string error;
  EXPECT_FALSE(WorkloadFromText(GetParam().text, &loaded, &error));
  EXPECT_NE(error.find(GetParam().expected_error), std::string::npos)
      << "got: " << error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, WorkloadIoBadInput,
    ::testing::Values(
        BadInputCase{"empty", "", "missing resources"},
        BadInputCase{"no_machines", "resources 2\n", "no machines"},
        BadInputCase{"machine_first", "machine 1 1 attrs -\n",
                     "machine before resources"},
        BadInputCase{"bad_keyword",
                     "resources 1\nmachine 1 attrs -\nfrobnicate\n",
                     "unknown keyword"},
        BadInputCase{"job_without_runtimes",
                     "resources 1\nmachine 4 attrs -\n"
                     "job a arrival 0 weight 1 demand 1 constraint none\n",
                     "ends before runtimes"},
        BadInputCase{"orphan_runtimes",
                     "resources 1\nmachine 4 attrs -\nruntimes 1 2\n",
                     "without preceding job"},
        BadInputCase{"negative_runtime",
                     "resources 1\nmachine 4 attrs -\n"
                     "job a arrival 0 weight 1 demand 1 constraint none\n"
                     "runtimes -3\n",
                     "non-positive task runtime"},
        BadInputCase{"bad_weight",
                     "resources 1\nmachine 4 attrs -\n"
                     "job a arrival 0 weight 0 demand 1 constraint none\n"
                     "runtimes 1\n",
                     "bad weight"},
        BadInputCase{"unknown_constraint",
                     "resources 1\nmachine 4 attrs -\n"
                     "job a arrival 0 weight 1 demand 1 constraint sometimes 1\n"
                     "runtimes 1\n",
                     "unknown constraint kind"}),
    [](const ::testing::TestParamInfo<BadInputCase>& info) {
      return info.param.name;
    });

TEST(WorkloadIo, LoadedWorkloadSimulates) {
  // End-to-end: text -> workload -> DES.
  const char* text =
      "# tsf-workload v1\n"
      "resources 2\n"
      "machine 4 8 attrs -\n"
      "machine 4 8 attrs 1\n"
      "job gpu arrival 0 weight 1 demand 1 2 constraint attrs 1\n"
      "runtimes 5 5 5 5\n"
      "job any arrival 1 weight 1 demand 1 2 constraint none\n"
      "runtimes 5 5\n";
  Workload workload;
  std::string error;
  ASSERT_TRUE(WorkloadFromText(text, &workload, &error)) << error;
  const SimResult result = Simulate(workload, OnlinePolicy::Tsf());
  EXPECT_EQ(result.tasks.size(), 6u);
  // The gpu job is pinned to machine 1 (4 slots): one wave of 4.
  EXPECT_DOUBLE_EQ(result.jobs[0].CompletionTime(), 5.0);
}

}  // namespace
}  // namespace tsf::trace
