// Thread-safety analysis canary — the KNOWN-BAD half.
//
// tools/check_thread_safety.sh compiles this file with clang
// `-Wthread-safety -Werror=thread-safety` and requires it to FAIL: every
// function below breaks lock discipline in a way the analysis must catch
// (unguarded access to a TSF_GUARDED_BY field, calling a TSF_REQUIRES
// function without the lock, a forgotten Unlock). If this file ever compiles
// under the analysis flags, the annotations have gone blind — the gate
// reports that as a failure. Not part of any CMake target.
#include <cstdint>

#include "telemetry/spinlock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  // BAD: writes the guarded field without holding mu_.
  void IncrementUnlocked() { ++value_; }

  // BAD: calls a TSF_REQUIRES(mu_) function without holding mu_.
  void CallRequiresUnlocked() { IncrementLocked(); }

  // BAD: acquires mu_ and returns without releasing it.
  void ForgetsUnlock() {
    mu_.Lock();
    ++value_;
  }

  void IncrementLocked() TSF_REQUIRES(mu_) { ++value_; }

 private:
  tsf::Mutex mu_;
  std::int64_t value_ TSF_GUARDED_BY(mu_) = 0;
};

class SpinGuarded {
 public:
  // BAD: reads the spinlock-guarded field without the guard.
  double ReadUnlocked() const { return sum_; }

 private:
  tsf::telemetry::SpinLock lock_;
  double sum_ TSF_GUARDED_BY(lock_) = 0.0;
};

}  // namespace

int main() {
  Guarded g;
  g.IncrementUnlocked();
  g.CallRequiresUnlocked();
  g.ForgetsUnlock();
  SpinGuarded s;
  return static_cast<int>(s.ReadUnlocked());
}
