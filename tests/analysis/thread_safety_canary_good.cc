// Thread-safety analysis canary — the KNOWN-GOOD half.
//
// tools/check_thread_safety.sh compiles this file with clang
// `-Wthread-safety -Werror=thread-safety` and requires it to compile CLEAN:
// it exercises every annotation the repo uses (capability, scoped
// capability, guarded fields, REQUIRES) the way the production code does, so
// a macro regression that silences the analysis also breaks the companion
// known-bad file (which must FAIL to compile). Neither file is part of any
// CMake target.
#include <cstdint>

#include "telemetry/spinlock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  void Increment() {
    const tsf::MutexLock lock(mu_);
    ++value_;
  }

  std::int64_t Read() {
    const tsf::MutexLock lock(mu_);
    return value_;
  }

  void IncrementLocked() TSF_REQUIRES(mu_) { ++value_; }

  void IncrementViaRequires() {
    const tsf::MutexLock lock(mu_);
    IncrementLocked();
  }

  void ManualProtocol() {
    mu_.Lock();
    ++value_;
    mu_.Unlock();
  }

 private:
  tsf::Mutex mu_;
  std::int64_t value_ TSF_GUARDED_BY(mu_) = 0;
};

class SpinGuarded {
 public:
  void Record(double v) {
    const tsf::telemetry::SpinGuard guard(lock_);
    sum_ += v;
  }

 private:
  tsf::telemetry::SpinLock lock_;
  double sum_ TSF_GUARDED_BY(lock_) = 0.0;
};

}  // namespace

int main() {
  Guarded g;
  g.Increment();
  g.IncrementViaRequires();
  g.ManualProtocol();
  SpinGuarded s;
  s.Record(1.0);
  return static_cast<int>(g.Read());
}
