// Tests for Theorem-1 weight helpers and component-wise solving.
#include <gtest/gtest.h>

#include "core/offline/weights.h"
#include "core/paper_examples.h"
#include "util/rng.h"

namespace tsf {
namespace {

TEST(Theorem1Weights, Fig4PoolWeights) {
  const CompiledProblem problem = Compile(paper::Fig4());
  DedicatedPools pools;
  pools.fraction.assign(3, std::vector<double>(3, 0.0));
  pools.fraction[0][0] = 1.0;  // u1 owns m1 -> k=6
  pools.fraction[1][1] = 1.0;  // u2 owns m2 -> k=1
  pools.fraction[2][2] = 1.0;  // u3 owns m3 -> k=3
  const std::vector<double> weights = Theorem1Weights(problem, pools);
  EXPECT_NEAR(weights[0], 6.0 / 14.0, 1e-9);
  EXPECT_NEAR(weights[1], 1.0 / 7.0, 1e-9);
  EXPECT_NEAR(weights[2], 3.0 / 7.0, 1e-9);
}

TEST(Theorem1Weights, GuaranteeHolds) {
  // With those weights, TSF must give each user at least k_i tasks.
  const CompiledProblem problem = Compile(paper::Fig4());
  DedicatedPools pools;
  pools.fraction.assign(3, std::vector<double>(3, 0.0));
  pools.fraction[0][0] = 1.0;
  pools.fraction[1][1] = 1.0;
  pools.fraction[2][2] = 1.0;
  const CompiledProblem weighted =
      WithWeights(problem, Theorem1Weights(problem, pools));
  const FillingResult result = SolveTsf(weighted);
  const double expected_k[] = {6.0, 1.0, 3.0};
  for (UserId i = 0; i < 3; ++i)
    EXPECT_GE(result.allocation.UserTasks(i), expected_k[i] - 1e-5);
}

TEST(Theorem1WeightsDeathTest, EmptyPoolRejected) {
  const CompiledProblem problem = Compile(paper::Fig4());
  DedicatedPools pools;
  pools.fraction.assign(3, std::vector<double>(3, 0.0));
  pools.fraction[0][0] = 1.0;
  pools.fraction[2][2] = 1.0;  // u2's pool left empty
  EXPECT_DEATH(Theorem1Weights(problem, pools), "non-empty pool");
}

TEST(WithWeightsDeathTest, NonPositiveWeightRejected) {
  const CompiledProblem problem = Compile(paper::Fig4());
  EXPECT_DEATH(WithWeights(problem, {1.0, 0.0, 1.0}), "check failed");
}

TEST(SolvePerComponent, MatchesWholeSolveOnConnectedProblem) {
  const CompiledProblem problem = Compile(paper::Fig4());
  const FillingResult whole = SolveTsf(problem);
  const FillingResult split = SolvePerComponent(problem, OfflinePolicy::kTsf);
  for (UserId i = 0; i < problem.num_users; ++i)
    EXPECT_NEAR(split.allocation.UserTasks(i), whole.allocation.UserTasks(i),
                1e-5);
}

TEST(SolvePerComponent, SolvesDisconnectedIslandsIndependently) {
  SharingProblem problem;
  problem.cluster.AddMachine(ResourceVector{4.0});
  problem.cluster.AddMachine(ResourceVector{10.0});
  problem.cluster.AddMachine(ResourceVector{6.0});  // unused island
  JobSpec a{.id = 0, .name = "a", .demand = {1.0}};
  a.constraint = Constraint::Whitelist({0});
  JobSpec b{.id = 1, .name = "b", .demand = {2.0}};
  b.constraint = Constraint::Whitelist({1});
  problem.jobs = {a, b};
  const CompiledProblem compiled = Compile(problem);
  const FillingResult split = SolvePerComponent(compiled, OfflinePolicy::kTsf);
  EXPECT_NEAR(split.allocation.UserTasks(0), 4.0, 1e-6);
  EXPECT_NEAR(split.allocation.UserTasks(1), 5.0, 1e-6);
  std::string error;
  EXPECT_TRUE(split.allocation.IsFeasible(compiled, &error)) << error;
}

TEST(SolvePerComponent, RandomizedAgreementWithWholeSolve) {
  // Disconnected random instances: component-wise == whole-problem solving
  // for both TSF and CDRF (user task totals agree).
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng rng(seed * 13 + 1);
    SharingProblem problem;
    // Two islands of 2 machines each.
    for (int m = 0; m < 4; ++m)
      problem.cluster.AddMachine(ResourceVector{rng.Uniform(4.0, 16.0),
                                                rng.Uniform(4.0, 16.0)});
    const auto users = static_cast<std::size_t>(rng.Int(2, 5));
    for (UserId i = 0; i < users; ++i) {
      JobSpec job{.id = i, .name = "u" + std::to_string(i)};
      job.demand = ResourceVector{rng.Uniform(0.3, 2.0), rng.Uniform(0.3, 2.0)};
      const bool left_island = rng.Chance(0.5);
      std::vector<MachineId> allowed = left_island
                                           ? std::vector<MachineId>{0, 1}
                                           : std::vector<MachineId>{2, 3};
      if (rng.Chance(0.5)) allowed.pop_back();
      job.constraint = Constraint::Whitelist(allowed);
      problem.jobs.push_back(std::move(job));
    }
    const CompiledProblem compiled = Compile(problem);
    for (const OfflinePolicy policy :
         {OfflinePolicy::kTsf, OfflinePolicy::kCdrf}) {
      const FillingResult whole = SolveOffline(policy, compiled);
      const FillingResult split = SolvePerComponent(compiled, policy);
      for (UserId i = 0; i < compiled.num_users; ++i)
        EXPECT_NEAR(split.allocation.UserTasks(i),
                    whole.allocation.UserTasks(i), 1e-4)
            << ToString(policy) << " seed " << seed << " user " << i;
    }
  }
}

}  // namespace
}  // namespace tsf
