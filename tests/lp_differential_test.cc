// Differential tests: the warm-started revised simplex (lp/revised.h) against
// the dense tableau solver (lp/simplex.h), which serves as the executable
// spec. Randomized programs — feasible, infeasible, unbounded, and
// degenerate — must agree on status, and on the objective to 1e-9, both on
// cold solves and after chains of shape-preserving mutations re-solved warm.

#include <cmath>
#include <cstddef>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lp/revised.h"
#include "lp/simplex.h"
#include "lp/standard_form.h"
#include "util/rng.h"

namespace tsf::lp {
namespace {

constexpr double kTol = 1e-9;

struct RandomProgram {
  StandardForm form;
  // Every (row, variable) slot created by AddRow, for mutation picking.
  std::vector<std::pair<std::size_t, std::size_t>> slots;
  std::vector<std::size_t> equality_rows;
};

// Small integer coefficients keep the programs well-conditioned so the two
// solvers' roundoff stays far inside kTol; duplicate rows and repeated
// columns are injected deliberately to create degenerate ties.
RandomProgram MakeRandomProgram(Rng& rng, bool feasible_by_construction) {
  const std::size_t n = static_cast<std::size_t>(rng.Int(1, 5));
  const std::size_t m = static_cast<std::size_t>(rng.Int(1, 7));
  RandomProgram program{StandardForm(n), {}, {}};

  std::vector<double> target(n, 0.0);
  if (feasible_by_construction)
    for (double& x : target) x = static_cast<double>(rng.Int(0, 4));

  std::vector<std::vector<std::pair<std::size_t, double>>> rows;
  for (std::size_t r = 0; r < m; ++r) {
    std::vector<std::pair<std::size_t, double>> terms;
    if (!rows.empty() && rng.Chance(0.15)) {
      terms = rows[rng.Below(rows.size())];  // duplicate row: degenerate tie
    } else {
      const std::size_t nnz = static_cast<std::size_t>(
          rng.Int(1, static_cast<std::int64_t>(n)));
      std::vector<std::size_t> vars(n);
      for (std::size_t v = 0; v < n; ++v) vars[v] = v;
      rng.Shuffle(vars);
      for (std::size_t k = 0; k < nnz; ++k) {
        double coeff = static_cast<double>(rng.Int(-3, 3));
        if (coeff == 0.0) coeff = 1.0;
        terms.emplace_back(vars[k], coeff);
      }
    }
    rows.push_back(terms);

    const int relation_pick = static_cast<int>(rng.Int(0, 2));
    const Relation relation = relation_pick == 0   ? Relation::kLessEqual
                              : relation_pick == 1 ? Relation::kGreaterEqual
                                                   : Relation::kEqual;
    double rhs;
    if (feasible_by_construction) {
      double value = 0.0;
      for (const auto& [v, coeff] : terms) value += coeff * target[v];
      const double slack = static_cast<double>(rng.Int(0, 3));
      rhs = relation == Relation::kLessEqual      ? value + slack
            : relation == Relation::kGreaterEqual ? value - slack
                                                  : value;
    } else {
      rhs = static_cast<double>(rng.Int(-4, 8));
    }
    const std::size_t row = program.form.AddRow(terms, relation, rhs);
    for (const auto& [v, unused] : terms) program.slots.emplace_back(row, v);
    if (relation == Relation::kEqual) program.equality_rows.push_back(row);
  }
  for (std::size_t v = 0; v < n; ++v)
    program.form.SetObjectiveCoefficient(v,
                                         static_cast<double>(rng.Int(-3, 3)));
  program.form.Finalize();
  return program;
}

void ExpectAgreement(const Solution& dense, const Solution& revised,
                     const char* context) {
  ASSERT_EQ(dense.status, revised.status) << context;
  if (dense.status != SolveStatus::kOptimal) return;
  const double scale = std::max(1.0, std::abs(dense.objective));
  EXPECT_NEAR(dense.objective, revised.objective, kTol * scale) << context;
}

// The optimal x reported by the revised path must actually satisfy the
// program it claims to solve — a stronger check than objective agreement
// (two wrong vertices can share an objective).
void ExpectFeasible(const StandardForm& form, const Solution& solution) {
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  ASSERT_EQ(solution.x.size(), form.num_variables());
  std::vector<double> activity(form.num_rows(), 0.0);
  for (std::size_t v = 0; v < form.num_variables(); ++v) {
    EXPECT_GE(solution.x[v], 0.0);
    for (const StandardForm::Entry& entry : form.column(v))
      activity[entry.row] += entry.value * solution.x[v];
  }
  for (std::size_t r = 0; r < form.num_rows(); ++r) {
    const double slack = form.rhs(r) - activity[r];
    switch (form.relation(r)) {
      case Relation::kLessEqual:
        EXPECT_GE(slack, -1e-6) << "row " << r;
        break;
      case Relation::kGreaterEqual:
        EXPECT_LE(slack, 1e-6) << "row " << r;
        break;
      case Relation::kEqual:
        EXPECT_NEAR(slack, 0.0, 1e-6) << "row " << r;
        break;
    }
  }
}

TEST(LpDifferentialTest, ColdSolveMatchesDenseOnRandomPrograms) {
  Rng rng(7041);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < 400; ++trial) {
    RandomProgram program = MakeRandomProgram(rng, trial % 2 == 0);
    const Solution dense = program.form.ToDenseProblem().Solve();
    SimplexState state(std::move(program.form));
    const Solution& revised = state.Solve();
    ExpectAgreement(dense, revised, "cold");
    switch (dense.status) {
      case SolveStatus::kOptimal:
        ++optimal;
        ExpectFeasible(state.form(), revised);
        break;
      case SolveStatus::kInfeasible:
        ++infeasible;
        break;
      case SolveStatus::kUnbounded:
        ++unbounded;
        break;
    }
  }
  // The generator must actually exercise all three statuses.
  EXPECT_GT(optimal, 50);
  EXPECT_GT(infeasible, 20);
  EXPECT_GT(unbounded, 20);
}

TEST(LpDifferentialTest, WarmResolveMatchesDenseAcrossMutationChains) {
  Rng rng(9102);
  std::uint64_t warm_total = 0;
  for (int trial = 0; trial < 200; ++trial) {
    RandomProgram program = MakeRandomProgram(rng, true);
    std::vector<std::pair<std::size_t, std::size_t>> slots = program.slots;
    std::vector<std::size_t> equalities = program.equality_rows;
    SimplexState state(std::move(program.form));
    state.Solve();
    for (int step = 0; step < 6; ++step) {
      const int kind = static_cast<int>(rng.Int(0, 2));
      if (kind == 0) {
        const std::size_t row = rng.Below(state.form().num_rows());
        state.SetRhs(row, state.form().rhs(row) +
                              static_cast<double>(rng.Int(-2, 2)));
      } else if (kind == 1 && !equalities.empty()) {
        const std::size_t pick = rng.Below(equalities.size());
        const std::size_t row = equalities[pick];
        equalities.erase(equalities.begin() +
                         static_cast<std::ptrdiff_t>(pick));
        state.RelaxEquality(row, state.form().rhs(row) -
                                     static_cast<double>(rng.Int(0, 2)));
      } else {
        const auto [row, variable] = slots[rng.Below(slots.size())];
        state.SetCoefficient(row, variable,
                             static_cast<double>(rng.Int(-3, 3)));
      }
      const Solution dense = state.form().ToDenseProblem().Solve();
      const Solution& revised = state.Solve();
      ExpectAgreement(dense, revised, "warm chain");
      if (dense.status == SolveStatus::kOptimal)
        ExpectFeasible(state.form(), revised);
    }
    warm_total += state.stats().warm_solves;
  }
  // The whole point of the engine: a healthy share of re-solves must take
  // the warm path (rhs-only and relaxation-only steps always qualify).
  EXPECT_GT(warm_total, 200u);
}

TEST(LpDifferentialTest, FreezeProbeShapedMutationsStayWarm) {
  // The progressive-filling probe pattern in miniature: equality coupling
  // rows with a shared "share" column, relax one user's row to a floor and
  // zero its share coefficient, re-solve, then undo via fresh rhs/coeffs.
  StandardForm form(4);  // x0, x1 (allocations), x2 unused, s = variable 3
  const std::size_t user0 =
      form.AddRow({{0, 1.0}, {3, -2.0}}, Relation::kEqual, 0.0);
  form.AddRow({{1, 1.0}, {3, -1.0}}, Relation::kEqual, 0.0);
  form.AddRow({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 9.0);
  form.SetObjectiveCoefficient(3, 1.0);
  form.Finalize();

  SimplexState state(std::move(form));
  const Solution& round = state.Solve();
  ASSERT_EQ(round.status, SolveStatus::kOptimal);
  EXPECT_NEAR(round.objective, 3.0, kTol);  // 2s + s = 9
  EXPECT_EQ(state.stats().cold_solves, 1u);

  // Probe: user 0 drops to floor 1.0; its share coupling disappears.
  state.SetCoefficient(user0, 3, 0.0);
  state.RelaxEquality(user0, 1.0);
  const Solution& probe = state.Solve();
  ASSERT_EQ(probe.status, SolveStatus::kOptimal);
  EXPECT_NEAR(probe.objective, 8.0, kTol);  // x0 = 1, x1 = s = 8
  EXPECT_EQ(state.stats().warm_solves, 1u);
  EXPECT_EQ(state.stats().cold_solves, 1u);
  EXPECT_EQ(state.stats().dense_fallbacks, 0u);

  const Solution dense = state.form().ToDenseProblem().Solve();
  ExpectAgreement(dense, probe, "freeze probe");
}

TEST(LpDifferentialTest, RefactorPathAfterNearSingularColumnUpdate) {
  // Column updates that swap the two basic columns' contents. Applying the
  // first column's delta alone makes the basis singular (Sherman-Morrison
  // beta = 1 + u[pos] = 0), so the warm path must Refactor() from the fully
  // mutated form — and the Gauss-Jordan there needs a partial-pivoting row
  // swap (work[0][0] == 0), pinning that binv_ comes back in the original
  // basis-position order (basis_/art_sign_ untouched by the swap).
  StandardForm form(2);
  form.AddRow({{0, 1.0}, {1, 0.0}}, Relation::kLessEqual, 1.0);
  form.AddRow({{0, 0.0}, {1, 1.0}}, Relation::kLessEqual, 2.0);
  form.SetObjectiveCoefficient(0, 2.0);
  form.SetObjectiveCoefficient(1, 1.0);
  form.Finalize();

  SimplexState state(std::move(form));
  const Solution& first = state.Solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, 4.0, kTol);  // x = (1, 2)
  ASSERT_EQ(state.stats().cold_solves, 1u);

  state.SetCoefficient(0, 0, 0.0);  // col0 <- e1: beta hits 0 exactly
  state.SetCoefficient(1, 0, 1.0);
  state.SetCoefficient(0, 1, 1.0);  // col1 <- e0: refactored basis is
  state.SetCoefficient(1, 1, 0.0);  // nonsingular, but needs the row swap

  const Solution dense = state.form().ToDenseProblem().Solve();
  const Solution& revised = state.Solve();
  ExpectAgreement(dense, revised, "refactor");
  ASSERT_EQ(revised.status, SolveStatus::kOptimal);
  EXPECT_NEAR(revised.objective, 5.0, kTol);  // x1 <= 1, x0 <= 2
  EXPECT_NEAR(revised.x[0], 2.0, kTol);
  EXPECT_NEAR(revised.x[1], 1.0, kTol);
  ExpectFeasible(state.form(), revised);
  EXPECT_EQ(state.stats().warm_solves, 1u);  // refactor stayed on the warm path
  EXPECT_EQ(state.stats().cold_solves, 1u);
  EXPECT_EQ(state.stats().dense_fallbacks, 0u);

  // The refactored state must stay consistent across further warm re-solves.
  state.SetRhs(0, 3.0);
  const Solution dense_after = state.form().ToDenseProblem().Solve();
  const Solution& after = state.Solve();
  ExpectAgreement(dense_after, after, "post-refactor warm");
  ASSERT_EQ(after.status, SolveStatus::kOptimal);
  EXPECT_NEAR(after.objective, 7.0, kTol);  // x = (2, 3)
  ExpectFeasible(state.form(), after);
  EXPECT_EQ(state.stats().warm_solves, 2u);
}

TEST(LpDifferentialTest, InfeasibleAfterMutationIsDetected) {
  StandardForm form(2);
  form.AddRow({{0, 1.0}, {1, 1.0}}, Relation::kLessEqual, 4.0);
  const std::size_t floor_row =
      form.AddRow({{0, 1.0}}, Relation::kGreaterEqual, 1.0);
  form.SetObjectiveCoefficient(0, 1.0);
  form.Finalize();

  SimplexState state(std::move(form));
  ASSERT_EQ(state.Solve().status, SolveStatus::kOptimal);
  state.SetRhs(floor_row, 10.0);  // floor above capacity
  EXPECT_EQ(state.Solve().status, SolveStatus::kInfeasible);
  state.SetRhs(floor_row, 2.0);  // feasible again, but after an invalid state
  const Solution& back = state.Solve();
  ASSERT_EQ(back.status, SolveStatus::kOptimal);
  EXPECT_NEAR(back.objective, 4.0, kTol);
}

TEST(LpDifferentialTest, UnboundedDetectedByRevisedPath) {
  StandardForm form(2);
  form.AddRow({{0, 1.0}, {1, -1.0}}, Relation::kLessEqual, 1.0);
  form.SetObjectiveCoefficient(0, 1.0);
  form.Finalize();
  SimplexState state(std::move(form));
  EXPECT_EQ(state.Solve().status, SolveStatus::kUnbounded);
}

TEST(LpDifferentialTest, SolutionReferenceIsCachedUntilMutation) {
  StandardForm form(1);
  form.AddRow({{0, 1.0}}, Relation::kLessEqual, 5.0);
  form.SetObjectiveCoefficient(0, 1.0);
  form.Finalize();
  SimplexState state(std::move(form));
  state.Solve();
  state.Solve();
  state.Solve();
  EXPECT_EQ(state.stats().solves, 1u);  // repeat Solve() calls are free
}

}  // namespace
}  // namespace tsf::lp
