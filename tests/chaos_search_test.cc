// Guided chaos search: mutation-operator properties, the executions-to-bug
// regression against the blind sweep, and the search determinism contract.
//
// The mutation properties are the load-bearing half of the search design:
// every operator must yield ValidateFaultPlan-passing plans by construction
// (a malformed mutant would TSF_CHECK inside the scenario runner, killing
// the whole campaign), mutants must survive the text format round trip (the
// corpus is committed as text), and splice must move whole atoms (an orphan
// restart would fail validation on every future mutation of that plan).
//
// The executions-to-bug test is the regression gate for the feedback
// signals themselves: at a pinned scenario/search seed, guided search must
// find the planted kLeakTaskOnCrash bug in strictly fewer scenario
// executions than the blind seed sweep. Both counts are golded — a change
// that degrades the guidance (or accidentally improves the blind baseline)
// fails loudly and must re-pin the numbers consciously.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/mutate.h"
#include "chaos/repro.h"
#include "chaos/scenario.h"
#include "chaos/search.h"
#include "mesos/mesos.h"
#include "util/rng.h"

namespace tsf::chaos {
namespace {

// --- shared fixtures --------------------------------------------------------

MutationShape DesShape(const DesScenario& scenario) {
  MutationShape shape;
  shape.num_machines = scenario.workload.cluster.num_machines();
  shape.num_frameworks = 0;
  shape.earliest = 1.0;
  shape.horizon = 40.0;
  shape.mean_outage = 6.0;
  return shape;
}

MutationShape MesosShape(const MesosScenario& scenario) {
  MutationShape shape;
  shape.num_machines = scenario.config.slaves.size();
  shape.num_frameworks = scenario.frameworks.size();
  shape.earliest = 6.0;
  shape.horizon = 40.0;
  shape.mean_outage = 6.0;
  return shape;
}

FaultPlanShape PlanShapeOf(const MutationShape& shape) {
  FaultPlanShape plan_shape;
  plan_shape.num_machines = shape.num_machines;
  plan_shape.num_frameworks = shape.num_frameworks;
  plan_shape.earliest = shape.earliest;
  plan_shape.horizon = shape.horizon;
  plan_shape.mean_outage = shape.mean_outage;
  return plan_shape;
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// The committed corpus, in sorted filename order (the load order the
// search's determinism contract is defined over).
std::vector<Repro> CommittedCorpus() {
  std::vector<std::filesystem::path> paths;
  for (const auto& entry : std::filesystem::directory_iterator(TSF_CORPUS_DIR))
    if (entry.path().extension() == ".txt") paths.push_back(entry.path());
  std::sort(paths.begin(), paths.end());
  std::vector<Repro> corpus;
  for (const std::filesystem::path& path : paths)
    corpus.push_back(ParseRepro(ReadFile(path)));
  return corpus;
}

// --- mutation-operator properties -------------------------------------------

// Every operator, applied repeatedly across swept seeds on both substrate
// shapes, yields plans that pass ValidateFaultPlan and survive the text
// round trip exactly.
TEST(ChaosMutateTest, OperatorsYieldValidRoundTrippablePlans) {
  std::size_t applied = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    struct Case {
      MutationShape shape;
      FaultPlan plan;
    };
    const std::vector<Case> cases = {
        {DesShape(RandomDesScenario(seed)), RandomDesScenario(seed).plan},
        {MesosShape(RandomMesosScenario(seed)),
         RandomMesosScenario(seed).plan},
    };
    for (const Case& c : cases) {
      SCOPED_TRACE("seed " + std::to_string(seed) + " machines " +
                   std::to_string(c.shape.num_machines) + " frameworks " +
                   std::to_string(c.shape.num_frameworks));
      const FaultPlan donor =
          RandomFaultPlan(PlanShapeOf(c.shape), seed ^ 0x5bd1e995u);
      Rng rng(seed * 977);
      for (const MutationOp op : kAllMutationOps) {
        for (int rep = 0; rep < 8; ++rep) {
          const std::optional<FaultPlan> mutant =
              ApplyMutation(c.plan, op, c.shape, rng, &donor);
          if (!mutant) continue;  // operator inapplicable this draw
          ++applied;
          EXPECT_EQ(ValidateFaultPlan(*mutant, c.shape.num_machines,
                                      c.shape.num_frameworks),
                    "")
              << "op " << ToString(op);
          const std::string text = SerializeFaultPlan(*mutant);
          EXPECT_EQ(SerializeFaultPlan(ParseFaultPlan(text)), text)
              << "op " << ToString(op) << " mutant is not a serialization "
              << "fixed point";
        }
      }
    }
  }
  // The sweep must actually exercise the operators, not skip them all.
  EXPECT_GT(applied, 400u);
}

// Atom decomposition pairs every crash with its restart (and disconnect
// with its re-register), and assembly is its inverse.
TEST(ChaosMutateTest, DecomposeAssembleRoundTrip) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const FaultPlan plan = RandomMesosScenario(seed).plan;
    const std::vector<FaultAtom> atoms = DecomposeAtoms(plan);
    for (const FaultAtom& atom : atoms) {
      if (!atom.has_close) continue;
      EXPECT_EQ(atom.open.target, atom.close.target);
      EXPECT_LT(atom.open.time, atom.close.time);
    }
    EXPECT_EQ(AssembleAtoms(atoms), plan);
  }
}

// Splice moves whole atoms: every atom of the spliced plan exists verbatim
// in one of the parents, so no orphan restart/re-register can appear.
TEST(ChaosMutateTest, SplicePreservesAtomPairing) {
  std::size_t spliced_plans = 0;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const MesosScenario scenario = RandomMesosScenario(seed);
    const MutationShape shape = MesosShape(scenario);
    const FaultPlan donor =
        RandomFaultPlan(PlanShapeOf(shape), seed ^ 0x27d4eb2fu);
    const std::vector<FaultAtom> parent_atoms = DecomposeAtoms(scenario.plan);
    const std::vector<FaultAtom> donor_atoms = DecomposeAtoms(donor);
    Rng rng(seed * 131);
    for (int rep = 0; rep < 8; ++rep) {
      const std::optional<FaultPlan> mutant = ApplyMutation(
          scenario.plan, MutationOp::kSplice, shape, rng, &donor);
      if (!mutant) continue;
      ++spliced_plans;
      EXPECT_EQ(ValidateFaultPlan(*mutant, shape.num_machines,
                                  shape.num_frameworks),
                "");
      for (const FaultAtom& atom : DecomposeAtoms(*mutant)) {
        const bool from_parent =
            std::find(parent_atoms.begin(), parent_atoms.end(), atom) !=
            parent_atoms.end();
        const bool from_donor =
            std::find(donor_atoms.begin(), donor_atoms.end(), atom) !=
            donor_atoms.end();
        EXPECT_TRUE(from_parent || from_donor)
            << "spliced atom at t=" << atom.open.time
            << " exists in neither parent";
      }
    }
  }
  EXPECT_GT(spliced_plans, 20u);
}

// --- frontier heuristics ----------------------------------------------------

TEST(ChaosSearchTest, FrontierOrders) {
  const auto drain = [](Frontier& frontier) {
    std::vector<std::size_t> order;
    while (!frontier.Empty()) order.push_back(frontier.Pop());
    return order;
  };
  const auto fill = [](Frontier& frontier) {
    frontier.Push(0, 1.0);
    frontier.Push(1, 5.0);
    frontier.Push(2, 5.0);
    frontier.Push(3, 3.0);
  };
  const std::unique_ptr<Frontier> bfs = MakeFrontier("bfs");
  fill(*bfs);
  EXPECT_EQ(drain(*bfs), (std::vector<std::size_t>{0, 1, 2, 3}));
  const std::unique_ptr<Frontier> dfs = MakeFrontier("dfs");
  fill(*dfs);
  EXPECT_EQ(drain(*dfs), (std::vector<std::size_t>{3, 2, 1, 0}));
  // Highest score first; FIFO among the tied entries 1 and 2.
  const std::unique_ptr<Frontier> score = MakeFrontier("score");
  fill(*score);
  EXPECT_EQ(drain(*score), (std::vector<std::size_t>{1, 2, 3, 0}));
}

TEST(ChaosSearchTest, InterleavingSignatureSeparatesOrderings) {
  std::vector<StreamEvent> a;
  StreamEvent event;
  event.kind = StreamEvent::Kind::kPlace;
  a.push_back(event);
  event.kind = StreamEvent::Kind::kCrash;
  a.push_back(event);
  const std::vector<StreamEvent> b = {a[1], a[0]};  // crash before the place
  EXPECT_EQ(InterleavingSignature(a), InterleavingSignature(a));
  EXPECT_NE(InterleavingSignature(a), InterleavingSignature(b));
}

// --- executions-to-bug regression -------------------------------------------

// Pinned configuration of the guided-vs-blind comparison. Scenario seed 57
// starts a 5-seed stretch (57..61) whose base Mesos scenarios do not
// trigger the planted leak, so the blind sweep burns 6 executions before
// seed 62 fires; the guided search mutates seed 57's plan and must get
// there faster.
constexpr std::uint64_t kPinnedScenarioSeed = 57;
constexpr std::size_t kBlindExecutionsToBug = 6;
// Golded guided count: a regression in the feedback signals or mutation
// distributions shows up here as a changed (usually larger) number. Re-pin
// only after confirming the search still beats the blind sweep broadly.
constexpr std::size_t kGuidedExecutionsToBug = 2;

SearchOptions PinnedBugHuntOptions() {
  SearchOptions options;
  options.substrate = "mesos";  // the injectable bug lives in the master
  options.scenario_seed = kPinnedScenarioSeed;
  options.search_seed = 1;
  options.heuristic = "score";
  options.max_execs = 64;
  options.stop_on_violation = true;
  return options;
}

class ScopedLeakBug {
 public:
  ScopedLeakBug() {
    mesos::SetInjectedBugForTesting(mesos::InjectedBug::kLeakTaskOnCrash);
  }
  ~ScopedLeakBug() {
    mesos::SetInjectedBugForTesting(mesos::InjectedBug::kNone);
  }
};

TEST(ChaosSearchTest, GuidedBeatsBlindOnPlantedBug) {
  const ScopedLeakBug armed;
  const BlindSweepResult blind = RunBlindSweep(PinnedBugHuntOptions());
  const SearchResult guided = RunGuidedSearch(PinnedBugHuntOptions());

  ASSERT_NE(blind.executions_to_violation, 0u)
      << "blind sweep no longer finds the planted bug within budget";
  ASSERT_NE(guided.executions_to_violation, 0u)
      << "guided search no longer finds the planted bug within budget";
  EXPECT_EQ(blind.executions_to_violation, kBlindExecutionsToBug);
  EXPECT_EQ(guided.executions_to_violation, kGuidedExecutionsToBug)
      << "guided feedback signal changed — see the gold's comment";
  // The headline property: strictly fewer executions, by a real margin.
  EXPECT_LT(guided.executions_to_violation, blind.executions_to_violation);
  EXPECT_GE(blind.executions_to_violation,
            2 * guided.executions_to_violation);
  // Both found the same bug class.
  ASSERT_FALSE(guided.violations.empty());
  EXPECT_NE(guided.violations.front().violation.find("task_survived_crash"),
            std::string::npos);
}

// --- determinism contract ---------------------------------------------------

// Same seed + same corpus => identical execution sequence, observable as
// bit-identical corpus and frontier-pop hashes (release and sanitizer
// builds run this same test, extending the contract across build types).
TEST(ChaosSearchTest, SearchIsSeedDeterministic) {
  SearchOptions options;
  options.substrate = "both";
  options.scenario_seed = 1;
  options.search_seed = 7;
  // Enough budget to replay the committed corpus AND mutate beyond it —
  // the frontier-hash assertions below need the mutation loop to run.
  options.max_execs = 96;
  options.stop_on_violation = false;
  options.corpus = CommittedCorpus();
  ASSERT_FALSE(options.corpus.empty());

  const SearchResult first = RunGuidedSearch(options);
  const SearchResult second = RunGuidedSearch(options);
  EXPECT_EQ(first.executions, second.executions);
  EXPECT_EQ(first.corpus.size(), second.corpus.size());
  EXPECT_EQ(first.corpus_hash, second.corpus_hash);
  EXPECT_EQ(first.frontier_hash, second.frontier_hash);
  EXPECT_EQ(first.coverage.bits(), second.coverage.bits());
  // A clean build must not violate invariants while exploring.
  EXPECT_TRUE(first.violations.empty())
      << first.violations.front().violation;

  // The corpus is live, not just re-validated: with duplicates skipped for
  // free, seeding still leaves budget for fresh mutants.
  EXPECT_GT(first.executions, 0u);
  EXPECT_GT(first.corpus.size(), 0u);

  // A different search seed explores a different sequence.
  options.search_seed = 8;
  const SearchResult other = RunGuidedSearch(options);
  EXPECT_NE(other.frontier_hash, first.frontier_hash);
}

}  // namespace
}  // namespace tsf::chaos
