// Unit tests for the two-phase simplex solver.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "lp/simplex.h"
#include "util/rng.h"

namespace tsf::lp {
namespace {

TEST(Simplex, SimpleTwoVariableMax) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 — classic textbook LP;
  // optimum 36 at (2, 6).
  Problem p(2);
  p.SetObjective({3, 5});
  p.AddConstraint({1, 0}, Relation::kLessEqual, 4);
  p.AddConstraint({0, 2}, Relation::kLessEqual, 12);
  p.AddConstraint({3, 2}, Relation::kLessEqual, 18);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 6.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // max x + y s.t. x + y = 5, x <= 3 → objective 5.
  Problem p(2);
  p.SetObjective({1, 1});
  p.AddConstraint({1, 1}, Relation::kEqual, 5);
  p.AddConstraint({1, 0}, Relation::kLessEqual, 3);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
  EXPECT_NEAR(s.x[0] + s.x[1], 5.0, 1e-9);
  EXPECT_LE(s.x[0], 3.0 + 1e-9);
}

TEST(Simplex, GreaterEqualConstraint) {
  // max -x (i.e. minimize x) s.t. x >= 2.5 → x = 2.5.
  Problem p(1);
  p.SetObjective({-1});
  p.AddConstraint({1}, Relation::kGreaterEqual, 2.5);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0], 2.5, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Problem p(1);
  p.SetObjective({1});
  p.AddConstraint({1}, Relation::kLessEqual, 1);
  p.AddConstraint({1}, Relation::kGreaterEqual, 2);
  EXPECT_EQ(p.Solve().status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Problem p(2);
  p.SetObjective({1, 0});
  p.AddConstraint({0, 1}, Relation::kLessEqual, 1);  // x unbounded
  EXPECT_EQ(p.Solve().status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // x - y <= -2 with x,y>=0: max x + 0y s.t. x <= y - 2, y <= 10 → x = 8.
  Problem p(2);
  p.SetObjective({1, 0});
  p.AddConstraint({1, -1}, Relation::kLessEqual, -2);
  p.AddConstraint({0, 1}, Relation::kLessEqual, 10);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
}

TEST(Simplex, ZeroObjectiveFindsFeasiblePoint) {
  Problem p(2);
  p.AddConstraint({1, 1}, Relation::kEqual, 3);
  p.AddConstraint({1, 0}, Relation::kGreaterEqual, 1);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[0] + s.x[1], 3.0, 1e-9);
  EXPECT_GE(s.x[0], 1.0 - 1e-9);
}

TEST(Simplex, DegenerateProgramTerminates) {
  // Many redundant constraints through the same vertex — stresses the
  // anti-cycling fallback.
  Problem p(2);
  p.SetObjective({1, 1});
  for (int k = 1; k <= 20; ++k)
    p.AddConstraint({static_cast<double>(k), static_cast<double>(k)},
                    Relation::kLessEqual, static_cast<double>(2 * k));
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, SparseConstraintForm) {
  Problem p(5);
  p.SetObjectiveCoefficient(4, 1.0);
  p.AddConstraintSparse({{4, 2.0}}, Relation::kLessEqual, 10.0);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.x[4], 5.0, 1e-9);
}

TEST(Simplex, SparseDuplicateTermsAccumulate) {
  Problem p(2);
  p.SetObjective({1, 0});
  // (1 + 1) x0 <= 4  →  x0 <= 2.
  p.AddConstraintSparse({{0, 1.0}, {0, 1.0}}, Relation::kLessEqual, 4.0);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualityRows) {
  // Duplicated equality leaves a degenerate artificial; must still solve.
  Problem p(2);
  p.SetObjective({1, 2});
  p.AddConstraint({1, 1}, Relation::kEqual, 4);
  p.AddConstraint({1, 1}, Relation::kEqual, 4);
  p.AddConstraint({0, 1}, Relation::kLessEqual, 3);
  const Solution s = p.Solve();
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective, 1.0 * 1 + 2.0 * 3, 1e-9);
}

// Randomized validation: compare against brute-force over vertices for 2-D
// programs with <= constraints (feasible origin). For max c.x over a
// polytope the optimum lies at a vertex = intersection of two constraint
// lines (or axes), so enumerate all pairs.
TEST(Simplex, MatchesVertexEnumerationOn2D) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const int m = static_cast<int>(rng.Int(2, 6));
    std::vector<std::array<double, 3>> rows;  // a x + b y <= c, c > 0
    for (int k = 0; k < m; ++k)
      rows.push_back({rng.Uniform(0.05, 1.0), rng.Uniform(0.05, 1.0),
                      rng.Uniform(0.5, 4.0)});
    const double cx = rng.Uniform(0.0, 1.0), cy = rng.Uniform(0.0, 1.0);

    Problem p(2);
    p.SetObjective({cx, cy});
    for (const auto& row : rows)
      p.AddConstraint({row[0], row[1]}, Relation::kLessEqual, row[2]);
    const Solution s = p.Solve();
    ASSERT_TRUE(s.optimal());

    // Brute force: candidate vertices are pairwise line intersections plus
    // axis intercepts plus the origin.
    auto feasible = [&rows](double x, double y) {
      if (x < -1e-9 || y < -1e-9) return false;
      for (const auto& row : rows)
        if (row[0] * x + row[1] * y > row[2] + 1e-9) return false;
      return true;
    };
    double best = 0.0;  // origin
    auto consider = [&](double x, double y) {
      if (feasible(x, y)) best = std::max(best, cx * x + cy * y);
    };
    for (int a = 0; a < m; ++a) {
      consider(rows[a][2] / rows[a][0], 0.0);
      consider(0.0, rows[a][2] / rows[a][1]);
      for (int b = a + 1; b < m; ++b) {
        const double det = rows[a][0] * rows[b][1] - rows[a][1] * rows[b][0];
        if (std::abs(det) < 1e-12) continue;
        const double x = (rows[a][2] * rows[b][1] - rows[a][1] * rows[b][2]) / det;
        const double y = (rows[a][0] * rows[b][2] - rows[a][2] * rows[b][0]) / det;
        consider(x, y);
      }
    }
    EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
  }
}

}  // namespace
}  // namespace tsf::lp
