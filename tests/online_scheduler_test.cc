// Unit tests for the online scheduler (Sec. V-D): key functions per policy,
// greedy placement, ascending-share service, retirement.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/online/reference_scheduler.h"
#include "core/online/scheduler.h"
#include "util/rng.h"

namespace tsf {
namespace {

// Two machines, each with normalized capacity <0.5, 0.5> (i.e. a homogeneous
// 2-node cluster).
std::vector<ResourceVector> TwoMachines() {
  return {ResourceVector{0.5, 0.5}, ResourceVector{0.5, 0.5}};
}

DynamicBitset Machines(std::size_t total, std::initializer_list<std::size_t> set) {
  DynamicBitset bits(total);
  for (const auto m : set) bits.Set(m);
  return bits;
}

OnlineUserSpec UnitUser(std::size_t total_machines, double h, double g,
                        long pending,
                        std::initializer_list<std::size_t> machines) {
  OnlineUserSpec spec;
  spec.demand = ResourceVector{0.1, 0.1};
  spec.eligible = Machines(total_machines, machines);
  spec.h = h;
  spec.g = g;
  spec.pending = pending;
  return spec;
}

TEST(OnlineScheduler, GreedyPlacementFillsEligibleMachines) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  const UserId u = scheduler.AddUser(UnitUser(2, 10, 10, 20, {0, 1}));
  std::vector<MachineId> placements;
  scheduler.PlaceUserGreedy(u, [&](MachineId m) { placements.push_back(m); });
  // Each machine fits 5 tasks of <0.1,0.1> in <0.5,0.5>.
  EXPECT_EQ(placements.size(), 10u);
  EXPECT_EQ(scheduler.running(u), 10);
  EXPECT_EQ(scheduler.pending(u), 10);
  EXPECT_TRUE(scheduler.FreeCapacity(0).IsZero(1e-9));
}

TEST(OnlineScheduler, GreedyRespectsEligibility) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  const UserId u = scheduler.AddUser(UnitUser(2, 10, 5, 20, {1}));
  int placed = 0;
  scheduler.PlaceUserGreedy(u, [&](MachineId m) {
    EXPECT_EQ(m, 1u);
    ++placed;
  });
  EXPECT_EQ(placed, 5);
  EXPECT_TRUE(scheduler.FreeCapacity(1).IsZero(1e-9));
  EXPECT_FALSE(scheduler.FreeCapacity(0).IsZero(1e-9));
}

TEST(OnlineScheduler, TaskFinishFreesResources) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  const UserId u = scheduler.AddUser(UnitUser(2, 10, 10, 5, {0}));
  scheduler.PlaceUserGreedy(u, [](MachineId) {});
  ASSERT_EQ(scheduler.running(u), 5);
  scheduler.OnTaskFinish(u, 0);
  EXPECT_EQ(scheduler.running(u), 4);
  EXPECT_NEAR(scheduler.FreeCapacity(0)[0], 0.1, 1e-12);
}

TEST(OnlineScheduler, ServeMachinePicksLowestTsfShare) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  // a has larger h → lower share at equal running counts → served first.
  const UserId a = scheduler.AddUser(UnitUser(2, 20, 20, 1, {0}));
  const UserId b = scheduler.AddUser(UnitUser(2, 10, 10, 1, {0}));
  // Pre-load both with one running task by greedy placement.
  scheduler.PlaceUserGreedy(a, [](MachineId) {});
  scheduler.PlaceUserGreedy(b, [](MachineId) {});
  scheduler.AddPending(a, 1);
  scheduler.AddPending(b, 1);
  // Capacity remains for three more tasks; a (share 1/20) beats b (1/10).
  std::vector<UserId> served;
  scheduler.ServeMachine(0, [&](UserId u, MachineId) { served.push_back(u); });
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(served.front(), a);
}

TEST(OnlineScheduler, FifoServesByArrivalOrder) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Fifo());
  const UserId first = scheduler.AddUser(UnitUser(2, 10, 10, 3, {0}));
  const UserId second = scheduler.AddUser(UnitUser(2, 10, 10, 3, {0}));
  // Fill machine 0 with `second`'s tasks artificially by serving when only
  // it has pending... instead: both pending, serve from empty machine.
  std::vector<UserId> served;
  scheduler.ServeMachine(0, [&](UserId u, MachineId) { served.push_back(u); });
  ASSERT_EQ(served.size(), 5u);
  // FIFO: all of first's 3 tasks go before second's.
  EXPECT_EQ(served[0], first);
  EXPECT_EQ(served[1], first);
  EXPECT_EQ(served[2], first);
  EXPECT_EQ(served[3], second);
}

TEST(OnlineScheduler, DrfKeyUsesDominantShare) {
  OnlineScheduler scheduler({ResourceVector{1.0, 1.0}}, OnlinePolicy::Drf());
  OnlineUserSpec cpu_heavy;
  cpu_heavy.demand = ResourceVector{0.2, 0.1};
  cpu_heavy.eligible = Machines(1, {0});
  cpu_heavy.h = cpu_heavy.g = 5;
  cpu_heavy.pending = 2;
  const UserId u = scheduler.AddUser(std::move(cpu_heavy));
  EXPECT_DOUBLE_EQ(scheduler.Key(u), 0.0);
  scheduler.PlaceUserGreedy(u, [](MachineId) {});
  EXPECT_DOUBLE_EQ(scheduler.Key(u), 2 * 0.2);  // dominant = CPU
}

TEST(OnlineScheduler, CmmfKeyUsesChosenResource) {
  OnlineScheduler scheduler({ResourceVector{1.0, 1.0}},
                            OnlinePolicy::Cmmf(1, "Mem"));
  OnlineUserSpec user;
  user.demand = ResourceVector{0.2, 0.1};
  user.eligible = Machines(1, {0});
  user.h = user.g = 5;
  user.pending = 1;
  const UserId u = scheduler.AddUser(std::move(user));
  scheduler.PlaceUserGreedy(u, [](MachineId) {});
  EXPECT_DOUBLE_EQ(scheduler.Key(u), 0.1);
}

TEST(OnlineScheduler, CdrfKeyUsesConstrainedMonopoly) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Cdrf());
  const UserId u = scheduler.AddUser(UnitUser(2, 10, 4, 2, {0}));
  scheduler.PlaceUserGreedy(u, [](MachineId) {});
  EXPECT_DOUBLE_EQ(scheduler.Key(u), 2.0 / 4.0);
}

TEST(OnlineScheduler, WeightsDivideKeys) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  OnlineUserSpec spec = UnitUser(2, 10, 10, 1, {0});
  spec.weight = 2.0;
  const UserId u = scheduler.AddUser(std::move(spec));
  scheduler.PlaceUserGreedy(u, [](MachineId) {});
  EXPECT_DOUBLE_EQ(scheduler.Key(u), 1.0 / (10.0 * 2.0));
}

TEST(OnlineScheduler, RetiredUsersAreSkipped) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  const UserId dead = scheduler.AddUser(UnitUser(2, 10, 10, 5, {0}));
  const UserId live = scheduler.AddUser(UnitUser(2, 10, 10, 5, {0}));
  scheduler.Retire(dead);
  std::vector<UserId> served;
  scheduler.ServeMachine(0, [&](UserId u, MachineId) { served.push_back(u); });
  for (const UserId u : served) EXPECT_EQ(u, live);
  EXPECT_EQ(served.size(), 5u);
}

TEST(OnlineScheduler, ServeStopsWhenNothingFits) {
  OnlineScheduler scheduler({ResourceVector{0.15, 0.5}}, OnlinePolicy::Tsf());
  OnlineUserSpec spec;
  spec.demand = ResourceVector{0.1, 0.1};
  spec.eligible = Machines(1, {0});
  spec.h = spec.g = 5;
  spec.pending = 3;
  const UserId u = scheduler.AddUser(std::move(spec));
  int placed = 0;
  scheduler.ServeMachine(0, [&](UserId, MachineId) { ++placed; });
  EXPECT_EQ(placed, 1);  // CPU 0.15 fits one 0.1 task, not two
  EXPECT_EQ(scheduler.pending(u), 2);
}

TEST(OnlineScheduler, MultipleUsersInterleaveByShare) {
  // Equal h: after each placement the served user's share rises, so service
  // alternates — the hallmark of max-min progressive service.
  OnlineScheduler scheduler({ResourceVector{1.0, 1.0}}, OnlinePolicy::Tsf());
  const UserId a = scheduler.AddUser(UnitUser(1, 10, 10, 4, {0}));
  const UserId b = scheduler.AddUser(UnitUser(1, 10, 10, 4, {0}));
  std::vector<UserId> served;
  scheduler.ServeMachine(0, [&](UserId u, MachineId) { served.push_back(u); });
  ASSERT_EQ(served.size(), 8u);
  EXPECT_EQ(served[0], a);  // tie broken by id
  EXPECT_EQ(served[1], b);
  EXPECT_EQ(served[2], a);
  EXPECT_EQ(served[3], b);
}

TEST(OnlineScheduler, InterleavedPlacementSharesIdleCapacity) {
  // Two users registered "at the same instant" with big backlogs: the
  // batch placement must split the idle cluster by key, not first-come.
  OnlineScheduler scheduler({ResourceVector{1.0, 1.0}}, OnlinePolicy::Tsf());
  const UserId a = scheduler.AddUser(UnitUser(1, 10, 10, 100, {0}));
  const UserId b = scheduler.AddUser(UnitUser(1, 10, 10, 100, {0}));
  std::vector<UserId> placed;
  scheduler.PlaceUsersInterleaved(
      {a, b}, [&](UserId u, MachineId) { placed.push_back(u); });
  EXPECT_EQ(placed.size(), 10u);  // 1.0 / 0.1 per dimension
  EXPECT_EQ(scheduler.running(a), 5);
  EXPECT_EQ(scheduler.running(b), 5);
}

TEST(OnlineScheduler, InterleavedPlacementWeightsBias) {
  // Equal h, weight 4:1 -> idle capacity splits 8:2.
  OnlineScheduler scheduler({ResourceVector{1.0, 1.0}}, OnlinePolicy::Tsf());
  OnlineUserSpec heavy = UnitUser(1, 10, 10, 100, {0});
  heavy.weight = 4.0;
  const UserId a = scheduler.AddUser(std::move(heavy));
  const UserId b = scheduler.AddUser(UnitUser(1, 10, 10, 100, {0}));
  scheduler.PlaceUsersInterleaved({a, b}, [](UserId, MachineId) {});
  EXPECT_EQ(scheduler.running(a), 8);
  EXPECT_EQ(scheduler.running(b), 2);
}

TEST(OnlineScheduler, InterleavedPlacementRespectsEligibility) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  const UserId pinned = scheduler.AddUser(UnitUser(2, 10, 5, 100, {1}));
  const UserId roamer = scheduler.AddUser(UnitUser(2, 10, 10, 100, {0, 1}));
  std::vector<std::pair<UserId, MachineId>> placements;
  scheduler.PlaceUsersInterleaved({pinned, roamer}, [&](UserId u, MachineId m) {
    placements.emplace_back(u, m);
  });
  // Equal h -> equal split of the 10 slots; every pinned task on machine 1.
  EXPECT_TRUE(scheduler.FreeCapacity(0).IsZero(1e-9));
  EXPECT_TRUE(scheduler.FreeCapacity(1).IsZero(1e-9));
  EXPECT_EQ(scheduler.running(pinned), 5);
  EXPECT_EQ(scheduler.running(roamer), 5);
  for (const auto& [user, machine] : placements) {
    if (user == pinned) {
      EXPECT_EQ(machine, 1u);
    }
  }
}

TEST(OnlineScheduler, InterleavedSingleUserEqualsGreedy) {
  OnlineScheduler a_sched(TwoMachines(), OnlinePolicy::Tsf());
  OnlineScheduler b_sched(TwoMachines(), OnlinePolicy::Tsf());
  const UserId a = a_sched.AddUser(UnitUser(2, 10, 10, 7, {0, 1}));
  const UserId b = b_sched.AddUser(UnitUser(2, 10, 10, 7, {0, 1}));
  std::vector<MachineId> greedy, batch;
  a_sched.PlaceUserGreedy(a, [&](MachineId m) { greedy.push_back(m); });
  b_sched.PlaceUsersInterleaved(
      {b}, [&](UserId, MachineId m) { batch.push_back(m); });
  EXPECT_EQ(greedy, batch);
}

TEST(OnlineScheduler, InterleavedFifoKeepsArrivalPriority) {
  // Under FIFO the earlier-registered user drains first even in a batch.
  OnlineScheduler scheduler({ResourceVector{1.0, 1.0}}, OnlinePolicy::Fifo());
  const UserId first = scheduler.AddUser(UnitUser(1, 10, 10, 6, {0}));
  const UserId second = scheduler.AddUser(UnitUser(1, 10, 10, 6, {0}));
  scheduler.PlaceUsersInterleaved({first, second}, [](UserId, MachineId) {});
  EXPECT_EQ(scheduler.running(first), 6);
  EXPECT_EQ(scheduler.running(second), 4);
}

TEST(OnlineSchedulerDeathTest, FinishWithoutRunningTaskAborts) {
  OnlineScheduler scheduler(TwoMachines(), OnlinePolicy::Tsf());
  const UserId u = scheduler.AddUser(UnitUser(2, 10, 10, 0, {0}));
  EXPECT_DEATH(scheduler.OnTaskFinish(u, 0), "check failed");
}

// --- Differential tests: incremental core vs the linear-scan reference. ---
//
// Both schedulers are driven through an identical randomized operation
// sequence (registrations, arrival batches, task finishes with re-serves,
// pending top-ups, retirements) and must agree placement-for-placement, in
// order, with bit-identical keys throughout. This is what licenses the
// heap/cursor machinery in the incremental core: any divergence from the
// naive rescan spec shows up as a stream mismatch here.

std::vector<OnlinePolicy> EveryPolicy() {
  return {OnlinePolicy::Fifo(),         OnlinePolicy::Drf(),
          OnlinePolicy::Cdrf(),         OnlinePolicy::Cmmf(0, "CPU"),
          OnlinePolicy::Cmmf(1, "Mem"), OnlinePolicy::Tsf()};
}

class SchedulerDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerDifferential, LockstepPlacementIdentity) {
  for (const OnlinePolicy& policy : EveryPolicy()) {
    Rng rng(GetParam() * 1000003 + static_cast<std::uint64_t>(policy.kind));
    const auto num_machines = static_cast<std::size_t>(rng.Int(1, 8));
    std::vector<ResourceVector> capacity;
    for (std::size_t m = 0; m < num_machines; ++m)
      capacity.push_back(
          ResourceVector{rng.Uniform(0.2, 1.0), rng.Uniform(0.2, 1.0)});

    OnlineScheduler fast(capacity, policy);
    ReferenceScheduler ref(capacity, policy);
    // (user, machine) of every task currently running; identical for both
    // cores because every placement stream is asserted equal below.
    std::vector<std::pair<UserId, MachineId>> running;

    // Runs `op` against each core, then asserts the recorded placement
    // streams and all externally visible state agree exactly.
    auto in_lockstep = [&](auto&& op) {
      std::vector<std::pair<UserId, MachineId>> from_fast, from_ref;
      op(fast, from_fast);
      op(ref, from_ref);
      ASSERT_EQ(from_fast, from_ref) << policy.name;
      for (const auto& placement : from_fast) running.push_back(placement);
      ASSERT_EQ(fast.num_users(), ref.num_users());
      for (UserId u = 0; u < fast.num_users(); ++u) {
        ASSERT_EQ(fast.Key(u), ref.Key(u)) << policy.name << " user " << u;
        ASSERT_EQ(fast.pending(u), ref.pending(u)) << policy.name;
        ASSERT_EQ(fast.running(u), ref.running(u)) << policy.name;
      }
      for (MachineId m = 0; m < num_machines; ++m)
        ASSERT_EQ(fast.FreeCapacity(m).values(), ref.FreeCapacity(m).values())
            << policy.name << " machine " << m;
      ASSERT_EQ(fast.HasPendingUsers(), ref.HasPendingUsers()) << policy.name;
    };

    auto random_spec = [&] {
      OnlineUserSpec spec;
      spec.demand =
          ResourceVector{rng.Uniform(0.02, 0.2), rng.Uniform(0.02, 0.2)};
      DynamicBitset eligible(num_machines);
      for (std::size_t m = 0; m < num_machines; ++m)
        if (rng.Chance(0.6)) eligible.Set(m);
      if (eligible.None()) eligible.Set(rng.Below(num_machines));
      spec.eligible = std::move(eligible);
      spec.weight = rng.Chance(0.5) ? 1.0 : rng.Uniform(0.5, 3.0);
      spec.h = rng.Uniform(1.0, 50.0);
      spec.g = rng.Uniform(1.0, spec.h);
      spec.pending = rng.Int(0, 12);
      return spec;
    };

    for (int step = 0; step < 60; ++step) {
      const auto roll = rng.Below(100);
      if (roll < 30 || fast.num_users() == 0) {
        // Arrival batch of 1–3 users, placed like the simulator would:
        // registered together, then interleaved by key.
        const auto batch = static_cast<std::size_t>(rng.Int(1, 3));
        std::vector<OnlineUserSpec> specs;
        for (std::size_t b = 0; b < batch; ++b) specs.push_back(random_spec());
        std::vector<UserId> batch_users;
        in_lockstep([&](auto& core, auto& placed) {
          batch_users.clear();
          for (const OnlineUserSpec& spec : specs)
            batch_users.push_back(core.AddUser(spec));
          core.PlaceUsersInterleaved(batch_users, [&](UserId u, MachineId m) {
            placed.emplace_back(u, m);
          });
        });
      } else if (roll < 55 && !running.empty()) {
        // Finish a random running task, then re-serve its machine.
        const std::size_t pick = rng.Below(running.size());
        const auto [user, machine] = running[pick];
        running.erase(running.begin() + static_cast<std::ptrdiff_t>(pick));
        in_lockstep([&](auto& core, auto& placed) {
          core.OnTaskFinish(user, machine);
          core.ServeMachine(machine, [&](UserId u, MachineId m) {
            placed.emplace_back(u, m);
          });
        });
      } else if (roll < 75) {
        // Top up a live user's queue and greedily drain it.
        const UserId user = rng.Below(fast.num_users());
        if (fast.pending(user) == 0 && fast.running(user) == 0) continue;
        const long count = rng.Int(0, 6);
        in_lockstep([&](auto& core, auto& placed) {
          core.AddPending(user, count);
          core.PlaceUserGreedy(
              user, [&](MachineId m) { placed.emplace_back(user, m); });
        });
      } else if (roll < 90) {
        // Serve a random machine (often a no-op; must be a no-op in both).
        const MachineId machine = rng.Below(num_machines);
        in_lockstep([&](auto& core, auto& placed) {
          core.ServeMachine(machine, [&](UserId u, MachineId m) {
            placed.emplace_back(u, m);
          });
        });
      } else {
        // Retire a drained user, as the simulator does on job completion.
        for (UserId u = 0; u < fast.num_users(); ++u) {
          if (fast.pending(u) != 0 || fast.running(u) != 0) continue;
          in_lockstep([&](auto& core, auto& placed) {
            (void)placed;
            core.Retire(u);
          });
          break;
        }
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// 25 seeds x 6 policies = 150 randomized scheduler-level combos.
INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDifferential,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace tsf
