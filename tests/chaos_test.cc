// Unit tests for the chaos harness itself (src/chaos): fault-plan
// generation/validation/serialization, the stream invariant checkers
// (fed hand-made violating streams), the atom-based ddmin shrinker, and
// repro round-trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/invariants.h"
#include "chaos/repro.h"
#include "chaos/scenario.h"
#include "chaos/shrink.h"

namespace tsf::chaos {
namespace {

using Kind = StreamEvent::Kind;

// --- fault plans ------------------------------------------------------------

TEST(FaultPlanTest, RandomDesPlansAreWellFormedAndRoundTrip) {
  FaultPlanShape shape;
  shape.num_machines = 4;
  shape.horizon = 50.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultPlan plan = RandomFaultPlan(shape, seed);
    EXPECT_EQ(ValidateFaultPlan(plan, shape.num_machines, 0), "")
        << "seed " << seed;
    EXPECT_EQ(ParseFaultPlan(SerializeFaultPlan(plan)), plan)
        << "seed " << seed;
    // DES plans must compile (no Mesos-only kinds generated).
    EXPECT_EQ(CompileForDes(plan).size(), plan.events.size());
  }
}

TEST(FaultPlanTest, RandomMesosPlansAreWellFormedAndRoundTrip) {
  FaultPlanShape shape;
  shape.num_machines = 3;
  shape.num_frameworks = 4;
  shape.earliest = 5.0;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const FaultPlan plan = RandomFaultPlan(shape, seed);
    EXPECT_EQ(ValidateFaultPlan(plan, shape.num_machines, shape.num_frameworks),
              "")
        << "seed " << seed;
    EXPECT_EQ(ParseFaultPlan(SerializeFaultPlan(plan)), plan)
        << "seed " << seed;
    EXPECT_EQ(CompileForMesos(plan).size(), plan.events.size());
    for (const FaultSpec& event : plan.events)
      EXPECT_GE(event.time, shape.earliest);
  }
}

TEST(FaultPlanTest, RandomPlansAreSeedDeterministic) {
  FaultPlanShape shape;
  shape.num_machines = 4;
  shape.num_frameworks = 2;
  EXPECT_EQ(RandomFaultPlan(shape, 7), RandomFaultPlan(shape, 7));
  // Different seeds eventually differ (not a fixed plan).
  bool any_different = false;
  for (std::uint64_t seed = 1; seed <= 10 && !any_different; ++seed)
    any_different = !(RandomFaultPlan(shape, seed) == RandomFaultPlan(shape, 7));
  EXPECT_TRUE(any_different);
}

TEST(FaultPlanTest, ValidateRejectsMalformedPlans) {
  const auto spec = [](double time, FaultKind kind, std::size_t target,
                       double param = 0.0) {
    return FaultSpec{time, kind, target, param};
  };
  // Unsorted times.
  EXPECT_NE(ValidateFaultPlan(
                {{spec(5, FaultKind::kMachineCrash, 0),
                  spec(2, FaultKind::kMachineRestart, 0)}},
                2, 0),
            "");
  // Crash never lifted.
  EXPECT_NE(ValidateFaultPlan({{spec(1, FaultKind::kMachineCrash, 0)}}, 2, 0),
            "");
  // Restart of a machine that is up.
  EXPECT_NE(ValidateFaultPlan({{spec(1, FaultKind::kMachineRestart, 0)}}, 2, 0),
            "");
  // Double crash of the same target.
  EXPECT_NE(ValidateFaultPlan(
                {{spec(1, FaultKind::kMachineCrash, 0),
                  spec(2, FaultKind::kMachineCrash, 0),
                  spec(3, FaultKind::kMachineRestart, 0)}},
                2, 0),
            "");
  // Target out of range.
  EXPECT_NE(ValidateFaultPlan({{spec(1, FaultKind::kTaskFailure, 9)}}, 2, 0),
            "");
  // Mesos-only kind in a DES plan (num_frameworks == 0).
  EXPECT_NE(ValidateFaultPlan({{spec(1, FaultKind::kOfferDrop, 0, 1)}}, 2, 0),
            "");
  // Non-positive decline-timeout window.
  EXPECT_NE(ValidateFaultPlan(
                {{spec(1, FaultKind::kDeclineTimeout, 0, 0.0)}}, 2, 2),
            "");
  // Disconnect never re-registered.
  EXPECT_NE(ValidateFaultPlan(
                {{spec(1, FaultKind::kFrameworkDisconnect, 1)}}, 2, 2),
            "");
  // The fixed versions all pass.
  EXPECT_EQ(ValidateFaultPlan(
                {{spec(1, FaultKind::kMachineCrash, 0),
                  spec(2, FaultKind::kMachineRestart, 0),
                  spec(3, FaultKind::kTaskFailure, 1),
                  spec(4, FaultKind::kDeclineTimeout, 0, 2.5),
                  spec(5, FaultKind::kFrameworkDisconnect, 1),
                  spec(6, FaultKind::kFrameworkReregister, 1)}},
                2, 2),
            "");
}

TEST(FaultPlanTest, KindTokensRoundTrip) {
  for (const FaultKind kind :
       {FaultKind::kMachineCrash, FaultKind::kMachineRestart,
        FaultKind::kTaskFailure, FaultKind::kOfferDrop,
        FaultKind::kOfferRescind, FaultKind::kDeclineTimeout,
        FaultKind::kFrameworkDisconnect, FaultKind::kFrameworkReregister})
    EXPECT_EQ(FaultKindFromString(ToString(kind)), kind);
}

// --- invariant checkers -----------------------------------------------------

// A 2-machine, 2-user scenario view: machine capacity (1,1) each, user 0
// demands (0.4,0.4) anywhere, user 1 demands (0.6,0.6) on machine 0 only.
ScenarioView TwoUserView() {
  ScenarioView view;
  view.capacity = {ResourceVector{1.0, 1.0}, ResourceVector{1.0, 1.0}};
  view.demand = {ResourceVector{0.4, 0.4}, ResourceVector{0.6, 0.6}};
  view.allowed = {{true, true}, {true, false}};
  view.num_tasks = {1, 1};
  return view;
}

StreamEvent Ev(double time, Kind kind, std::uint32_t user, std::uint32_t task,
               std::uint32_t machine) {
  StreamEvent event;
  event.time = time;
  event.kind = kind;
  event.user = user;
  event.task = task;
  event.machine = machine;
  return event;
}

std::vector<std::string> Invariants(const std::vector<Violation>& violations) {
  std::vector<std::string> ids;
  for (const Violation& violation : violations)
    ids.push_back(violation.invariant);
  return ids;
}

bool Contains(const std::vector<Violation>& violations,
              const std::string& invariant) {
  const std::vector<std::string> ids = Invariants(violations);
  return std::find(ids.begin(), ids.end(), invariant) != ids.end();
}

TEST(InvariantsTest, CleanStreamHasNoViolations) {
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0),  Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 0, 1),   Ev(0, Kind::kPlace, 1, 1, 0),
      Ev(3, Kind::kFinish, 0, 0, 1),  Ev(5, Kind::kFinish, 1, 1, 0),
  };
  EXPECT_TRUE(CheckStream(TwoUserView(), stream).empty());
}

TEST(InvariantsTest, CatchesClockRegression) {
  const std::vector<StreamEvent> stream = {
      Ev(2, Kind::kArrive, 0, 0, 0), Ev(1, Kind::kArrive, 1, 0, 0)};
  EXPECT_TRUE(Contains(CheckStream(TwoUserView(), stream), "clock_regression"));
}

TEST(InvariantsTest, CatchesWhitelistViolation) {
  // User 1 may only use machine 0; placing it on machine 1 must trip.
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 1, 0, 1),  Ev(1, Kind::kFinish, 1, 0, 1),
      Ev(1, Kind::kPlace, 0, 1, 0),  Ev(2, Kind::kFinish, 0, 1, 0)};
  EXPECT_TRUE(
      Contains(CheckStream(TwoUserView(), stream), "whitelist_violation"));
}

TEST(InvariantsTest, CatchesOversubscription) {
  // Two 0.6-demand tasks on one (1,1) machine.
  ScenarioView view = TwoUserView();
  view.num_tasks = {0, 2};
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 1, 0, 0),  Ev(0, Kind::kPlace, 1, 1, 0),
      Ev(1, Kind::kFinish, 1, 0, 0), Ev(1, Kind::kFinish, 1, 1, 0)};
  EXPECT_TRUE(Contains(CheckStream(view, stream), "oversubscription"));
}

TEST(InvariantsTest, CatchesDuplicateTaskIdAndGhostTask) {
  ScenarioView view = TwoUserView();
  view.num_tasks = {2, 0};
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      // Task id 0 live twice.
      Ev(0, Kind::kPlace, 0, 0, 0), Ev(0, Kind::kPlace, 0, 0, 1),
      // Finish of a task id never placed.
      Ev(1, Kind::kFinish, 0, 7, 0)};
  const std::vector<Violation> violations = CheckStream(view, stream);
  EXPECT_TRUE(Contains(violations, "duplicate_task_id"));
  EXPECT_TRUE(Contains(violations, "ghost_task"));
}

TEST(InvariantsTest, CatchesTaskSurvivingCrash) {
  // Machine 0 crashes while task 0 is still live on it — the stream shows
  // no kKill first, which is exactly the leak the injected bug plants.
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 0, 0),  Ev(1, Kind::kCrash, 0, 0, 0)};
  EXPECT_TRUE(
      Contains(CheckStream(TwoUserView(), stream), "task_survived_crash"));
}

TEST(InvariantsTest, CrashKillRestartCycleIsClean) {
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 0, 0),  Ev(0, Kind::kPlace, 1, 1, 0),
      Ev(1, Kind::kKill, 1, 1, 0),   Ev(1, Kind::kKill, 0, 0, 0),
      Ev(1, Kind::kCrash, 0, 0, 0),  Ev(2, Kind::kRestart, 0, 0, 0),
      Ev(2, Kind::kPlace, 0, 0, 0),  Ev(2, Kind::kPlace, 1, 1, 0),
      Ev(3, Kind::kFinish, 0, 0, 0), Ev(4, Kind::kFinish, 1, 1, 0)};
  ScenarioView view = TwoUserView();
  view.num_tasks = {1, 1};
  EXPECT_TRUE(CheckStream(view, stream).empty());
}

TEST(InvariantsTest, CatchesPlacementOnDownMachine) {
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(1, Kind::kCrash, 0, 0, 1),  Ev(1, Kind::kPlace, 0, 0, 1),
      Ev(2, Kind::kFinish, 0, 0, 1), Ev(3, Kind::kRestart, 0, 0, 1),
      Ev(3, Kind::kPlace, 1, 1, 0),  Ev(4, Kind::kFinish, 1, 1, 0)};
  EXPECT_TRUE(
      Contains(CheckStream(TwoUserView(), stream), "place_on_down_machine"));
}

TEST(InvariantsTest, CatchesPlacementWhileDisconnected) {
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0),     Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(1, Kind::kDisconnect, 0, 0, 0), Ev(1, Kind::kPlace, 0, 0, 0),
      Ev(2, Kind::kFinish, 0, 0, 0),     Ev(3, Kind::kReregister, 0, 0, 0),
      Ev(3, Kind::kPlace, 1, 1, 0),      Ev(4, Kind::kFinish, 1, 1, 0)};
  EXPECT_TRUE(Contains(CheckStream(TwoUserView(), stream),
                       "place_while_disconnected"));
}

TEST(InvariantsTest, FinalizeCatchesLeakAndShortfall) {
  // Task 0 of user 0 never finishes; user 1 never runs its task.
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 0, 0)};
  const std::vector<Violation> violations =
      CheckStream(TwoUserView(), stream);
  EXPECT_TRUE(Contains(violations, "leaked_task"));
  EXPECT_TRUE(Contains(violations, "incomplete_user"));
}

TEST(InvariantsTest, LeakedTaskSweepReportsInSortedTaskIdOrder) {
  // Regression for a real nondeterminism hazard: the checker's live-task
  // shadow map used to be a std::unordered_map, so the leaked-task and
  // crash-survivor sweeps emitted violations in hash order — and violation
  // order is part of the harness's deterministic contract (shrink predicates
  // and committed repros match on the violation list). Place tasks with
  // deliberately non-sorted ids and require the sweep to report them in
  // ascending task-id order regardless of insertion order.
  ScenarioView view = TwoUserView();
  view.num_tasks = {3, 0};
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 9, 0),  Ev(0, Kind::kPlace, 0, 2, 1),
      Ev(1, Kind::kPlace, 0, 7, 0)};
  const std::vector<Violation> violations = CheckStream(view, stream);
  std::vector<std::string> leaked;
  for (const Violation& violation : violations)
    if (violation.invariant == "leaked_task")
      leaked.push_back(violation.detail);
  ASSERT_EQ(leaked.size(), 3u);
  EXPECT_NE(leaked[0].find("task 2 "), std::string::npos) << leaked[0];
  EXPECT_NE(leaked[1].find("task 7 "), std::string::npos) << leaked[1];
  EXPECT_NE(leaked[2].find("task 9 "), std::string::npos) << leaked[2];
}

TEST(InvariantsTest, CrashSurvivorSweepReportsInSortedTaskIdOrder) {
  // Same contract for the crash-time sweep: survivors of a crashed machine
  // are reported in task-id order, not insertion order.
  ScenarioView view = TwoUserView();
  view.num_tasks = {2, 0};
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 8, 1),  Ev(0, Kind::kPlace, 0, 3, 1),
      Ev(1, Kind::kCrash, 0, 0, 1)};
  const std::vector<Violation> violations = CheckStream(view, stream);
  std::vector<std::string> survivors;
  for (const Violation& violation : violations)
    if (violation.invariant == "task_survived_crash")
      survivors.push_back(violation.detail);
  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_NE(survivors[0].find("task 3 "), std::string::npos) << survivors[0];
  EXPECT_NE(survivors[1].find("task 8 "), std::string::npos) << survivors[1];
}

TEST(InvariantsTest, FinalizeCatchesMachineLeftDown) {
  const std::vector<StreamEvent> stream = {
      Ev(0, Kind::kArrive, 0, 0, 0), Ev(0, Kind::kArrive, 1, 0, 0),
      Ev(0, Kind::kPlace, 0, 0, 1),  Ev(1, Kind::kFinish, 0, 0, 1),
      Ev(1, Kind::kPlace, 1, 1, 0),  Ev(2, Kind::kFinish, 1, 1, 0),
      Ev(3, Kind::kCrash, 0, 0, 1)};
  EXPECT_TRUE(
      Contains(CheckStream(TwoUserView(), stream), "machine_left_down"));
}

// --- stream formatting / hashing --------------------------------------------

TEST(StreamHashTest, FormatIsStable) {
  EXPECT_EQ(FormatStreamEvent(Ev(1.5, Kind::kPlace, 2, 7, 1)),
            "t=1.5 place user=2 task=7 machine=1");
}

TEST(StreamHashTest, HashIsOrderAndContentSensitive) {
  const std::vector<StreamEvent> a = {Ev(0, Kind::kArrive, 0, 0, 0),
                                      Ev(1, Kind::kPlace, 0, 0, 1)};
  std::vector<StreamEvent> b = a;
  b[1].machine = 0;
  std::vector<StreamEvent> c = {a[1], a[0]};
  EXPECT_NE(HashStream(a), HashStream(b));
  EXPECT_NE(HashStream(a), HashStream(c));
  EXPECT_EQ(HashStream(a), HashStream(a));
  EXPECT_NE(HashStream({}), 0u);  // FNV offset basis, not zero
}

// --- shrinker ---------------------------------------------------------------

FaultPlan SixAtomPlan() {
  FaultPlan plan;
  const auto add = [&](double time, FaultKind kind, std::size_t target) {
    plan.events.push_back(FaultSpec{time, kind, target, 0.0});
  };
  add(1, FaultKind::kTaskFailure, 0);
  add(2, FaultKind::kMachineCrash, 0);
  add(3, FaultKind::kMachineCrash, 1);
  add(4, FaultKind::kMachineRestart, 0);
  add(5, FaultKind::kTaskFailure, 2);
  add(6, FaultKind::kMachineRestart, 1);
  add(7, FaultKind::kMachineCrash, 2);
  add(8, FaultKind::kMachineRestart, 2);
  add(9, FaultKind::kTaskFailure, 1);
  return plan;
}

bool HasEvent(const FaultPlan& plan, FaultKind kind, std::size_t target) {
  return std::any_of(plan.events.begin(), plan.events.end(),
                     [&](const FaultSpec& event) {
                       return event.kind == kind && event.target == target;
                     });
}

TEST(ShrinkTest, ReducesToSingleCulpritAtom) {
  // Failure caused by the crash of machine 1 alone: ddmin must come back
  // with exactly that crash and its paired restart.
  const ShrinkResult result =
      ShrinkFaultPlan(SixAtomPlan(), [](const FaultPlan& candidate) {
        return HasEvent(candidate, FaultKind::kMachineCrash, 1);
      });
  ASSERT_EQ(result.plan.events.size(), 2u);
  EXPECT_EQ(result.plan.events[0].kind, FaultKind::kMachineCrash);
  EXPECT_EQ(result.plan.events[0].target, 1u);
  EXPECT_EQ(result.plan.events[1].kind, FaultKind::kMachineRestart);
  EXPECT_EQ(result.plan.events[1].target, 1u);
  EXPECT_GT(result.predicate_calls, 0u);
  // Every candidate the shrinker produced was well-formed by construction;
  // so is the minimum.
  EXPECT_EQ(ValidateFaultPlan(result.plan, 3, 0), "");
}

TEST(ShrinkTest, KeepsConjunctionOfTwoAtoms) {
  // Failure needs BOTH the machine-1 crash and the task failure on machine
  // 2 — 1-minimality keeps the pair plus the single event, nothing else.
  const ShrinkResult result =
      ShrinkFaultPlan(SixAtomPlan(), [](const FaultPlan& candidate) {
        return HasEvent(candidate, FaultKind::kMachineCrash, 1) &&
               HasEvent(candidate, FaultKind::kTaskFailure, 2);
      });
  ASSERT_EQ(result.plan.events.size(), 3u);
  EXPECT_TRUE(HasEvent(result.plan, FaultKind::kMachineCrash, 1));
  EXPECT_TRUE(HasEvent(result.plan, FaultKind::kMachineRestart, 1));
  EXPECT_TRUE(HasEvent(result.plan, FaultKind::kTaskFailure, 2));
  // Time order preserved.
  for (std::size_t i = 1; i < result.plan.events.size(); ++i)
    EXPECT_LE(result.plan.events[i - 1].time, result.plan.events[i].time);
}

TEST(ShrinkTest, AlwaysFailingPlanShrinksToOneAtom) {
  const ShrinkResult result =
      ShrinkFaultPlan(SixAtomPlan(), [](const FaultPlan&) { return true; });
  // 1-minimal for a constant-true predicate is a single atom (1 or 2 events).
  EXPECT_LE(result.plan.events.size(), 2u);
  EXPECT_GE(result.plan.events.size(), 1u);
}

// --- repro round-trip -------------------------------------------------------

TEST(ReproTest, SerializeParseRoundTrips) {
  Repro repro;
  repro.substrate = "mesos";
  repro.scenario_seed = 42;
  repro.policy = "TSF";
  repro.injected_bug = "leak_task_on_crash";
  repro.violation = "[task_survived_crash] t=9.87 task 5 still live";
  FaultPlanShape shape;
  shape.num_machines = 3;
  shape.num_frameworks = 2;
  repro.plan = RandomFaultPlan(shape, 9);
  EXPECT_EQ(ParseRepro(SerializeRepro(repro)), repro);
}

TEST(ReproTest, DesReproRoundTripsWithEmptyViolation) {
  Repro repro;
  repro.substrate = "des";
  repro.scenario_seed = 3;
  repro.policy = "CDRF";
  FaultPlanShape shape;
  shape.num_machines = 2;
  repro.plan = RandomFaultPlan(shape, 4);
  EXPECT_EQ(ParseRepro(SerializeRepro(repro)), repro);
}

// --- scenario generators ----------------------------------------------------

TEST(ScenarioTest, RandomScenariosAreSeedDeterministic) {
  const DesScenario a = RandomDesScenario(11);
  const DesScenario b = RandomDesScenario(11);
  EXPECT_EQ(a.plan, b.plan);
  EXPECT_EQ(a.workload.jobs.size(), b.workload.jobs.size());
  EXPECT_EQ(a.workload.cluster.num_machines(),
            b.workload.cluster.num_machines());
  const ScenarioReport ra =
      RunDesScenario(a.workload, OnlinePolicy::Tsf(), a.plan);
  const ScenarioReport rb =
      RunDesScenario(b.workload, OnlinePolicy::Tsf(), b.plan);
  EXPECT_EQ(ra.stream_hash, rb.stream_hash);
  EXPECT_TRUE(ra.ok()) << ToString(ra.violations.front());
}

TEST(ScenarioTest, MesosScenarioRunsCleanAndDeterministic) {
  const MesosScenario scenario = RandomMesosScenario(5);
  const ScenarioReport a = RunMesosScenario(scenario);
  const ScenarioReport b = RunMesosScenario(scenario);
  EXPECT_EQ(a.stream_hash, b.stream_hash);
  EXPECT_TRUE(a.ok()) << ToString(a.violations.front());
  EXPECT_FALSE(a.stream.empty());
}

TEST(ScenarioTest, AllOnlinePoliciesHasCanonicalOrder) {
  const std::vector<OnlinePolicy> policies = AllOnlinePolicies();
  ASSERT_EQ(policies.size(), 6u);
  EXPECT_EQ(policies.front().name, "FIFO");
  EXPECT_EQ(policies.back().name, "TSF");
}

}  // namespace
}  // namespace tsf::chaos
