// Tests for the open-loop load driver (src/load): arrival-stream
// determinism and shape properties, and the acceptance-criteria pin that
// the same (seed, rate) yields bit-identical placement streams on both
// online substrates.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/constraint.h"
#include "load/driver.h"
#include "load/stream.h"
#include "mesos/mesos.h"
#include "sim/des.h"

namespace tsf::load {
namespace {

StreamSpec SmallSpec(double rate = 1.0, std::uint64_t seed = 7) {
  StreamSpec spec;
  spec.rate = rate;
  spec.duration = 30.0;
  spec.seed = seed;
  return spec;
}

DriverConfig SmallConfig(double rate = 1.0, std::uint64_t seed = 7) {
  DriverConfig config;
  config.stream = SmallSpec(rate, seed);
  config.num_machines = 20;
  return config;
}

bool SameJobs(const GeneratedStream& a, const GeneratedStream& b) {
  if (a.jobs.size() != b.jobs.size()) return false;
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    const JobSpec& sa = a.jobs[j].spec;
    const JobSpec& sb = b.jobs[j].spec;
    if (sa.arrival_time != sb.arrival_time || sa.num_tasks != sb.num_tasks ||
        sa.name != sb.name || !(sa.demand == sb.demand) ||
        sa.constraint.machine_list() != sb.constraint.machine_list() ||
        a.jobs[j].task_runtimes != b.jobs[j].task_runtimes)
      return false;
  }
  return a.class_of == b.class_of;
}

TEST(LoadStream, ArrivalsAreDeterministicInSeed) {
  const GeneratedStream a = GenerateArrivals(SmallSpec(), 20);
  const GeneratedStream b = GenerateArrivals(SmallSpec(), 20);
  EXPECT_TRUE(SameJobs(a, b));

  const GeneratedStream other = GenerateArrivals(SmallSpec(1.0, 8), 20);
  EXPECT_FALSE(SameJobs(a, other)) << "different seeds must differ";
}

TEST(LoadStream, ArrivalsSortedAndInsideWindow) {
  for (const ArrivalShape shape :
       {ArrivalShape::kPoisson, ArrivalShape::kBurst, ArrivalShape::kUniform}) {
    StreamSpec spec = SmallSpec(2.0);
    spec.shape = shape;
    const GeneratedStream stream = GenerateArrivals(spec, 20);
    double prev = 0.0;
    for (const SimJob& job : stream.jobs) {
      EXPECT_GE(job.spec.arrival_time, prev);
      EXPECT_LT(job.spec.arrival_time, spec.duration);
      EXPECT_GT(job.spec.num_tasks, 0);
      EXPECT_EQ(job.task_runtimes.size(),
                static_cast<std::size_t>(job.spec.num_tasks));
      prev = job.spec.arrival_time;
    }
    EXPECT_EQ(stream.class_of.size(), stream.jobs.size());
  }
}

TEST(LoadStream, BurstShapeCompressesArrivals) {
  StreamSpec spec = SmallSpec(4.0);
  spec.shape = ArrivalShape::kBurst;
  spec.burst_period = 10.0;
  spec.burst_width = 2.0;
  const GeneratedStream stream = GenerateArrivals(spec, 20);
  for (const SimJob& job : stream.jobs) {
    const double offset =
        std::fmod(job.spec.arrival_time, spec.burst_period);
    EXPECT_LT(offset, spec.burst_width)
        << "burst arrivals must land inside the leading burst window";
  }
}

TEST(LoadStream, UniformShapeIsEvenlySpaced) {
  StreamSpec spec = SmallSpec(2.0);
  spec.shape = ArrivalShape::kUniform;
  const GeneratedStream stream = GenerateArrivals(spec, 20);
  ASSERT_EQ(stream.jobs.size(), 60u);  // rate * duration
  for (std::size_t j = 0; j < stream.jobs.size(); ++j)
    EXPECT_NEAR(stream.jobs[j].spec.arrival_time, 0.5 * static_cast<double>(j),
                1e-12);
}

TEST(LoadStream, WhitelistsRespectFractionAndFleetSize) {
  StreamSpec spec = SmallSpec(2.0);
  const std::size_t machines = 16;
  const GeneratedStream stream = GenerateArrivals(spec, machines);
  bool saw_constrained = false;
  for (const SimJob& job : stream.jobs) {
    if (job.spec.constraint.kind() != Constraint::Kind::kWhitelist) continue;
    saw_constrained = true;
    const auto& list = job.spec.constraint.machine_list();
    EXPECT_FALSE(list.empty());
    EXPECT_LE(list.size(), machines);
    for (const MachineId m : list) EXPECT_LT(m, machines);
  }
  EXPECT_TRUE(saw_constrained)
      << "default mix should produce some constrained jobs at 60 arrivals";
}

TEST(LoadStream, FrameworksMirrorJobs) {
  const GeneratedStream stream = GenerateArrivals(SmallSpec(), 20);
  const std::vector<mesos::FrameworkSpec> frameworks = ToFrameworks(stream);
  ASSERT_EQ(frameworks.size(), stream.jobs.size());
  for (std::size_t j = 0; j < frameworks.size(); ++j) {
    EXPECT_EQ(frameworks[j].name, stream.jobs[j].spec.name);
    EXPECT_EQ(frameworks[j].start_time, stream.jobs[j].spec.arrival_time);
    EXPECT_EQ(frameworks[j].num_tasks, stream.jobs[j].spec.num_tasks);
  }
}

// The acceptance-criteria pin: same seed + rate => bit-identical placement
// streams (hashes equal) and identical derived metrics, on both substrates.
TEST(LoadDriver, DesRunIsSeedDeterministic) {
  const DriverConfig config = SmallConfig();
  const LoadReport a = RunDesLoad(config, OnlinePolicy::Tsf());
  const LoadReport b = RunDesLoad(config, OnlinePolicy::Tsf());
  EXPECT_EQ(a.placement_hash, b.placement_hash);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.all.ttp_ms.count, b.all.ttp_ms.count);
  EXPECT_EQ(a.all.ttp_ms.Quantile(0.99), b.all.ttp_ms.Quantile(0.99));
  ASSERT_EQ(a.queue_depth.size(), b.queue_depth.size());
  for (std::size_t i = 0; i < a.queue_depth.size(); ++i)
    EXPECT_EQ(a.queue_depth[i].depth, b.queue_depth[i].depth);

  const LoadReport other =
      RunDesLoad(SmallConfig(1.0, 8), OnlinePolicy::Tsf());
  EXPECT_NE(a.placement_hash, other.placement_hash);
}

TEST(LoadDriver, MesosRunIsSeedDeterministic) {
  const DriverConfig config = SmallConfig();
  const LoadReport a = RunMesosLoad(config, mesos::AllocatorPolicy::kTsf);
  const LoadReport b = RunMesosLoad(config, mesos::AllocatorPolicy::kTsf);
  EXPECT_EQ(a.placement_hash, b.placement_hash);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.placements, b.placements);
  EXPECT_EQ(a.all.ttp_ms.count, b.all.ttp_ms.count);
  EXPECT_EQ(a.all.ttp_ms.Quantile(0.99), b.all.ttp_ms.Quantile(0.99));

  const LoadReport other =
      RunMesosLoad(SmallConfig(1.0, 8), mesos::AllocatorPolicy::kTsf);
  EXPECT_NE(a.placement_hash, other.placement_hash);
}

TEST(LoadDriver, EveryTaskIsPlacedExactlyOnceWithoutFaults) {
  for (const auto* policy : {"des", "mesos"}) {
    const DriverConfig config = SmallConfig();
    const LoadReport report =
        policy == std::string("des")
            ? RunDesLoad(config, OnlinePolicy::Tsf())
            : RunMesosLoad(config, mesos::AllocatorPolicy::kTsf);
    EXPECT_EQ(report.placements, report.total_tasks) << policy;
    EXPECT_EQ(report.requeues, 0u) << policy;
    EXPECT_EQ(report.all.ttp_ms.count, report.total_tasks) << policy;
    // Per-class counts partition the total.
    std::uint64_t class_total = 0;
    for (const LatencySeries& series : report.per_class)
      class_total += series.ttp_ms.count;
    EXPECT_EQ(class_total, report.total_tasks) << policy;
    EXPECT_GE(report.all.ttp_ms.Quantile(0.99),
              report.all.ttp_ms.Quantile(0.5))
        << policy;
    EXPECT_GT(report.makespan, 0.0) << policy;
  }
}

TEST(LoadDriver, PoliciesProduceDistinctStreamsUnderContention) {
  const DriverConfig config = SmallConfig(2.0);
  const LoadReport tsf = RunDesLoad(config, OnlinePolicy::Tsf());
  const LoadReport drf = RunDesLoad(config, OnlinePolicy::Drf());
  EXPECT_EQ(tsf.total_tasks, drf.total_tasks);
  // Identical streams under both policies would mean the policy key is not
  // reaching the scheduler at this operating point.
  EXPECT_NE(tsf.placement_hash, drf.placement_hash);
}

TEST(LoadDriver, DesFaultOverlayRequeuesAndStillDrains) {
  DriverConfig config = SmallConfig();
  std::vector<SimFault> faults;
  faults.push_back({5.0, SimFault::Kind::kMachineCrash, 0});
  faults.push_back({9.0, SimFault::Kind::kMachineRestart, 0});
  const LoadReport report =
      RunDesLoad(config, OnlinePolicy::Tsf(), faults);
  EXPECT_EQ(report.all.ttp_ms.count, report.placements);
  EXPECT_GE(report.placements, report.total_tasks);
  // Determinism holds under the fault overlay too.
  const LoadReport again =
      RunDesLoad(config, OnlinePolicy::Tsf(), faults);
  EXPECT_EQ(report.placement_hash, again.placement_hash);
}

TEST(LoadDriver, MesosFaultOverlayRequeuesAndStillDrains) {
  DriverConfig config = SmallConfig();
  std::vector<mesos::Fault> faults;
  faults.push_back({5.0, mesos::Fault::Kind::kSlaveCrash, 0, 0.0});
  faults.push_back({9.0, mesos::Fault::Kind::kSlaveRestart, 0, 0.0});
  const LoadReport report =
      RunMesosLoad(config, mesos::AllocatorPolicy::kTsf, faults);
  EXPECT_EQ(report.all.ttp_ms.count, report.placements);
  EXPECT_GE(report.placements, report.total_tasks);
  const LoadReport again =
      RunMesosLoad(config, mesos::AllocatorPolicy::kTsf, faults);
  EXPECT_EQ(report.placement_hash, again.placement_hash);
}

TEST(LoadDriver, QueueDepthTimelineIsSampledAndEndsDrained) {
  DriverConfig config = SmallConfig(2.0);
  config.queue_sample_interval = 0.5;
  const LoadReport report = RunDesLoad(config, OnlinePolicy::Tsf());
  ASSERT_FALSE(report.queue_depth.empty());
  double prev = -1.0;
  for (const QueueSample& sample : report.queue_depth) {
    EXPECT_GT(sample.time, prev);
    EXPECT_GE(sample.depth, 0);
    prev = sample.time;
  }
  EXPECT_EQ(report.queue_depth.back().depth, 0)
      << "backlog must be drained at the makespan";
}

}  // namespace
}  // namespace tsf::load
