// Tests for the slot-based scheduler substrate.
#include <gtest/gtest.h>

#include "sim/slots.h"

namespace tsf {
namespace {

Workload OneMachineWorkload(double cores, double ram, JobSpec spec,
                            double runtime) {
  Workload workload;
  workload.cluster.AddMachine(ResourceVector{cores, ram});
  workload.jobs.push_back(MakeUniformJob(std::move(spec), runtime));
  return workload;
}

TEST(SlotScheduler, SlotsPerMachineFromBindingResource) {
  // <8 cores, 8 GB> with <1 core, 2 GB> slots: RAM binds at 4 slots.
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 2.0}};
  spec.num_tasks = 4;
  const Workload workload = OneMachineWorkload(8.0, 8.0, spec, 10.0);
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult result = SimulateSlotScheduler(workload, config);
  EXPECT_DOUBLE_EQ(result.total_slots, 4.0);
  // All four tasks fit concurrently: one wave.
  EXPECT_DOUBLE_EQ(result.sim.makespan, 10.0);
}

TEST(SlotScheduler, BigTasksOccupyMultipleSlots) {
  // Task needs <2, 4>: two <1, 2> slots. Four slots -> 2 tasks at a time.
  JobSpec spec{.id = 0, .name = "big", .demand = {2.0, 4.0}};
  spec.num_tasks = 4;
  const Workload workload = OneMachineWorkload(4.0, 8.0, spec, 10.0);
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult result = SimulateSlotScheduler(workload, config);
  EXPECT_DOUBLE_EQ(result.total_slots, 4.0);
  EXPECT_DOUBLE_EQ(result.sim.makespan, 20.0);  // two waves
}

TEST(SlotScheduler, SmallTasksWasteSlotCapacity) {
  // Task demands <0.5, 1> inside a <1, 2> slot: fragmentation. The machine
  // could pack 8 such tasks multi-resource, but only 4 slots exist.
  JobSpec spec{.id = 0, .name = "small", .demand = {0.5, 1.0}};
  spec.num_tasks = 8;
  const Workload workload = OneMachineWorkload(4.0, 8.0, spec, 10.0);
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult slot_result = SimulateSlotScheduler(workload, config);
  EXPECT_DOUBLE_EQ(slot_result.sim.makespan, 20.0);  // 4 at a time, 2 waves
  EXPECT_NEAR(slot_result.mean_used_fraction, 0.5, 1e-9);

  // The multi-resource scheduler runs all 8 at once.
  const SimResult multi = Simulate(workload, OnlinePolicy::Tsf());
  EXPECT_DOUBLE_EQ(multi.makespan, 10.0);
}

TEST(SlotScheduler, HonorsConstraints) {
  Workload workload;
  workload.cluster.AddMachine(ResourceVector{4.0, 8.0});
  workload.cluster.AddMachine(ResourceVector{4.0, 8.0});
  JobSpec spec{.id = 0, .name = "pinned", .demand = {1.0, 2.0}};
  spec.num_tasks = 8;
  spec.constraint = Constraint::Whitelist({1});
  workload.jobs.push_back(MakeUniformJob(spec, 5.0));
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult result = SimulateSlotScheduler(workload, config);
  // Only machine 1's four slots usable -> two waves.
  EXPECT_DOUBLE_EQ(result.sim.makespan, 10.0);
}

TEST(SlotScheduler, FairSharesSlotsBetweenJobs) {
  Workload workload;
  workload.cluster.AddMachine(ResourceVector{4.0, 8.0});  // 4 slots
  for (UserId i = 0; i < 2; ++i) {
    JobSpec spec{.id = i, .name = "j" + std::to_string(i),
                 .demand = {1.0, 2.0}};
    spec.num_tasks = 8;
    workload.jobs.push_back(MakeUniformJob(spec, 10.0));
  }
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult result = SimulateSlotScheduler(workload, config);
  // 2 slots each per wave -> both finish after 4 waves.
  EXPECT_NEAR(result.sim.jobs[0].CompletionTime(),
              result.sim.jobs[1].CompletionTime(), 10.0 + 1e-9);
}

TEST(SlotScheduler, TaskMetricsAlignWithMultiResourceRuns) {
  Workload workload;
  workload.cluster.AddMachine(ResourceVector{2.0, 4.0});
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 2.0}};
  spec.num_tasks = 6;
  workload.jobs.push_back(MakeJitteredJob(spec, 4.0, 0.2, 5));
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult slot_result = SimulateSlotScheduler(workload, config);
  const SimResult multi = Simulate(workload, OnlinePolicy::Tsf());
  ASSERT_EQ(slot_result.sim.tasks.size(), multi.tasks.size());
  for (std::size_t t = 0; t < multi.tasks.size(); ++t) {
    EXPECT_EQ(slot_result.sim.tasks[t].job, multi.tasks[t].job);
    EXPECT_EQ(slot_result.sim.tasks[t].index, multi.tasks[t].index);
  }
}

TEST(SlotSchedulerDeathTest, SlotBiggerThanEveryMachine) {
  JobSpec spec{.id = 0, .name = "j", .demand = {1.0, 1.0}};
  spec.num_tasks = 1;
  const Workload workload = OneMachineWorkload(2.0, 2.0, spec, 1.0);
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{4.0, 4.0};
  EXPECT_DEATH(SimulateSlotScheduler(workload, config), "slot size larger");
}

TEST(SlotScheduler, TaskNeedingMoreSlotsThanAnyMachineIsDropped) {
  // A <4,8> task needs 4 <1,2>-slots, but the only machine holds 2: the
  // job is reported dropped rather than deadlocking the run.
  JobSpec wide{.id = 0, .name = "wide", .demand = {4.0, 8.0}};
  wide.num_tasks = 1;
  Workload workload = OneMachineWorkload(2.0, 4.0, wide, 1.0);
  JobSpec ok{.id = 1, .name = "ok", .demand = {1.0, 2.0}};
  ok.num_tasks = 2;
  workload.jobs.push_back(MakeUniformJob(ok, 3.0));
  SlotSchedulerConfig config;
  config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult result = SimulateSlotScheduler(workload, config);
  ASSERT_EQ(result.dropped_jobs.size(), 1u);
  EXPECT_EQ(result.dropped_jobs[0], 0u);
  EXPECT_EQ(result.sim.tasks.size(), 2u);  // only the schedulable job ran
  EXPECT_DOUBLE_EQ(result.sim.makespan, 3.0);
}

}  // namespace
}  // namespace tsf
