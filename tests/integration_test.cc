// Cross-module integration tests: full pipelines from workload synthesis
// through scheduling to metrics, and invariants that only hold when the
// pieces compose correctly.
#include <gtest/gtest.h>

#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "core/offline/weights.h"
#include "mesos/mesos.h"
#include "sim/runner.h"
#include "sim/slots.h"
#include "trace/google.h"
#include "trace/io.h"
#include "util/rng.h"

namespace tsf {
namespace {

trace::GoogleTraceConfig SmallTraceConfig(std::uint64_t seed) {
  trace::GoogleTraceConfig config;
  config.num_machines = 60;
  config.num_jobs = 150;
  config.seed = seed;
  return config;
}

TEST(Integration, SynthesizedWorkloadRunsUnderEveryPolicy) {
  const Workload workload = trace::SynthesizeGoogleWorkload(SmallTraceConfig(3));
  for (const OnlinePolicy& policy :
       {OnlinePolicy::Fifo(), OnlinePolicy::Drf(), OnlinePolicy::Cdrf(),
        OnlinePolicy::Cmmf(0, "CPU"), OnlinePolicy::Cmmf(1, "Mem"),
        OnlinePolicy::Tsf()}) {
    const SimResult result = Simulate(workload, policy);
    EXPECT_EQ(result.tasks.size(), workload.TotalTasks()) << policy.name;
    for (const JobRecord& job : result.jobs) {
      EXPECT_GE(job.QueueingDelay(), 0.0) << policy.name;
      EXPECT_GE(job.CompletionTime(), 0.0) << policy.name;
    }
    // Every task finishes at schedule + its pre-sampled runtime.
    for (const TaskRecord& task : result.tasks) {
      const double runtime =
          workload.jobs[task.job].task_runtimes[static_cast<std::size_t>(task.index)];
      EXPECT_NEAR(task.finish - task.schedule, runtime, 1e-9) << policy.name;
    }
  }
}

TEST(Integration, WorkloadSurvivesSerializationIntoSimulation) {
  // synthesize -> save -> load -> simulate must equal synthesize -> simulate
  // exactly (bit-identical schedules), proving the text format is lossless
  // for everything the scheduler reads.
  const Workload original = trace::SynthesizeGoogleWorkload(SmallTraceConfig(5));
  Workload loaded;
  std::string error;
  ASSERT_TRUE(
      trace::WorkloadFromText(trace::WorkloadToText(original), &loaded, &error))
      << error;
  const SimResult a = Simulate(original, OnlinePolicy::Tsf());
  const SimResult b = Simulate(loaded, OnlinePolicy::Tsf());
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t t = 0; t < a.tasks.size(); ++t) {
    EXPECT_EQ(a.tasks[t].job, b.tasks[t].job);
    EXPECT_NEAR(a.tasks[t].schedule, b.tasks[t].schedule, 1e-6);
    EXPECT_NEAR(a.tasks[t].finish, b.tasks[t].finish, 1e-6);
  }
}

TEST(Integration, SlotSchedulerMatchesMultiResourceWhenSlotsEqualDemand) {
  // If every job demands exactly one slot's worth, the slot scheduler and
  // the multi-resource CMMF-style scheduler see the same packing problem;
  // makespans must agree.
  Workload workload;
  for (int m = 0; m < 4; ++m)
    workload.cluster.AddMachine(ResourceVector{4.0, 8.0});
  for (UserId i = 0; i < 3; ++i) {
    JobSpec spec{.id = i, .name = "j" + std::to_string(i),
                 .demand = {1.0, 2.0}};
    spec.num_tasks = 10;
    spec.arrival_time = static_cast<double>(i);
    workload.jobs.push_back(MakeUniformJob(spec, 6.0));
  }
  SlotSchedulerConfig slot_config;
  slot_config.slot_size = ResourceVector{1.0, 2.0};
  const SlotSimResult slots = SimulateSlotScheduler(workload, slot_config);
  const SimResult multi = Simulate(workload, OnlinePolicy::Tsf());
  EXPECT_NEAR(slots.sim.makespan, multi.makespan, 6.0 + 1e-9);
  EXPECT_NEAR(slots.mean_used_fraction, 1.0, 1e-9);  // zero fragmentation
}

TEST(Integration, OfflineOnlineAgreeOnSaturatedUniformCluster) {
  // A saturated homogeneous cluster with unconstrained equal jobs: the
  // online scheduler's steady state must match the offline allocation
  // exactly (no packing friction).
  SharingProblem problem;
  for (int m = 0; m < 5; ++m)
    problem.cluster.AddMachine(ResourceVector{4.0, 4.0});
  for (UserId i = 0; i < 4; ++i)
    problem.jobs.push_back(JobSpec{.id = i, .name = "u" + std::to_string(i),
                                   .demand = {1.0, 1.0}});
  const CompiledProblem compiled = Compile(problem);
  const FillingResult offline = SolveTsf(compiled);

  Workload workload;
  workload.cluster = problem.cluster;
  for (const JobSpec& spec : problem.jobs) {
    JobSpec job = spec;
    job.num_tasks = 1000;  // saturating backlog
    workload.jobs.push_back(MakeUniformJob(job, 50.0));
  }
  const SimResult online = Simulate(workload, OnlinePolicy::Tsf());
  // At t=25 (mid first wave) every job should hold its offline share of
  // the 20 slots: 5 tasks each.
  for (UserId i = 0; i < 4; ++i) {
    long running = 0;
    for (const TaskRecord& task : online.tasks)
      if (task.job == i && task.schedule <= 25.0 && task.finish > 25.0)
        ++running;
    EXPECT_NEAR(static_cast<double>(running),
                offline.allocation.UserTasks(i), 1e-6);
  }
}

TEST(Integration, MesosAndDesAgreeOnSimpleScenario) {
  // The same two-job scenario through both substrates: identical fleets,
  // demands, runtimes (jitter off) -> identical completion times.
  std::vector<mesos::SlaveSpec> slaves;
  Workload workload;
  for (int n = 0; n < 4; ++n) {
    slaves.push_back({ResourceVector{2.0, 2048.0}, "n" + std::to_string(n)});
    workload.cluster.AddMachine(ResourceVector{2.0, 2048.0});
  }
  std::vector<mesos::FrameworkSpec> frameworks(2);
  for (UserId i = 0; i < 2; ++i) {
    frameworks[i] = {.name = "f" + std::to_string(i), .start_time = 0.0,
                     .num_tasks = 16, .demand = ResourceVector{1.0, 512.0},
                     .mean_runtime = 10.0, .runtime_jitter = 0.0};
    JobSpec spec{.id = i, .name = "f" + std::to_string(i),
                 .demand = {1.0, 512.0}};
    spec.num_tasks = 16;
    workload.jobs.push_back(MakeUniformJob(spec, 10.0));
  }
  mesos::ClusterConfig config;
  config.slaves = slaves;
  config.sample_interval = 0.0;
  const mesos::SimOutcome offers = mesos::RunCluster(config, frameworks);
  const SimResult des = Simulate(workload, OnlinePolicy::Tsf());
  for (UserId i = 0; i < 2; ++i)
    EXPECT_NEAR(offers.frameworks[i].completion_time,
                des.jobs[i].completion, 1e-6);
}

TEST(Integration, Theorem1WeightsGuaranteeHoldsOnSynthesizedInstances) {
  // End-to-end Thm. 1 on richer instances than the unit tests: random
  // pools on trace-sampled clusters.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Cluster cluster = trace::SampleGoogleCluster(6, seed);
    SharingProblem problem;
    problem.cluster = cluster;
    Rng rng(seed * 11 + 2);
    for (UserId i = 0; i < 4; ++i) {
      JobSpec job{.id = i, .name = "u" + std::to_string(i)};
      job.demand = ResourceVector(
          std::vector<double>{rng.Uniform(0.5, 2.0), rng.Uniform(0.5, 4.0)});
      problem.jobs.push_back(std::move(job));
    }
    const CompiledProblem compiled = Compile(problem);
    DedicatedPools pools;
    pools.fraction.assign(4, std::vector<double>(6, 0.0));
    for (MachineId m = 0; m < 6; ++m) {
      std::vector<double> cuts(4);
      double total = 0;
      for (auto& c : cuts) total += (c = rng.Uniform(0.1, 1.0));
      for (UserId i = 0; i < 4; ++i) pools.fraction[i][m] = cuts[i] / total;
    }
    const CompiledProblem weighted =
        WithWeights(compiled, Theorem1Weights(compiled, pools));
    const FillingResult result = SolveTsf(weighted);
    for (UserId i = 0; i < 4; ++i) {
      const double k = DedicatedPoolTasks(compiled, i, pools.fraction[i]);
      EXPECT_GE(result.allocation.UserTasks(i), k - 1e-4)
          << "seed " << seed << " user " << i;
    }
  }
}

TEST(Integration, MultiSeedRunnerMatchesDirectSimulation) {
  // RunSeeds must produce exactly what a direct Simulate of the same
  // factory output produces.
  ThreadPool pool(2);
  const WorkloadFactory factory = [](std::uint64_t seed) {
    return trace::SynthesizeGoogleWorkload(SmallTraceConfig(seed));
  };
  RunSeeds(factory, {OnlinePolicy::Tsf()}, 7, 2, pool,
           [&](std::uint64_t seed, const std::vector<SimResult>& results) {
             const SimResult direct =
                 Simulate(factory(seed), OnlinePolicy::Tsf());
             ASSERT_EQ(results[0].tasks.size(), direct.tasks.size());
             EXPECT_DOUBLE_EQ(results[0].makespan, direct.makespan);
           });
}

}  // namespace
}  // namespace tsf
