// Property-based tests: TSF's theorems must hold on randomized instances,
// not just the paper's worked examples. Parameterized over seeds; each seed
// generates a random cluster + job set and checks one theorem family.
#include <gtest/gtest.h>

#include "core/offline/multiclass.h"
#include "core/offline/policies.h"
#include "core/offline/properties.h"
#include "util/rng.h"

namespace tsf {
namespace {

// Random instance small enough for exact LP solving but rich enough to
// exercise heterogeneity: 2–4 machines, 1–3 resources, 2–5 users, random
// eligibility and demands, occasionally non-unit weights.
SharingProblem RandomProblem(std::uint64_t seed, bool random_weights) {
  Rng rng(seed);
  SharingProblem problem;
  const auto machines = static_cast<std::size_t>(rng.Int(2, 4));
  const auto resources = static_cast<std::size_t>(rng.Int(1, 3));
  for (std::size_t m = 0; m < machines; ++m) {
    ResourceVector capacity(resources);
    for (std::size_t r = 0; r < resources; ++r)
      capacity[r] = rng.Uniform(2.0, 20.0);
    problem.cluster.AddMachine(std::move(capacity));
  }
  const auto users = static_cast<std::size_t>(rng.Int(2, 5));
  for (UserId i = 0; i < users; ++i) {
    JobSpec job;
    job.id = i;
    job.name = "u" + std::to_string(i);
    ResourceVector demand(resources);
    // Every user demands a positive amount of every resource so CMMF
    // comparisons stay well-defined.
    for (std::size_t r = 0; r < resources; ++r)
      demand[r] = rng.Uniform(0.2, 4.0);
    job.demand = std::move(demand);
    if (random_weights) job.weight = rng.Uniform(0.5, 3.0);
    // Random eligibility: each machine allowed with p=0.6; force at least
    // one machine.
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.6)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines)
      job.constraint = Constraint::Whitelist(allowed);
    problem.jobs.push_back(std::move(job));
  }
  return problem;
}

class TsfRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TsfRandomized, AllocationIsFeasible) {
  const CompiledProblem problem = Compile(RandomProblem(GetParam(), true));
  const FillingResult result = SolveTsf(problem);
  std::string error;
  EXPECT_TRUE(result.allocation.IsFeasible(problem, &error)) << error;
}

TEST_P(TsfRandomized, AllocationIsParetoOptimal) {
  const CompiledProblem problem = Compile(RandomProblem(GetParam(), true));
  const FillingResult result = SolveTsf(problem);
  const auto violation = FindParetoImprovement(problem, result.allocation, 1e-4);
  EXPECT_FALSE(violation.has_value())
      << "user " << violation->user << " could go from "
      << violation->current_tasks << " to " << violation->achievable_tasks;
}

TEST_P(TsfRandomized, AllocationIsEnvyFree) {
  const CompiledProblem problem = Compile(RandomProblem(GetParam(), true));
  const FillingResult result = SolveTsf(problem);
  const auto violation = FindEnvy(problem, result.allocation, 1e-4);
  EXPECT_FALSE(violation.has_value())
      << "user " << violation->envious << " envies " << violation->envied
      << " (" << violation->own_tasks << " vs " << violation->exchanged_tasks
      << ")";
}

TEST_P(TsfRandomized, SharingIncentiveUnderEqualPartition) {
  const CompiledProblem problem = Compile(RandomProblem(GetParam(), false));
  const auto pools = EqualPartition(problem.num_users, problem.num_machines);
  const auto report = CheckSharingIncentive(
      problem, pools, [](const CompiledProblem& p) { return SolveTsf(p); },
      /*theorem1_weights=*/true, 1e-4);
  EXPECT_TRUE(report.satisfied)
      << "user " << report.violator << " ran "
      << report.shared_tasks[report.violator] << " < dedicated "
      << report.dedicated_tasks[report.violator];
}

TEST_P(TsfRandomized, SharingIncentiveUnderRandomDisjointPools) {
  // Theorem 1 promises SI for *arbitrary* pools — test random disjoint
  // machine-fraction splits, not just equal partition.
  Rng rng(GetParam() * 7919 + 13);
  const CompiledProblem problem = Compile(RandomProblem(GetParam(), false));
  DedicatedPools pools;
  pools.fraction.assign(problem.num_users,
                        std::vector<double>(problem.num_machines, 0.0));
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    // Random simplex split of machine m across users.
    std::vector<double> cuts(problem.num_users);
    double total = 0;
    for (auto& c : cuts) total += (c = rng.Uniform(0.05, 1.0));
    for (UserId i = 0; i < problem.num_users; ++i)
      pools.fraction[i][m] = cuts[i] / total;
  }
  // Thm. 1 requires k_i > 0; the floor of 0.05 above plus every user having
  // at least one eligible machine guarantees it.
  const auto report = CheckSharingIncentive(
      problem, pools, [](const CompiledProblem& p) { return SolveTsf(p); },
      /*theorem1_weights=*/true, 1e-4);
  EXPECT_TRUE(report.satisfied)
      << "user " << report.violator << " ran "
      << report.shared_tasks[report.violator] << " < dedicated "
      << report.dedicated_tasks[report.violator];
}

TEST_P(TsfRandomized, StrategyProofAgainstRandomLies) {
  Rng rng(GetParam() * 104729 + 7);
  const CompiledProblem problem = Compile(RandomProblem(GetParam(), true));
  const OfflineSolver solver = [](const CompiledProblem& p) {
    return SolveTsf(p);
  };
  // Probe two random lies per user: a demand rescale and an eligibility
  // rewrite.
  for (UserId liar = 0; liar < problem.num_users; ++liar) {
    {
      Lie lie;
      ResourceVector claimed = problem.demand[liar];
      for (std::size_t r = 0; r < claimed.dimension(); ++r)
        claimed[r] *= rng.Uniform(0.5, 2.0);
      lie.demand = claimed;
      const auto outcome = ProbeManipulation(problem, liar, lie, solver);
      EXPECT_LE(outcome.lying_tasks, outcome.truthful_tasks + 1e-4)
          << "demand lie profitable for user " << liar;
    }
    {
      Lie lie;
      DynamicBitset claimed(problem.num_machines);
      for (MachineId m = 0; m < problem.num_machines; ++m)
        if (rng.Chance(0.7)) claimed.Set(m);
      // Keep at least one *truly eligible* machine claimed so the lie does
      // not amount to self-exclusion from the cluster.
      const std::size_t keep = problem.eligible[liar].FindFirst();
      claimed.Set(keep);
      lie.eligible = claimed;
      const auto outcome = ProbeManipulation(problem, liar, lie, solver);
      EXPECT_LE(outcome.lying_tasks, outcome.truthful_tasks + 1e-4)
          << "constraint lie profitable for user " << liar;
    }
  }
}

TEST_P(TsfRandomized, ReducesToDrfOnSingleMachine) {
  Rng rng(GetParam() * 31 + 1);
  SharingProblem problem;
  const auto resources = static_cast<std::size_t>(rng.Int(2, 4));
  ResourceVector capacity(resources);
  for (std::size_t r = 0; r < resources; ++r) capacity[r] = rng.Uniform(4.0, 20.0);
  problem.cluster.AddMachine(std::move(capacity));
  const auto users = static_cast<std::size_t>(rng.Int(2, 5));
  for (UserId i = 0; i < users; ++i) {
    JobSpec job{.id = i, .name = "u" + std::to_string(i)};
    ResourceVector demand(resources);
    for (std::size_t r = 0; r < resources; ++r) demand[r] = rng.Uniform(0.1, 3.0);
    job.demand = std::move(demand);
    job.weight = rng.Uniform(0.5, 2.0);
    problem.jobs.push_back(std::move(job));
  }
  const CompiledProblem compiled = Compile(problem);
  EXPECT_TRUE(MatchesSingleMachineDrf(compiled, SolveTsf(compiled)));
}

TEST_P(TsfRandomized, ReducesToCmmfOnSingleResource) {
  Rng rng(GetParam() * 53 + 2);
  SharingProblem problem;
  const auto machines = static_cast<std::size_t>(rng.Int(2, 4));
  for (std::size_t m = 0; m < machines; ++m)
    problem.cluster.AddMachine(ResourceVector{rng.Uniform(2.0, 12.0)});
  const auto users = static_cast<std::size_t>(rng.Int(2, 5));
  for (UserId i = 0; i < users; ++i) {
    JobSpec job{.id = i, .name = "u" + std::to_string(i),
                .demand = ResourceVector{rng.Uniform(0.2, 2.0)}};
    std::vector<MachineId> allowed;
    for (MachineId m = 0; m < machines; ++m)
      if (rng.Chance(0.6)) allowed.push_back(m);
    if (allowed.empty()) allowed.push_back(rng.Below(machines));
    if (allowed.size() < machines)
      job.constraint = Constraint::Whitelist(allowed);
    problem.jobs.push_back(std::move(job));
  }
  const CompiledProblem compiled = Compile(problem);
  EXPECT_TRUE(MatchesSingleResourceCmmf(compiled, SolveTsf(compiled)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TsfRandomized,
                         ::testing::Range<std::uint64_t>(1, 31));

// Baseline sanity: random CDRF / DRFH / per-machine-DRF allocations are
// feasible (their *fairness* failures are covered by the pinned
// counterexample tests and the Table I bench).
class BaselineRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineRandomized, AllPoliciesProduceFeasibleAllocations) {
  const CompiledProblem problem = Compile(RandomProblem(GetParam() + 500, true));
  for (const OfflinePolicy policy :
       {OfflinePolicy::kCdrf, OfflinePolicy::kDrfh,
        OfflinePolicy::kPerMachineDrf, OfflinePolicy::kCmmf}) {
    const FillingResult result = SolveOffline(policy, problem, 0);
    std::string error;
    EXPECT_TRUE(result.allocation.IsFeasible(problem, &error))
        << ToString(policy) << ": " << error;
  }
}

TEST_P(BaselineRandomized, CdrfAndDrfhAreParetoOptimal) {
  // Table I claims PO for DRFH and CDRF; verify on random instances.
  const CompiledProblem problem = Compile(RandomProblem(GetParam() + 900, true));
  for (const OfflinePolicy policy : {OfflinePolicy::kCdrf, OfflinePolicy::kDrfh}) {
    const FillingResult result = SolveOffline(policy, problem, 0);
    EXPECT_FALSE(
        FindParetoImprovement(problem, result.allocation, 1e-4).has_value())
        << ToString(policy);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineRandomized,
                         ::testing::Range<std::uint64_t>(1, 16));

// --- weighted multi-class instances (Sec. VII extension) --------------------

// Random weighted multi-class instance built on the same cluster shapes as
// RandomProblem: every user gets 1-3 task classes with random demands and a
// random strictly-positive mix.
MultiClassProblem RandomMultiClassProblem(std::uint64_t seed) {
  Rng rng(seed * 2654435761 + 17);
  const SharingProblem base = RandomProblem(seed, /*random_weights=*/true);
  MultiClassProblem problem;
  problem.cluster = base.cluster;
  const std::size_t resources = base.cluster.num_resources();
  for (const JobSpec& job : base.jobs) {
    MultiClassJobSpec user;
    user.name = job.name;
    user.weight = job.weight;
    user.constraint = job.constraint;
    const auto classes = static_cast<std::size_t>(rng.Int(1, 3));
    double mix_total = 0.0;
    std::vector<double> mix(classes);
    for (std::size_t c = 0; c < classes; ++c) {
      ResourceVector demand(resources);
      for (std::size_t r = 0; r < resources; ++r)
        demand[r] = rng.Uniform(0.2, 4.0);
      user.class_demand.push_back(std::move(demand));
      mix_total += (mix[c] = rng.Uniform(0.2, 1.0));
    }
    for (double& m : mix) m /= mix_total;
    user.class_mix = std::move(mix);
    problem.users.push_back(std::move(user));
  }
  return problem;
}

class MultiClassRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiClassRandomized, AllocationIsFeasibleAndMixEnforced) {
  const CompiledMultiClass problem =
      CompileMultiClass(RandomMultiClassProblem(GetParam()));
  const MultiClassResult result = SolveMultiClassTsf(problem);
  // Feasibility: per-machine usage within (normalized) capacity, tasks only
  // on eligible machines, all task counts non-negative.
  for (MachineId m = 0; m < problem.num_machines; ++m) {
    ResourceVector used(problem.num_resources);
    for (UserId i = 0; i < problem.num_users; ++i)
      for (std::size_t c = 0; c < problem.demand[i].size(); ++c) {
        const double tasks = result.allocation.tasks[i][c][m];
        EXPECT_GE(tasks, -1e-6);
        if (tasks > 1e-9) {
          EXPECT_TRUE(problem.eligible[i].Test(m))
              << "user " << i << " placed on ineligible machine " << m;
        }
        used += tasks * problem.demand[i][c];
      }
    EXPECT_TRUE(problem.machine_capacity[m].Fits(used, 1e-4))
        << "machine " << m << " oversubscribed: " << used.ToString();
  }
  // Mix invariant and the share definition s_i = n_i / (H_i w_i).
  for (UserId i = 0; i < problem.num_users; ++i) {
    const double total = result.allocation.UserTasks(i);
    for (std::size_t c = 0; c < problem.mix[i].size(); ++c)
      EXPECT_NEAR(result.allocation.ClassTasks(i, c),
                  problem.mix[i][c] * total, 1e-4);
    EXPECT_NEAR(result.shares[i], total / (problem.H[i] * problem.weight[i]),
                1e-6);
  }
}

TEST_P(MultiClassRandomized, SingleClassInstancesMatchStandardTsf) {
  // A weighted multi-class instance with one class per user is the plain
  // weighted TSF problem; both solvers must agree on every share.
  const SharingProblem base = RandomProblem(GetParam(), /*random_weights=*/true);
  MultiClassProblem wrapped;
  wrapped.cluster = base.cluster;
  for (const JobSpec& job : base.jobs) {
    MultiClassJobSpec user;
    user.name = job.name;
    user.weight = job.weight;
    user.constraint = job.constraint;
    user.class_demand = {job.demand};
    user.class_mix = {1.0};
    wrapped.users.push_back(std::move(user));
  }
  const MultiClassResult multi =
      SolveMultiClassTsf(CompileMultiClass(wrapped));
  const FillingResult single = SolveTsf(Compile(base));
  ASSERT_EQ(multi.shares.size(), single.shares.size());
  for (std::size_t i = 0; i < multi.shares.size(); ++i)
    EXPECT_NEAR(multi.shares[i], single.shares[i], 1e-4) << "user " << i;
}

TEST_P(MultiClassRandomized, HigherWeightCloneRunsNoFewerTasks) {
  // Two identical users (same classes, mix, constraint) with weights
  // w_hi >= w_lo: weighted max-min fairness over n_i / (H_i w_i) must give
  // the heavier clone at least as many tasks.
  Rng rng(GetParam() * 6364136223846793005ull + 3);
  MultiClassProblem problem = RandomMultiClassProblem(GetParam());
  MultiClassJobSpec clone = problem.users.front();
  clone.name += "-clone";
  MultiClassJobSpec& original = problem.users.front();
  original.weight = rng.Uniform(0.5, 1.5);
  clone.weight = original.weight + rng.Uniform(0.5, 2.0);
  problem.users.push_back(clone);
  const CompiledMultiClass compiled = CompileMultiClass(problem);
  const MultiClassResult result = SolveMultiClassTsf(compiled);
  const UserId lo = 0, hi = compiled.num_users - 1;
  EXPECT_GE(result.allocation.UserTasks(hi),
            result.allocation.UserTasks(lo) - 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiClassRandomized,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace tsf
