// Tests for the Google-trace-like workload synthesizer: the generated
// aggregates must match the distributions the paper publishes in Fig. 8.
#include <gtest/gtest.h>

#include <algorithm>

#include "trace/google.h"

namespace tsf::trace {
namespace {

TEST(GoogleCluster, MachineShapesComeFromThePlatformMenu) {
  const Cluster cluster = SampleGoogleCluster(500, 3);
  ASSERT_EQ(cluster.num_machines(), 500u);
  const std::vector<std::pair<double, double>> menu = {
      {8, 16}, {8, 8},   {16, 16}, {8, 32}, {16, 32},
      {4, 16}, {16, 64}, {32, 32}, {4, 4},  {2, 8}};
  for (const Machine& machine : cluster.machines()) {
    const std::pair<double, double> shape{machine.capacity[0],
                                          machine.capacity[1]};
    EXPECT_NE(std::find(menu.begin(), menu.end(), shape), menu.end())
        << machine.capacity.ToString();
  }
}

TEST(GoogleCluster, EveryMachineHasExactlyOneClass) {
  const Cluster cluster = SampleGoogleCluster(300, 11);
  for (const Machine& machine : cluster.machines()) {
    int classes = 0;
    for (std::size_t c = 0; c < kNumMachineClasses; ++c)
      classes += machine.attributes.Contains(
          static_cast<AttributeId>(kNumAttributes + c));
    EXPECT_EQ(classes, 1);
  }
}

TEST(GoogleCluster, DeterministicInSeed) {
  const Cluster a = SampleGoogleCluster(100, 5);
  const Cluster b = SampleGoogleCluster(100, 5);
  for (std::size_t m = 0; m < 100; ++m) {
    EXPECT_EQ(a.machine(m).capacity, b.machine(m).capacity);
    EXPECT_EQ(a.machine(m).attributes.ids(), b.machine(m).attributes.ids());
  }
}

class GoogleWorkloadTest : public ::testing::Test {
 protected:
  static const Workload& Load() {
    static const Workload workload = [] {
      GoogleTraceConfig config;
      config.num_machines = 1000;
      config.num_jobs = 4500;
      config.seed = 42;
      return SynthesizeGoogleWorkload(config);
    }();
    return workload;
  }
};

TEST_F(GoogleWorkloadTest, JobCountAndSorting) {
  const Workload& workload = Load();
  ASSERT_EQ(workload.jobs.size(), 4500u);
  for (std::size_t j = 1; j < workload.jobs.size(); ++j)
    EXPECT_LE(workload.jobs[j - 1].spec.arrival_time,
              workload.jobs[j].spec.arrival_time);
}

TEST_F(GoogleWorkloadTest, TotalTasksNearPaperScale) {
  // The paper's sample: ~180k tasks. Accept a generous band — the tail is
  // heavy — but fail on order-of-magnitude drift.
  const std::size_t total = Load().TotalTasks();
  EXPECT_GE(total, 120000u);
  EXPECT_LE(total, 300000u);
}

TEST_F(GoogleWorkloadTest, JobSizeDistributionMatchesFig8b) {
  const Workload& workload = Load();
  std::size_t singles = 0, small = 0;
  long max_size = 0;
  for (const SimJob& job : workload.jobs) {
    singles += job.spec.num_tasks == 1;
    small += job.spec.num_tasks <= 10;
    max_size = std::max(max_size, job.spec.num_tasks);
  }
  const double n = static_cast<double>(workload.jobs.size());
  EXPECT_GT(singles / n, 0.57);  // paper: >60 % single-task
  EXPECT_LT(singles / n, 0.68);
  EXPECT_GT(small / n, 0.80);    // paper: small jobs are 86 % of population
  EXPECT_LT(small / n, 0.92);
  EXPECT_GT(max_size, 2000);     // a heavy tail exists
  EXPECT_LE(max_size, 20000);    // paper: biggest job ~20k tasks
}

TEST_F(GoogleWorkloadTest, ConstraintDistributionMatchesFig8a) {
  const Workload& workload = Load();
  const std::size_t machines = workload.cluster.num_machines();
  std::size_t runs_everywhere = 0, runs_on_fifth = 0;
  for (const SimJob& job : workload.jobs) {
    const std::size_t eligible =
        workload.cluster.Eligibility(job.spec.constraint).Count();
    ASSERT_GT(eligible, 0u);
    runs_everywhere += eligible == machines;
    runs_on_fifth += eligible <= machines / 5;
  }
  const double n = static_cast<double>(workload.jobs.size());
  // Fig. 8a: fewer than 20% of jobs can run on all machines; about half can
  // run on at most 200 of 1000.
  EXPECT_LT(runs_everywhere / n, 0.20);
  EXPECT_GT(runs_everywhere / n, 0.08);
  EXPECT_GT(runs_on_fifth / n, 0.38);
  EXPECT_LT(runs_on_fifth / n, 0.62);
}

TEST_F(GoogleWorkloadTest, DemandsAreCpuIntensive) {
  // In machine-normalized terms CPU should dominate for most jobs (the
  // paper relies on this: CMMF-CPU ≈ DRF in Fig. 11).
  const Workload& workload = Load();
  std::size_t cpu_dominant = 0;
  for (const SimJob& job : workload.jobs) {
    const ResourceVector d =
        workload.cluster.NormalizedDemand(job.spec.demand);
    cpu_dominant += d[0] >= d[1];
  }
  EXPECT_GT(static_cast<double>(cpu_dominant) /
                static_cast<double>(workload.jobs.size()),
            0.6);
}

TEST_F(GoogleWorkloadTest, RuntimesWithinClampAndJitterBand) {
  const Workload& workload = Load();
  for (const SimJob& job : workload.jobs) {
    ASSERT_EQ(job.task_runtimes.size(),
              static_cast<std::size_t>(job.spec.num_tasks));
    for (const double r : job.task_runtimes) {
      EXPECT_GE(r, 10.0 * 0.8 - 1e-9);
      EXPECT_LE(r, 3600.0 * 1.2 + 1e-9);
      EXPECT_GE(r, job.spec.mean_task_runtime * 0.8 - 1e-9);
      EXPECT_LE(r, job.spec.mean_task_runtime * 1.2 + 1e-9);
    }
  }
}

TEST(GoogleWorkload, DeterministicInSeed) {
  GoogleTraceConfig config;
  config.num_machines = 50;
  config.num_jobs = 100;
  config.seed = 9;
  const Workload a = SynthesizeGoogleWorkload(config);
  const Workload b = SynthesizeGoogleWorkload(config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t j = 0; j < a.jobs.size(); ++j) {
    EXPECT_EQ(a.jobs[j].spec.num_tasks, b.jobs[j].spec.num_tasks);
    EXPECT_EQ(a.jobs[j].spec.demand, b.jobs[j].spec.demand);
    EXPECT_EQ(a.jobs[j].task_runtimes, b.jobs[j].task_runtimes);
  }
}

TEST(GoogleWorkload, SeedsProduceDifferentWorkloads) {
  GoogleTraceConfig config;
  config.num_machines = 50;
  config.num_jobs = 200;
  config.seed = 1;
  const Workload a = SynthesizeGoogleWorkload(config);
  config.seed = 2;
  const Workload b = SynthesizeGoogleWorkload(config);
  EXPECT_NE(a.TotalTasks(), b.TotalTasks());
}

TEST(GoogleWorkload, TightnessZeroDisablesConstraints) {
  GoogleTraceConfig config;
  config.num_machines = 100;
  config.num_jobs = 300;
  config.constraint_tightness = 0.0;
  config.seed = 4;
  const Workload workload = SynthesizeGoogleWorkload(config);
  for (const SimJob& job : workload.jobs)
    EXPECT_EQ(job.spec.constraint.kind(), Constraint::Kind::kNone);
}

TEST(GoogleWorkload, TightnessAboveOneShrinksEligibility) {
  GoogleTraceConfig base;
  base.num_machines = 200;
  base.num_jobs = 500;
  base.seed = 6;
  GoogleTraceConfig tight = base;
  tight.constraint_tightness = 1.8;
  const Workload loose_load = SynthesizeGoogleWorkload(base);
  const Workload tight_load = SynthesizeGoogleWorkload(tight);
  auto mean_eligible = [](const Workload& workload) {
    double sum = 0;
    for (const SimJob& job : workload.jobs)
      sum += static_cast<double>(
          workload.cluster.Eligibility(job.spec.constraint).Count());
    return sum / static_cast<double>(workload.jobs.size());
  };
  EXPECT_LT(mean_eligible(tight_load), mean_eligible(loose_load));
}

TEST(GoogleWorkload, JobSizeScaleShrinksLoad) {
  GoogleTraceConfig base;
  base.num_machines = 50;
  base.num_jobs = 400;
  base.seed = 8;
  GoogleTraceConfig scaled = base;
  scaled.job_size_scale = 0.25;
  const std::size_t full = SynthesizeGoogleWorkload(base).TotalTasks();
  const std::size_t quarter = SynthesizeGoogleWorkload(scaled).TotalTasks();
  EXPECT_LT(quarter, full / 2);
  EXPECT_GE(quarter, 400u);  // every job keeps at least one task
}

}  // namespace
}  // namespace tsf::trace
