// Unit tests for src/stats: summaries, CDFs, table printing.
#include <gtest/gtest.h>

#include "stats/cdf.h"
#include "stats/summary.h"
#include "stats/table.h"

namespace tsf {
namespace {

TEST(Summary, BasicMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Summary, EmptyIsZeroed) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Summary, MergeEqualsSequential) {
  Summary all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i * i - 3.0 * i;
    all.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a, empty;
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.Merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(EmpiricalCdf, QuantilesOfKnownData) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.Add(i);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(1.0), 100.0);
  EXPECT_NEAR(cdf.Quantile(0.5), 50.0, 1.0);
  EXPECT_NEAR(cdf.Quantile(0.9), 90.0, 1.0);
}

TEST(EmpiricalCdf, FractionBelow) {
  EmpiricalCdf cdf;
  cdf.AddAll({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(2.0), 0.5);  // <= is inclusive
  EXPECT_DOUBLE_EQ(cdf.FractionBelow(10.0), 1.0);
}

TEST(EmpiricalCdf, SeriesIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.Add((i * 7919) % 101);
  const auto series = cdf.Series(21);
  ASSERT_EQ(series.size(), 21u);
  for (std::size_t k = 1; k < series.size(); ++k) {
    EXPECT_GE(series[k].first, series[k - 1].first);
    EXPECT_GT(series[k].second, series[k - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.front().second, 0.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
}

TEST(EmpiricalCdf, InterleavedAddAndQuery) {
  EmpiricalCdf cdf;
  cdf.Add(5.0);
  EXPECT_DOUBLE_EQ(cdf.Quantile(0.5), 5.0);
  cdf.Add(1.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(cdf.Min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.Max(), 5.0);
  EXPECT_DOUBLE_EQ(cdf.Mean(), 3.0);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"policy", "tasks"});
  table.AddRow({"TSF", "10"});
  table.AddRow({"CDRF", "4"});
  const std::string out = table.Format();
  EXPECT_NE(out.find("policy"), std::string::npos);
  EXPECT_NE(out.find("TSF"), std::string::npos);
  // Numbers right-aligned: "10" and " 4" end at the same column.
  const auto line_tsf = out.find("TSF");
  const auto nl_tsf = out.find('\n', line_tsf);
  const auto line_cdrf = out.find("CDRF");
  const auto nl_cdrf = out.find('\n', line_cdrf);
  EXPECT_EQ(nl_tsf - line_tsf, nl_cdrf - line_cdrf);
}

TEST(TextTable, NumAndPercentFormat) {
  EXPECT_EQ(TextTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Percent(0.6, 0), "60%");
}

TEST(TextTableDeathTest, RowWidthMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "check failed");
}

}  // namespace
}  // namespace tsf
