// Differential tests for the equivalence-class (collapsed) cluster engine:
// the collapsed OnlineScheduler must emit placement streams bit-identical
// to the legacy flat path and to the ReferenceScheduler, across every
// policy, under fault injection (machine crashes and restores landing
// inside populated classes), and on trace-profile workloads. Any deviation
// is reported at the first diverging event, not as a bare hash mismatch.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/scenario.h"
#include "core/cluster.h"
#include "sim/des.h"
#include "trace/google.h"

namespace tsf::chaos {
namespace {

// First-divergence comparison of two checked scenario runs.
void ExpectSameStream(const ScenarioReport& flat,
                      const ScenarioReport& collapsed,
                      const std::string& label) {
  const std::size_t n = std::min(flat.stream.size(), collapsed.stream.size());
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_EQ(FormatStreamEvent(flat.stream[i]),
              FormatStreamEvent(collapsed.stream[i]))
        << label << ": first divergence at event #" << i << " of "
        << flat.stream.size();
  EXPECT_EQ(flat.stream.size(), collapsed.stream.size())
      << label << ": streams agree on the first " << n
      << " events but lengths differ";
  EXPECT_EQ(flat.stream_hash, collapsed.stream_hash) << label;
}

// The core contract: collapsed == flat for all six policies, across seeds,
// with fault plans whose crash/restore events hit machines in populated
// equivalence classes (RandomUniformChaosWorkload guarantees multi-member
// classes; whitelisted jobs split them).
TEST(EquivalenceClassTest, CollapsedMatchesFlatAcrossPoliciesSeedsAndFaults) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const DesScenario scenario = RandomUniformDesScenario(seed);
    // The generator must actually produce collapsible clusters, or this
    // test exercises nothing.
    ASSERT_LT(MachineClassIndex::CountClasses(scenario.workload.cluster),
              scenario.workload.cluster.num_machines())
        << "seed " << seed << " produced an uncollapsible cluster";
    for (const OnlinePolicy& policy : AllOnlinePolicies()) {
      std::ostringstream label;
      label << policy.name << " seed=" << seed;
      const ScenarioReport flat =
          RunDesScenario(scenario.workload, policy, scenario.plan,
                         SimCore::kIncremental, ClusterMode::kFlat);
      const ScenarioReport collapsed =
          RunDesScenario(scenario.workload, policy, scenario.plan,
                         SimCore::kIncremental, ClusterMode::kCollapsed);
      EXPECT_TRUE(flat.ok())
          << label.str() << " (flat): " << ToString(flat.violations.front());
      EXPECT_TRUE(collapsed.ok()) << label.str() << " (collapsed): "
                                  << ToString(collapsed.violations.front());
      ExpectSameStream(flat, collapsed, label.str());
    }
  }
}

// The collapsed production core must also match the retained linear-scan
// ReferenceScheduler (always flat — it is the executable spec).
TEST(EquivalenceClassTest, CollapsedMatchesReferenceScheduler) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const DesScenario scenario = RandomUniformDesScenario(seed);
    for (const OnlinePolicy& policy : AllOnlinePolicies()) {
      std::ostringstream label;
      label << policy.name << " seed=" << seed << " (vs reference)";
      const ScenarioReport reference =
          RunDesScenario(scenario.workload, policy, scenario.plan,
                         SimCore::kReference, ClusterMode::kFlat);
      const ScenarioReport collapsed =
          RunDesScenario(scenario.workload, policy, scenario.plan,
                         SimCore::kIncremental, ClusterMode::kCollapsed);
      EXPECT_TRUE(reference.ok()) << label.str() << ": "
                                  << ToString(reference.violations.front());
      ExpectSameStream(reference, collapsed, label.str());
    }
  }
}

// kAuto must agree with both forced modes (it only picks between them).
TEST(EquivalenceClassTest, AutoModeMatchesForcedModes) {
  const DesScenario scenario = RandomUniformDesScenario(11);
  const OnlinePolicy policy = OnlinePolicy::Tsf();
  const ScenarioReport auto_mode =
      RunDesScenario(scenario.workload, policy, scenario.plan,
                     SimCore::kIncremental, ClusterMode::kAuto);
  const ScenarioReport flat =
      RunDesScenario(scenario.workload, policy, scenario.plan,
                     SimCore::kIncremental, ClusterMode::kFlat);
  EXPECT_TRUE(auto_mode.ok());
  ExpectSameStream(flat, auto_mode, "kAuto vs kFlat");
}

// Trace-profile workloads (GoogleTraceConfig::num_attribute_profiles) are
// the trace-scale shape bench_scale runs: many machines per class, jobs
// with attribute constraints. Raw simulator streams must be identical and
// the derived task records must agree task-for-task.
TEST(EquivalenceClassTest, TraceProfileWorkloadCollapsedMatchesFlat) {
  trace::GoogleTraceConfig config;
  config.num_machines = 80;
  config.num_jobs = 60;
  config.num_attribute_profiles = 2;
  config.seed = 7;
  const Workload workload = trace::SynthesizeGoogleWorkload(config);
  ASSERT_LE(2 * MachineClassIndex::CountClasses(workload.cluster),
            workload.cluster.num_machines())
      << "profile menu failed to collapse the fleet";

  auto run = [&](ClusterMode mode, std::vector<SimStreamEvent>* stream) {
    SimOptions options;
    options.cluster_mode = mode;
    options.stream = stream;
    return Simulate(workload, OnlinePolicy::Tsf(), SimCore::kIncremental,
                    options);
  };
  std::vector<SimStreamEvent> flat_stream, collapsed_stream;
  const SimResult flat = run(ClusterMode::kFlat, &flat_stream);
  const SimResult collapsed = run(ClusterMode::kCollapsed, &collapsed_stream);

  EXPECT_EQ(flat.makespan, collapsed.makespan);
  ASSERT_EQ(flat_stream.size(), collapsed_stream.size());
  for (std::size_t i = 0; i < flat_stream.size(); ++i) {
    const SimStreamEvent& a = flat_stream[i];
    const SimStreamEvent& b = collapsed_stream[i];
    ASSERT_TRUE(a.time == b.time && a.kind == b.kind && a.job == b.job &&
                a.task == b.task && a.machine == b.machine &&
                a.attempt == b.attempt)
        << "first divergence at event #" << i;
  }
  ASSERT_EQ(flat.tasks.size(), collapsed.tasks.size());
  for (std::size_t t = 0; t < flat.tasks.size(); ++t) {
    EXPECT_EQ(flat.tasks[t].machine, collapsed.tasks[t].machine) << "task " << t;
    EXPECT_EQ(flat.tasks[t].schedule, collapsed.tasks[t].schedule) << "task " << t;
    EXPECT_EQ(flat.tasks[t].finish, collapsed.tasks[t].finish) << "task " << t;
  }
}

// A hand-built crash/restore pair inside a populated class: 6 machines in
// 2 classes; a member of the loaded class goes down mid-flight (killing
// in-flight tasks) and comes back. The class upper bound goes stale-high
// during the outage — streams must still match exactly.
TEST(EquivalenceClassTest, CrashAndRestoreInsidePopulatedClass) {
  Workload workload;
  for (int m = 0; m < 4; ++m)
    workload.cluster.AddMachine(
        ResourceVector(std::vector<double>{4.0, 4.0}),
        AttributeSet(std::vector<AttributeId>{0}));
  for (int m = 0; m < 2; ++m)
    workload.cluster.AddMachine(
        ResourceVector(std::vector<double>{8.0, 2.0}),
        AttributeSet(std::vector<AttributeId>{1}));
  for (UserId i = 0; i < 3; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.name = "j" + std::to_string(i);
    spec.demand = ResourceVector(std::vector<double>{1.0, 0.5 + 0.5 * i});
    spec.arrival_time = static_cast<double>(i);
    spec.num_tasks = 12;
    if (i == 1)
      spec.constraint =
          Constraint::RequireAttributes(AttributeSet(std::vector<AttributeId>{0}));
    workload.jobs.push_back(MakeJitteredJob(std::move(spec), 10.0, 0.2, 17 + i));
  }

  FaultPlan plan;
  plan.events.push_back({5.0, FaultKind::kMachineCrash, 1, 0.0});
  plan.events.push_back({7.0, FaultKind::kTaskFailure, 2, 0.0});
  plan.events.push_back({12.0, FaultKind::kMachineRestart, 1, 0.0});

  for (const OnlinePolicy& policy : AllOnlinePolicies()) {
    const ScenarioReport flat = RunDesScenario(
        workload, policy, plan, SimCore::kIncremental, ClusterMode::kFlat);
    const ScenarioReport collapsed = RunDesScenario(
        workload, policy, plan, SimCore::kIncremental, ClusterMode::kCollapsed);
    EXPECT_TRUE(collapsed.ok())
        << policy.name << ": " << ToString(collapsed.violations.front());
    ExpectSameStream(flat, collapsed, policy.name);
  }
}

// The Mesos substrate has its own master/allocator and never collapses;
// this PR must leave it fully deterministic and invariant-clean.
TEST(EquivalenceClassTest, MesosSubstrateStaysDeterministic) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const MesosScenario scenario = RandomMesosScenario(seed);
    const ScenarioReport first = RunMesosScenario(scenario);
    const ScenarioReport second = RunMesosScenario(scenario);
    EXPECT_TRUE(first.ok()) << "mesos seed " << seed << ": "
                            << ToString(first.violations.front());
    EXPECT_EQ(first.stream_hash, second.stream_hash) << "mesos seed " << seed;
  }
}

}  // namespace
}  // namespace tsf::chaos
